"""Figure 5: stream-oriented + real-world runtimes and checkpointing."""

from benchmarks.conftest import run_once
from repro.harness import experiments as ex
from repro.harness.report import render_table


def test_fig5ab_runtimes(benchmark, paper_scale):
    rows = run_once(benchmark, lambda: ex.fig5_runtimes(paper_scale))
    print()
    print(render_table(
        "Figure 5a/5b — stream-oriented & real-world runtimes", rows
    ))
    by = {r.label: r.values for r in rows}
    if paper_scale == 1.0:
        # §4.4.2/§4.4.3 overhead claims: SS <1%, UMS ~1.5%, LULESH <2%,
        # HPGMG <2%, HYPRE ~3% — all small; we accept < 5% with noise.
        for name, v in by.items():
            assert v["overhead_pct"] < 5.0, name
        # HPGMG's call volume: ~6M calls (2M/minute; §4.4.3).
        assert by["HPGMG-FV"]["cuda_calls"] > 4_000_000
        # LULESH: ~210K calls over ~80 s (§4.4.2).
        assert 150_000 < by["LULESH"]["cuda_calls"] < 280_000
        assert 60 < by["LULESH"]["native_s"] < 100


def test_fig5c_checkpoint(benchmark, paper_scale):
    rows = run_once(benchmark, lambda: ex.fig5c_checkpoint(paper_scale))
    print()
    print(render_table("Figure 5c — checkpoint/restart with image sizes", rows))
    by = {r.label: r.values for r in rows}
    if paper_scale == 1.0:
        # Paper size annotations: SS 142 MB, UMS 421 MB, LULESH 117 MB,
        # HPGMG 112 MB, HYPRE 2.3 GB — within 25%.
        for name, target in {
            "simpleStreams": 142, "UnifiedMemoryStreams": 421,
            "LULESH": 117, "HPGMG-FV": 112, "HYPRE": 2355,
        }.items():
            assert abs(by[name]["size_mb"] - target) <= 0.25 * target
        # HPGMG restart is replay-dominated and the slowest (~1.75 s).
        restarts = {k: v["restart_s"] for k, v in by.items()}
        assert max(restarts, key=restarts.get) == "HPGMG-FV"
        assert 1.0 < restarts["HPGMG-FV"] < 2.5
        # HYPRE: big image, but restarts faster than HPGMG (§4.4.3).
        assert restarts["HYPRE"] < restarts["HPGMG-FV"]
