"""Checkpoint-mode comparison: full vs incremental vs forked.

Runs ≥2 Rodinia apps with several mid-run cuts under each checkpoint
mode and asserts the headline claim of the delta/forked pipeline:
forked+incremental checkpointing cuts the app-visible checkpoint stall
by at least 30% versus synchronous full checkpoints. The report is
written to ``BENCH_delta_ckpt.json`` at the repo root so CI can upload
it as an artifact.
"""

import json
from pathlib import Path

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.apps.rodinia import Gaussian, Kmeans
from repro.harness import format_report, run_ckpt_bench

OUT = Path(__file__).resolve().parents[1] / "BENCH_delta_ckpt.json"


def test_delta_ckpt_modes(benchmark):
    report = run_once(
        benchmark,
        # Below ~quarter scale the fixed quiesce cost (which no mode can
        # hide) dominates the stall and the ≥30% claim is meaningless.
        lambda: run_ckpt_bench(
            [Gaussian, Kmeans], scale=max(BENCH_SCALE, 0.25), n_cuts=4
        ),
    )
    print()
    print(format_report(report))
    OUT.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    for app, row in report["apps"].items():
        modes = row["modes"]
        # Incremental shrinks the image chain after the base cut.
        assert modes["incremental"]["image_mb"] <= modes["full"]["image_mb"]
        # Forked must never stall longer than the synchronous modes.
        assert modes["forked"]["stall_s"] <= modes["full"]["stall_s"]
        red = row["reduction_pct"]["forked"]
        assert red >= 30.0, (
            f"{app}: forked+incremental reduced stall by only {red:.1f}% "
            f"(claim: ≥30%) — see BENCH_delta_ckpt.json"
        )
    assert report["summary"]["min_forked_reduction_pct"] >= 30.0
