"""Benchmark configuration.

Each benchmark regenerates one of the paper's tables/figures at paper
scale (``scale=1.0``), prints the rows in the paper's layout, asserts
the *shape* criteria of DESIGN.md §3, and reports the harness wall time
through pytest-benchmark (single round: the measurements themselves are
virtual-time and deterministic, so repetition adds nothing).

Set ``REPRO_BENCH_SCALE`` to run the sweep at a reduced scale.
"""

import os

import pytest

#: paper scale unless overridden (e.g. REPRO_BENCH_SCALE=0.05 for CI).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture
def paper_scale():
    return BENCH_SCALE


def run_once(benchmark, fn):
    """Run an experiment once under pytest-benchmark and return its rows."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
