"""Ablations for the design choices DESIGN.md §5 calls out.

1. Active-malloc-only vs full-arena checkpoint contents (§3.2.3): the
   paper's bookkeeping avoids saving the 64 MB+ allocation arenas of
   which "the active CUDA malloc buffers ... will generally be a small
   fraction".
2. gzip on vs off (the paper disables DMTCP's default gzip; compression
   trades image size for checkpoint time — here time only, since sizes
   are accounted pre-compression).
3. Replay-cost scaling: restart time grows with the malloc/free log
   length (why Streamcluster/Heartwall restart slower than they
   checkpoint, and why HPGMG restarts slowest of all).
"""

import pytest

from benchmarks.conftest import run_once
from repro.apps.rodinia import Streamcluster
from repro.core import CracSession
from repro.cuda.api import FatBinary
from repro.harness import run_app
from repro.harness.report import ExperimentRow, render_table


def _ckpt_size_mb(full_arena: bool) -> float:
    session = CracSession(seed=4, full_arena_checkpoint=full_arena)
    b = session.backend
    b.register_app_binary(FatBinary("abl.fatbin", ("k",)))
    # A typical small working set: a few MB live out of a 64 MB arena.
    for _ in range(8):
        b.malloc(256 * 1024)
    image = session.checkpoint()
    return image.blobs["crac/buffers"].accounted_bytes / (1 << 20)


def test_ablation_active_vs_full_arena(benchmark):
    def experiment():
        return {
            "active-only": _ckpt_size_mb(full_arena=False),
            "full-arena": _ckpt_size_mb(full_arena=True),
        }

    sizes = run_once(benchmark, experiment)
    rows = [
        ExperimentRow(k, {"gpu_state_mb": v}) for k, v in sizes.items()
    ]
    print()
    print(render_table("Ablation — active-malloc vs full-arena image", rows))
    # The §3.2.3 claim: active buffers are a small fraction of the arena.
    assert sizes["active-only"] < sizes["full-arena"] / 10
    assert sizes["full-arena"] >= 64  # at least one full arena


def test_ablation_gzip(benchmark):
    from repro.apps.rodinia import Gaussian

    def experiment():
        out = {}
        for gz in (False, True):
            res = run_app(
                Gaussian(scale=0.5), mode="crac", checkpoint_at=0.5,
                gzip=gz, noise=False,
            )
            out["gzip" if gz else "plain"] = res.checkpoints[0].checkpoint_s
        return out

    times = run_once(benchmark, experiment)
    rows = [ExperimentRow(k, {"checkpoint_s": v}) for k, v in times.items()]
    print()
    print(render_table("Ablation — DMTCP gzip on/off (checkpoint time)", rows))
    # The paper disables gzip for a reason.
    assert times["gzip"] > 2 * times["plain"]


def test_ablation_incremental_checkpointing(benchmark):
    """Incremental (dirty-page) checkpointing vs full images: second
    checkpoints of a mostly-quiescent upper half shrink to the dirtied
    working set — the extension real DMTCP offers for frequent intervals.

    Host memory only: CRAC's staged GPU buffers are always saved in
    full, so the workload here is host-ballast heavy (512 MB written
    once, 1 MB re-touched between checkpoints).
    """

    def experiment():
        out = {}
        for incremental in (False, True):
            session = CracSession(seed=6)
            b = session.backend
            b.register_app_binary(FatBinary("abl2.fatbin", ("k",)))
            ballast = session.split.upper_mmap(512 << 20)
            session.process.vas.write(ballast, b"w" * (1 << 20))
            base = session.checkpoint()
            # Touch 1 MB of the half-GB between checkpoints.
            session.process.vas.write(ballast + (64 << 20), b"d" * (1 << 20))
            second = session.checkpoint(
                incremental=incremental, parent=base if incremental else None
            )
            out["incremental" if incremental else "full"] = [
                base.size_bytes / (1 << 20),
                second.size_bytes / (1 << 20),
                getattr(second, "checkpoint_time_ns") / 1e9,
            ]
        return out

    sizes = run_once(benchmark, experiment)
    rows = [
        ExperimentRow(mode, {"base_mb": v[0], "second_mb": v[1],
                             "second_ckpt_s": v[2]})
        for mode, v in sizes.items()
    ]
    print()
    print(render_table("Ablation — full vs incremental second image", rows))
    # The incremental second image holds ~the dirtied megabyte; the full
    # one re-dumps the entire half-gigabyte upper half.
    assert sizes["incremental"][1] < sizes["full"][1] / 50
    assert sizes["incremental"][2] < sizes["full"][2] / 2
    assert sizes["incremental"][0] == pytest.approx(sizes["full"][0], rel=0.05)


def test_ablation_replay_cost_scaling(benchmark):
    """Restart time is linear in the malloc/free log length."""

    def experiment():
        out = {}
        for scale in (0.05, 0.2, 0.8):
            res = run_app(
                Streamcluster(scale=scale), mode="crac", checkpoint_at=0.9,
                noise=False,
            )
            rec = res.checkpoints[0]
            out[scale] = (rec.replayed_calls, rec.restart_s)
        return out

    data = run_once(benchmark, experiment)
    rows = [
        ExperimentRow(
            f"scale={k}", {"replayed_calls": v[0], "restart_s": v[1]}
        )
        for k, v in data.items()
    ]
    print()
    print(render_table("Ablation — restart cost vs log length", rows))
    scales = sorted(data)
    calls = [data[s][0] for s in scales]
    restarts = [data[s][1] for s in scales]
    assert calls[0] < calls[1] < calls[2]
    assert restarts[0] < restarts[1] < restarts[2]
