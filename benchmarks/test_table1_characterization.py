"""Table 1 + Table 2 + the §1 TOP500 series (static/characterization)."""

from benchmarks.conftest import run_once
from repro.harness import experiments as ex
from repro.harness.report import render_table


def test_fig0_top500(benchmark):
    rows = run_once(benchmark, ex.fig0_top500)
    print()
    print(render_table("§1 — TOP500 systems with NVIDIA GPUs", rows, "year"))
    assert rows[-1].values["systems"] == 136  # Nov. 2019 listing


def test_table1_characterization(benchmark, paper_scale):
    rows = run_once(benchmark, lambda: ex.table1_characterization(paper_scale))
    print()
    print(render_table("Table 1 — application benchmarks characterization", rows))
    by = {r.label: r.values for r in rows}
    assert by["HPGMG-FV"]["UVM"] == "✓" and by["HPGMG-FV"]["Streams"] == "✗"
    assert by["HYPRE"]["UVM"] == "✓" and by["HYPRE"]["Streams"] == "✓"
    assert by["Rodinia"]["UVM"] == "✗"
    if paper_scale == 1.0:
        # HYPRE ~600 CPS, HPGMG ~35K CPS (§4.4.3); Rodinia spans the
        # paper's "38–132K" range (BFS ≈ 38/s up to DWT2D ≈ 132K/s).
        assert 400 < float(by["HYPRE"]["CPS"].replace(",", "")) < 1_000
        assert 25_000 < float(by["HPGMG-FV"]["CPS"].replace(",", "")) < 45_000
        lo, hi = by["Rodinia"]["CPS"].split("–")
        assert 20 < float(lo.replace(",", "")) < 60
        assert 90_000 < float(hi.replace(",", "")) < 160_000


def test_table2_cli_arguments(benchmark):
    rows = run_once(benchmark, ex.table2_cli_arguments)
    print()
    print(render_table("Table 2 — command-line arguments", rows))
    assert len(rows) == 15
