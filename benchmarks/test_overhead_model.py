"""Supplementary: the two-term overhead model (startup + per-call).

Validates that the measured exact overhead of every Rodinia app is
explained by ``startup/T + CPS × per-call-cost`` — the cost structure
the paper's §4.4.1 narrative describes qualitatively.
"""

from benchmarks.conftest import run_once
from repro.harness import experiments as ex
from repro.harness.report import render_table


def test_overhead_model(benchmark, paper_scale):
    rows = run_once(benchmark, lambda: ex.overhead_model(paper_scale))
    print()
    print(render_table(
        "Supplementary — CRAC overhead vs the two-term cost model", rows
    ))
    for r in rows:
        # The additive model is an *upper bound*: asynchronous kernel
        # launches can hide dispatch cost under device execution (most
        # visible for call-dense DWT2D), so measured ≤ model. Apart from
        # that hiding, the model explains overhead to ~1.5 points.
        assert r.values["residual_pp"] < 1.5, r.label
        if r.values["cps"] < 50_000:
            assert abs(r.values["residual_pp"]) < 1.5, r.label
    # The call-dense apps are per-call dominated; the short ones are
    # startup dominated — check one exemplar of each.
    by = {r.label: r.values for r in rows}
    if paper_scale == 1.0:
        dwt = by["DWT2D"]
        assert dwt["cps"] * 745 / 1e9 * 100 > 5  # per-call term > 5%
        bfs = by["BFS"]
        assert bfs["model_ovh_pct"] < 12 and bfs["measured_ovh_pct"] < 12