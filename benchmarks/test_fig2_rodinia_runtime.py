"""Figure 2: Rodinia runtimes native vs CRAC (with call counts)."""

from benchmarks.conftest import run_once
from repro.harness import experiments as ex
from repro.harness.report import render_table

#: The paper's grouping: these 9 finish in under 7 s natively and may
#: show up to ~14% overhead (startup + noise); the remaining 5 run >10 s
#: with ~0–2% overhead.
SHORT_APPS = {"BFS", "DWT2D", "Heartwall", "Hotspot", "LUD", "Leukocyte",
              "Particlefilter", "SRAD", "Streamcluster"}
LONG_APPS = {"CFD", "Gaussian", "Hotspot3D", "Kmeans", "NW"}


def test_fig2_rodinia_runtime(benchmark, paper_scale):
    rows = run_once(benchmark, lambda: ex.fig2_rodinia_runtime(paper_scale))
    print()
    print(render_table("Figure 2 — Rodinia runtimes (native vs CRAC)", rows))
    by = {r.label: r.values for r in rows}
    if paper_scale == 1.0:
        for name in SHORT_APPS:
            assert by[name]["native_s"] < 8.0
            assert -3.0 <= by[name]["overhead_pct"] <= 16.0
        for name in LONG_APPS:
            assert by[name]["native_s"] > 10.0
            assert -3.0 <= by[name]["overhead_pct"] <= 5.0
        # Call-count annotations (Figure 2 top labels), ±25%.
        for name, target in {
            "BFS": 100, "CFD": 72_000, "DWT2D": 800_000, "Gaussian": 18_000,
            "NW": 15_000, "Streamcluster": 69_000,
        }.items():
            assert abs(by[name]["cuda_calls"] - target) <= 0.25 * target + 50
