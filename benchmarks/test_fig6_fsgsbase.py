"""Figure 6: CRAC on the K600 with and without the FSGSBASE kernel patch."""

from benchmarks.conftest import run_once
from repro.harness import experiments as ex
from repro.harness.report import render_table


def test_fig6_fsgsbase(benchmark, paper_scale):
    rows = run_once(benchmark, lambda: ex.fig6_fsgsbase(paper_scale, noise=False))
    print()
    print(render_table(
        "Figure 6 — CRAC overhead on K600, unpatched vs FSGSBASE", rows
    ))
    deltas = [r.values["overhead_delta_pct"] for r in rows]
    # "the added advantage of using the FSGSBASE patch is small, and
    # often nearly zero" (§4.4.5): never a large regression, and the
    # improvement stays under a few percent.
    assert all(-3.0 < d <= 0.1 for d in deltas)
    # The patch helps most on call-dense apps (DWT2D's 133K CPS).
    by = {r.label: r.values for r in rows}
    assert by["DWT2D"]["overhead_delta_pct"] <= min(
        by["Gaussian"]["overhead_delta_pct"] + 0.01,
        0.0,
    )
    # Runtimes on the K600 are several times the V100's (slower part).
    if paper_scale == 1.0:
        assert by["NW"]["native_unpatched_s"] > 100
