"""Figure 4: simpleStreams — kernel-iteration sweep with 128 streams."""

from benchmarks.conftest import run_once
from repro.harness import experiments as ex
from repro.harness.report import render_table


def test_fig4_simplestreams(benchmark, paper_scale):
    rows = run_once(benchmark, lambda: ex.fig4_simplestreams(paper_scale))
    print()
    print(render_table("Figure 4 — simpleStreams (128 streams, 1000 reps)", rows))
    by = {r.label: r.values for r in rows}
    # 4a: total runtime grows with niterations; CRAC stays within ~1%.
    totals = [by[f"niterations={n}"]["native_total_s"] for n in (5, 10, 100, 500)]
    assert all(b >= a for a, b in zip(totals, totals[1:]))
    if paper_scale == 1.0:
        for n in (5, 10, 100, 500):
            assert abs(by[f"niterations={n}"]["overhead_pct"]) < 2.5
        # 4b: the non-streamed kernel time grows toward ~25 ms at 500
        # iterations; the streamed per-kernel time stays tiny (≈1/128).
        k500 = by["niterations=500"]
        assert 15.0 < k500["native_kernel_ms"] < 35.0
        assert k500["native_streamed_ms"] < k500["native_kernel_ms"] / 64
        # CRAC adds no measurable per-kernel overhead (§4.4.2: "CRAC
        # incurs no overhead; neither in non-streamed ... nor streamed").
        assert abs(k500["crac_kernel_ms"] - k500["native_kernel_ms"]) < 0.5
