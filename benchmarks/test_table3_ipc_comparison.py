"""Table 3: CRAC vs an IPC/CMA proxy on cuBLAS timing loops."""

from benchmarks.conftest import run_once
from repro.harness import experiments as ex
from repro.harness.report import render_table


def test_table3_ipc_comparison(benchmark, paper_scale):
    # Per-call milliseconds are loop-length invariant; a reduced loop
    # count measures the same values the paper's 10,000 iterations do.
    scale = min(paper_scale, 0.05)
    rows = run_once(benchmark, lambda: ex.table3_ipc_comparison(scale))
    print()
    print(render_table("Table 3 — native vs CRAC vs CMA/IPC (ms per call)", rows))
    by = {r.label: r.values for r in rows}

    # CRAC ≈ 1%-ish; its overhead *decreases* with data size (fixed
    # per-call cost amortized — paper: 3.9% at 1 MB Sdot → 0.5% at 100 MB).
    for routine in ("Sdot", "Sgemv", "Sgemm"):
        o1 = by[f"cublas{routine} 1MB"]["crac_overhead_pct"]
        o100 = by[f"cublas{routine} 100MB"]["crac_overhead_pct"]
        assert o1 < 15.0
        assert o100 < 1.5
        assert o100 < o1

    # CMA/IPC: hundreds-to-tens-of-thousands percent (paper: 142–17,812%).
    for r in rows:
        assert r.values["cma_overhead_pct"] > 100

    # Structural orderings from the paper's Table 3:
    # (a) Sdot/Sgemv IPC overhead grows with size (copy-bound);
    for routine in ("Sdot", "Sgemv"):
        assert (
            by[f"cublas{routine} 100MB"]["cma_overhead_pct"]
            > by[f"cublas{routine} 10MB"]["cma_overhead_pct"]
            > by[f"cublas{routine} 1MB"]["cma_overhead_pct"] * 0.9
        )
    # (b) Sgemm IPC overhead *shrinks* with size (compute-bound native).
    assert (
        by["cublasSgemm 100MB"]["cma_overhead_pct"]
        < by["cublasSgemm 1MB"]["cma_overhead_pct"]
    )
    # (c) at 100 MB, Sgemm's overhead is orders below Sdot's.
    assert (
        by["cublasSgemm 100MB"]["cma_overhead_pct"]
        < by["cublasSdot 100MB"]["cma_overhead_pct"] / 20
    )
