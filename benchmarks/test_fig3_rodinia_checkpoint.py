"""Figure 3: Rodinia checkpoint/restart times and image sizes."""

from benchmarks.conftest import run_once
from repro.harness import experiments as ex
from repro.harness.report import render_table

#: Figure 3's image-size annotations (MB).
PAPER_SIZES_MB = {
    "BFS": 39, "CFD": 39, "DWT2D": 40, "Gaussian": 783, "Heartwall": 16,
    "Hotspot": 18, "Hotspot3D": 54, "Kmeans": 374, "Leukocyte": 695,
    "LUD": 57, "Particlefilter": 36, "SRAD": 53, "Streamcluster": 83,
}


def test_fig3_rodinia_checkpoint(benchmark, paper_scale):
    rows = run_once(benchmark, lambda: ex.fig3_rodinia_checkpoint(paper_scale))
    print()
    print(render_table("Figure 3 — Rodinia checkpoint/restart (gzip off)", rows))
    by = {r.label: r.values for r in rows}
    if paper_scale == 1.0:
        for name, v in by.items():
            # "checkpoint-restart time is fairly small ... completes
            # within one second for almost all cases" (§4.4.1).
            assert v["checkpoint_s"] < 1.0
            assert v["restart_s"] < 1.2
        # Image sizes match the paper's annotations within 20%.
        for name, target in PAPER_SIZES_MB.items():
            assert abs(by[name]["size_mb"] - target) <= 0.2 * target + 4
        # The two malloc/free-heavy outliers restart slower than they
        # checkpoint (§4.4.1: Streamcluster and Heartwall).
        for name in ("Streamcluster", "Heartwall"):
            assert by[name]["restart_s"] > by[name]["checkpoint_s"]
