"""Supplementary: CRAC overhead vs concurrent-stream count.

Contribution 3 of the paper is efficient support for *many* concurrent
streams — previous systems were never evaluated past two. This sweep
runs simpleStreams from 4 up to the V100's 128-stream limit and shows
CRAC's overhead is flat in the stream count.
"""

from benchmarks.conftest import run_once
from repro.harness import experiments as ex
from repro.harness.report import render_table


def test_stream_scaling(benchmark, paper_scale):
    rows = run_once(benchmark, lambda: ex.stream_scaling(paper_scale))
    print()
    print(render_table("Supplementary — CRAC overhead vs #streams", rows))
    overheads = [r.values["overhead_pct"] for r in rows]
    # Flat: no trend from 4 to 128 streams beyond a couple of points.
    assert max(overheads) - min(overheads) < 2.5
    if paper_scale == 1.0:
        # And small throughout at paper scale.
        assert all(o < 6.0 for o in overheads)
    # More streams ⇒ more calls (each chunk is a launch + memcpy).
    calls = [r.values["cuda_calls"] for r in rows]
    assert calls == sorted(calls)
