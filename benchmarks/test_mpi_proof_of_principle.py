"""Supplementary: the §6 MPI+CUDA proof of principle, quantified.

Coordinated checkpoint/restart of an N-rank single-node MPI+CUDA job
(distributed Jacobi with GPU compute and halo exchange): per-rank
checkpoint cost is flat in the rank count, the coordinated barrier adds
negligible skew, and the restarted job's output is bit-identical.
"""

from benchmarks.conftest import run_once
from repro.harness.report import ExperimentRow, render_table
from repro.mpi import MpiJacobi, MpiWorld


def test_mpi_coordinated_checkpoint(benchmark):
    def experiment():
        rows = []
        for n_ranks in (1, 2, 4, 8):
            reference = MpiJacobi(
                MpiWorld(n_ranks), rows_per_rank=8, cols=16,
                iterations=16, seed=3,
            ).run()
            world = MpiWorld(n_ranks)
            jacobi = MpiJacobi(world, rows_per_rank=8, cols=16,
                               iterations=16, seed=3)
            digest = jacobi.run(checkpoint_at_iter=8)
            assert digest == reference, f"{n_ranks} ranks: output diverged"
            restarts = [r.session.restarts[0].restart_time_ns / 1e9
                        for r in world.ranks]
            rows.append(
                ExperimentRow(
                    f"ranks={n_ranks}",
                    {
                        "job_virtual_s": world.max_clock_s(),
                        "mean_restart_s": sum(restarts) / len(restarts),
                        "max_restart_s": max(restarts),
                    },
                )
            )
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(render_table(
        "Supplementary — coordinated MPI+CUDA checkpoint (§6)", rows
    ))
    by = {r.label: r.values for r in rows}
    # Per-rank restart cost is flat in the rank count (each rank restores
    # its own state; coordination is a barrier, not a serialization).
    assert by["ranks=8"]["mean_restart_s"] < 2 * by["ranks=1"]["mean_restart_s"]
    # No rank straggles: max ≈ mean.
    for v in by.values():
        assert v["max_restart_s"] < v["mean_restart_s"] * 1.5 + 0.05
