"""Supplementary: one workload under every checkpointing generation."""

from benchmarks.conftest import run_once
from repro.harness import experiments as ex
from repro.harness.report import render_table


def test_baseline_matrix(benchmark, paper_scale):
    scale = min(paper_scale, 0.5)
    rows = run_once(benchmark, lambda: ex.baseline_matrix(scale))
    print()
    print(render_table(
        "Supplementary — Hotspot under every dispatcher", rows, "system"
    ))
    by = {r.label: r.values for r in rows}
    # CRAC is the cheapest checkpointable option...
    assert by["crac"]["runtime_s"] < by["crum"]["runtime_s"]
    assert by["crac"]["runtime_s"] < by["proxy-cma"]["runtime_s"]
    # ...and native remains the floor.
    assert by["native"]["runtime_s"] < by["crac"]["runtime_s"]
