"""Program loading: the kernel-loader imitation of paper §3.1.

CRAC loads *two* programs into one process:

- the **lower half**: a tiny helper CUDA program plus the real CUDA
  libraries, loaded first, into a *reserved address window*, by a loader
  that imitates the way the kernel loads an application (ELF interpreter
  first, then the dynamically linked target) while interposing on every
  ``mmap`` so each region can be attributed to the lower half and placed
  with ``MAP_FIXED`` inside the window;
- the **upper half**: the end user's CUDA application, loaded normally.

The loader is therefore the component that *can* answer "which half owns
this page" — information the merged ``/proc/PID/maps`` view cannot provide
(see :mod:`repro.linux.proc_maps`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LoaderError
from repro.linux.address_space import page_align_up
from repro.linux.process import SimProcess

#: Reserved address window for the lower half (helper + CUDA libraries +
#: all CUDA-library-allocated arenas). Chosen well below the default mmap
#: window so upper and lower cannot collide unless someone bypasses the
#: loader (which is exactly the §3.2.2 corruption scenario).
LOWER_HALF_WINDOW = (0x0000_1000_0000_0000, 0x0000_2000_0000_0000)


@dataclass(frozen=True)
class Segment:
    """A loadable program segment."""

    name: str
    size: int
    perms: str = "rw-"


@dataclass(frozen=True)
class ProgramImage:
    """An on-disk program: an executable plus its dynamic libraries.

    Libraries are themselves flat segment lists here (text+data per lib);
    the GNU link map chaining of Figure 1 is represented by the order of
    ``libraries``.
    """

    name: str
    segments: tuple[Segment, ...]
    libraries: tuple["ProgramImage", ...] = ()

    @staticmethod
    def simple(name: str, text_kb: int = 64, data_kb: int = 64) -> "ProgramImage":
        """A minimal executable with a text and a data segment."""
        return ProgramImage(
            name=name,
            segments=(
                Segment(f"{name}.text", text_kb * 1024, "r-x"),
                Segment(f"{name}.data", data_kb * 1024, "rw-"),
            ),
        )


@dataclass
class LoadedProgram:
    """A program resident in memory."""

    image: ProgramImage
    half: str  # "upper" or "lower"
    regions: list[tuple[int, int]] = field(default_factory=list)  # (start, size)

    @property
    def base(self) -> int:
        return min(start for start, _ in self.regions)

    def footprint(self) -> int:
        """Total mapped bytes of this program's segments."""
        return sum(size for _, size in self.regions)


class ProgramLoader:
    """Loads programs into a :class:`SimProcess` and tracks half ownership.

    This registry — not ``/proc/PID/maps`` — is CRAC's source of truth for
    "is this address upper-half (checkpoint it) or lower-half (skip it)".
    """

    def __init__(self, process: SimProcess) -> None:
        self.process = process
        self._half_ranges: dict[str, list[tuple[int, int]]] = {
            "upper": [],
            "lower": [],
        }
        self.loaded: list[LoadedProgram] = []

    # -- loading ------------------------------------------------------------

    def load(self, image: ProgramImage, half: str) -> LoadedProgram:
        """Load ``image`` (interpreter-style: libs then executable).

        Lower-half loads are confined to :data:`LOWER_HALF_WINDOW`;
        upper-half loads use the normal (possibly ASLR-randomized) window.
        """
        if half not in ("upper", "lower"):
            raise LoaderError(f"unknown half {half!r}")
        prog = LoadedProgram(image=image, half=half)
        # The kernel loads the ELF interpreter first; it then maps each
        # dynamic library, and finally the target executable's segments.
        for lib in image.libraries:
            for seg in lib.segments:
                self._map_segment(prog, seg, half)
        for seg in image.segments:
            self._map_segment(prog, seg, half)
        self.loaded.append(prog)
        return prog

    def mmap_for_half(
        self,
        half: str,
        size: int,
        *,
        perms: str = "rw-",
        tag_leaf: str = "anon",
        window: tuple[int, int] | None = None,
    ) -> int:
        """Runtime allocation on behalf of one half (library arenas, heaps).

        This is the interposition point of §3.1: every ``mmap`` issued by
        lower-half code is routed here so it lands inside the lower window
        and is recorded as lower-owned. ``window`` may narrow placement
        further (e.g. per-arena sub-windows mimicking CUDA's UVA address
        carving); for the lower half it must lie inside the lower window.
        """
        if half == "lower":
            if window is None:
                window = LOWER_HALF_WINDOW
            elif not (
                LOWER_HALF_WINDOW[0] <= window[0] and window[1] <= LOWER_HALF_WINDOW[1]
            ):
                raise LoaderError("lower-half window outside the reserved range")
        addr = self.process.vas.mmap(
            size, perms=perms, tag=f"{half}:{tag_leaf}", window=window
        )
        self._track(half, addr, page_align_up(size))
        return addr

    def munmap_for_half(self, half: str, addr: int, size: int) -> None:
        """Release a half-owned mapping and update the registry."""
        size = page_align_up(size)
        self.process.vas.munmap(addr, size)
        self._untrack(half, addr, size)

    # -- ownership queries -------------------------------------------------------

    def half_of(self, addr: int) -> str | None:
        """Which half owns ``addr`` according to the loader registry."""
        for half, ranges in self._half_ranges.items():
            for start, size in ranges:
                if start <= addr < start + size:
                    return half
        return None

    def ranges(self, half: str) -> list[tuple[int, int]]:
        """All (start, size) ranges currently owned by ``half``."""
        return sorted(self._half_ranges[half])

    def owned_bytes(self, half: str) -> int:
        """Total bytes currently owned by ``half``."""
        return sum(size for _, size in self._half_ranges[half])

    # -- internals -----------------------------------------------------------------

    def _map_segment(self, prog: LoadedProgram, seg: Segment, half: str) -> None:
        addr = self.mmap_for_half(half, seg.size, perms=seg.perms, tag_leaf=seg.name)
        prog.regions.append((addr, page_align_up(seg.size)))

    def _track(self, half: str, start: int, size: int) -> None:
        self._half_ranges[half].append((start, size))

    def _untrack(self, half: str, start: int, size: int) -> None:
        ranges = self._half_ranges[half]
        for i, (s, sz) in enumerate(ranges):
            if s == start and sz == size:
                ranges.pop(i)
                return
        # Partial unmap: drop any fully-covered entries, shrink the rest.
        new: list[tuple[int, int]] = []
        for s, sz in ranges:
            if s >= start and s + sz <= start + size:
                continue  # fully released
            if s < start + size and s + sz > start:  # partial overlap
                if s < start:
                    new.append((s, start - s))
                if s + sz > start + size:
                    new.append((start + size, s + sz - (start + size)))
            else:
                new.append((s, sz))
        self._half_ranges[half] = new
