"""Simulated process: virtual clock, threads, the ``fs`` register, ASLR.

All "time" in this reproduction is *virtual time*: a nanosecond counter
per process advanced by an explicit cost model. The process also models
the two mechanisms the paper's overhead analysis depends on:

- Setting the x86-64 ``fs`` segment register. Unpatched Linux requires a
  kernel call (``arch_prctl``); with the FSGSBASE kernel patch user space
  writes the register directly (``wrfsbase``), ~an order of magnitude
  cheaper. CRAC performs two ``fs`` switches per upper→lower CUDA call
  (paper §4.4.5 / Figure 6).
- ``personality(ADDR_NO_RANDOMIZE)``: disables ASLR so that the restart's
  replayed allocations land at the original addresses (paper §3.2.4).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.linux.address_space import VirtualAddressSpace
from repro.linux.proc_maps import ProcMaps

#: ``personality()`` flag, same value as Linux's ADDR_NO_RANDOMIZE.
ADDR_NO_RANDOMIZE = 0x0040000

#: Cost of a minimal kernel round trip (syscall entry/exit + work), ns.
SYSCALL_NS = 350
#: Cost of setting fs via the FSGSBASE ``wrfsbase`` instruction, ns.
WRFSBASE_NS = 12


@dataclass
class SimThread:
    """A host thread; owns an ``fs`` base (its TLS block address)."""

    tid: int
    fs_base: int = 0


class SimProcess:
    """A simulated Linux process.

    Args:
        pid: process id (cosmetic).
        aslr: initial ASLR state (flip via :meth:`personality`).
        fsgsbase: whether the kernel has the FSGSBASE patch applied, which
            changes the cost of :meth:`set_fs_register`.
        seed: RNG seed for the address space's randomized placement.
    """

    _pid_counter = itertools.count(1000)

    def __init__(
        self,
        pid: int | None = None,
        *,
        aslr: bool = True,
        fsgsbase: bool = False,
        seed: int = 0,
    ) -> None:
        self.pid = pid if pid is not None else next(self._pid_counter)
        self.vas = VirtualAddressSpace(aslr=aslr, seed=seed)
        self.proc_maps = ProcMaps(self.vas)
        self.fsgsbase = fsgsbase
        self.clock_ns = 0
        self.alive = True
        self._tid_counter = itertools.count(self.pid)
        self.threads: list[SimThread] = []
        self.spawn_thread()  # the main thread
        self.syscall_count = 0
        self.fs_switch_count = 0

    # -- time ---------------------------------------------------------------

    def advance(self, ns: float) -> None:
        """Advance the virtual clock by ``ns`` nanoseconds."""
        if ns < 0:
            raise ValueError("time cannot go backwards")
        self.clock_ns += ns

    def advance_to(self, t_ns: float) -> None:
        """Advance the clock to at least ``t_ns`` (no-op if already past)."""
        if t_ns > self.clock_ns:
            self.clock_ns = t_ns

    # -- threads and registers ------------------------------------------------

    def spawn_thread(self) -> SimThread:
        """Create a new thread within this process (pthread_create)."""
        t = SimThread(tid=next(self._tid_counter))
        self.threads.append(t)
        return t

    def syscall(self, cost_ns: float = SYSCALL_NS) -> None:
        """Account one kernel call."""
        self.syscall_count += 1
        self.advance(cost_ns)

    def set_fs_register(self, thread: SimThread, fs_base: int) -> None:
        """Switch a thread's ``fs`` base — the trampoline's hot operation.

        Costs one syscall on an unpatched kernel, one ``wrfsbase``
        instruction on an FSGSBASE kernel.
        """
        self.fs_switch_count += 1
        if self.fsgsbase:
            self.advance(WRFSBASE_NS)
        else:
            self.syscall(SYSCALL_NS)
        thread.fs_base = fs_base

    # -- personality (ASLR) ------------------------------------------------------

    def personality(self, flags: int) -> None:
        """Model of the ``personality`` syscall; only ADDR_NO_RANDOMIZE
        is understood. Takes effect for *future* mmaps."""
        self.syscall()
        self.vas.aslr = not bool(flags & ADDR_NO_RANDOMIZE)

    def kill(self) -> None:
        """Terminate the process (checkpoint/restart kills the original)."""
        self.alive = False
