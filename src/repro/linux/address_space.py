"""Byte-accurate simulated virtual address space.

The model is a sorted list of non-overlapping page-aligned
:class:`MemoryRegion` objects. Each region has a *virtual* size (used for
checkpoint-size accounting; may be huge) and *sparse page backing*: only
pages actually written hold real bytes. Reads of never-written pages
return zeros, exactly like anonymous Linux mappings.

Two behaviours matter for the paper and are modelled faithfully:

- ``mmap(MAP_FIXED)`` silently unmaps anything in its way. When the
  clobbered pages held data, a :class:`ClobberEvent` is recorded; this is
  the "silent memory corruption" of paper §3.2.2 that CRAC must prevent
  by tracking upper-half allocations.
- With ASLR enabled, non-fixed ``mmap`` picks randomized addresses; with
  ASLR disabled (``personality(ADDR_NO_RANDOMIZE)``) placement is a
  deterministic next-fit scan, which is what makes CRAC's log-and-replay
  reproduce identical addresses on restart.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass

from repro.errors import AddressSpaceError, SegmentationFault

PAGE_SIZE = 4096

#: Default placement window for non-fixed mmap (mirrors the mmap_min_addr /
#: TASK_SIZE window of a 47-bit x86-64 user address space).
DEFAULT_MMAP_WINDOW = (0x0000_7000_0000_0000, 0x0000_7FFF_F000_0000)


def page_align_down(addr: int) -> int:
    """Round ``addr`` down to a page boundary."""
    return addr & ~(PAGE_SIZE - 1)


def page_align_up(n: int) -> int:
    """Round ``n`` up to a page boundary."""
    return (n + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)


def _check_perms(perms: str) -> str:
    if len(perms) != 3 or any(c not in ok for c, ok in zip(perms, ("r-", "w-", "x-"))):
        raise AddressSpaceError(f"bad permission string {perms!r}; expected e.g. 'rw-'")
    return perms


@dataclass
class ClobberEvent:
    """Record of a MAP_FIXED (or munmap) destroying pages that held data."""

    addr: int
    size: int
    victim_tag: str
    aggressor_tag: str
    bytes_lost: int

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"clobber @{self.addr:#x}+{self.size:#x}: {self.aggressor_tag!r} "
            f"overwrote {self.victim_tag!r} ({self.bytes_lost} live bytes lost)"
        )


class MemoryRegion:
    """A contiguous page-aligned mapping with sparse page backing.

    Attributes:
        start: first byte address (page aligned).
        size: length in bytes (page aligned). This is the *virtual* size;
            backing pages exist only where data was written.
        perms: three-char permission string, e.g. ``"rw-"``.
        tag: free-form owner label (``"upper:heap"``, ``"lower:libcuda"``,
            ``"[stack]"`` ...). The first colon-separated component is the
            conventional *half* owner used by the loader and CRAC.
    """

    __slots__ = ("start", "size", "perms", "tag", "_pages", "_dirty_epoch", "_write_seq")

    def __init__(self, start: int, size: int, perms: str, tag: str) -> None:
        if start % PAGE_SIZE or size % PAGE_SIZE or size <= 0:
            raise AddressSpaceError(
                f"region [{start:#x}, +{size:#x}) not page aligned / empty"
            )
        self.start = start
        self.size = size
        self.perms = _check_perms(perms)
        self.tag = tag
        self._pages: dict[int, bytearray] = {}
        #: page index → epoch of its last write (see :attr:`write_seq`) —
        #: the soft-dirty tracking incremental checkpointing relies on.
        #: A page is *dirty* while it has an entry here.
        self._dirty_epoch: dict[int, int] = {}
        self._write_seq = 0

    @property
    def dirty(self) -> set[int]:
        """Page indices written since the last :meth:`clear_dirty`."""
        return set(self._dirty_epoch)

    @property
    def write_seq(self) -> int:
        """Monotone write counter; a checkpoint snapshot records it so
        commit can distinguish pre-snapshot dirtiness (safe to clear)
        from a page re-written while the image was still being flushed
        (must stay dirty for the next incremental cut)."""
        return self._write_seq

    @property
    def end(self) -> int:
        """One past the last byte of the region."""
        return self.start + self.size

    @property
    def backed_bytes(self) -> int:
        """Number of bytes actually held in backing pages."""
        return len(self._pages) * PAGE_SIZE

    def contains(self, addr: int, n: int = 1) -> bool:
        """True if ``[addr, addr+n)`` lies fully inside this region."""
        return self.start <= addr and addr + n <= self.end

    # -- data access (addresses are absolute) -------------------------------

    def write(self, addr: int, data: bytes | bytearray | memoryview) -> None:
        """Write ``data`` at absolute address ``addr`` (must be in range)."""
        data = memoryview(data).cast("B")
        n = len(data)
        if not self.contains(addr, max(n, 1)):
            raise SegmentationFault(addr, "write outside region")
        off = addr - self.start
        pos = 0
        self._write_seq += 1
        while pos < n:
            pg, pg_off = divmod(off + pos, PAGE_SIZE)
            take = min(PAGE_SIZE - pg_off, n - pos)
            page = self._pages.get(pg)
            if page is None:
                page = self._pages[pg] = bytearray(PAGE_SIZE)
            page[pg_off : pg_off + take] = data[pos : pos + take]
            self._dirty_epoch[pg] = self._write_seq
            pos += take

    def read(self, addr: int, n: int) -> bytes:
        """Read ``n`` bytes at absolute address ``addr``; holes read as 0."""
        if not self.contains(addr, max(n, 1)):
            raise SegmentationFault(addr, "read outside region")
        off = addr - self.start
        out = bytearray(n)
        pos = 0
        while pos < n:
            pg, pg_off = divmod(off + pos, PAGE_SIZE)
            take = min(PAGE_SIZE - pg_off, n - pos)
            page = self._pages.get(pg)
            if page is not None:
                out[pos : pos + take] = page[pg_off : pg_off + take]
            pos += take
        return bytes(out)

    # -- structural operations ----------------------------------------------

    def split(self, addr: int) -> tuple["MemoryRegion", "MemoryRegion"]:
        """Split into two regions at page-aligned absolute address ``addr``."""
        if addr % PAGE_SIZE or not (self.start < addr < self.end):
            raise AddressSpaceError(f"bad split point {addr:#x}")
        left = MemoryRegion(self.start, addr - self.start, self.perms, self.tag)
        right = MemoryRegion(addr, self.end - addr, self.perms, self.tag)
        cut_pg = (addr - self.start) // PAGE_SIZE
        for pg, page in self._pages.items():
            if pg < cut_pg:
                left._pages[pg] = page
            else:
                right._pages[pg - cut_pg] = page
        for pg, epoch in self._dirty_epoch.items():
            if pg < cut_pg:
                left._dirty_epoch[pg] = epoch
            else:
                right._dirty_epoch[pg - cut_pg] = epoch
        left._write_seq = right._write_seq = self._write_seq
        return left, right

    def pages_snapshot(self) -> dict[int, bytes]:
        """Immutable copy of the backing pages, keyed by page index."""
        return {pg: bytes(page) for pg, page in self._pages.items()}

    def load_pages(self, pages: dict[int, bytes]) -> None:
        """Replace backing pages from a snapshot (used by restore)."""
        self._pages = {pg: bytearray(data) for pg, data in pages.items()}
        self._write_seq += 1
        self._dirty_epoch = dict.fromkeys(pages, self._write_seq)

    def apply_pages(self, pages: dict[int, bytes]) -> None:
        """Overlay pages onto the current backing (incremental restore)."""
        self._write_seq += 1
        for pg, data in pages.items():
            self._pages[pg] = bytearray(data)
            self._dirty_epoch[pg] = self._write_seq

    def clear_dirty(
        self,
        pages: "set[int] | frozenset[int] | None" = None,
        *,
        up_to_epoch: int | None = None,
    ) -> None:
        """Reset soft-dirty tracking once a checkpoint durably commits.

        ``pages=None`` clears everything; otherwise only the given page
        indices are cleared. With ``up_to_epoch`` (the :attr:`write_seq`
        recorded at snapshot time) a page is cleared only if its last
        write precedes the snapshot — a page the image captured but the
        app re-wrote while the (forked) write was still in flight keeps
        its dirty bit, so the next incremental cut saves the new bytes.
        """
        if pages is None:
            self._dirty_epoch.clear()
            return
        for pg in pages:
            epoch = self._dirty_epoch.get(pg)
            if epoch is not None and (up_to_epoch is None or epoch <= up_to_epoch):
                del self._dirty_epoch[pg]

    def dirty_pages_since(self, epoch: int) -> int:
        """Number of pages whose last write came after ``epoch`` — the
        copy-on-write exposure of a snapshot taken at that epoch."""
        return sum(1 for e in self._dirty_epoch.values() if e > epoch)

    def dirty_pages_snapshot(self) -> dict[int, bytes]:
        """Copies of only the pages written since the last clear."""
        return {
            pg: bytes(self._pages[pg])
            for pg in self._dirty_epoch
            if pg in self._pages
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MemoryRegion {self.start:#x}-{self.end:#x} {self.perms} "
            f"{self.tag!r} backed={self.backed_bytes}>"
        )


class VirtualAddressSpace:
    """The full simulated address space of one process.

    Args:
        aslr: whether non-fixed ``mmap`` placement is randomized. Mutable
            at runtime via :attr:`aslr` (the ``personality`` syscall model
            flips it).
        seed: RNG seed for ASLR placement, so even "random" layouts are
            reproducible in tests.
    """

    def __init__(self, aslr: bool = True, seed: int = 0) -> None:
        self.aslr = aslr
        self._rng = random.Random(seed)
        self._starts: list[int] = []  # sorted region start addresses
        self._regions: dict[int, MemoryRegion] = {}  # keyed by start
        self._next_fit_cursor = DEFAULT_MMAP_WINDOW[0]
        self.clobber_events: list[ClobberEvent] = []

    # -- inspection ----------------------------------------------------------

    def regions(self) -> list[MemoryRegion]:
        """All regions sorted by start address."""
        return [self._regions[s] for s in self._starts]

    def find(self, addr: int) -> MemoryRegion | None:
        """The region containing ``addr``, or None."""
        i = bisect.bisect_right(self._starts, addr) - 1
        if i >= 0:
            r = self._regions[self._starts[i]]
            if r.contains(addr):
                return r
        return None

    @property
    def total_mapped(self) -> int:
        """Sum of virtual sizes of all regions."""
        return sum(r.size for r in self._regions.values())

    def overlapping(self, addr: int, size: int) -> list[MemoryRegion]:
        """Regions intersecting ``[addr, addr+size)``, sorted."""
        out = []
        i = bisect.bisect_right(self._starts, addr) - 1
        if i < 0:
            i = 0
        for s in self._starts[i:]:
            r = self._regions[s]
            if r.start >= addr + size:
                break
            if r.end > addr:
                out.append(r)
        return out

    # -- mmap / munmap / mprotect ---------------------------------------------

    def mmap(
        self,
        size: int,
        addr: int | None = None,
        *,
        fixed: bool = False,
        perms: str = "rw-",
        tag: str = "anon",
        window: tuple[int, int] | None = None,
    ) -> int:
        """Map ``size`` bytes and return the chosen start address.

        With ``fixed=True`` the mapping is placed exactly at ``addr``,
        silently unmapping whatever was there (Linux ``MAP_FIXED``
        semantics; a :class:`ClobberEvent` is recorded if live data dies).
        Otherwise an address is chosen inside ``window`` — randomized when
        :attr:`aslr` is on, deterministic next-fit when off.
        """
        size = page_align_up(size)
        if size == 0:
            raise AddressSpaceError("mmap of zero bytes")
        if fixed:
            if addr is None or addr % PAGE_SIZE:
                raise AddressSpaceError("MAP_FIXED requires a page-aligned address")
            self._evict(addr, size, aggressor_tag=tag)
            start = addr
        else:
            start = self._place(size, hint=addr, window=window)
        region = MemoryRegion(start, size, perms, tag)
        self._insert(region)
        return start

    def munmap(self, addr: int, size: int) -> None:
        """Unmap ``[addr, addr+size)``; partial overlaps split regions."""
        size = page_align_up(size)
        if addr % PAGE_SIZE:
            raise AddressSpaceError("munmap address not page aligned")
        self._evict(addr, size, aggressor_tag="munmap", record=False)

    def mprotect(self, addr: int, size: int, perms: str) -> None:
        """Change permissions over ``[addr, addr+size)`` (must be mapped)."""
        _check_perms(perms)
        size = page_align_up(size)
        victims = self.overlapping(addr, size)
        covered = sum(min(r.end, addr + size) - max(r.start, addr) for r in victims)
        if covered != size:
            raise SegmentationFault(addr, "mprotect over unmapped range")
        for r in victims:
            self._remove(r)
            for piece in _carve(r, addr, size):
                if addr <= piece.start and piece.end <= addr + size:
                    piece.perms = perms
                self._insert(piece)

    # -- data access -----------------------------------------------------------

    def write(self, addr: int, data: bytes | bytearray | memoryview) -> None:
        """Write bytes, spanning regions if they are contiguous and writable."""
        data = memoryview(data).cast("B")
        pos = 0
        while pos < len(data):
            r = self.find(addr + pos)
            if r is None:
                raise SegmentationFault(addr + pos, "write to unmapped address")
            if "w" not in r.perms:
                raise SegmentationFault(addr + pos, "write to read-only mapping")
            take = min(r.end - (addr + pos), len(data) - pos)
            r.write(addr + pos, data[pos : pos + take])
            pos += take

    def read(self, addr: int, n: int) -> bytes:
        """Read bytes, spanning contiguous readable regions."""
        out = bytearray()
        pos = 0
        while pos < n:
            r = self.find(addr + pos)
            if r is None:
                raise SegmentationFault(addr + pos, "read of unmapped address")
            if "r" not in r.perms:
                raise SegmentationFault(addr + pos, "read of PROT_NONE mapping")
            take = min(r.end - (addr + pos), n - pos)
            out += r.read(addr + pos, take)
            pos += take
        return bytes(out)

    # -- internals ---------------------------------------------------------------

    def _insert(self, region: MemoryRegion) -> None:
        if self.overlapping(region.start, region.size):
            raise AddressSpaceError(
                f"internal: inserting overlapping region at {region.start:#x}"
            )
        i = bisect.bisect_left(self._starts, region.start)
        self._starts.insert(i, region.start)
        self._regions[region.start] = region

    def _remove(self, region: MemoryRegion) -> None:
        i = bisect.bisect_left(self._starts, region.start)
        if i >= len(self._starts) or self._starts[i] != region.start:
            raise AddressSpaceError("internal: removing unknown region")
        self._starts.pop(i)
        del self._regions[region.start]

    def _evict(
        self, addr: int, size: int, *, aggressor_tag: str, record: bool = True
    ) -> None:
        """Unmap ``[addr, addr+size)``, splitting partial overlaps."""
        for r in self.overlapping(addr, size):
            self._remove(r)
            lost = 0
            for piece in _carve(r, addr, size):
                if addr <= piece.start and piece.end <= addr + size:
                    lost += sum(1 for _ in piece._pages) * PAGE_SIZE
                else:
                    self._insert(piece)
            if record and lost:
                self.clobber_events.append(
                    ClobberEvent(
                        addr=max(r.start, addr),
                        size=min(r.end, addr + size) - max(r.start, addr),
                        victim_tag=r.tag,
                        aggressor_tag=aggressor_tag,
                        bytes_lost=lost,
                    )
                )

    def _place(
        self, size: int, hint: int | None, window: tuple[int, int] | None
    ) -> int:
        lo, hi = window or DEFAULT_MMAP_WINDOW
        if hint is not None and hint % PAGE_SIZE == 0:
            if not self.overlapping(hint, size) and lo <= hint and hint + size <= hi:
                return hint
        if self.aslr:
            # Randomized placement with bounded retries, then fall back to scan.
            span = (hi - lo - size) // PAGE_SIZE
            if span > 0:
                for _ in range(64):
                    cand = lo + self._rng.randrange(span) * PAGE_SIZE
                    if not self.overlapping(cand, size):
                        return cand
        # Deterministic next-fit scan from the window base (or the cursor
        # when scanning the default window, to mimic Linux's top-down-ish
        # monotone behaviour without randomness).
        start = lo if window is not None else max(lo, self._next_fit_cursor)
        cand = start
        while cand + size <= hi:
            blockers = self.overlapping(cand, size)
            if not blockers:
                if window is None:
                    self._next_fit_cursor = cand + size
                return cand
            cand = page_align_up(blockers[-1].end)
        # Wrap around once for the default window.
        cand = lo
        while cand + size <= hi:
            blockers = self.overlapping(cand, size)
            if not blockers:
                if window is None:
                    self._next_fit_cursor = cand + size
                return cand
            cand = page_align_up(blockers[-1].end)
        raise AddressSpaceError(f"out of address space for {size:#x} bytes")


def _carve(region: MemoryRegion, addr: int, size: int) -> list[MemoryRegion]:
    """Split ``region`` so that ``[addr, addr+size)`` boundaries fall on
    region boundaries; returns the pieces in address order."""
    pieces = [region]
    for cut in (addr, addr + size):
        new_pieces = []
        for p in pieces:
            if p.start < cut < p.end:
                new_pieces.extend(p.split(cut))
            else:
                new_pieces.append(p)
        pieces = new_pieces
    return pieces
