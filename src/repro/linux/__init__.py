"""Simulated Linux substrate.

CRAC's correctness arguments are largely about address-space structure:
which half of the process owns which region, how ``/proc/PID/maps`` merges
adjacent regions, whether ``mmap(MAP_FIXED)`` from the lower half can
silently clobber upper-half pages, and whether disabling ASLR makes the
allocator deterministic enough for log-and-replay. This package provides
a byte-accurate model of exactly those mechanisms:

- :class:`~repro.linux.address_space.VirtualAddressSpace` — pages, regions,
  ``mmap``/``munmap``/``mprotect`` with ``MAP_FIXED`` clobber semantics.
- :class:`~repro.linux.proc_maps.ProcMaps` — the merged-region view that
  makes upper/lower ownership ambiguous (paper §3.2.2).
- :class:`~repro.linux.process.SimProcess` — virtual clock, threads, the
  x86-64 ``fs`` register and its (FSGSBASE-dependent) switch cost, and the
  ``personality()`` ASLR switch.
- :class:`~repro.linux.loader.ProgramLoader` — the kernel-loader imitation
  used to load the lower-half helper program into a reserved address
  window while interposing on all of its ``mmap`` calls.
"""

from repro.linux.address_space import (
    PAGE_SIZE,
    ClobberEvent,
    MemoryRegion,
    VirtualAddressSpace,
)
from repro.linux.loader import LoadedProgram, ProgramImage, ProgramLoader, Segment
from repro.linux.proc_maps import ProcMaps, ProcMapsEntry
from repro.linux.process import ADDR_NO_RANDOMIZE, SimProcess, SimThread

__all__ = [
    "PAGE_SIZE",
    "ClobberEvent",
    "MemoryRegion",
    "VirtualAddressSpace",
    "ProcMaps",
    "ProcMapsEntry",
    "SimProcess",
    "SimThread",
    "ADDR_NO_RANDOMIZE",
    "ProgramLoader",
    "ProgramImage",
    "LoadedProgram",
    "Segment",
]
