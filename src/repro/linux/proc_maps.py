"""``/proc/PID/maps`` model.

DMTCP discovers what to checkpoint by reading ``/proc/PID/maps``. The
kernel merges adjacent VMAs that share permissions and backing object, so
the maps view *loses information*: two anonymous regions — one created by
the upper-half application, one by the lower-half CUDA library — that
happen to be adjacent with equal permissions appear as a single entry.
Paper §3.2.2 identifies this as the reason a maps-driven checkpointer
cannot by itself decide which bytes belong to the upper half; CRAC keeps
its own region registry instead.

This module reproduces exactly that merging behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.linux.address_space import MemoryRegion, VirtualAddressSpace


@dataclass(frozen=True)
class ProcMapsEntry:
    """One line of the merged maps view."""

    start: int
    end: int
    perms: str
    pathname: str  # "" for anonymous memory, like the kernel's maps file

    @property
    def size(self) -> int:
        return self.end - self.start

    def format(self) -> str:
        """Render in the kernel's maps-file format."""
        return f"{self.start:x}-{self.end:x} {self.perms}p 00000000 00:00 0 {self.pathname}"


def _pathname(region: MemoryRegion) -> str:
    """Maps-file pathname for a region.

    Regions tagged with a library/file name (tag component after the last
    colon starting with "lib" or containing a dot, or bracketed pseudo
    files) show a pathname; plain anonymous allocations show "".
    """
    leaf = region.tag.rsplit(":", 1)[-1]
    if leaf.startswith("[") or leaf.startswith("lib") or "." in leaf:
        return leaf
    return ""


class ProcMaps:
    """Snapshot view over a :class:`VirtualAddressSpace`."""

    def __init__(self, vas: VirtualAddressSpace) -> None:
        self._vas = vas

    def entries(self) -> list[ProcMapsEntry]:
        """The merged maps view, in address order.

        Adjacent regions merge when permissions match and both map the
        same pathname (both anonymous counts as "same"), mirroring the
        kernel's VMA merging. Tags are *not* consulted — that is the whole
        point: ownership is invisible here.
        """
        merged: list[ProcMapsEntry] = []
        for region in self._vas.regions():
            path = _pathname(region)
            if (
                merged
                and merged[-1].end == region.start
                and merged[-1].perms == region.perms
                and merged[-1].pathname == path
            ):
                prev = merged.pop()
                merged.append(
                    ProcMapsEntry(prev.start, region.end, prev.perms, path)
                )
            else:
                merged.append(
                    ProcMapsEntry(region.start, region.end, region.perms, path)
                )
        return merged

    def format(self) -> str:
        """The full maps file as text."""
        return "\n".join(e.format() for e in self.entries())
