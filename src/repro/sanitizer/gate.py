"""The ``repro sanitize --gate`` CI gate.

Four independent verdicts, all of which must hold:

1. **Planted detection** — every positive scenario in
   :mod:`repro.sanitizer.planted` is detected (rate 1.0) and every
   negative control stays silent (0 false positives);
2. **Clean-app sweep** — the Rodinia suite, run under CRAC with a
   mid-run checkpoint cut and the sanitizer attached, produces zero
   hazards (the detector's real-workload false-positive rate);
3. **Determinism lint** — :func:`repro.sanitizer.lint.lint_package`
   over ``src/repro/`` reports nothing;
4. **Overhead bound** — instrumenting the ckpt-bench smoke
   configuration costs at most ``OVERHEAD_LIMIT``× virtual time, and
   the output digest is unchanged (instrumentation shifts timing only).

``run_gate`` returns the ``BENCH_sanitizer.json`` payload.
"""

from __future__ import annotations

from repro.sanitizer.lint import lint_package
from repro.sanitizer.planted import SCENARIOS, run_scenario

#: maximum allowed virtual-time slowdown from instrumentation
OVERHEAD_LIMIT = 1.25


def _planted_section() -> dict:
    """Run every planted scenario; summarize detection."""
    rows = [run_scenario(sc) for sc in SCENARIOS]
    positives = [r for r in rows if not r["negative"]]
    negatives = [r for r in rows if r["negative"]]
    detected = sum(1 for r in positives if r["detected"])
    false_pos = sum(r["hazards"] for r in negatives)
    return {
        "scenarios": rows,
        "positives": len(positives),
        "detected": detected,
        "detection_rate": detected / len(positives) if positives else 1.0,
        "negatives": len(negatives),
        "false_positives": false_pos,
        "ok": detected == len(positives) and false_pos == 0,
    }


def _clean_apps_section(scale: float, gpu: str, seed: int,
                        apps=None) -> dict:
    """Run the Rodinia suite under CRAC + one cut with the sanitizer on.

    ``restart_after_checkpoint`` stays off: restart replay re-creates
    allocations outside the app's own call sequence, which is a
    different (heavier) instrumentation story than hazard detection on
    the app itself.
    """
    from repro.apps.rodinia import RODINIA_SUITE
    from repro.harness import Machine, run_app
    from repro.sanitizer.core import Sanitizer

    classes = apps if apps is not None else RODINIA_SUITE
    rows = []
    for cls in classes:
        san = Sanitizer()
        run_app(
            cls(scale=scale, seed=seed),
            Machine(gpu=gpu, seed=seed),
            mode="crac",
            checkpoint_at=0.5,
            restart_after_checkpoint=False,
            noise=False,
            sanitizer=san,
        )
        rows.append({
            "app": cls.name,
            "hazards": len(san.hazards),
            "by_checker": san.report.counts(),
            "ops_instrumented": san.report.ops_instrumented,
            "details": [h.describe() for h in san.hazards[:10]],
        })
    total = sum(r["hazards"] for r in rows)
    return {"apps": rows, "total_hazards": total, "ok": total == 0}


def _lint_section() -> dict:
    """Lint ``src/repro`` (the package this module ships in)."""
    findings = lint_package()
    return {
        "findings": [f.describe() for f in findings],
        "count": len(findings),
        "ok": not findings,
    }


def _overhead_section(gpu: str, seed: int) -> dict:
    """Instrumented-vs-bare run of the ckpt-bench smoke config."""
    from repro.apps.rodinia import Gaussian
    from repro.harness import Machine, run_app
    from repro.sanitizer.core import Sanitizer

    cuts = [i / 5 for i in range(1, 5)]  # the smoke config's 4 cuts
    kw = dict(
        mode="crac", checkpoint_at=cuts, restart_after_checkpoint=False,
        noise=False,
    )
    base = run_app(Gaussian(scale=0.25, seed=seed),
                   Machine(gpu=gpu, seed=seed), **kw)
    san = Sanitizer()
    inst = run_app(Gaussian(scale=0.25, seed=seed),
                   Machine(gpu=gpu, seed=seed), sanitizer=san, **kw)
    ratio = (
        inst.runtime_exact_s / base.runtime_exact_s
        if base.runtime_exact_s > 0 else 1.0
    )
    return {
        "app": "gaussian",
        "scale": 0.25,
        "cuts": len(cuts),
        "base_s": base.runtime_exact_s,
        "instrumented_s": inst.runtime_exact_s,
        "ratio": ratio,
        "limit": OVERHEAD_LIMIT,
        "ops_instrumented": san.report.ops_instrumented,
        "digest_match": base.digest == inst.digest,
        "ok": ratio <= OVERHEAD_LIMIT and base.digest == inst.digest,
    }


def run_gate(*, scale: float = 0.05, gpu: str = "V100",
             seed: int = 0) -> dict:
    """Run all four gate sections; ``report["ok"]`` is the CI verdict."""
    report = {
        "planted": _planted_section(),
        "clean_apps": _clean_apps_section(scale, gpu, seed),
        "lint": _lint_section(),
        "overhead": _overhead_section(gpu, seed),
    }
    report["ok"] = all(report[k]["ok"] for k in
                       ("planted", "clean_apps", "lint", "overhead"))
    return report


def format_gate(report: dict) -> str:
    """Human-readable gate summary (CLI output)."""
    p, c = report["planted"], report["clean_apps"]
    li, ov = report["lint"], report["overhead"]
    lines = [
        "sanitizer gate",
        f"  planted:   {p['detected']}/{p['positives']} detected "
        f"(rate {p['detection_rate']:.2f}), "
        f"{p['false_positives']} false positive(s) on "
        f"{p['negatives']} negative control(s) "
        f"[{'ok' if p['ok'] else 'FAIL'}]",
        f"  clean:     {c['total_hazards']} hazard(s) across "
        f"{len(c['apps'])} Rodinia app(s) "
        f"[{'ok' if c['ok'] else 'FAIL'}]",
        f"  lint:      {li['count']} finding(s) "
        f"[{'ok' if li['ok'] else 'FAIL'}]",
        f"  overhead:  {ov['ratio']:.3f}x (limit {ov['limit']}x), "
        f"digest {'match' if ov['digest_match'] else 'MISMATCH'} "
        f"[{'ok' if ov['ok'] else 'FAIL'}]",
        f"  verdict:   {'PASS' if report['ok'] else 'FAIL'}",
    ]
    for r in p["scenarios"]:
        if not r["detected"]:
            lines.append(f"    planted FAIL {r['name']}: "
                         f"missing {r['missing']} found {r['found']}")
    for r in c["apps"]:
        if r["hazards"]:
            lines.append(f"    clean FAIL {r['app']}: {r['details']}")
    lines += ["    " + d for d in li["findings"]]
    return "\n".join(lines)
