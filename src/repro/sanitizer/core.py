"""The dynamic hazard detector (compute-sanitizer's racecheck family).

The :class:`Sanitizer` attaches to a :class:`~repro.cuda.api.CudaRuntime`
(``runtime.sanitizer``) and to its allocation arenas; the instrumented
paths call the ``on_*`` hooks below. Four checkers, individually
selectable:

======== ==================================================================
checker   fires when
======== ==================================================================
racecheck two device ops on *different streams* touch overlapping bytes
          of one buffer (≥1 write) with **no happens-before edge** —
          vector clocks concurrent (see :mod:`.vector_clock`). Managed
          buffers are checked at UVM page granularity, the CRUM
          shadow-page failure mode.
synccheck a checkpoint cut (plugin precheckpoint) or an image's
          ``mark_committed`` happens while some stream still has
          unsynced work in flight (``ready_ns`` past the host clock).
memcheck  use-after-free / wild pointers, out-of-bounds accesses against
          the arena, double frees, and a leak report at
          :meth:`Sanitizer.finish`.
initcheck a device read covers bytes never written by any h2d copy,
          memset, kernel view, or managed write.
======== ==================================================================

Host-side ``device_view``/``managed_view`` accesses outside a kernel mark
bytes *written* (feeding initcheck) but never race: the simulation lets
the host peek at device contents freely between launches, and flagging
that would drown real cross-stream hazards.

Every hook charges :data:`~repro.gpu.timing.SANITIZER_CHECK_NS` of
virtual time, so instrumentation overhead is measurable (the CI gate
bounds it).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.gpu.intervals import SpanSet
from repro.gpu.timing import SANITIZER_CHECK_NS
from repro.gpu.uvm import UVM_PAGE, ManagedBuffer
from repro.sanitizer.hazards import HazardReport, SanitizerReport
from repro.sanitizer.vector_clock import ClockMatrix, VectorClock

#: All checkers, in report order.
CHECKERS = ("racecheck", "synccheck", "memcheck", "initcheck")

#: Per-buffer access-history bound; beyond it, accesses dominated by
#: every stream's clock (can never race future ops) are pruned.
HISTORY_LIMIT = 256


@dataclass(frozen=True)
class _Access:
    """One recorded device-op access to a buffer."""

    lo: int
    hi: int
    write: bool
    sid: int
    clock: VectorClock
    op_id: int
    label: str


@dataclass
class _OpCtx:
    """One instrumented device operation (clock snapshot at issue)."""

    sid: int
    clock: VectorClock
    op_id: int
    label: str


class _AccessIndex:
    """Vectorized mirror of a buffer's access history.

    Byte ranges, stream ids, and write flags live in growable numpy
    arrays aligned row-for-row with ``_BufState.accesses``; clocks live
    in a :class:`ClockMatrix`. :meth:`race_rows` answers "which recorded
    accesses race this op" with a handful of array reductions instead of
    the legacy per-access Python scan — same rows, same order.
    """

    __slots__ = ("_lo", "_hi", "_sid", "_write", "_clocks", "_n")

    def __init__(self) -> None:
        self._lo = np.zeros(16, dtype=np.int64)
        self._hi = np.zeros(16, dtype=np.int64)
        self._sid = np.zeros(16, dtype=np.int64)
        self._write = np.zeros(16, dtype=bool)
        self._clocks = ClockMatrix()
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def add(self, a: _Access) -> None:
        """Append one access (row index == position in the list)."""
        if self._n >= self._lo.size:
            for name in ("_lo", "_hi", "_sid", "_write"):
                arr = getattr(self, name)
                grown = np.zeros(2 * arr.size, dtype=arr.dtype)
                grown[: self._n] = arr[: self._n]
                setattr(self, name, grown)
        self._lo[self._n] = a.lo
        self._hi[self._n] = a.hi
        self._sid[self._n] = a.sid
        self._write[self._n] = a.write
        self._clocks.append(a.clock)
        self._n += 1

    def rebuild(self, accesses: list[_Access]) -> None:
        """Re-index after a prune rewrote the access list."""
        self._n = 0
        self._clocks.clear()
        for a in accesses:
            self.add(a)

    def race_rows(
        self, r_lo: int, r_hi: int, sid: int, write: bool, clock: VectorClock
    ) -> list[int]:
        """Row indices of recorded accesses racing the given op, in
        recording order: overlapping bytes, different stream, ≥1 write,
        concurrent clocks."""
        n = self._n
        if n == 0:
            return []
        mask = (self._hi[:n] > r_lo) & (self._lo[:n] < r_hi)
        mask &= self._sid[:n] != sid
        if not write:
            mask &= self._write[:n]
        if not mask.any():
            return []
        row_leq, q_leq = self._clocks.versus(clock)
        mask &= ~row_leq & ~q_leq
        return np.flatnonzero(mask).tolist()

    def dominated_rows(self, frontier: VectorClock) -> np.ndarray:
        """Bool array: rows whose clock is ≤ ``frontier``."""
        return self._clocks.versus(frontier)[0]


@dataclass
class _BufState:
    """Sanitizer-side shadow state of one live buffer."""

    addr: int
    uid: int
    size: int
    kind: str
    paged: bool  # managed: race at UVM page granularity
    accesses: list[_Access] = field(default_factory=list)
    #: vectorized index over ``accesses`` (kept in lockstep)
    index: _AccessIndex = field(default_factory=_AccessIndex)
    #: byte spans ever written (initcheck coverage)
    written: SpanSet = field(default_factory=SpanSet)


class Sanitizer:
    """Vector-clock hazard detector for one runtime (see module doc)."""

    def __init__(
        self,
        checkers: tuple[str, ...] = CHECKERS,
        *,
        charge_time: bool = True,
    ) -> None:
        unknown = set(checkers) - set(CHECKERS)
        if unknown:
            raise ValueError(f"unknown checker(s): {sorted(unknown)}")
        self.checkers = frozenset(checkers)
        self.charge_time = charge_time
        self.report = SanitizerReport()
        self._runtime = None
        self._op_ids = itertools.count(1)
        self._host_clock = VectorClock()
        self._stream_clocks: dict[int, VectorClock] = {}
        self._event_clocks: dict[int, VectorClock] = {}
        #: clock published by the last default-stream op; streams created
        #: later start ordered after it (mirrors the device engine's
        #: ``_default_barrier_ns`` in ``register_stream``)
        self._default_barrier = VectorClock()
        self._buffers: dict[tuple[int, int], _BufState] = {}
        #: freed-not-yet-reused arena ranges: addr -> freed size
        self._freed: dict[int, int] = {}
        #: (addr, uid) live when the sanitizer attached — never leaks
        self._preexisting: set[tuple[int, int]] = set()
        self._hazard_keys: set = set()
        self._kernel_ctx: _OpCtx | None = None

    @property
    def hazards(self) -> list[HazardReport]:
        """All hazards found so far (shorthand for ``report.hazards``)."""
        return self.report.hazards

    # -- lifecycle -----------------------------------------------------------

    def attach(self, runtime) -> None:
        """Wire this sanitizer into ``runtime`` and its arenas.

        Idempotent and restart-safe: re-attaching to a fresh runtime
        (after :meth:`CracSession.restart`) keeps all clocks and shadow
        state — the app's logical timeline continues across the restart.
        """
        first = self._runtime is None
        self._runtime = runtime
        runtime.sanitizer = self
        for arena in (
            *runtime._device_allocs,
            runtime._pinned_alloc,
            runtime._hostalloc_alloc,
            runtime._managed_alloc,
        ):
            arena.sanitizer = self
        if first:
            for buf in runtime.active_allocations():
                self._preexisting.add((buf.addr, buf.uid))
                st = self._state(buf)
                # Pre-attach history is unknown: assume initialized.
                st.written = SpanSet([(0, buf.size)])

    def detach(self) -> None:
        """Unhook from the current runtime (shadow state is kept)."""
        runtime = self._runtime
        if runtime is None:
            return
        runtime.sanitizer = None
        for arena in (
            *runtime._device_allocs,
            runtime._pinned_alloc,
            runtime._hostalloc_alloc,
            runtime._managed_alloc,
        ):
            arena.sanitizer = None
        self._runtime = None

    def finish(self, runtime=None) -> SanitizerReport:
        """End-of-run pass: the memcheck leak report.

        Call once the application has completed (not at ``kill()`` — a
        killed-for-restart process legitimately holds live allocations).
        """
        runtime = runtime if runtime is not None else self._runtime
        if runtime is not None and "memcheck" in self.checkers:
            for buf in runtime.active_allocations():
                if (buf.addr, buf.uid) in self._preexisting:
                    continue
                kind = "managed" if isinstance(buf, ManagedBuffer) else buf.kind
                self._emit(
                    "memcheck", "leak",
                    f"{kind} allocation of {buf.size} bytes at "
                    f"{buf.addr:#x} never freed",
                    addr=buf.addr, byte_range=(0, buf.size),
                )
        return self.report

    # -- internals -----------------------------------------------------------

    def _charge(self) -> None:
        self.report.ops_instrumented += 1
        if self.charge_time and self._runtime is not None:
            self._runtime.process.advance(SANITIZER_CHECK_NS)

    def _emit(self, checker: str, kind: str, message: str, *, addr: int = 0,
              byte_range=None, stream_sids=(), op_ids=(),
              missing_edge=None) -> None:
        if checker not in self.checkers:
            return
        key = (checker, kind, addr, tuple(stream_sids), byte_range)
        if key in self._hazard_keys:
            return
        self._hazard_keys.add(key)
        self.report.hazards.append(HazardReport(
            checker=checker, kind=kind, message=message, addr=addr,
            byte_range=byte_range, stream_sids=tuple(stream_sids),
            op_ids=tuple(op_ids), missing_edge=missing_edge,
        ))

    def _stream_clock(self, sid: int) -> VectorClock:
        vc = self._stream_clocks.get(sid)
        if vc is None:
            vc = VectorClock()
            # A stream discovered now was created now: ordered after the
            # host and after the default-stream barrier.
            vc.join(self._host_clock)
            vc.join(self._default_barrier)
            self._stream_clocks[sid] = vc
        return vc

    def _begin_op(self, stream, label: str) -> _OpCtx:
        """Clock bookkeeping for one device op issued on ``stream``."""
        sid = stream.sid
        vc = self._stream_clock(sid)
        vc.join(self._host_clock)  # enqueue is ordered after the host
        if sid == 0:
            # Legacy default stream: waits for all streams...
            for osid, ovc in self._stream_clocks.items():
                if osid != 0:
                    vc.join(ovc)
            vc.join(self._default_barrier)
        vc.tick(sid)
        snap = vc.copy()
        if sid == 0:
            # ...and all streams wait for it.
            self._default_barrier = vc.copy()
            for osid, ovc in self._stream_clocks.items():
                if osid != 0:
                    ovc.join(vc)
        return _OpCtx(sid, snap, next(self._op_ids), label)

    def _state(self, buf) -> _BufState:
        key = (buf.addr, buf.uid)
        st = self._buffers.get(key)
        if st is None:
            managed = isinstance(buf, ManagedBuffer)
            st = _BufState(
                addr=buf.addr, uid=buf.uid, size=buf.size,
                kind="managed" if managed else buf.kind, paged=managed,
            )
            self._buffers[key] = st
        return st

    def _resolve_buf(self, runtime, addr, op: _OpCtx | None):
        """Device-side pointer lookup with memcheck (use-after-free /
        wild pointer) — fires *before* the runtime raises, so the hazard
        is recorded even though the call still fails."""
        buf = runtime.buffers.get(addr)
        if buf is not None and not buf.freed:
            return buf
        if addr in self._freed:
            self._emit(
                "memcheck", "use-after-free",
                f"access to freed pointer {addr:#x} "
                f"({self._freed[addr]} bytes at free time)",
                addr=addr,
                stream_sids=(op.sid,) if op else (),
                op_ids=(op.op_id,) if op else (),
            )
        else:
            self._emit(
                "memcheck", "invalid-pointer",
                f"access to pointer {addr:#x} never returned by any "
                "allocator", addr=addr,
                stream_sids=(op.sid,) if op else (),
            )
        return None

    def _record_access(
        self, buf, offset: int, nbytes: int, *, write: bool,
        op: _OpCtx | None, label: str,
    ) -> None:
        """Record one access; run memcheck/racecheck/initcheck on it.

        ``op=None`` marks a host-side access: it feeds initcheck's
        written-coverage but neither races nor is race-checked.
        """
        st = self._state(buf)
        lo, hi = offset, offset + nbytes
        if lo < 0 or hi > st.size:
            self._emit(
                "memcheck", "out-of-bounds",
                f"{label}: access [{lo}, {hi}) outside {st.kind} buffer "
                f"of {st.size} bytes",
                addr=st.addr, byte_range=(lo, hi),
                stream_sids=(op.sid,) if op else (),
                op_ids=(op.op_id,) if op else (),
            )
            lo, hi = max(lo, 0), min(hi, st.size)
        if hi <= lo:
            return
        # Managed buffers race at page granularity: two streams writing
        # different offsets of one UVM page is the CRUM failure mode.
        if st.paged:
            r_lo = (lo // UVM_PAGE) * UVM_PAGE
            r_hi = min(st.size, ((hi - 1) // UVM_PAGE + 1) * UVM_PAGE)
        else:
            r_lo, r_hi = lo, hi
        if op is not None and "racecheck" in self.checkers:
            for i in st.index.race_rows(r_lo, r_hi, op.sid, write, op.clock):
                a = st.accesses[i]
                kind = (
                    "write-write" if (write and a.write) else "read-write"
                )
                unit = "page" if st.paged else "byte"
                self._emit(
                    "racecheck", kind,
                    f"{a.label} (stream {a.sid}, op #{a.op_id}) and "
                    f"{label} (stream {op.sid}, op #{op.op_id}) touch "
                    f"overlapping {unit} range "
                    f"[{max(a.lo, r_lo)}, {min(a.hi, r_hi)}) "
                    f"with no ordering edge",
                    addr=st.addr,
                    byte_range=(max(a.lo, r_lo), min(a.hi, r_hi)),
                    stream_sids=(a.sid, op.sid),
                    op_ids=(a.op_id, op.op_id),
                    missing_edge=(
                        f"cudaEventRecord on stream {a.sid} after op "
                        f"#{a.op_id} + cudaStreamWaitEvent on stream "
                        f"{op.sid} before op #{op.op_id}"
                    ),
                )
        if not write and "initcheck" in self.checkers:
            missing = st.written.holes(lo, hi)
            if missing:
                self._emit(
                    "initcheck", "uninitialized-read",
                    f"{label} reads {sum(h - l for l, h in missing)} "
                    f"never-written byte(s) of {st.kind} buffer "
                    f"(first hole [{missing[0][0]}, {missing[0][1]}))",
                    addr=st.addr, byte_range=missing[0],
                    stream_sids=(op.sid,) if op else (),
                    op_ids=(op.op_id,) if op else (),
                )
        if write:
            st.written.add(lo, hi)
        if op is not None:
            a = _Access(r_lo, r_hi, write, op.sid, op.clock, op.op_id, label)
            st.accesses.append(a)
            st.index.add(a)
            if len(st.accesses) > HISTORY_LIMIT:
                self._prune(st)

    def _prune_frontier(self) -> VectorClock:
        """The clock every *future* device op is guaranteed to dominate.

        Componentwise min over all live stream clocks **and** the birth
        clock of a hypothetical not-yet-created stream (host ⊔
        default-stream barrier, the state ``_stream_clock`` seeds new
        streams with). Without the birth clock the frontier over-prunes:
        an access dominated by every *existing* stream — say its writer
        plus one event-joined peer — is still concurrent with the first
        op of a stream created later, because that op starts from the
        host/barrier clocks, which may never have absorbed the access.
        """
        birth = self._host_clock.copy()
        birth.join(self._default_barrier)
        clocks = [*self._stream_clocks.values(), birth]
        keys = set()
        for c in clocks:
            keys.update(c.clocks)
        return VectorClock({
            k: m for k in keys
            if (m := min(c.clocks.get(k, 0) for c in clocks)) > 0
        })

    def _prune(self, st: _BufState) -> None:
        """Bound a buffer's access history without losing live races.

        Three stages, mildest first:

        1. **Frontier drop** (exact): discard accesses dominated by
           :meth:`_prune_frontier` — every future op's clock dominates
           the frontier, so ``a ≤ frontier ≤ c`` means ``a`` can never
           be concurrent with a future ``c``.
        2. **Coverage compaction** (exact): drop an access whose bytes
           are fully covered by *later same-stream* accesses of at least
           the same strength (writes need write coverage; reads any).
           Same-stream clocks are totally ordered, so for the dropped
           ``a``, a covering later ``b`` satisfies ``a ≤ b``; if ``a``
           would race a future ``c`` then ``b ⋠ c`` (else ``a ≤ c``)
           and ``c ⋠ b`` (a future op ticks its own component past
           anything recorded), so ``b`` reports the race.
        3. **Span summarization** (detection-sound): collapse what
           remains into one access per (stream, write, merged span)
           carrying the group's *newest* clock. Any race a summarized
           access would hit still fires (same argument as 2 — the
           newest same-stream clock dominates the group), but the
           summary clock may claim concurrency an older member had
           already lost, so pre-summary ops can over-report; counted in
           ``report.history_summarized`` and only reachable with
           hundreds of live never-synchronized accesses per buffer.
           A group whose merged spans are still too fragmented (a
           strided writer leaves one span per write, so merging alone
           bounds nothing) is collapsed to its convex hull — also
           detection-sound, over-approximating only in the hull's gaps,
           which keeps the history hard-bounded per (stream, write).
        """
        dominated = st.index.dominated_rows(self._prune_frontier())
        if dominated.any():
            st.accesses = [
                a for a, d in zip(st.accesses, dominated.tolist()) if not d
            ]
            st.index.rebuild(st.accesses)
        if len(st.accesses) <= 4 * HISTORY_LIMIT:
            return
        self.report.history_compactions += 1
        cover_any: dict[int, SpanSet] = {}
        cover_write: dict[int, SpanSet] = {}
        kept: list[_Access] = []
        for a in reversed(st.accesses):
            cov = (cover_write if a.write else cover_any).get(a.sid)
            if cov is not None and cov.covers(a.lo, a.hi):
                continue
            kept.append(a)
            cover_any.setdefault(a.sid, SpanSet()).add(a.lo, a.hi)
            if a.write:
                cover_write.setdefault(a.sid, SpanSet()).add(a.lo, a.hi)
        kept.reverse()
        st.accesses = kept
        if len(st.accesses) > 4 * HISTORY_LIMIT:
            self.report.history_summarized += 1
            groups: dict[tuple[int, bool], tuple[SpanSet, _Access]] = {}
            for a in st.accesses:
                spans, newest = groups.get(
                    (a.sid, a.write), (SpanSet(), a)
                )
                spans.add(a.lo, a.hi)
                groups[(a.sid, a.write)] = (
                    spans, a if a.op_id >= newest.op_id else newest
                )
            st.accesses = []
            for (sid, write), (spans, newest) in sorted(groups.items()):
                merged = spans.spans()
                if len(merged) > HISTORY_LIMIT // 4:
                    merged = [(merged[0][0], merged[-1][1])]
                st.accesses.extend(
                    _Access(
                        lo, hi, write, sid, newest.clock, newest.op_id,
                        f"history-summary:{newest.label}",
                    )
                    for lo, hi in merged
                )
        st.index.rebuild(st.accesses)

    # -- hooks: copies / memset / kernels ------------------------------------

    def on_copy(self, runtime, stream, kind: str, dst, src, nbytes: int,
                dst_offset: int, src_offset: int, async_: bool) -> None:
        """cudaMemcpy[Async]: device ends are read/write accesses."""
        self._charge()
        op = self._begin_op(stream, f"memcpy-{kind}")
        if kind in ("h2d", "d2d"):
            buf = self._resolve_buf(runtime, dst, op)
            if buf is not None:
                self._record_access(
                    buf, dst_offset, nbytes, write=True, op=op,
                    label=f"memcpy-{kind}",
                )
        if kind in ("d2h", "d2d"):
            buf = self._resolve_buf(runtime, src, op)
            if buf is not None:
                self._record_access(
                    buf, src_offset, nbytes, write=False, op=op,
                    label=f"memcpy-{kind}",
                )
        if not async_:
            # Synchronous copy: the host blocks until the DMA completes.
            self._host_clock.join(self._stream_clocks[op.sid])
            self._host_clock.tick("host")

    def on_memset(self, runtime, stream, addr: int, nbytes: int,
                  async_: bool) -> None:
        """cudaMemset[Async]: a device-side write."""
        self._charge()
        op = self._begin_op(stream, "memset")
        buf = self._resolve_buf(runtime, addr, op)
        if buf is not None:
            # The runtime clamps an oversized memset to a full fill;
            # record the requested range so memcheck still sees the OOB.
            self._record_access(
                buf, 0, nbytes, write=True, op=op, label="memset"
            )
            if nbytes >= buf.size:
                self._record_access(
                    buf, 0, buf.size, write=True, op=None, label="memset"
                )
        if not async_:
            self._host_clock.join(self._stream_clocks[op.sid])
            self._host_clock.tick("host")

    def on_kernel_begin(self, runtime, stream, name: str, uses) -> _OpCtx:
        """cudaLaunchKernel: one op; ManagedUse declarations become page
        accesses; ``device_view`` calls inside the kernel body attribute
        to this op (see :meth:`on_device_view`)."""
        self._charge()
        op = self._begin_op(stream, name)
        for use in uses:
            buf = runtime.buffers.get(use.addr)
            if buf is None:
                self._resolve_buf(runtime, use.addr, op)
                continue
            if "r" in use.mode:
                self._record_access(
                    buf, use.offset, use.nbytes, write=False, op=op,
                    label=name,
                )
            if "w" in use.mode:
                self._record_access(
                    buf, use.offset, use.nbytes, write=True, op=op,
                    label=name,
                )
        self._kernel_ctx = op
        return op

    def on_kernel_end(self, op: _OpCtx) -> None:
        """The kernel body returned: stop attributing views to it."""
        self._kernel_ctx = None

    def on_device_view(self, runtime, buf, offset: int, nbytes: int) -> None:
        """A writable content view. Inside a kernel body this is the
        kernel's access (attributed to its stream/clock); outside it is a
        host-side peek — marks bytes written, never races."""
        self._charge()
        self._record_access(
            buf, offset, nbytes, write=True, op=self._kernel_ctx,
            label=(
                self._kernel_ctx.label if self._kernel_ctx is not None
                else "device_view"
            ),
        )

    def on_prefetch(self, runtime, stream, buf, offset: int, nbytes: int,
                    to_device: bool) -> None:
        """cudaMemPrefetchAsync: bulk page migration reads the range on
        the prefetching stream, so it orders against concurrent writers
        exactly like an async copy's source end."""
        self._charge()
        op = self._begin_op(stream, "prefetch")
        self._record_access(
            buf, offset, nbytes, write=False, op=op,
            label=f"prefetch-{'to-device' if to_device else 'to-host'}",
        )

    def on_pointer_miss(self, runtime, addr: int) -> None:
        """Host-side dereference of a pointer the runtime no longer (or
        never) knows — ``device_view`` on a freed/wild address."""
        self._charge()
        self._resolve_buf(runtime, addr, None)

    def on_managed_view(self, runtime, buf, offset: int, nbytes: int) -> None:
        """Host-side managed access (faults pages home): a host write."""
        self._charge()
        self._record_access(
            buf, offset, nbytes, write=True, op=None, label="managed_view"
        )

    # -- hooks: streams / events / sync --------------------------------------

    def on_stream_created(self, stream) -> None:
        """cudaStreamCreate: start the stream's clock after the current
        default-stream barrier."""
        self._charge()
        self._stream_clock(stream.sid)

    def on_sync(self, runtime, stream=None) -> None:
        """cudaStreamSynchronize (one stream) or cudaDeviceSynchronize
        (``stream=None``): the host clock absorbs the drained scope."""
        self._charge()
        if stream is None:
            for vc in self._stream_clocks.values():
                self._host_clock.join(vc)
        else:
            self._host_clock.join(self._stream_clock(stream.sid))
        self._host_clock.tick("host")

    def on_event_record(self, event, stream) -> None:
        """cudaEventRecord: snapshot the stream's clock into the event —
        the edge a later ``cudaStreamWaitEvent`` joins."""
        self._charge()
        op = self._begin_op(stream, f"event-record-{event.eid}")
        self._event_clocks[event.eid] = op.clock.copy()

    def on_stream_wait_event(self, stream, event) -> None:
        """cudaStreamWaitEvent: the waiting stream joins the event."""
        self._charge()
        evc = self._event_clocks.get(event.eid)
        if evc is not None:
            self._stream_clock(stream.sid).join(evc)

    def on_event_sync(self, event) -> None:
        """cudaEventSynchronize: the host joins the event."""
        self._charge()
        evc = self._event_clocks.get(event.eid)
        if evc is not None:
            self._host_clock.join(evc)
            self._host_clock.tick("host")

    # -- hooks: arena lifecycle (memcheck) -----------------------------------

    def on_arena_alloc(self, arena, addr: int, size: int) -> None:
        """Arena handed out ``addr``: it is no longer a freed pointer."""
        self._freed.pop(addr, None)

    def on_arena_free(self, arena, addr: int, size: int) -> None:
        """Arena reclaimed ``addr``: later uses are use-after-free."""
        self._freed[addr] = size

    def on_invalid_free(self, arena, addr: int) -> None:
        """Arena rejected a free: classify double-free vs wild free."""
        if addr in self._freed:
            self._emit(
                "memcheck", "double-free",
                f"free of already-freed pointer {addr:#x}", addr=addr,
            )
        else:
            self._emit(
                "memcheck", "invalid-free",
                f"free of pointer {addr:#x} never returned by this arena",
                addr=addr,
            )

    # -- hooks: checkpoint synchronization (synccheck) -----------------------

    def _unsynced_streams(self, runtime) -> list:
        now = runtime.process.clock_ns
        return [
            s for _, s in sorted(runtime.streams.items())
            if s.ready_ns > now
        ]

    def on_checkpoint_cut(self, runtime) -> None:
        """Plugin precheckpoint entry, *before* the drain: the paper's
        replay argument assumes the cut sees a quiescent device."""
        self.report.ops_instrumented += 1
        for s in self._unsynced_streams(runtime):
            self._emit(
                "synccheck", "unsynced-cut",
                f"checkpoint cut with work in flight on stream {s.sid} "
                f"(ready {s.ready_ns / 1e9:.4f}s > host "
                f"{runtime.process.clock_ns / 1e9:.4f}s) — missing "
                "cudaDeviceSynchronize before the cut",
                stream_sids=(s.sid,),
            )

    def watch_image(self, image) -> None:
        """Arm synccheck on ``image.mark_committed``."""
        image.sync_hook = self.on_mark_committed

    def on_mark_committed(self, image) -> None:
        """An image committed: in-flight work at commit means the commit
        point races application progress — except for forked images,
        whose commit legitimately lands mid-run (COW protects them)."""
        self.report.ops_instrumented += 1
        if self._runtime is None or getattr(image, "forked_writer", None):
            return
        for s in self._unsynced_streams(self._runtime):
            self._emit(
                "synccheck", "early-commit",
                f"mark_committed with work in flight on stream {s.sid} "
                "— dirty-state clearing may race device writes",
                stream_sids=(s.sid,),
            )
