"""Vector clocks over stream ids — the happens-before backbone.

Each CUDA stream (plus the host thread) carries a vector clock mapping
stream id → logical event count. The classic laws apply:

- an operation on stream *s* ticks component *s* of *s*'s clock;
- ``cudaEventRecord`` snapshots the recording stream's clock into the
  event; ``cudaStreamWaitEvent`` joins the event clock into the waiting
  stream — the only cross-stream ordering edge CUDA offers short of a
  full sync;
- a host-blocking sync joins the drained scope's clock into the host
  clock, and every enqueue joins the host clock into the target stream
  (work enqueued after the sync is ordered after the drained work);
- the legacy default stream (sid 0) joins *every* stream before its op
  and publishes its clock to every stream after — the barrier semantics
  the device engine enforces in virtual time.

Two accesses are *concurrent* — a candidate race — iff neither clock
happens-before the other (componentwise ≤ with at least the ticking
component strictly greater on each side).
"""

from __future__ import annotations

import numpy as np

#: Key used for the host thread's component in a clock.
HOST = "host"


class VectorClock:
    """A mapping ``component id -> count`` with join/compare helpers."""

    __slots__ = ("clocks",)

    def __init__(self, clocks: dict | None = None) -> None:
        self.clocks: dict = dict(clocks) if clocks else {}

    def copy(self) -> "VectorClock":
        """An independent snapshot of this clock."""
        return VectorClock(self.clocks)

    def tick(self, component) -> None:
        """Advance this clock's own component by one."""
        self.clocks[component] = self.clocks.get(component, 0) + 1

    def join(self, other: "VectorClock") -> None:
        """Componentwise max (absorb everything ``other`` has seen)."""
        for k, v in other.clocks.items():
            if v > self.clocks.get(k, 0):
                self.clocks[k] = v

    def leq(self, other: "VectorClock") -> bool:
        """True iff self ≤ other componentwise (happens-before-or-equal)."""
        return all(v <= other.clocks.get(k, 0) for k, v in self.clocks.items())

    def concurrent_with(self, other: "VectorClock") -> bool:
        """Neither ordered before the other — a candidate race."""
        return not self.leq(other) and not other.leq(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}:{v}" for k, v in sorted(
            self.clocks.items(), key=lambda kv: str(kv[0])
        ))
        return f"VC({inner})"


class ClockMatrix:
    """Batched happens-before comparison against many stored clocks.

    Stores appended clocks as rows of a growable int64 matrix, one
    column per component ever seen (a missing component is 0, exactly
    the :class:`VectorClock` convention). :meth:`versus` compares every
    stored row against one query clock in two vectorized reductions —
    the replacement for racecheck's per-access ``concurrent_with`` loop.
    """

    __slots__ = ("_cols", "_data", "_n")

    def __init__(self) -> None:
        self._cols: dict = {}  # component -> column index
        self._data = np.zeros((16, 4), dtype=np.int64)
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def _col(self, component) -> int:
        j = self._cols.get(component)
        if j is None:
            j = len(self._cols)
            self._cols[component] = j
            if j >= self._data.shape[1]:
                wider = np.zeros(
                    (self._data.shape[0], 2 * self._data.shape[1]),
                    dtype=np.int64,
                )
                wider[:, : self._data.shape[1]] = self._data
                self._data = wider
        return j

    def append(self, clock: VectorClock) -> None:
        """Add one clock as a new row."""
        if self._n >= self._data.shape[0]:
            taller = np.zeros(
                (2 * self._data.shape[0], self._data.shape[1]),
                dtype=np.int64,
            )
            taller[: self._n] = self._data[: self._n]
            self._data = taller
        self._data[self._n, :] = 0
        for k, v in clock.clocks.items():
            # _col may widen (reallocate) _data, so resolve the column
            # before touching the array — a cached row view (or the
            # array operand itself, which Python evaluates before the
            # subscript) would go stale.
            j = self._col(k)
            self._data[self._n, j] = v
        self._n += 1

    def clear(self) -> None:
        """Drop all rows (column mapping is kept)."""
        self._n = 0

    def versus(self, clock: VectorClock) -> tuple[np.ndarray, np.ndarray]:
        """``(row_leq_clock, clock_leq_row)`` bool arrays over all rows.

        ``row_leq_clock[i]`` is ``rows[i].leq(clock)``;
        ``clock_leq_row[i]`` is ``clock.leq(rows[i])``. Concurrency is
        ``~row_leq_clock & ~clock_leq_row``.
        """
        ncols = len(self._cols)
        m = self._data[: self._n, :ncols]
        q = np.zeros(ncols, dtype=np.int64)
        fresh_positive = False
        for k, v in clock.clocks.items():
            j = self._cols.get(k)
            if j is None:
                # A component no stored row has: every row holds 0
                # there, so rows stay ≤ the query, and a positive value
                # makes the query ≤ no row.
                fresh_positive = fresh_positive or v > 0
            else:
                q[j] = v
        row_leq = (m <= q).all(axis=1)
        if fresh_positive:
            q_leq = np.zeros(self._n, dtype=bool)
        else:
            q_leq = (m >= q).all(axis=1)
        return row_leq, q_leq
