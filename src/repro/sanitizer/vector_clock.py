"""Vector clocks over stream ids — the happens-before backbone.

Each CUDA stream (plus the host thread) carries a vector clock mapping
stream id → logical event count. The classic laws apply:

- an operation on stream *s* ticks component *s* of *s*'s clock;
- ``cudaEventRecord`` snapshots the recording stream's clock into the
  event; ``cudaStreamWaitEvent`` joins the event clock into the waiting
  stream — the only cross-stream ordering edge CUDA offers short of a
  full sync;
- a host-blocking sync joins the drained scope's clock into the host
  clock, and every enqueue joins the host clock into the target stream
  (work enqueued after the sync is ordered after the drained work);
- the legacy default stream (sid 0) joins *every* stream before its op
  and publishes its clock to every stream after — the barrier semantics
  the device engine enforces in virtual time.

Two accesses are *concurrent* — a candidate race — iff neither clock
happens-before the other (componentwise ≤ with at least the ticking
component strictly greater on each side).
"""

from __future__ import annotations

#: Key used for the host thread's component in a clock.
HOST = "host"


class VectorClock:
    """A mapping ``component id -> count`` with join/compare helpers."""

    __slots__ = ("clocks",)

    def __init__(self, clocks: dict | None = None) -> None:
        self.clocks: dict = dict(clocks) if clocks else {}

    def copy(self) -> "VectorClock":
        """An independent snapshot of this clock."""
        return VectorClock(self.clocks)

    def tick(self, component) -> None:
        """Advance this clock's own component by one."""
        self.clocks[component] = self.clocks.get(component, 0) + 1

    def join(self, other: "VectorClock") -> None:
        """Componentwise max (absorb everything ``other`` has seen)."""
        for k, v in other.clocks.items():
            if v > self.clocks.get(k, 0):
                self.clocks[k] = v

    def leq(self, other: "VectorClock") -> bool:
        """True iff self ≤ other componentwise (happens-before-or-equal)."""
        return all(v <= other.clocks.get(k, 0) for k, v in self.clocks.items())

    def concurrent_with(self, other: "VectorClock") -> bool:
        """Neither ordered before the other — a candidate race."""
        return not self.leq(other) and not other.leq(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}:{v}" for k, v in sorted(
            self.clocks.items(), key=lambda kv: str(kv[0])
        ))
        return f"VC({inner})"
