"""Structured hazard records emitted by the dynamic checkers."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass(frozen=True)
class HazardReport:
    """One detected hazard.

    Attributes:
        checker: which checker fired (``racecheck`` | ``synccheck`` |
            ``memcheck`` | ``initcheck``).
        kind: the hazard sub-class within the checker (e.g.
            ``write-write``, ``use-after-free``, ``unsynced-cut``).
        message: human-readable one-liner.
        addr: base address of the buffer involved (0 when no buffer).
        byte_range: ``(lo, hi)`` byte range within the buffer, or None.
        stream_sids: stream ids involved, in the order they acted.
        op_ids: sanitizer op ids of the involved operations.
        missing_edge: for races, the ordering edge whose absence makes
            the pair concurrent (what an event record/wait would add).
    """

    checker: str
    kind: str
    message: str
    addr: int = 0
    byte_range: tuple[int, int] | None = None
    stream_sids: tuple[int, ...] = ()
    op_ids: tuple[int, ...] = ()
    missing_edge: str | None = None

    def describe(self) -> str:
        """One-line ``[checker:kind] @addr[lo:hi] message`` rendering."""
        loc = f" @{self.addr:#x}" if self.addr else ""
        if self.byte_range is not None:
            loc += f"[{self.byte_range[0]}:{self.byte_range[1]}]"
        return f"[{self.checker}:{self.kind}]{loc} {self.message}"


@dataclass
class SanitizerReport:
    """Everything one sanitizer run produced.

    ``history_compactions`` counts exact same-stream coverage
    compactions of a buffer's access history (lossless for race
    detection); ``history_summarized`` counts the last-resort
    per-(stream, write) span summarizations, which never miss a race
    but may over-approximate the ordering of pre-summary ops — a
    nonzero value flags that any racecheck positives on that run
    deserve a second look.
    """

    hazards: list[HazardReport] = field(default_factory=list)
    ops_instrumented: int = 0
    history_compactions: int = 0
    history_summarized: int = 0

    def by_checker(self) -> dict[str, list[HazardReport]]:
        """Hazards grouped by the checker that emitted them."""
        out: dict[str, list[HazardReport]] = {}
        for h in self.hazards:
            out.setdefault(h.checker, []).append(h)
        return out

    def counts(self) -> dict[str, int]:
        """Hazard count per checker (only checkers that fired)."""
        return dict(Counter(h.checker for h in self.hazards))

    @property
    def clean(self) -> bool:
        """True when no checker found anything."""
        return not self.hazards

    def summary(self) -> str:
        """Multi-line human-readable report (CLI output)."""
        lines = [
            f"sanitizer: {len(self.hazards)} hazard(s), "
            f"{self.ops_instrumented} op(s) instrumented"
        ]
        for checker in ("racecheck", "synccheck", "memcheck", "initcheck"):
            for h in (hz for hz in self.hazards if hz.checker == checker):
                lines.append("  " + h.describe())
                if h.missing_edge:
                    lines.append(f"    missing edge: {h.missing_edge}")
        return "\n".join(lines)
