"""Planted-hazard scenarios: the sanitizer's own ground truth.

Each scenario builds a fresh simulated machine, attaches a
:class:`~repro.sanitizer.core.Sanitizer`, performs a short CUDA call
sequence with one *deliberate* bug (or, for negative controls, a
correctly synchronized equivalent), and declares which
``(checker, kind)`` hazards must be found. The CI gate demands 100%
detection on positives and zero findings on negatives — together with
the clean-app sweep this pins both sides of the detector's ROC point.

Scenarios are pure functions of their inputs (seeded machine, fixed
sizes), so a detection regression is always a code change, never noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import CudaError
from repro.sanitizer.core import Sanitizer

#: virtual duration long enough to still be in flight after the
#: checkpointer's quiesce window (ckpt_quiesce_ns = 90 ms)
LONG_KERNEL_NS = 20e9


def _machine(seed: int = 11):
    """A raw machine (process + GPU + runtime) with a sanitizer attached.

    Mirrors the test suite's ``build_machine`` but lives in the package
    so the CLI gate can run without the test tree.
    """
    from repro.cuda.api import CudaRuntime, FatBinary
    from repro.gpu.device import GpuDevice
    from repro.gpu.timing import GPU_SPECS
    from repro.linux.loader import ProgramImage, ProgramLoader
    from repro.linux.process import ADDR_NO_RANDOMIZE, SimProcess

    proc = SimProcess(seed=seed)
    proc.personality(ADDR_NO_RANDOMIZE)
    loader = ProgramLoader(proc)
    loader.load(
        ProgramImage(
            name="helper",
            segments=ProgramImage.simple("helper", 16, 16).segments,
            libraries=(ProgramImage.simple("libcuda.so", 2048, 512),),
        ),
        "lower",
    )
    runtime = CudaRuntime(
        proc,
        GpuDevice(GPU_SPECS["V100"]),
        mem_source=lambda size, tag: loader.mmap_for_half(
            "lower", size, tag_leaf=tag
        ),
    )
    handle = runtime.cudaRegisterFatBinary(
        FatBinary(name="planted.fatbin", kernels=("k", "k2"))
    )
    runtime.cudaRegisterFunction(handle, "k")
    runtime.cudaRegisterFunction(handle, "k2")
    san = Sanitizer()
    san.attach(runtime)
    return runtime, san


@dataclass(frozen=True)
class PlantedScenario:
    """One seeded scenario and the hazards it must (not) produce."""

    name: str
    #: ``(checker, kind)`` pairs that must each appear at least once
    expect: tuple[tuple[str, str], ...]
    #: drives the scenario; returns the sanitizer to inspect
    run: Callable[[], Sanitizer]
    #: negative control: ``expect`` is empty and *no* hazard may appear
    negative: bool = False


# -- racecheck -----------------------------------------------------------


def _race_ww_copies() -> Sanitizer:
    """Two streams async-memcpy into the same device range, no edge."""
    rt, san = _machine()
    s1, s2 = rt.cudaStreamCreate(), rt.cudaStreamCreate()
    dst = rt.cudaMalloc(4096)
    data = np.zeros(4096, dtype=np.uint8)
    rt.cudaMemcpy(dst, data, 4096, kind="h2d", stream=s1, async_=True)
    rt.cudaMemcpy(dst, data, 4096, kind="h2d", stream=s2, async_=True)
    rt.cudaDeviceSynchronize()
    return san


def _race_rw_copy_pair() -> Sanitizer:
    """One stream writes a range another is still reading."""
    rt, san = _machine()
    s1, s2 = rt.cudaStreamCreate(), rt.cudaStreamCreate()
    buf = rt.cudaMalloc(4096)
    data = np.zeros(4096, dtype=np.uint8)
    rt.cudaMemcpy(buf, data, 4096, kind="h2d")  # sync: initializes
    out = np.zeros(4096, dtype=np.uint8)
    rt.cudaMemcpy(out, buf, 4096, kind="d2h", stream=s1, async_=True)
    rt.cudaMemcpy(buf, data, 4096, kind="h2d", stream=s2, async_=True)
    rt.cudaDeviceSynchronize()
    return san


def _race_uvm_same_page() -> Sanitizer:
    """Two kernels write disjoint *bytes* of one UVM page — the CRUM
    shadow-page failure (§1 contribution 2): racy at page granularity."""
    from repro.cuda.api import ManagedUse

    rt, san = _machine()
    s1, s2 = rt.cudaStreamCreate(), rt.cudaStreamCreate()
    m = rt.cudaMallocManaged(65536)
    rt.cudaLaunchKernel(
        "k", stream=s1, duration_ns=1e6,
        managed=[ManagedUse(m, 0, 128, mode="w")],
    )
    rt.cudaLaunchKernel(
        "k2", stream=s2, duration_ns=1e6,
        managed=[ManagedUse(m, 4096, 128, mode="w")],
    )
    rt.cudaDeviceSynchronize()
    return san


def _race_negative_event_edge() -> Sanitizer:
    """Same access pattern as the W/W race, ordered by an event edge."""
    rt, san = _machine()
    s1, s2 = rt.cudaStreamCreate(), rt.cudaStreamCreate()
    dst = rt.cudaMalloc(4096)
    data = np.zeros(4096, dtype=np.uint8)
    rt.cudaMemcpy(dst, data, 4096, kind="h2d", stream=s1, async_=True)
    e = rt.cudaEventCreate()
    rt.cudaEventRecord(e, s1)
    rt.cudaStreamWaitEvent(s2, e)
    rt.cudaMemcpy(dst, data, 4096, kind="h2d", stream=s2, async_=True)
    rt.cudaDeviceSynchronize()
    return san


def _race_negative_default_stream() -> Sanitizer:
    """Cross-stream reuse serialized by a legacy default-stream barrier."""
    rt, san = _machine()
    s1, s2 = rt.cudaStreamCreate(), rt.cudaStreamCreate()
    dst = rt.cudaMalloc(4096)
    data = np.zeros(4096, dtype=np.uint8)
    rt.cudaMemcpy(dst, data, 4096, kind="h2d", stream=s1, async_=True)
    # A default-stream op joins every stream and republishes the barrier.
    rt.cudaMemcpy(dst, data, 4096, kind="h2d")
    rt.cudaMemcpy(dst, data, 4096, kind="h2d", stream=s2, async_=True)
    rt.cudaDeviceSynchronize()
    return san


# -- synccheck -----------------------------------------------------------


def _sync_cut_inflight_kernel() -> Sanitizer:
    """Checkpoint cut while a long kernel is still executing."""
    rt, san = _machine()
    s = rt.cudaStreamCreate()
    rt.cudaLaunchKernel("k", stream=s, duration_ns=LONG_KERNEL_NS)
    san.on_checkpoint_cut(rt)
    rt.cudaDeviceSynchronize()
    return san


def _sync_cut_inflight_copy() -> Sanitizer:
    """Checkpoint cut while a multi-GB async copy is on the wire."""
    rt, san = _machine()
    s = rt.cudaStreamCreate()
    nbytes = 3 << 30  # ~0.25 s at PCIe rate: far beyond the 90 ms quiesce
    dst = rt.cudaMalloc(nbytes)
    rt.cudaMemcpy(dst, rt.process.vas.mmap(nbytes, tag="planted-src"),
                  nbytes, kind="h2d", stream=s, async_=True)
    san.on_checkpoint_cut(rt)
    rt.cudaDeviceSynchronize()
    return san


def _sync_early_commit() -> Sanitizer:
    """mark_committed on a watched image with device work in flight."""
    from repro.dmtcp.image import CheckpointImage

    rt, san = _machine()
    s = rt.cudaStreamCreate()
    image = CheckpointImage(pid=1, created_at_ns=rt.process.clock_ns)
    san.watch_image(image)
    rt.cudaLaunchKernel("k", stream=s, duration_ns=LONG_KERNEL_NS)
    image.mark_committed()
    rt.cudaDeviceSynchronize()
    return san


def _sync_negative_drained_cut() -> Sanitizer:
    """Cut after a device synchronize: nothing in flight, no hazard."""
    rt, san = _machine()
    s = rt.cudaStreamCreate()
    rt.cudaLaunchKernel("k", stream=s, duration_ns=LONG_KERNEL_NS)
    rt.cudaDeviceSynchronize()
    san.on_checkpoint_cut(rt)
    return san


# -- memcheck ------------------------------------------------------------


def _mem_use_after_free() -> Sanitizer:
    """memcpy into a pointer freed one call earlier."""
    rt, san = _machine()
    p = rt.cudaMalloc(1024)
    rt.cudaFree(p)
    try:
        rt.cudaMemcpy(p, np.zeros(1024, dtype=np.uint8), 1024, kind="h2d")
    except CudaError:
        pass  # the runtime still rejects the call; the hazard is logged
    return san


def _mem_oob_memset() -> Sanitizer:
    """memset past the end of the allocation (runtime silently clamps)."""
    rt, san = _machine()
    p = rt.cudaMalloc(1024)
    rt.cudaMemset(p, 0, 1024 + 512)
    rt.cudaFree(p)
    return san


def _mem_double_free() -> Sanitizer:
    """cudaFree of an already-freed pointer."""
    rt, san = _machine()
    p = rt.cudaMalloc(1024)
    rt.cudaFree(p)
    try:
        rt.cudaFree(p)
    except CudaError:
        pass
    return san


def _mem_leak_at_teardown() -> Sanitizer:
    """Allocation never freed before the app finishes."""
    rt, san = _machine()
    rt.cudaMalloc(2048)
    san.finish(rt)
    return san


def _mem_negative_clean_lifecycle() -> Sanitizer:
    """Alloc → write → read → free: nothing to report (also the
    initcheck negative: every read is of written bytes)."""
    rt, san = _machine()
    p = rt.cudaMalloc(1024)
    rt.cudaMemset(p, 0, 1024)
    out = np.zeros(1024, dtype=np.uint8)
    rt.cudaMemcpy(out, p, 1024, kind="d2h")
    rt.cudaFree(p)
    san.finish(rt)
    return san


# -- initcheck -----------------------------------------------------------


def _init_d2h_unwritten() -> Sanitizer:
    """Read back a buffer no one ever wrote."""
    rt, san = _machine()
    p = rt.cudaMalloc(1024)
    out = np.zeros(1024, dtype=np.uint8)
    rt.cudaMemcpy(out, p, 1024, kind="d2h")
    rt.cudaFree(p)
    return san


def _init_d2d_unwritten_src() -> Sanitizer:
    """Device-to-device copy whose source was never initialized."""
    rt, san = _machine()
    a = rt.cudaMalloc(1024)
    b = rt.cudaMalloc(1024)
    rt.cudaMemcpy(b, a, 1024, kind="d2d")
    rt.cudaFree(a)
    rt.cudaFree(b)
    return san


def _init_partial_write_hole() -> Sanitizer:
    """Write the first 64 bytes, read back all 256: 192-byte hole."""
    rt, san = _machine()
    p = rt.cudaMalloc(256)
    rt.cudaMemcpy(p, np.zeros(64, dtype=np.uint8), 64, kind="h2d")
    out = np.zeros(256, dtype=np.uint8)
    rt.cudaMemcpy(out, p, 256, kind="d2h")
    rt.cudaFree(p)
    return san


SCENARIOS: tuple[PlantedScenario, ...] = (
    PlantedScenario(
        "race-ww-copies", (("racecheck", "write-write"),), _race_ww_copies
    ),
    PlantedScenario(
        "race-rw-copy-pair", (("racecheck", "read-write"),),
        _race_rw_copy_pair,
    ),
    PlantedScenario(
        "race-uvm-same-page", (("racecheck", "write-write"),),
        _race_uvm_same_page,
    ),
    PlantedScenario(
        "race-negative-event-edge", (), _race_negative_event_edge,
        negative=True,
    ),
    PlantedScenario(
        "race-negative-default-stream", (), _race_negative_default_stream,
        negative=True,
    ),
    PlantedScenario(
        "sync-cut-inflight-kernel", (("synccheck", "unsynced-cut"),),
        _sync_cut_inflight_kernel,
    ),
    PlantedScenario(
        "sync-cut-inflight-copy", (("synccheck", "unsynced-cut"),),
        _sync_cut_inflight_copy,
    ),
    PlantedScenario(
        "sync-early-commit", (("synccheck", "early-commit"),),
        _sync_early_commit,
    ),
    PlantedScenario(
        "sync-negative-drained-cut", (), _sync_negative_drained_cut,
        negative=True,
    ),
    PlantedScenario(
        "mem-use-after-free", (("memcheck", "use-after-free"),),
        _mem_use_after_free,
    ),
    PlantedScenario(
        "mem-oob-memset", (("memcheck", "out-of-bounds"),), _mem_oob_memset
    ),
    PlantedScenario(
        "mem-double-free", (("memcheck", "double-free"),), _mem_double_free
    ),
    PlantedScenario(
        "mem-leak-at-teardown", (("memcheck", "leak"),),
        _mem_leak_at_teardown,
    ),
    PlantedScenario(
        "mem-negative-clean-lifecycle", (), _mem_negative_clean_lifecycle,
        negative=True,
    ),
    PlantedScenario(
        "init-d2h-unwritten", (("initcheck", "uninitialized-read"),),
        _init_d2h_unwritten,
    ),
    PlantedScenario(
        "init-d2d-unwritten-src", (("initcheck", "uninitialized-read"),),
        _init_d2d_unwritten_src,
    ),
    PlantedScenario(
        "init-partial-write-hole", (("initcheck", "uninitialized-read"),),
        _init_partial_write_hole,
    ),
)


def run_scenario(sc: PlantedScenario) -> dict:
    """Run one scenario; returns a result row for the gate report."""
    san = sc.run()
    found = {(h.checker, h.kind) for h in san.hazards}
    if sc.negative:
        detected = not san.hazards
        missing: list = []
    else:
        missing = [pair for pair in sc.expect if pair not in found]
        detected = not missing
    return {
        "name": sc.name,
        "negative": sc.negative,
        "detected": detected,
        "expected": [list(p) for p in sc.expect],
        "found": sorted([list(p) for p in found]),
        "missing": [list(p) for p in missing],
        "hazards": len(san.hazards),
    }
