"""``repro.sanitizer``: compute-sanitizer-style analysis for the CRAC model.

Two halves, mirroring NVIDIA's compute-sanitizer tool family:

- a **dynamic hazard detector** (:class:`Sanitizer`) — vector-clock
  happens-before tracking threaded through the stream/event/UVM/arena
  layers, with four checkers (``racecheck``, ``synccheck``, ``memcheck``,
  ``initcheck``) emitting structured :class:`HazardReport` records;
- a **static determinism lint** (:mod:`repro.sanitizer.lint`) — an AST
  pass over the package flagging nondeterminism outside named RNG
  streams, raw raises in CUDA call paths, and dict-iteration-order
  dependence in checkpoint capture paths.

Both are wired into ``repro sanitize`` (see :mod:`repro.cli`) and the CI
gate (:mod:`repro.sanitizer.gate`).
"""

from repro.sanitizer.core import CHECKERS, Sanitizer
from repro.sanitizer.hazards import HazardReport, SanitizerReport
from repro.sanitizer.lint import LintFinding, lint_package, lint_paths
from repro.sanitizer.vector_clock import VectorClock

__all__ = [
    "CHECKERS",
    "HazardReport",
    "LintFinding",
    "Sanitizer",
    "SanitizerReport",
    "VectorClock",
    "lint_package",
    "lint_paths",
]
