"""Static checkpoint-determinism lint (AST pass, no imports executed).

Three rules, each tied to a replay/checkpoint invariant of the model:

- ``nondeterminism`` — calls into the global ``random`` module, wall
  clocks (``time.time``/``perf_counter``/...), ``datetime.now`` family,
  or legacy ``numpy.random`` globals. Replay determinism (§3.2.4)
  requires every random draw to come from a *named* seeded stream
  (``random.Random(seed)`` / ``np.random.default_rng(seed)``), and
  virtual time forbids reading wall clocks anywhere in the model.
- ``raw-raise`` — ``raise ValueError/RuntimeError/IndexError`` in CUDA
  call paths (``repro/cuda/``, ``repro/gpu/``). Runtime failures must go
  through the ``cuda_error``/``cuda_check`` taxonomy so the fault
  domain can classify them (retryable/sticky/fatal/program).
- ``dict-iteration`` — iterating ``.items()``/``.values()``/``.keys()``
  without ``sorted(...)`` inside checkpoint *capture and restore*
  functions (``core/plugin.py``, ``dmtcp/``): image content must not
  depend on dict insertion order, or two identical runs produce
  different checksums — and the restore side must apply state in an
  order that cannot depend on how a dict happened to be built.

Aliased imports are resolved before matching (``from time import time
as now``, ``import numpy.random as npr``), so renaming a
nondeterministic source does not evade the rule.

Suppress a finding by appending ``# lint: allow`` to the line.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.analysis.bindings import ImportBindings

SUPPRESS_MARK = "lint: allow"

RAW_RAISE_TYPES = {"ValueError", "RuntimeError", "IndexError"}
#: path fragments (posix style) marking CUDA call-path modules
CUDA_PATH_PARTS = ("repro/cuda/", "repro/gpu/")

#: path fragments marking checkpoint capture/restore modules (the
#: speculative handle table snapshots/restores versions, so it is held
#: to the same deterministic-iteration rules)
CAPTURE_PATH_PARTS = ("repro/core/plugin.py", "repro/dmtcp/", "repro/spec/")
#: function names treated as capture *or restore* paths within those
#: modules — the read side is linted too: restore must not apply state
#: in dict-insertion order
CAPTURE_FN_RE = re.compile(
    r"precheckpoint|capture|snapshot|checksum|serialize|save|dump|commit"
    r"|restore|load|rehydrate|import_",
    re.IGNORECASE,
)

NONDET_TIME_FNS = {
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "clock_gettime", "process_time",
}
NONDET_DATETIME_FNS = {"now", "utcnow", "today"}
NONDET_RANDOM_FNS = {
    "random", "randint", "randrange", "uniform", "gauss", "normalvariate",
    "betavariate", "expovariate", "choice", "choices", "shuffle", "sample",
    "seed", "getrandbits", "triangular", "vonmisesvariate", "paretovariate",
}
NONDET_NP_RANDOM_FNS = {
    "rand", "randn", "randint", "random", "random_sample", "seed", "choice",
    "shuffle", "permutation", "normal", "uniform", "standard_normal",
}


@dataclass(frozen=True)
class LintFinding:
    """One static finding."""

    rule: str  # "nondeterminism" | "raw-raise" | "dict-iteration"
    path: str  # repo-relative posix path
    line: int
    message: str

    def describe(self) -> str:
        """``path:line: [rule] message`` (compiler-style) rendering."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _attr_chain(node: ast.AST) -> list[str]:
    """``a.b.c`` -> ["a", "b", "c"]; [] if not a plain name chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


class _Visitor(ast.NodeVisitor):
    def __init__(
        self,
        rel_path: str,
        lines: list[str],
        bindings: ImportBindings | None = None,
    ) -> None:
        self.rel_path = rel_path
        self.lines = lines
        self.bindings = bindings if bindings is not None else ImportBindings()
        self.findings: list[LintFinding] = []
        self._fn_stack: list[str] = []
        self.in_cuda_path = any(p in rel_path for p in CUDA_PATH_PARTS)
        self.in_capture_module = any(
            p in rel_path for p in CAPTURE_PATH_PARTS
        )

    # -- helpers -------------------------------------------------------------

    def _suppressed(self, node: ast.AST) -> bool:
        line = node.lineno - 1
        return (
            0 <= line < len(self.lines)
            and SUPPRESS_MARK in self.lines[line]
        )

    def _add(self, rule: str, node: ast.AST, message: str) -> None:
        if self._suppressed(node):
            return
        self.findings.append(
            LintFinding(rule, self.rel_path, node.lineno, message)
        )

    def _in_capture_fn(self) -> bool:
        return self.in_capture_module and any(
            CAPTURE_FN_RE.search(name) for name in self._fn_stack
        )

    # -- structure -----------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._fn_stack.append(node.name)
        self.generic_visit(node)
        self._fn_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    # -- rule: nondeterminism -------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        if chain:
            self._check_nondet_call(node, chain)
        self._check_dict_iteration_call(node)
        self.generic_visit(node)

    def _check_nondet_call(self, node: ast.Call, chain: list[str]) -> None:
        # Resolve import aliases first: `from time import time as now`
        # and `import numpy.random as npr` must match like the literal
        # dotted forms do.
        spelled = ".".join(chain)
        chain = self.bindings.resolve(chain)
        head, tail = chain[0], chain[-1]
        if head == "random" and len(chain) == 2 and tail in NONDET_RANDOM_FNS:
            self._add(
                "nondeterminism", node,
                f"global random.{tail}() (written {spelled!r}) — draw from "
                "a named seeded stream (random.Random(seed)) instead",
            )
        elif head == "time" and len(chain) == 2 and tail in NONDET_TIME_FNS:
            self._add(
                "nondeterminism", node,
                f"wall clock time.{tail}() (written {spelled!r}) — the "
                "model runs on virtual time only",
            )
        elif tail in NONDET_DATETIME_FNS and len(chain) >= 2 and chain[-2] in (
            "datetime", "date",
        ):
            self._add(
                "nondeterminism", node,
                f"wall clock {'.'.join(chain)}() — nondeterministic "
                "across runs",
            )
        elif (
            len(chain) == 3
            and head in ("np", "numpy")
            and chain[1] == "random"
            and tail in NONDET_NP_RANDOM_FNS
        ):
            self._add(
                "nondeterminism", node,
                f"legacy {'.'.join(chain)}() global (written {spelled!r}) "
                "— use np.random.default_rng(seed)",
            )

    # -- rule: raw-raise ------------------------------------------------------

    def visit_Raise(self, node: ast.Raise) -> None:
        if self.in_cuda_path and node.exc is not None:
            exc = node.exc
            name = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in RAW_RAISE_TYPES:
                self._add(
                    "raw-raise", node,
                    f"raise {name} in a CUDA call path — use the "
                    "cuda_error/cuda_check taxonomy so the fault domain "
                    "can classify it",
                )
        self.generic_visit(node)

    # -- rule: dict-iteration --------------------------------------------------

    def _is_dict_iter(self, it: ast.AST) -> str | None:
        if (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Attribute)
            and it.func.attr in ("items", "values", "keys")
        ):
            return it.func.attr
        return None

    def _check_dict_iteration_call(self, node: ast.Call) -> None:
        # Comprehensions arrive as Call->GeneratorExp etc.; handled in
        # visit_comprehension via the For-like generators below.
        pass

    def _check_iter_node(self, node: ast.AST, it: ast.AST) -> None:
        if not self._in_capture_fn():
            return
        attr = self._is_dict_iter(it)
        if attr is not None:
            self._add(
                "dict-iteration", node,
                f"iterating .{attr}() in a checkpoint capture path "
                "depends on dict insertion order — wrap in sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter_node(node, node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        for gen in node.generators:
            self._check_iter_node(node, gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp  # type: ignore[assignment]
    visit_SetComp = _visit_comp  # type: ignore[assignment]
    visit_DictComp = _visit_comp  # type: ignore[assignment]
    visit_GeneratorExp = _visit_comp  # type: ignore[assignment]


def lint_source(source: str, rel_path: str) -> list[LintFinding]:
    """Lint in-memory source (also the ``repro.analysis`` entry point,
    which runs the same rules over planted corpus trees)."""
    try:
        tree = ast.parse(source, filename=rel_path)
    except SyntaxError as exc:
        return [LintFinding("syntax", rel_path, exc.lineno or 0, str(exc.msg))]
    visitor = _Visitor(
        rel_path, source.splitlines(), ImportBindings.collect(tree)
    )
    visitor.visit(tree)
    return visitor.findings


def lint_file(path: str | Path, *, rel_to: Path | None = None) -> list[LintFinding]:
    """Lint one Python source file."""
    path = Path(path)
    rel = (
        path.relative_to(rel_to).as_posix()
        if rel_to is not None
        else path.as_posix()
    )
    return lint_source(path.read_text(), rel)


def lint_paths(
    paths: Iterable[str | Path], *, rel_to: Path | None = None
) -> list[LintFinding]:
    """Lint files and/or directories (recursing into ``*.py``)."""
    findings: list[LintFinding] = []
    for p in paths:
        p = Path(p)
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in files:
            findings.extend(lint_file(f, rel_to=rel_to))
    return sorted(findings, key=lambda f: (f.path, f.line))


def lint_package(root: str | Path | None = None) -> list[LintFinding]:
    """Lint ``src/repro/`` (including ``apps/``) — the CI gate's scope."""
    pkg = Path(root) if root is not None else Path(__file__).resolve().parents[1]
    return lint_paths([pkg], rel_to=pkg.parent)


def format_findings(findings: list[LintFinding]) -> str:
    """Multi-line human-readable lint report (CLI output)."""
    if not findings:
        return "lint: clean"
    lines = [f"lint: {len(findings)} finding(s)"]
    lines += ["  " + f.describe() for f in findings]
    return "\n".join(lines)
