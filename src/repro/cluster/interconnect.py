"""Bandwidth/latency-modeled inter-node links with seeded fault injection.

The interconnect is the only path checkpoint generations take between
nodes, so its model mirrors the repo's LogP-style MPI costs: a transfer
of ``n`` bytes over a link completes at
``start + latency + n / bandwidth`` (virtual nanoseconds), and each
ordered node pair is a half-duplex link that serializes its transfers
(``start = max(now, link_busy_until)``).

Link faults come from a *named* seeded RNG stream (never the global
``random`` module) or from an explicit per-transfer ``fault_plan``:
``"corrupt"`` flips bytes in flight — caught by the destination store's
arrival CRC re-verification — and ``"drop"`` loses the transfer
entirely. Both are retryable; the shipping layer owns the retry budget.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field

from repro.gpu.timing import NS_PER_S

#: Datacenter-ish defaults: 100 GbE-class bandwidth, microseconds of
#: switch latency — slow enough that shipping a full image visibly
#: dominates a naive migration's blackout.
DEFAULT_BANDWIDTH = 10.0e9  # bytes/s
DEFAULT_LATENCY_NS = 5_000.0


@dataclass(frozen=True)
class LinkSpec:
    """Static link parameters shared by every node pair."""

    bandwidth: float = DEFAULT_BANDWIDTH  # bytes/s
    latency_ns: float = DEFAULT_LATENCY_NS


@dataclass
class TransferRecord:
    """One completed (or failed) transfer on the fabric."""

    src: str
    dst: str
    nbytes: int
    start_ns: float
    end_ns: float
    #: "ok" | "corrupt" (bytes flipped in flight) | "drop" (lost)
    outcome: str = "ok"

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns


@dataclass
class Interconnect:
    """The cluster's network fabric (virtual-time transfer model).

    ``fault_prob`` draws per-transfer faults from the named RNG stream;
    ``fault_plan`` maps a global transfer index to a forced outcome
    (``"corrupt"``/``"drop"``/``"ok"``) so tests can land a fault on an
    exact transfer deterministically — the plan wins over the draw.
    """

    spec: LinkSpec = field(default_factory=LinkSpec)
    seed: int = 0
    fault_prob: float = 0.0
    fault_plan: dict[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Named RNG stream: link-fault draws must never perturb the
        # checkpoint scheduler's or the injector's randomness (same
        # derivation as harness.fault_injection.derive_seed, inlined —
        # cluster must not import harness at module level).
        self._rng = random.Random(
            (self.seed & 0xFFFFFFFF) ^ zlib.crc32(b"interconnect")
        )
        #: per ordered node pair: virtual time the link frees up
        self._link_busy: dict[tuple[str, str], float] = {}
        self.transfers: list[TransferRecord] = []

    def transfer_ns(self, nbytes: int) -> float:
        """Unloaded transfer duration for ``nbytes`` (latency + wire)."""
        return self.spec.latency_ns + nbytes / self.spec.bandwidth * NS_PER_S

    def send(self, src: str, dst: str, nbytes: int, now_ns: float) -> TransferRecord:
        """Put ``nbytes`` on the ``src → dst`` link at ``now_ns``.

        Returns the transfer's record; the caller decides which clock
        (the sending process, or a background shipping timeline) absorbs
        ``end_ns``. A ``"drop"`` outcome still occupies the link for the
        full duration — the loss is discovered at the far end.
        """
        key = (src, dst)
        start = max(now_ns, self._link_busy.get(key, 0.0))
        end = start + self.transfer_ns(nbytes)
        self._link_busy[key] = end
        idx = len(self.transfers)
        outcome = self.fault_plan.get(idx)
        if outcome is None:
            outcome = "ok"
            if self.fault_prob > 0.0 and self._rng.random() < self.fault_prob:
                outcome = self._rng.choice(("corrupt", "drop"))
        record = TransferRecord(src, dst, nbytes, start, end, outcome)
        self.transfers.append(record)
        return record

    @property
    def shipped_bytes(self) -> int:
        """Total bytes put on the wire (all outcomes, diagnostics)."""
        return sum(t.nbytes for t in self.transfers)

    def faults(self) -> list[TransferRecord]:
        """Transfers that corrupted or dropped (diagnostics)."""
        return [t for t in self.transfers if t.outcome != "ok"]
