"""Live migration: drain → pre-copy → ship → resume across nodes.

Two migration strategies over the same shipping substrate:

- :func:`naive_migrate` — stop-ship-restore: full checkpoint, then the
  app stays down while the whole image crosses the interconnect and the
  target restores. Blackout = checkpoint + full ship + restore.
- :class:`LiveMigration` — the pre-copy state machine. ``begin()`` takes
  a full checkpoint and ships it *in the background* (the app keeps
  running; only the shipping timeline absorbs the wire time). Each
  ``precopy_round()`` cuts an incremental checkpoint of the spans
  dirtied since the last round and ships the delta, converging the
  target's copy while the app still runs. ``cutover()`` takes the final
  (small) delta cut, ships it with the app stopped, restores on the
  target (``restart_latest`` with ``allow_heterogeneous=True`` — the
  replay-based restore is what makes cross-GPU-model targets legal), and
  re-homes the session. Blackout = final cut + delta ship + restore,
  which is what beats naive whenever the app's dirty rate is below link
  bandwidth.

Shipping is per generation: the source store exports a portable record
(parent-stripped pickle + payload CRC + per-region CRCs), the
interconnect may corrupt or drop it, and the destination store
re-verifies everything on arrival — a corrupt transfer raises
:class:`~repro.errors.CorruptCheckpointError` inside the bounded retry
loop instead of becoming a restorable-looking generation. Every
generation in flight is pinned on the source so keep-N GC cannot evict
it before the destination acknowledges the import.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.interconnect import Interconnect
from repro.cluster.node import ClusterNode
from repro.core.session import CracSession, RestartReport
from repro.dmtcp.image import CheckpointImage
from repro.dmtcp.store import CheckpointStore
from repro.errors import CorruptCheckpointError, MigrationError, NodeDeathError


def _ship_record(
    interconnect: Interconnect,
    src_name: str,
    dst_store: CheckpointStore,
    dst_name: str,
    record: dict,
    *,
    parent: CheckpointImage | None,
    now_ns: float,
    retries: int,
) -> tuple[int, float, int]:
    """Ship one exported generation record with bounded retries.

    A ``"drop"`` outcome is discovered at the far end (the transfer
    still occupied the link); a ``"corrupt"`` outcome flips a payload
    byte, which the destination's arrival CRC catches. Both trigger a
    resend. Returns ``(dst_generation, end_ns, retries_used)``; raises
    :class:`MigrationError` when the budget is exhausted.
    """
    t = now_ns
    used = 0
    for _attempt in range(retries + 1):
        rec = interconnect.send(src_name, dst_name, record["size_bytes"], t)
        t = rec.end_ns
        if rec.outcome == "drop":
            used += 1
            continue
        payload = record["payload"]
        if rec.outcome == "corrupt":
            flipped = bytearray(payload)
            flipped[len(flipped) // 2] ^= 0xFF
            payload = bytes(flipped)
        try:
            gen = dst_store.import_generation(
                {**record, "payload": payload}, parent=parent
            )
        except CorruptCheckpointError:
            used += 1
            continue
        return gen, t, used
    raise MigrationError(
        f"shipping generation {record['generation']} {src_name} → "
        f"{dst_name} failed {retries + 1} times (persistent link faults)"
    )


def ship_chain(
    src: ClusterNode,
    dst: ClusterNode,
    interconnect: Interconnect,
    *,
    generation: int | None = None,
    now_ns: float = 0.0,
    retries: int = 3,
) -> dict:
    """Replicate a generation's whole chain ``src → dst``, base first.

    Every chain member is pinned on the source for the duration (keep-N
    GC on a node taking new checkpoints cannot race the shipment) and
    released once the destination has imported everything — or when the
    shipment aborts, since no acknowledgement will ever come. Returns
    ``{"generations", "end_ns", "shipped_bytes", "retries", "records"}``
    with the *destination* generation ids, newest last.
    """
    gen = generation if generation is not None else src.store.latest()
    if gen is None:
        raise MigrationError(f"node {src.name!r} has no generation to ship")
    records = src.store.export_chain(gen)
    with src.store.pin_guard(r["generation"] for r in records):
        by_src: dict[int, CheckpointImage] = {}
        imported: list[int] = []
        t = now_ns
        total_retries = 0
        shipped = 0
        for record in records:
            parent_src = record["parent_generation"]
            parent = by_src.get(parent_src) if parent_src is not None else None
            g, t, used = _ship_record(
                interconnect, src.name, dst.store, dst.name, record,
                parent=parent, now_ns=t, retries=retries,
            )
            imported.append(g)
            by_src[record["generation"]] = dst.store.get(g).image
            total_retries += used
            shipped += record["size_bytes"]
    return {
        "generations": imported,
        "end_ns": t,
        "shipped_bytes": shipped,
        "retries": total_retries,
        "records": len(records),
    }


@dataclass
class MigrationReport:
    """What one migration did and what it cost (virtual time)."""

    mode: str  # "live" | "naive"
    job: str
    src: str
    dst: str
    #: app-visible downtime: final cut → resumed on the target
    blackout_ns: float
    precopy_rounds: int
    #: bytes of the base (full) image shipped
    full_bytes: int
    #: bytes of incremental deltas shipped (pre-copy + final cut)
    delta_bytes: int
    #: link-fault resends absorbed by the retry loop
    retries: int
    #: destination-store generation the resume came from
    generation: int | None
    restart: RestartReport | None = None


class LiveMigration:
    """The drain → pre-copy → ship → resume state machine (module doc).

    Phases: ``idle`` → (``begin``) → ``precopy`` → (``cutover``) →
    ``done``; driving it out of order raises :class:`MigrationError`.
    The caller interleaves ``precopy_round()`` with app work (e.g. from
    a checkpoint callback) so each round ships a fresh dirty delta.
    """

    def __init__(
        self,
        session: CracSession,
        src: ClusterNode,
        dst: ClusterNode,
        *,
        interconnect: Interconnect,
        job: str = "job",
        retries: int = 3,
    ) -> None:
        if not dst.alive:
            raise NodeDeathError(dst.name, f"cannot migrate onto dead node {dst.name!r}")
        self.session = session
        self.src = src
        self.dst = dst
        self.interconnect = interconnect
        self.job = job
        self.retries = retries
        self.phase = "idle"
        #: background shipping timeline (overlaps app execution)
        self._ship_clock = 0.0
        self._by_src: dict[int, CheckpointImage] = {}
        self._pinned: list[int] = []
        self._last_image: CheckpointImage | None = None
        self._rounds = 0
        self._full_bytes = 0
        self._delta_bytes = 0
        self._retries_used = 0

    def _checkpoint(self, *, incremental: bool) -> int:
        image = self.session.checkpoint(
            store=self.src.store,
            incremental=incremental,
            parent=self._last_image if incremental else None,
        )
        gen = self.src.store.latest()
        self.src.store.pin(gen)  # in flight until the cutover ack
        self._pinned.append(gen)
        self._last_image = image
        return gen

    def _ship(self, src_gen: int) -> tuple[int, float]:
        """Ship one source generation; returns (bytes, wire end_ns)."""
        record = self.src.store.export_generation(src_gen)
        parent_src = record["parent_generation"]
        parent = self._by_src.get(parent_src) if parent_src is not None else None
        now = max(self._ship_clock, self.session.process.clock_ns)
        dst_gen, end, used = _ship_record(
            self.interconnect, self.src.name, self.dst.store, self.dst.name,
            record, parent=parent, now_ns=now, retries=self.retries,
        )
        self._ship_clock = end
        self._by_src[src_gen] = self.dst.store.get(dst_gen).image
        self._retries_used += used
        return record["size_bytes"], end

    def _release_pins(self) -> None:
        """Release every in-flight pin this migration still holds.

        Runs on success (the destination's imports are the
        acknowledgement) and on every failure path (no acknowledgement
        will ever come) — a migration that dies mid-ship must never
        leave pinned generations behind to wedge the source's keep-N GC.
        """
        while self._pinned:
            self.src.store.unpin(self._pinned.pop())

    def abort(self) -> None:
        """Abandon the migration: release pins, mark the machine failed.

        Idempotent; the failure paths of :meth:`begin`,
        :meth:`precopy_round`, and :meth:`cutover` call this before
        re-raising, and a caller that stops driving a live migration
        early (e.g. the destination node died between rounds) should
        call it too.
        """
        self._release_pins()
        self.phase = "failed"

    def begin(self) -> int:
        """Drain + full checkpoint; ship it in the background.

        The app resumes as soon as the checkpoint is cut — the base
        image crosses the wire on the shipping timeline while execution
        continues. Returns the source generation id. A failed ship
        (persistent link faults) aborts the migration: pins are
        released and the error propagates.
        """
        if self.phase != "idle":
            raise MigrationError(f"begin() in phase {self.phase!r}")
        try:
            gen = self._checkpoint(incremental=False)
            self._full_bytes, _ = self._ship(gen)
        except Exception:
            self.abort()
            raise
        self.phase = "precopy"
        return gen

    def precopy_round(self) -> int:
        """Cut + background-ship one incremental delta; returns its bytes."""
        if self.phase != "precopy":
            raise MigrationError(f"precopy_round() in phase {self.phase!r}")
        try:
            gen = self._checkpoint(incremental=True)
            nbytes, _ = self._ship(gen)
        except Exception:
            self.abort()
            raise
        self._delta_bytes += nbytes
        self._rounds += 1
        return nbytes

    def cutover(self) -> MigrationReport:
        """Final delta cut, synchronous ship, restore on the target.

        The only phase the app is down for: everything before converged
        the target's copy in the background. The session is re-homed to
        the destination node and every in-flight pin is released (the
        destination's imports are the acknowledgement).
        """
        if self.phase != "precopy":
            raise MigrationError(f"cutover() in phase {self.phase!r}")
        t_cut = self.session.process.clock_ns
        try:
            gen = self._checkpoint(incremental=True)
            nbytes, end = self._ship(gen)
            self._delta_bytes += nbytes
            if end > self.session.process.clock_ns:
                # The final delta's wire time is inside the blackout.
                self.session.process.advance_to(end)
            self.session.kill()
            self.session.gpu = self.dst.gpu
            restart = self.session.restart_latest(
                self.dst.store, allow_heterogeneous=True
            )
        except Exception:
            self.abort()
            raise
        blackout = self.session.process.clock_ns - t_cut
        if self.job in self.src.sessions:
            self.src.release(self.job)
        self.dst.adopt(self.job, self.session)
        self._release_pins()
        self.phase = "done"
        return MigrationReport(
            mode="live", job=self.job, src=self.src.name, dst=self.dst.name,
            blackout_ns=blackout, precopy_rounds=self._rounds,
            full_bytes=self._full_bytes, delta_bytes=self._delta_bytes,
            retries=self._retries_used, generation=restart.generation,
            restart=restart,
        )


def naive_migrate(
    session: CracSession,
    src: ClusterNode,
    dst: ClusterNode,
    *,
    interconnect: Interconnect,
    job: str = "job",
    retries: int = 3,
) -> MigrationReport:
    """Stop-ship-restore: the whole image crosses inside the blackout.

    The baseline :class:`LiveMigration` is measured against — same
    checkpoint pipeline, same shipping substrate, but the app is down
    from the checkpoint cut until the target resumes.
    """
    if not dst.alive:
        raise NodeDeathError(dst.name, f"cannot migrate onto dead node {dst.name!r}")
    proc = session.process
    t0 = proc.clock_ns
    session.checkpoint(store=src.store)
    result = ship_chain(
        src, dst, interconnect,
        generation=src.store.latest(), now_ns=proc.clock_ns, retries=retries,
    )
    if result["end_ns"] > proc.clock_ns:
        proc.advance_to(result["end_ns"])  # app is down while shipping
    session.kill()
    session.gpu = dst.gpu
    restart = session.restart_latest(dst.store, allow_heterogeneous=True)
    blackout = session.process.clock_ns - t0
    if job in src.sessions:
        src.release(job)
    dst.adopt(job, session)
    return MigrationReport(
        mode="naive", job=job, src=src.name, dst=dst.name,
        blackout_ns=blackout, precopy_rounds=0,
        full_bytes=result["shipped_bytes"], delta_bytes=0,
        retries=result["retries"], generation=restart.generation,
        restart=restart,
    )
