"""Elastic restore: an N-rank MPI job resumed on M ranks.

CRAC's restore is replay-based, which frees the restored world from the
original rank count for *data-parallel* state: each old rank's image is
restored into a scratch session (its malloc log replayed, its device
buffers refilled — the per-rank stream-log replay of a normal restart),
the job's scattered regions are read back out of the restored address
spaces using the partition manifest captured with the checkpoint, the
global byte strings are reassembled, and a fresh M-rank world receives
them repartitioned into M near-equal contiguous chunks. Every region is
digest-checked byte-for-byte against the reassembled original —
:func:`repartition` is pure concatenate-and-split, so N → M preserves
content exactly for any N, M ≥ 1 (the property the hypothesis suite
drives).
"""

from __future__ import annotations

import zlib

from repro.core.session import CracSession
from repro.dmtcp.image import CheckpointImage
from repro.errors import ClusterError
from repro.mpi.world import MpiWorld, split_bytes


def repartition(parts: list[bytes], m: int) -> list[bytes]:
    """Repartition N contiguous chunks into M near-equal ones.

    Pure and lossless: ``b"".join(repartition(parts, m)) ==
    b"".join(parts)`` for any m ≥ 1 — the invariant elastic restore's
    byte-for-byte guarantee reduces to.
    """
    return split_bytes(b"".join(parts), m)


def elastic_restore(
    images: list[CheckpointImage],
    manifest: dict[str, list[dict]],
    m: int,
    *,
    gpu: str = "V100",
    seed: int = 0,
) -> tuple[MpiWorld, dict]:
    """Restore an N-rank job's scattered regions onto a fresh M-rank world.

    ``images`` is one checkpoint image per old rank (a consistent cut,
    e.g. from ``MpiWorld.checkpoint_all``); ``manifest`` is the
    partition manifest captured alongside it
    (``MpiWorld.partition_manifest``). Returns the new world plus a
    report with per-region digests; ``report["ok"]`` is True only if
    every region survived byte-for-byte.
    """
    if m < 1:
        raise ClusterError("elastic restore needs at least one new rank")
    if not images:
        raise ClusterError("elastic restore needs at least one rank image")
    # 1. Replay every old rank's image into a scratch session and read
    #    its region chunks back out of the restored device buffers.
    chunks: dict[str, dict[int, bytes]] = {name: {} for name in manifest}
    replayed_calls = 0
    for rank, image in enumerate(images):
        scratch = CracSession(gpu=gpu, seed=seed)
        try:
            report = scratch.restart(image, allow_heterogeneous=True)
            replayed_calls += report.replayed_calls
            for name in sorted(manifest):
                entry = manifest[name][rank]
                if entry["rank"] != rank:
                    raise ClusterError(
                        f"manifest for region {name!r} is not rank-ordered"
                    )
                if entry["nbytes"] == 0:
                    chunks[name][rank] = b""
                    continue
                buf = scratch.runtime.buffers.get(entry["addr"])
                if buf is None:
                    raise ClusterError(
                        f"rank {rank} replay did not recreate region "
                        f"{name!r} at {entry['addr']:#x}"
                    )
                chunks[name][rank] = buf.contents.read_bytes(
                    0, entry["nbytes"]
                )
        finally:
            scratch.kill()
    # 2. Reassemble each global region (rank order == offset order) and
    #    scatter it across the new world's ranks.
    world = MpiWorld(m, gpu=gpu, seed=seed)
    regions: dict[str, dict] = {}
    for name in sorted(manifest):
        global_bytes = b"".join(
            chunks[name][r] for r in range(len(images))
        )
        world.scatter_region(name, global_bytes)
        gathered = world.gather_region(name)
        regions[name] = {
            "nbytes": len(global_bytes),
            "crc": zlib.crc32(global_bytes),
            "digest_equal": gathered == global_bytes,
        }
    return world, {
        "old_ranks": len(images),
        "new_ranks": m,
        "replayed_calls": replayed_calls,
        "regions": regions,
        "ok": all(r["digest_equal"] for r in regions.values()),
    }
