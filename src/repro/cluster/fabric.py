"""The cluster fabric: node liveness, replication, rung-4 failover.

The :class:`Cluster` ties the pieces together: nodes heartbeat into the
same :class:`~repro.dmtcp.coordinator.HeartbeatMonitor` the coordinated
checkpoint protocol uses (missed-beat counting, ``max_missed`` rounds),
checkpoint generations replicate between node stores over the
interconnect (:func:`~repro.cluster.migration.ship_chain` — pinned in
flight, CRC re-verified on arrival), and
:meth:`Cluster.make_failover_handler` builds the fourth rung of the
fault-domain escalation ladder: when a node dies with local recovery off
the table, the session restores the latest generation *shipped* to a
surviving node, the heartbeat monitor is rebaselined so stale misses
from the dead node's timeline cannot spuriously kill the migrated
session, and the domain's store is re-pointed at its new home.
"""

from __future__ import annotations

from repro.cluster.interconnect import Interconnect
from repro.cluster.migration import ship_chain
from repro.cluster.node import ClusterNode
from repro.core.session import CracSession
from repro.dmtcp.coordinator import HeartbeatMonitor
from repro.errors import ClusterError, NodeDeathError


class Cluster:
    """A set of nodes + interconnect + node-liveness monitoring."""

    def __init__(
        self,
        nodes: list[ClusterNode],
        *,
        interconnect: Interconnect | None = None,
        seed: int = 0,
        heartbeat_interval_s: float = 0.5,
        max_missed: int = 3,
    ) -> None:
        if not nodes:
            raise ClusterError("a cluster needs at least one node")
        names = [n.name for n in nodes]
        if len(set(names)) != len(names):
            raise ClusterError(f"duplicate node names: {names}")
        self.nodes: dict[str, ClusterNode] = {n.name: n for n in nodes}
        self.node_order = names
        self.interconnect = interconnect or Interconnect(seed=seed)
        self.seed = seed
        #: node liveness reuses the coordinated-checkpoint monitor —
        #: index i tracks ``node_order[i]``
        self.monitor = HeartbeatMonitor(
            len(nodes), interval_s=heartbeat_interval_s, max_missed=max_missed
        )

    def node(self, name: str) -> ClusterNode:
        """Fetch a node by name."""
        n = self.nodes.get(name)
        if n is None:
            raise ClusterError(f"no node {name!r} (have {self.node_order})")
        return n

    # -- replication -----------------------------------------------------------

    def replicate(
        self,
        src: str,
        dst: str,
        *,
        generation: int | None = None,
        now_ns: float = 0.0,
        retries: int = 3,
    ) -> dict:
        """Ship a generation's chain ``src → dst`` (latest by default).

        The off-node copy is what rung-4 failover restores from; a node
        whose generations were never replicated loses them when it dies.
        Returns :func:`~repro.cluster.migration.ship_chain`'s result.
        """
        if not self.node(dst).alive:
            raise NodeDeathError(dst, f"cannot replicate onto dead node {dst!r}")
        return ship_chain(
            self.node(src), self.node(dst), self.interconnect,
            generation=generation, now_ns=now_ns, retries=retries,
        )

    # -- liveness --------------------------------------------------------------

    def kill_node(self, name: str) -> None:
        """The node stops heartbeating (dying-node model, node module doc)."""
        self.node(name).fail()

    def heartbeat_rounds(self) -> list[str]:
        """Poll node liveness until verdicts settle; returns dead names.

        Mirrors the coordinated checkpoint's heartbeat exchange: up to
        ``max_missed`` rounds, each charging the poll interval to every
        surviving node's live sessions (detection latency is real time
        the cluster spends before declaring death), ending early on a
        fully healthy round.
        """
        for _rnd in range(self.monitor.max_missed):
            any_missing = False
            for i, name in enumerate(self.node_order):
                alive = self.nodes[name].alive
                self.monitor.beat(i, arrived=alive)
                any_missing = any_missing or not alive
            for name in self.node_order:
                node = self.nodes[name]
                if not node.alive:
                    continue
                for job in sorted(node.sessions):
                    session = node.sessions[job]
                    if session.process.alive:
                        session.process.advance(self.monitor.interval_ns)
            if not any_missing:
                break
        return [self.node_order[r] for r in self.monitor.dead_ranks()]

    def dead_nodes(self) -> list[str]:
        """Node names the monitor has declared dead so far."""
        return [self.node_order[r] for r in self.monitor.dead_ranks()]

    # -- rung 4: node failover -------------------------------------------------

    def make_failover_handler(
        self, session: CracSession, job: str, src: str, dst: str
    ):
        """Build the ladder's rung-4 handler for ``session``.

        Install on a :class:`~repro.core.session.FaultDomain` as
        ``domain.failover_handler``. When the ladder reaches rung 4 the
        handler kills what is left of the session on the dying source
        node, restores the latest generation previously *shipped* to the
        surviving destination (``restart_latest`` on the destination
        store, heterogeneous-tolerant), re-homes the session, rebaselines
        the heartbeat monitor (pre-failover misses must not survive the
        move), and re-points the domain's store at the new node so later
        restore rungs use the new home. Returns the outcome dict the
        ladder's lost-work accounting expects (``cut_ns`` is the restored
        cut's snapshot time — monotone virtual time, so
        ``fault − cut`` is exactly the work to redo).
        """

        def handler(exc: Exception) -> dict:
            dst_node = self.node(dst)
            src_node = self.node(src)
            if not dst_node.alive:
                raise NodeDeathError(
                    dst, f"failover target {dst!r} is dead too: {exc!r}"
                )
            if dst_node.store.latest() is None:
                raise ClusterError(
                    f"no generation was ever shipped to {dst!r} — "
                    "nothing to fail over to"
                )
            if session.process.alive:
                session.kill()
            session.gpu = dst_node.gpu
            report = session.restart_latest(
                dst_node.store, allow_heterogeneous=True
            )
            if job in src_node.sessions:
                src_node.release(job)
            if job not in dst_node.sessions:
                dst_node.adopt(job, session)
            self.monitor.rebaseline()
            domain = session.fault_domain
            if domain is not None:
                domain.store = dst_node.store
            cut = dst_node.store.get(report.generation).image.created_at_ns
            return {
                "node": dst_node.name,
                "generation": report.generation,
                "cut_ns": cut,
            }

        return handler

    def describe(self) -> str:
        """One-line human-readable summary."""
        up = sum(1 for n in self.nodes.values() if n.alive)
        return (
            f"<Cluster {len(self.nodes)} nodes ({up} up), "
            f"{len(self.interconnect.transfers)} transfers>"
        )
