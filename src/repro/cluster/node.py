"""One simulated cluster node: GPU slots, a local store, live sessions.

A node is a failure domain: its :class:`~repro.dmtcp.store.\
CheckpointStore` models node-local disk (generations on it die with the
node unless shipped elsewhere first), its ``gpu`` spec names the device
model every session launched here runs on, and ``slots`` bounds how many
sessions the node hosts at once.

Node death comes in one flavor here — the *dying node* model: ``fail()``
stops the node heartbeating (the fabric's monitor will declare it dead)
while its memory stays momentarily readable, which is what lets the
fault-domain ladder snapshot pre-fault buffer contents for deterministic
redo before the failover restore (exactly the window a real
migration-on-failure exploits).
"""

from __future__ import annotations

import zlib

from repro.core.session import CracSession
from repro.dmtcp.store import CheckpointStore
from repro.errors import ClusterError, NodeDeathError


class ClusterNode:
    """A named node hosting virtual GPUs, a checkpoint store, sessions."""

    def __init__(
        self,
        name: str,
        *,
        gpu: str = "V100",
        slots: int = 2,
        seed: int = 0,
        keep_generations: int = 3,
    ) -> None:
        if slots < 1:
            raise ClusterError(f"node {name!r} needs at least one GPU slot")
        self.name = name
        self.gpu = gpu
        self.slots = slots
        self.seed = seed
        #: node-local disk: dies with the node unless shipped elsewhere
        self.store = CheckpointStore(keep_generations=keep_generations)
        #: live sessions by job name
        self.sessions: dict[str, CracSession] = {}
        self.alive = True

    def _require_capacity(self, job: str) -> None:
        if not self.alive:
            raise NodeDeathError(self.name)
        if job in self.sessions:
            raise ClusterError(f"job {job!r} already runs on node {self.name!r}")
        if len(self.sessions) >= self.slots:
            raise ClusterError(
                f"node {self.name!r} is full ({self.slots} slots): "
                f"{sorted(self.sessions)}"
            )

    def launch(self, job: str, **session_kwargs) -> CracSession:
        """Create a fresh CRAC session for ``job`` on this node's GPU.

        The session seed derives from the node seed and the job name
        (same named-stream derivation as the rest of the repo) so two
        jobs on one node never share an RNG stream.
        """
        self._require_capacity(job)
        session_kwargs.setdefault(
            "seed", (self.seed & 0xFFFFFFFF) ^ zlib.crc32(job.encode())
        )
        session = CracSession(gpu=self.gpu, **session_kwargs)
        self.sessions[job] = session
        return session

    def adopt(self, job: str, session: CracSession) -> None:
        """Register an externally created session (e.g. one that just
        migrated in). The session's ``gpu`` must already be this node's —
        the migration/failover path re-points it before the restore."""
        self._require_capacity(job)
        if session.gpu != self.gpu:
            raise ClusterError(
                f"session runs {session.gpu}, node {self.name!r} hosts "
                f"{self.gpu} — restore it onto this node's spec first"
            )
        self.sessions[job] = session

    def release(self, job: str) -> CracSession:
        """Remove ``job`` from this node (the migration-out path)."""
        session = self.sessions.pop(job, None)
        if session is None:
            raise ClusterError(f"no job {job!r} on node {self.name!r}")
        return session

    def fail(self) -> None:
        """The node stops heartbeating (dying-node model, module doc).

        Sessions are not killed here: their memory stays readable for
        the ladder's pre-fault snapshot, and the failover handler owns
        the actual kill-and-restore. The node never comes back.
        """
        self.alive = False

    def describe(self) -> str:
        """One-line human-readable summary."""
        state = "up" if self.alive else "DEAD"
        return (
            f"<ClusterNode {self.name} [{state}] {self.gpu} "
            f"{len(self.sessions)}/{self.slots} slots, "
            f"{len(self.store.generations)} generations>"
        )
