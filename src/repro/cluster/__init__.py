"""Simulated multi-node cluster fault domain (PR 6).

A cluster is a set of :class:`~repro.cluster.node.ClusterNode`\\ s — each
hosting virtual GPUs, its own crash-consistent
:class:`~repro.dmtcp.store.CheckpointStore`, and live CRAC sessions —
connected by a bandwidth/latency-modeled
:class:`~repro.cluster.interconnect.Interconnect` with seeded link-fault
injection. On top of the existing single-node checkpoint pipeline it
provides:

- **live migration** (:mod:`~repro.cluster.migration`): drain a node
  under ongoing traffic — quiesce via the checkpoint pipeline,
  incrementally pre-copy dirty spans while the app keeps running, take
  a final delta cut, ship it, and resume on the target with a measured
  blackout well below naive stop-ship-restore;
- **heterogeneous restore**: an image captured on a V100-class node
  restored onto a K600-class node via the replay-based restore path
  (``allow_heterogeneous``), digest-equal;
- **elastic restore** (:mod:`~repro.cluster.elastic`): an N-rank
  :class:`~repro.mpi.world.MpiWorld` job restored onto M ranks by
  repartitioning its scattered regions and replaying per-rank logs;
- **node failover** (:mod:`~repro.cluster.fabric`): the fault-domain
  ladder's fourth rung — heartbeat loss declares a node dead and the
  session restores the latest *shipped* generation on a survivor.
"""

from repro.cluster.elastic import elastic_restore, repartition
from repro.cluster.fabric import Cluster
from repro.cluster.interconnect import Interconnect, LinkSpec, TransferRecord
from repro.cluster.migration import (
    LiveMigration,
    MigrationReport,
    naive_migrate,
    ship_chain,
)
from repro.cluster.node import ClusterNode

__all__ = [
    "Cluster",
    "ClusterNode",
    "Interconnect",
    "LinkSpec",
    "LiveMigration",
    "MigrationReport",
    "TransferRecord",
    "elastic_restore",
    "naive_migrate",
    "repartition",
    "ship_chain",
]
