"""Admission control: a bounded queue that sheds load *typed*.

The serving tier refuses work it cannot finish instead of letting every
admitted session's latency collapse. Two shedding conditions, each with
its own typed error so clients (and the CLI exit path) can tell them
apart:

- **queue full** — the request never enters the system;
  :class:`~repro.errors.AdmissionRejectedError` (severity *retryable*:
  back off and re-offer);
- **deadline miss** — the estimated queue wait already exceeds the
  request's deadline, so serving it would waste capacity on an answer
  nobody is waiting for;
  :class:`~repro.errors.ServeDeadlineExceededError` (severity
  *program*: deterministic, no recovery rung can un-miss it).

The wait estimate is the classic M/M/c-shaped bound ``(depth // servers)
× service_estimate`` — deterministic (no sampling), so a campaign's shed
counts are bit-reproducible.
"""

from __future__ import annotations

from repro.errors import AdmissionRejectedError, ServeDeadlineExceededError


class AdmissionController:
    """Bounded admission queue with per-request deadline estimates.

    ``offer`` either admits (returning the estimated queue wait in
    virtual nanoseconds, which the scheduler charges to the session's
    clock) or raises one of the two typed shedding errors. ``release``
    frees the admitted slot once the request finishes.
    """

    def __init__(
        self,
        *,
        max_queue: int = 64,
        deadline_ns: float = 5e6,
        service_estimate_ns: float = 500_000.0,
        servers: int = 1,
    ) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if servers < 1:
            raise ValueError("servers must be >= 1")
        self.max_queue = max_queue
        self.deadline_ns = deadline_ns
        self.service_estimate_ns = service_estimate_ns
        self.servers = servers
        self._inflight: set[str] = set()
        self.offered = 0
        self.admitted = 0
        self.rejected = 0
        self.deadline_missed = 0

    @property
    def depth(self) -> int:
        """Requests admitted but not yet released."""
        return len(self._inflight)

    def estimate_wait_ns(self) -> float:
        """Queue wait a request admitted *now* would see."""
        return (self.depth // self.servers) * self.service_estimate_ns

    def offer(
        self, sid: str, *, deadline_ns: float | None = None
    ) -> float:
        """Try to admit one request for session ``sid``.

        Returns the estimated wait (virtual ns) on admission; raises
        :class:`~repro.errors.AdmissionRejectedError` when the queue is
        full and :class:`~repro.errors.ServeDeadlineExceededError` when
        the wait estimate already blows the deadline.
        """
        self.offered += 1
        if sid in self._inflight:
            raise AdmissionRejectedError(
                f"session {sid!r} already has a request in flight"
            )
        if self.depth >= self.max_queue:
            self.rejected += 1
            raise AdmissionRejectedError(
                f"admission queue full ({self.depth}/{self.max_queue}); "
                "shedding load"
            )
        limit = self.deadline_ns if deadline_ns is None else deadline_ns
        wait_ns = self.estimate_wait_ns()
        if wait_ns > limit:
            self.deadline_missed += 1
            raise ServeDeadlineExceededError(sid, wait_ns, limit)
        self._inflight.add(sid)
        self.admitted += 1
        return wait_ns

    def release(self, sid: str) -> None:
        """Free ``sid``'s admitted slot (idempotent)."""
        self._inflight.discard(sid)

    def snapshot(self) -> dict:
        """JSON-safe counter summary."""
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "deadline_missed": self.deadline_missed,
            "depth": self.depth,
            "max_queue": self.max_queue,
        }

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"<AdmissionController {self.depth}/{self.max_queue} in flight, "
            f"{self.admitted}/{self.offered} admitted, "
            f"{self.rejected} rejected, {self.deadline_missed} past deadline>"
        )
