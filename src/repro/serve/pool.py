"""The serving pool: GPU nodes, per-session stores, shadow replication.

A :class:`ServeNode` is a failure domain exactly like
:class:`~repro.cluster.node.ClusterNode` (same dying-node model: a dead
node stops heartbeating while its memory stays momentarily readable),
but serving needs *per-session* checkpoint stores — ``restart_latest``
walks a store newest-generation-first, so two sessions sharing one store
would restore each other's cuts. Each node therefore hosts:

- ``hot`` — sids currently occupying one of its GPU slots;
- ``shadows`` — per-session replica stores for sessions whose *primary*
  store lives elsewhere; the failover target when that home dies.

:meth:`SessionPool.ship` replicates a session's primary chain to its
buddy node's shadow store over the shared
:class:`~repro.cluster.interconnect.Interconnect`, reusing the cluster
layer's :func:`~repro.cluster.migration._ship_record` retry loop (CRC
re-verified on arrival, bounded resends) under a
:meth:`~repro.dmtcp.store.CheckpointStore.pin_guard` so an abandoned
shipment can never wedge the primary's keep-N GC. Already-shipped
generations are skipped (incremental deltas ride on their shipped
parents), and stale shadows on other nodes are dropped after each ship
so the failover target is always the *current* replica.
"""

from __future__ import annotations

from repro.cluster.interconnect import Interconnect
from repro.cluster.migration import _ship_record
from repro.dmtcp.image import CheckpointImage
from repro.dmtcp.store import CheckpointStore
from repro.errors import CheckpointStoreError, ClusterError, NodeDeathError


class ServeNode:
    """One serving node: GPU slots, hot sessions, shadow replicas."""

    def __init__(
        self,
        name: str,
        *,
        gpu: str = "V100",
        slots: int = 4,
        keep_generations: int = 4,
    ) -> None:
        if slots < 1:
            raise ClusterError(f"node {name!r} needs at least one GPU slot")
        self.name = name
        self.gpu = gpu
        self.slots = slots
        self.keep_generations = keep_generations
        self.alive = True
        #: sids currently live on this node's GPU slots
        self.hot: set[str] = set()
        #: per-session replica stores (failover targets for other homes)
        self.shadows: dict[str, CheckpointStore] = {}

    @property
    def free_slots(self) -> int:
        return self.slots - len(self.hot)

    def fail(self) -> None:
        """Stop heartbeating (dying-node model: memory stays readable
        long enough for the ladder's pre-fault snapshot; the node never
        comes back)."""
        self.alive = False

    def describe(self) -> str:
        """One-line human-readable summary."""
        state = "up" if self.alive else "DEAD"
        return (
            f"<ServeNode {self.name} [{state}] {self.gpu} "
            f"{len(self.hot)}/{self.slots} hot, "
            f"{len(self.shadows)} shadows>"
        )


class SessionPool:
    """Nodes + interconnect + shadow-replication bookkeeping."""

    def __init__(
        self,
        n_nodes: int = 2,
        *,
        slots: int = 4,
        gpu: str = "V100",
        seed: int = 0,
        interconnect: Interconnect | None = None,
        keep_generations: int = 4,
        ship_retries: int = 3,
    ) -> None:
        if n_nodes < 2:
            raise ClusterError(
                "a serving pool needs at least two nodes (every session's "
                "shadow must live off its home node)"
            )
        self.nodes = [
            ServeNode(
                f"serve{i}", gpu=gpu, slots=slots,
                keep_generations=keep_generations,
            )
            for i in range(n_nodes)
        ]
        self.interconnect = interconnect or Interconnect(seed=seed)
        self.seed = seed
        self.ship_retries = ship_retries
        #: (sid, dst node name) → {"src": primary store, "images":
        #: {src generation → imported dst image}} — the parent-linking
        #: map incremental deltas need at import. Reset whenever the
        #: session's primary store changes identity (failover), since
        #: generation ids from the old store must not alias the new one.
        self._ship_maps: dict[tuple[str, str], dict] = {}
        self.shipped_bytes = 0
        self.shipped_records = 0

    # -- topology --------------------------------------------------------------

    def node(self, name: str) -> ServeNode:
        """Fetch a node by name."""
        for n in self.nodes:
            if n.name == name:
                return n
        raise ClusterError(
            f"no node {name!r} (have {[n.name for n in self.nodes]})"
        )

    def alive_nodes(self) -> list[ServeNode]:
        """Nodes still heartbeating, in ring order."""
        return [n for n in self.nodes if n.alive]

    def place(self) -> ServeNode:
        """Least-loaded alive node (deterministic name tie-break).

        May return a full node — the scheduler parks an LRU victim to
        make room; admission control, not placement, is the layer that
        says no.
        """
        alive = self.alive_nodes()
        if len(alive) < 2:
            raise ClusterError(
                "fewer than two nodes alive: cannot place a session with "
                "an off-node shadow"
            )
        return min(alive, key=lambda n: (len(n.hot), n.name))

    def buddy(self, node: ServeNode) -> ServeNode:
        """Next alive node after ``node`` in ring order (shadow home)."""
        start = self.nodes.index(node)
        for step in range(1, len(self.nodes)):
            cand = self.nodes[(start + step) % len(self.nodes)]
            if cand.alive:
                return cand
        raise ClusterError(f"node {node.name!r} has no alive buddy")

    def shadow_home(self, sid: str) -> ServeNode | None:
        """The alive node holding ``sid``'s current shadow, if any."""
        for n in self.nodes:
            if n.alive and sid in n.shadows and n.shadows[sid].latest() is not None:
                return n
        return None

    def fail(self, name: str) -> None:
        """Kill a node (the chaos campaign's node-death lever)."""
        self.node(name).fail()

    # -- shadow replication ----------------------------------------------------

    def ship(
        self,
        sid: str,
        src_store: CheckpointStore,
        src_name: str,
        dst: ServeNode,
        *,
        now_ns: float = 0.0,
    ) -> dict:
        """Replicate ``sid``'s latest chain into ``dst``'s shadow store.

        Ships only generations the destination has not imported yet
        (base first, so every incremental delta finds its parent), with
        the whole batch pinned on the source for the duration. After a
        successful ship, ``sid``'s shadows on every *other* node are
        dropped: a parked session has no live memory to reconcile from,
        so its failover target must be the one current replica, never a
        stale one.
        """
        if not dst.alive:
            raise NodeDeathError(
                dst.name, f"cannot ship shadow onto dead node {dst.name!r}"
            )
        latest = src_store.latest()
        if latest is None:
            raise CheckpointStoreError(
                f"session {sid!r} has no committed generation to ship"
            )
        shadow = dst.shadows.get(sid)
        if shadow is None:
            shadow = dst.shadows[sid] = CheckpointStore(
                keep_generations=dst.keep_generations
            )
        key = (sid, dst.name)
        state = self._ship_maps.get(key)
        if state is None or state["src"] is not src_store:
            state = self._ship_maps[key] = {"src": src_store, "images": {}}
        images: dict[int, CheckpointImage] = state["images"]
        records = [
            r for r in src_store.export_chain(latest)
            if r["generation"] not in images
        ]
        t = now_ns
        nbytes = 0
        retries = 0
        with src_store.pin_guard(r["generation"] for r in records):
            for record in records:
                parent_src = record["parent_generation"]
                parent = (
                    images.get(parent_src) if parent_src is not None else None
                )
                gen, t, used = _ship_record(
                    self.interconnect, src_name, shadow, dst.name, record,
                    parent=parent, now_ns=t, retries=self.ship_retries,
                )
                images[record["generation"]] = shadow.get(gen).image
                nbytes += record["size_bytes"]
                retries += used
        for other in self.nodes:
            if other is not dst:
                other.shadows.pop(sid, None)
                self._ship_maps.pop((sid, other.name), None)
        self.shipped_bytes += nbytes
        self.shipped_records += len(records)
        return {
            "records": len(records),
            "bytes": nbytes,
            "retries": retries,
            "end_ns": t,
        }

    def drop_shadow(self, sid: str, node: ServeNode) -> CheckpointStore | None:
        """Detach ``sid``'s shadow store from ``node`` (failover takes
        ownership of it as the session's new primary)."""
        self._ship_maps.pop((sid, node.name), None)
        return node.shadows.pop(sid, None)

    def describe(self) -> str:
        """One-line human-readable summary."""
        up = sum(1 for n in self.nodes if n.alive)
        return (
            f"<SessionPool {len(self.nodes)} nodes ({up} up), "
            f"{self.shipped_records} records shipped "
            f"({self.shipped_bytes / (1 << 20):.1f} MB)>"
        )
