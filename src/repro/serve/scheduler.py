"""The serving tier itself: open, serve, park, rehydrate, fail over.

One :class:`~repro.core.session.CracSession` per user session, each with
its *own* primary :class:`~repro.dmtcp.store.CheckpointStore` and its
own :class:`~repro.core.session.FaultDomain` escalation ladder. The
scheduler layers four mechanisms on top:

- **Slots + LRU eviction.** A node hosts at most ``slots`` hot sessions.
  Making room parks the least recently used hot session on that node: an
  incremental checkpoint of its dirtied spans (full every
  ``full_park_every`` parks, and always after a restart — the dirty
  baseline is unknown then), shipped to the buddy node's shadow store,
  then the process is killed. Parked sessions hold zero GPU state.
- **Rehydration.** A request that reaches a parked session restores it
  digest-equal through ``restart_latest`` on its primary store, evicting
  a victim first if its home node is full. The surfaced
  :class:`~repro.errors.SessionEvictedError` severity (*retryable*) is
  exactly this transparently-heals contract.
- **Recovery budgets.** Every runtime call runs under the session's
  ladder (retry → stream reset → restore → failover). The scheduler
  additionally meters *cumulative* rungs per session: a session that
  keeps burning recovery work past ``recovery_budget`` is quarantined —
  parked and refused further requests (typed) — so one pathological
  session cannot starve the pool. Its state stays restorable: closing
  the campaign rehydrates and digest-verifies it like any other.
- **Node-death failover.** :meth:`sweep` detects dead nodes (heartbeat
  rounds, detection latency charged to the stalled sessions) and fails
  their hot sessions over through the ladder's rung-4 entry point
  (:meth:`~repro.core.session.FaultDomain.failover_now`): the buddy's
  shadow store becomes the new primary, the session restores there and
  re-anchors. Parked sessions on the dead node are re-homed to their
  shadow without a restore — images, not processes, were all they had.

The workload is a deterministic per-session state vector: request ``r``
applies ``v ← v·DECAY + drive(sid, r)`` — order- and
duplication-sensitive, so any replayed, lost, or double-applied request
changes the digest. :func:`reference_digest` replays the same arithmetic
in pure numpy; digest equality against it is the tier's correctness
gate.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.apps.base import digest_arrays
from repro.core.session import CracSession, FaultDomain
from repro.cuda.api import FatBinary
from repro.dmtcp.image import CheckpointImage
from repro.dmtcp.store import CheckpointStore
from repro.errors import (
    ClusterError,
    NodeDeathError,
    RecoveryAbortedError,
    RestartError,
    ServeError,
    SessionEvictedError,
)
from repro.gpu.timing import NS_PER_S
from repro.serve.admission import AdmissionController
from repro.serve.eviction import LruHotSet
from repro.serve.pool import ServeNode, SessionPool
from repro.trace.metrics import MetricsRegistry

#: per-request damping of the state vector (float32, as the kernel runs)
DECAY = np.float32(0.97)


def _derive(seed: int, name: str) -> int:
    # Same named-RNG-stream derivation as harness.fault_injection.
    # derive_seed, inlined so serve does not import harness at module
    # load (the bench harness imports serve).
    return (seed & 0xFFFFFFFF) ^ zlib.crc32(name.encode("utf-8"))


def _drive_vector(sid: str, request: int, n: int) -> np.ndarray:
    """Deterministic per-request input (pure function of sid, request)."""
    base = np.float32(
        (zlib.crc32(f"{sid}:{request}".encode()) % 997) / 997.0
    )
    ramp = np.arange(n, dtype=np.float32) * np.float32(1e-3)
    return ramp + base


def initial_state(seed: int, sid: str, n: int) -> np.ndarray:
    """The session's state vector at open (seeded, float32)."""
    rng = np.random.default_rng(_derive(seed, f"serve-state:{sid}"))
    return rng.random(n, dtype=np.float32)


def reference_digest(
    seed: int, sid: str, n: int, applied: list[int]
) -> int:
    """Pure-numpy replay of ``applied`` requests — the never-evicted,
    never-faulted result every served session must match bit-for-bit."""
    v = initial_state(seed, sid, n)
    for r in applied:
        v *= DECAY
        v += _drive_vector(sid, r, n)
    return digest_arrays(v)


@dataclass
class SessionRecord:
    """Everything the tier tracks about one user session."""

    sid: str
    node: ServeNode
    session: CracSession
    domain: FaultDomain
    store: CheckpointStore  # primary (lives on .node; dies with it)
    addr: int
    nbytes: int
    #: "hot" | "parked" | "quarantined" | "closed" | "lost"
    state: str = "hot"
    requests: int = 0
    #: request indices successfully applied (the reference replay input)
    applied: list[int] = field(default_factory=list)
    #: parent for the next incremental park (None → cut a full base)
    last_image: CheckpointImage | None = None
    #: len(session.restarts) when last_image was cut; a restart since
    #: then invalidates the dirty baseline, forcing a full cut
    restart_epoch: int = 0
    parks_since_full: int = 0
    parks: int = 0
    rehydrates: int = 0
    failovers: int = 0
    #: cumulative ladder rungs consumed (per-session recovery budget)
    recoveries: int = 0
    _rungs_seen: dict = field(default_factory=dict)


class ServeScheduler:
    """The multi-tenant serving tier (module docstring)."""

    def __init__(
        self,
        pool: SessionPool,
        *,
        admission: AdmissionController | None = None,
        seed: int = 0,
        state_elems: int = 128,
        service_ns: float = 200_000.0,
        keep_generations: int = 4,
        full_park_every: int = 4,
        recovery_budget: int = 64,
        fault_plan: list | None = None,
        heartbeat_interval_s: float = 0.5,
        max_missed: int = 3,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.pool = pool
        self.admission = admission
        self.seed = seed
        self.state_elems = state_elems
        self.service_ns = service_ns
        self.keep_generations = keep_generations
        self.full_park_every = max(1, full_park_every)
        self.recovery_budget = recovery_budget
        self.fault_plan = list(fault_plan or [])
        self.heartbeat_interval_s = heartbeat_interval_s
        self.max_missed = max_missed
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.records: dict[str, SessionRecord] = {}
        self.hot = LruHotSet()
        #: virtual-ns resume latencies (rehydrations + failover restores)
        self.resume_ns: list[float] = []
        self._dead_handled: set[str] = set()
        # Named RNG stream, reserved for future stochastic policies;
        # deterministic per (seed, tier) like every other stream here.
        self._rng = random.Random(_derive(seed, "serve-scheduler"))

    # -- admission -------------------------------------------------------------

    def offer(self, sid: str) -> float:
        """Offer one request to admission control.

        Returns the queue-wait estimate (virtual ns) to charge the
        session; re-raises the typed shedding errors after counting.
        """
        if self.admission is None:
            return 0.0
        try:
            return self.admission.offer(sid)
        except SessionEvictedError:  # pragma: no cover - not raised here
            raise
        except ServeError as exc:
            kind = (
                "shed_deadline"
                if exc.__class__.__name__ == "ServeDeadlineExceededError"
                else "shed_rejected"
            )
            self.metrics.counter(f"serve.requests.{kind}").inc()
            raise

    # -- session lifecycle -----------------------------------------------------

    def open_session(self, sid: str) -> SessionRecord:
        """Admit a new session: place, init state, anchor, replicate."""
        if sid in self.records:
            raise ServeError(f"session {sid!r} already open")
        node = self.pool.place()
        self._ensure_slot(node)
        injector = None
        if self.fault_plan:
            # Deferred import: serve must not import harness at module
            # load (harness.serve_bench imports serve).
            from repro.harness.fault_injection import FaultInjector

            injector = FaultInjector(
                list(self.fault_plan), seed=_derive(self.seed, f"inj:{sid}")
            )
        session = CracSession(
            gpu=node.gpu,
            seed=_derive(self.seed, f"sess:{sid}"),
            fault_injector=injector,
        )
        store = CheckpointStore(keep_generations=self.keep_generations)
        domain = session.enable_fault_domain(
            store,
            retries=2, max_stream_resets=2, max_restores=2, max_failovers=1,
            backoff_s=0.01, max_backoff_s=0.5,
        )
        record = SessionRecord(
            sid=sid, node=node, session=session, domain=domain,
            store=store, addr=0, nbytes=self.state_elems * 4,
        )
        domain.failover_handler = self._make_failover_handler(record)
        backend = session.backend
        backend.register_app_binary(FatBinary("serve.fatbin", ("serve_step",)))
        record.addr = backend.malloc(record.nbytes)
        view = backend.device_view(record.addr, record.nbytes, np.float32)
        view[:] = initial_state(self.seed, sid, self.state_elems)
        self.records[sid] = record
        node.hot.add(sid)
        self.hot.touch(sid)
        # Anchor: a full generation + off-node shadow make the ladder's
        # restore and failover rungs live from the very first request.
        self._anchor(record)
        self.metrics.counter("serve.sessions.opened").inc()
        self.metrics.gauge("serve.hot").set(len(self.hot))
        return record

    def handle_request(self, sid: str, *, wait_ns: float = 0.0) -> dict:
        """Serve one request (rehydrating first if the session is cold).

        ``wait_ns`` is the admission queue wait to charge to the
        session's clock. Returns ``{"sid", "request", "latency_ns"}``.
        """
        record = self.records.get(sid)
        try:
            if record is None:
                raise ServeError(f"no session {sid!r}")
            if record.state in ("closed", "lost"):
                raise ServeError(f"session {sid!r} is {record.state}")
            if record.state == "quarantined":
                self.metrics.counter("serve.requests.shed_quarantined").inc()
                raise SessionEvictedError(
                    sid,
                    f"session {sid!r} is quarantined (recovery budget "
                    f"{self.recovery_budget} exhausted)",
                )
            if record.state == "parked":
                self.metrics.counter("serve.requests.cold").inc()
                self._rehydrate(record)
            session = record.session
            if wait_ns > 0.0:
                session.process.advance(wait_ns)
            backend = session.backend
            request = record.requests
            drive = _drive_vector(sid, request, self.state_elems)
            addr, nbytes = record.addr, record.nbytes

            def serve_step() -> None:
                v = backend.device_view(addr, nbytes, np.float32)
                v *= DECAY
                v += drive

            t0 = session.process.clock_ns
            try:
                backend.launch(
                    "serve_step", serve_step,
                    flop=2.0 * self.state_elems,
                    duration_ns=self.service_ns,
                )
                backend.device_synchronize()
            except RecoveryAbortedError:
                # The ladder gave up mid-op: effects past the last cut
                # are unprovable, so the session cannot be certified
                # digest-equal any more.
                self._mark_lost(record, why="recovery aborted mid-request")
                raise
            record.requests += 1
            record.applied.append(request)
            self.hot.touch(sid)
            latency = session.process.clock_ns - t0 + wait_ns
            self.metrics.counter("serve.requests.served").inc()
            self.metrics.histogram("serve.request_ns").record(latency)
            self._collect_recovery(record)
            return {"sid": sid, "request": request, "latency_ns": latency}
        finally:
            if self.admission is not None:
                self.admission.release(sid)

    def close_session(self, sid: str) -> dict:
        """Finish a session: rehydrate if cold, digest-verify, retire."""
        record = self.records.get(sid)
        if record is None:
            raise ServeError(f"no session {sid!r}")
        if record.state == "closed":
            raise ServeError(f"session {sid!r} already closed")
        if record.state == "lost":
            return {"sid": sid, "ok": False, "lost": True, "digest": None}
        if record.state in ("parked", "quarantined"):
            self._rehydrate(record)
        backend = record.session.backend
        view = backend.device_view(record.addr, record.nbytes, np.float32)
        digest = digest_arrays(view)
        ref = reference_digest(
            self.seed, sid, self.state_elems, record.applied
        )
        ok = digest == ref
        record.session.kill()
        record.node.hot.discard(sid)
        self.hot.discard(sid)
        record.state = "closed"
        self.metrics.counter("serve.sessions.closed").inc()
        if not ok:
            self.metrics.counter("serve.sessions.digest_mismatch").inc()
        self.metrics.gauge("serve.hot").set(len(self.hot))
        return {
            "sid": sid, "ok": ok, "lost": False, "digest": digest,
            "reference": ref, "requests": record.requests,
            "parks": record.parks, "rehydrates": record.rehydrates,
            "failovers": record.failovers, "recoveries": record.recoveries,
        }

    # -- eviction / rehydration ------------------------------------------------

    def _ensure_slot(self, node: ServeNode) -> None:
        """Park LRU victims on ``node`` until a GPU slot is free."""
        while len(node.hot) >= node.slots:
            victim = self.hot.lru(lambda s: s in node.hot)
            if victim is None:
                raise ServeError(
                    f"node {node.name!r} is full and holds no evictable "
                    "session"
                )
            if not self._park(self.records[victim]):
                raise ServeError(
                    f"could not park {victim!r} to free a slot on "
                    f"{node.name!r}"
                )

    def _checkpoint(self, record: SessionRecord) -> int | None:
        """Cut a park/anchor generation (incremental when safe)."""
        incremental = (
            record.last_image is not None
            and record.restart_epoch == len(record.session.restarts)
            and record.parks_since_full < self.full_park_every
        )
        gen = record.domain.checkpoint(
            incremental=incremental,
            parent=record.last_image if incremental else None,
        )
        if gen is None and incremental:
            # An injected pipeline crash aborted the cut (nothing
            # half-committed); one full retry before giving up.
            incremental = False
            gen = record.domain.checkpoint()
        if gen is None:
            return None
        record.last_image = record.store.get(gen).image
        record.restart_epoch = len(record.session.restarts)
        record.parks_since_full = (
            0 if not incremental else record.parks_since_full + 1
        )
        return gen

    def _anchor(self, record: SessionRecord) -> None:
        """Full-ish cut + shadow ship so restore/failover rungs are live."""
        gen = self._checkpoint(record)
        if gen is None:
            self.metrics.counter("serve.parks.failed").inc()
            return
        self.pool.ship(
            record.sid, record.store, record.node.name,
            self.pool.buddy(record.node),
            now_ns=record.session.process.clock_ns,
        )

    def _park(self, record: SessionRecord) -> bool:
        """Evict one hot session to its checkpoint store (+ shadow)."""
        if record.state != "hot":
            raise ServeError(f"cannot park {record.sid!r} ({record.state})")
        gen = self._checkpoint(record)
        if gen is None:
            self.metrics.counter("serve.parks.failed").inc()
            return False
        self.pool.ship(
            record.sid, record.store, record.node.name,
            self.pool.buddy(record.node),
            now_ns=record.session.process.clock_ns,
        )
        record.session.kill()
        record.node.hot.discard(record.sid)
        self.hot.discard(record.sid)
        record.state = "parked"
        record.parks += 1
        self.metrics.counter("serve.evicted").inc()
        self.metrics.gauge("serve.hot").set(len(self.hot))
        return True

    def _rehydrate(self, record: SessionRecord) -> None:
        """Restore a parked/quarantined session onto its home node."""
        if not record.node.alive:
            # The home died while this session was parked and no sweep
            # re-homed it yet (or re-homing failed): do it now.
            self._rehome_parked(record)
            if record.state == "lost":
                raise SessionEvictedError(
                    record.sid,
                    f"session {record.sid!r} was parked on a dead node "
                    "with no shadow to re-home from",
                )
        self._ensure_slot(record.node)
        session = record.session
        t0 = session.process.clock_ns
        report = session.restart_latest(record.store, allow_heterogeneous=True)
        record.domain.attach()
        record.restart_epoch = len(session.restarts)
        record.last_image = record.store.get(report.generation).image
        resume = session.process.clock_ns - t0
        record.state = "hot"
        record.node.hot.add(record.sid)
        self.hot.touch(record.sid)
        record.rehydrates += 1
        self.resume_ns.append(resume)
        self.metrics.counter("serve.rehydrated").inc()
        self.metrics.histogram("serve.resume_ns").record(resume)
        self.metrics.gauge("serve.hot").set(len(self.hot))

    # -- recovery accounting / quarantine --------------------------------------

    def _collect_recovery(self, record: SessionRecord) -> None:
        """Fold new ladder rungs into metrics + the session's budget."""
        counts = record.domain.report.rung_counts()
        new = 0
        for rung, n in counts.items():
            delta = n - record._rungs_seen.get(rung, 0)
            if delta > 0:
                self.metrics.counter(f"serve.recovery.{rung}").inc(delta)
                new += delta
        record._rungs_seen = dict(counts)
        record.recoveries += new
        if (
            record.recoveries > self.recovery_budget
            and record.state == "hot"
        ):
            self._quarantine(record)

    def _quarantine(self, record: SessionRecord) -> None:
        """Bench a pathological session (restorable, but refused work)."""
        if not self._park(record):
            self._mark_lost(record, why="quarantine park failed")
            return
        record.state = "quarantined"
        self.metrics.counter("serve.quarantined").inc()

    def _mark_lost(self, record: SessionRecord, *, why: str) -> None:
        if record.session.process.alive:
            record.session.kill()
        record.node.hot.discard(record.sid)
        self.hot.discard(record.sid)
        record.state = "lost"
        self.metrics.counter("serve.sessions.lost").inc()
        self.metrics.gauge("serve.hot").set(len(self.hot))

    # -- node death ------------------------------------------------------------

    def sweep(self) -> list[str]:
        """Detect dead nodes; fail over / re-home their sessions.

        Detection mirrors the cluster fabric's heartbeat exchange:
        ``max_missed`` rounds of ``heartbeat_interval_s`` pass before a
        silent node is declared dead, and that latency is charged to the
        stalled sessions — it is real time their users spent waiting,
        and it lands in the failover resume-latency percentiles.
        """
        newly_dead = [
            n for n in self.pool.nodes
            if not n.alive and n.name not in self._dead_handled
        ]
        if not newly_dead:
            return []
        detect_ns = self.max_missed * self.heartbeat_interval_s * NS_PER_S
        for node in newly_dead:
            self._dead_handled.add(node.name)
            for sid in sorted(node.hot):
                record = self.records[sid]
                session = record.session
                session.process.advance(detect_ns)
                t0 = session.process.clock_ns
                try:
                    record.domain.failover_now(NodeDeathError(node.name))
                except (RecoveryAbortedError, ClusterError, RestartError):
                    self._mark_lost(record, why="failover failed")
                    continue
                resume = (session.process.clock_ns - t0) + detect_ns
                record.failovers += 1
                self.resume_ns.append(resume)
                self.metrics.counter("serve.failed_over").inc()
                self.metrics.histogram("serve.resume_ns").record(resume)
                self._collect_recovery(record)
                # The shadow was consumed as the new primary; re-anchor
                # so the next failure has an off-node generation again.
                record.last_image = None
                self._anchor(record)
            node.hot.clear()
            for record in self.records.values():
                if record.node is node and record.state in (
                    "parked", "quarantined"
                ):
                    self._rehome_parked(record)
        self.metrics.gauge("serve.hot").set(len(self.hot))
        return [n.name for n in newly_dead]

    def _rehome_parked(self, record: SessionRecord) -> None:
        """Point a parked session at its shadow after its home died.

        No restore happens here — a parked session *is* its images; the
        shadow store simply becomes the primary on the surviving node.
        The next park cuts a full base (the new home never saw the old
        incremental lineage commit locally).
        """
        home = self.pool.shadow_home(record.sid)
        if home is None:
            self._mark_lost(record, why="no shadow to re-home from")
            return
        shadow = self.pool.drop_shadow(record.sid, home)
        record.store = shadow
        record.domain.store = shadow
        record.node = home
        record.last_image = None
        self.metrics.counter("serve.rehomed_parked").inc()

    def _make_failover_handler(self, record: SessionRecord):
        """Rung-4 handler: shadow store becomes primary on the buddy."""

        def handler(exc: Exception) -> dict:
            home = self.pool.shadow_home(record.sid)
            if home is None:
                raise ClusterError(
                    f"session {record.sid!r} has no shipped shadow — "
                    f"nothing to fail over to ({exc!r})"
                )
            self._ensure_slot(home)
            session = record.session
            if session.process.alive:
                session.kill()
            shadow = self.pool.drop_shadow(record.sid, home)
            session.gpu = home.gpu
            report = session.restart_latest(shadow, allow_heterogeneous=True)
            record.node.hot.discard(record.sid)
            record.store = shadow
            record.domain.store = shadow
            record.node = home
            record.restart_epoch = len(session.restarts)
            record.last_image = shadow.get(report.generation).image
            home.hot.add(record.sid)
            self.hot.touch(record.sid)
            cut = shadow.get(report.generation).image.created_at_ns
            return {
                "node": home.name,
                "generation": report.generation,
                "cut_ns": cut,
            }

        return handler

    # -- introspection ---------------------------------------------------------

    def states(self) -> dict[str, int]:
        """Session count per lifecycle state."""
        out: dict[str, int] = {}
        for record in self.records.values():
            out[record.state] = out.get(record.state, 0) + 1
        return out

    def describe(self) -> str:
        """One-line human-readable summary."""
        states = ", ".join(
            f"{k}={v}" for k, v in sorted(self.states().items())
        )
        return (
            f"<ServeScheduler {len(self.records)} sessions ({states}), "
            f"{len(self.hot)} hot>"
        )
