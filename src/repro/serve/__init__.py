"""Multi-tenant session-serving tier over the CRAC checkpoint machinery.

``repro.serve`` multiplexes many :class:`~repro.core.session.CracSession`
user sessions across a pool of virtual GPU nodes, staying up through the
same fault classes the single-session ladder survives:

- :class:`~repro.serve.admission.AdmissionController` — bounded-queue
  admission with per-request deadlines and *typed* rejection (load
  shedding, not collapse);
- :class:`~repro.serve.eviction.LruHotSet` — the recency order behind
  checkpoint-backed eviction (cold sessions park as incremental images);
- :class:`~repro.serve.pool.SessionPool` /
  :class:`~repro.serve.pool.ServeNode` — GPU slots, per-session primary
  checkpoint stores, and shadow replicas shipped to a buddy node over
  the cluster interconnect;
- :class:`~repro.serve.scheduler.ServeScheduler` — the tier itself:
  open/serve/park/rehydrate/fail-over/close, layered on the
  :class:`~repro.core.session.FaultDomain` escalation ladder with
  per-session recovery budgets.
"""

from repro.serve.admission import AdmissionController
from repro.serve.eviction import LruHotSet
from repro.serve.pool import ServeNode, SessionPool
from repro.serve.scheduler import (
    ServeScheduler,
    SessionRecord,
    reference_digest,
)

__all__ = [
    "AdmissionController",
    "LruHotSet",
    "ServeNode",
    "SessionPool",
    "ServeScheduler",
    "SessionRecord",
    "reference_digest",
]
