"""LRU hot-set bookkeeping behind checkpoint-backed eviction.

The scheduler keeps every *hot* (live-on-a-GPU-slot) session in one
global recency order; when a node's slots fill up, the least recently
used hot session *on that node* is parked as a checkpoint image. The
structure is deliberately dumb — an insertion-ordered dict with
move-to-end on touch — because eviction policy must be deterministic for
campaigns to be bit-reproducible.
"""

from __future__ import annotations

from typing import Callable, Iterator


class LruHotSet:
    """Recency order over hot session ids (LRU first in iteration)."""

    def __init__(self) -> None:
        # dict preserves insertion order; touch() reinserts at the end,
        # so iteration order is least- to most-recently used.
        self._order: dict[str, None] = {}

    def touch(self, sid: str) -> None:
        """Mark ``sid`` hot and most recently used."""
        self._order.pop(sid, None)
        self._order[sid] = None

    def discard(self, sid: str) -> None:
        """Remove ``sid`` from the hot set (idempotent)."""
        self._order.pop(sid, None)

    def lru(
        self, predicate: Callable[[str], bool] | None = None
    ) -> str | None:
        """Least recently used hot sid (optionally filtered), or None."""
        for sid in self._order:
            if predicate is None or predicate(sid):
                return sid
        return None

    def members(self) -> list[str]:
        """Hot sids, least recently used first."""
        return list(self._order)

    def __contains__(self, sid: str) -> bool:
        return sid in self._order

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[str]:
        return iter(self._order)
