"""Distributed Jacobi: the canonical hybrid MPI+CUDA workload.

A 1D domain decomposition of a 2D Laplace problem: each rank owns a
horizontal slab resident in *device* memory, smooths it on the GPU, and
exchanges one-row halos with its neighbours through MPI each iteration.
This is the structure of the paper's MPI experiments (HPGMG-FV and
HYPRE both scale this way; §4.4.3 runs them over MPICH).

Used by the §6 proof-of-principle test/example: the whole multi-rank
job is checkpointed in a coordinated fashion mid-run, killed, restarted,
and finishes with results bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import digest_arrays
from repro.cuda.api import FatBinary
from repro.mpi.world import MpiWorld

JACOBI_FATBIN = FatBinary("mpi-jacobi.fatbin", ("jacobi_smooth",))

TAG_DOWN = 1  # halo travelling to the next-lower rank
TAG_UP = 2


class MpiJacobi:
    """Jacobi solver over an ``MpiWorld``."""

    def __init__(
        self,
        world: MpiWorld,
        *,
        rows_per_rank: int = 16,
        cols: int = 32,
        iterations: int = 40,
        seed: int = 0,
    ) -> None:
        self.world = world
        self.rows = rows_per_rank
        self.cols = cols
        self.iterations = iterations
        rng = np.random.default_rng(seed)
        self.ptrs: list[int] = []
        self._nbytes = 8 * (self.rows + 2) * self.cols  # slab + 2 halo rows
        for r in world.ranks:
            backend = r.backend
            backend.register_app_binary(JACOBI_FATBIN)
            ptr = backend.malloc(self._nbytes)
            slab = np.zeros((self.rows + 2, self.cols))
            slab[1:-1, :] = rng.random((self.rows, self.cols))
            backend.memcpy(ptr, slab, slab.nbytes, "h2d")
            self.ptrs.append(ptr)

    def _slab(self, rank: int) -> np.ndarray:
        return self.world.ranks[rank].backend.device_view(
            self.ptrs[rank], self._nbytes, np.float64
        ).reshape(self.rows + 2, self.cols)

    # -- one BSP superstep -----------------------------------------------------

    def step(self) -> None:
        """One BSP superstep: halo exchange, then a GPU smooth per rank."""
        world = self.world
        # 1. halo exchange (device → host → MPI → host → device; a
        #    GPU-aware MPI would skip the staging copies).
        for rank in range(world.size):
            backend = world.ranks[rank].backend
            top = np.zeros(self.cols)
            bottom = np.zeros(self.cols)
            backend.memcpy(top, self.ptrs[rank], top.nbytes, "d2h",
                           src_offset=8 * self.cols)
            backend.memcpy(bottom, self.ptrs[rank], bottom.nbytes, "d2h",
                           src_offset=8 * self.rows * self.cols)
            if rank > 0:
                world.send(rank, rank - 1, top, TAG_DOWN)
            if rank < world.size - 1:
                world.send(rank, rank + 1, bottom, TAG_UP)
        for rank in range(world.size):
            backend = world.ranks[rank].backend
            if rank > 0:
                halo = world.recv(rank, rank - 1, TAG_UP)
                backend.memcpy(self.ptrs[rank], halo, halo.nbytes, "h2d",
                               dst_offset=0)
            if rank < world.size - 1:
                halo = world.recv(rank, rank + 1, TAG_DOWN)
                backend.memcpy(self.ptrs[rank], halo, halo.nbytes, "h2d",
                               dst_offset=8 * (self.rows + 1) * self.cols)
        # 2. GPU smooth on every rank.
        for rank in range(world.size):
            backend = world.ranks[rank].backend

            def smooth(rank=rank):
                s = self._slab(rank)
                interior = 0.25 * (
                    s[:-2, 1:-1] + s[2:, 1:-1] + s[1:-1, :-2] + s[1:-1, 2:]
                )
                s[1:-1, 1:-1] = interior

            backend.launch(
                "jacobi_smooth", smooth,
                flop=4.0 * self.rows * self.cols,
            )
            backend.device_synchronize()

    def run(self, *, checkpoint_at_iter: int | None = None,
            restart: bool = True, stores: "list | None" = None) -> int:
        """Run to completion; optionally checkpoint+kill+restart the whole
        world at iteration ``checkpoint_at_iter``. Returns the digest of
        all slabs.

        With ``stores`` (one :class:`~repro.dmtcp.store.CheckpointStore`
        per rank) the checkpoint goes through the coordinated two-phase
        commit and the restart is the self-healing store-backed path —
        a failed coordinated checkpoint is absorbed (the job continues
        and retries at the next scheduled iteration) rather than fatal.
        """
        from repro.errors import CheckpointError

        pending_ckpt = checkpoint_at_iter
        for it in range(self.iterations):
            if pending_ckpt is not None and it >= pending_ckpt:
                if stores is None:
                    pending_ckpt = None
                    images = self.world.checkpoint_all()
                    if restart:
                        self.world.kill_all()
                        self.world.restart_all(images)
                else:
                    try:
                        self.world.checkpoint_all_2pc(stores)
                    except CheckpointError:
                        pending_ckpt = it + 1  # absorbed; retry next iter
                    else:
                        pending_ckpt = None
                        if restart:
                            self.world.kill_all()
                            self.world.restart_all_latest(stores)
            self.step()
        self.world.barrier()
        return digest_arrays(*[self._slab(r).copy() for r in range(self.world.size)])

    def residual(self) -> float:
        """Global residual via allreduce (exercises the collective)."""
        parts = []
        for rank in range(self.world.size):
            s = self._slab(rank)
            lap = (
                s[:-2, 1:-1] + s[2:, 1:-1] + s[1:-1, :-2] + s[1:-1, 2:]
                - 4 * s[1:-1, 1:-1]
            )
            parts.append(float((lap**2).sum()))
        return self.world.allreduce_sum(parts)
