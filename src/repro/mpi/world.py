"""A single-node MPI world of CRAC sessions with virtual-time messaging.

Each rank is an independent simulated process running its own CRAC
session (its own upper/lower halves and CUDA library instance, as MPICH
launches them in the paper's MPI experiments). Communication follows a
LogP-style model: a message is available at
``send_completion + latency + bytes/bandwidth``; a receive advances the
receiver's clock to that availability; collectives synchronize all
clocks to the maximum plus the collective's cost.

Coordinated checkpointing mirrors DMTCP's distributed protocol on one
node: quiesce everyone at a barrier, checkpoint every rank, and (on
failure) restart every rank — after which all ranks' device pointers,
streams, and MPI-exchanged data are intact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.session import CracSession, RestartReport
from repro.dmtcp.coordinator import DmtcpCoordinator, HeartbeatMonitor
from repro.dmtcp.image import CheckpointImage
from repro.dmtcp.store import CheckpointStore, StagedCheckpoint
from repro.errors import (
    CheckpointError,
    CoordinatedAbortError,
    RankDeathError,
    ReproError,
)
from repro.gpu.timing import NS_PER_S

#: Intra-node MPI costs (shared-memory transport).
MPI_LATENCY_NS = 900.0
MPI_BANDWIDTH = 9.0e9  # bytes/s
BARRIER_NS = 2_500.0


def split_bytes(data: bytes, n: int) -> list[bytes]:
    """Split ``data`` into ``n`` near-equal contiguous chunks.

    The canonical partition function for scattered regions: the first
    ``len(data) % n`` chunks get one extra byte. Chunks concatenate back
    to ``data`` exactly, which is what elastic restore relies on when it
    repartitions an N-rank region onto M ranks.
    """
    if n < 1:
        raise ValueError("need at least one partition")
    q, rem = divmod(len(data), n)
    out: list[bytes] = []
    pos = 0
    for i in range(n):
        size = q + (1 if i < rem else 0)
        out.append(data[pos:pos + size])
        pos += size
    return out


@dataclass
class _Message:
    src: int
    dst: int
    tag: int
    data: np.ndarray
    available_ns: float


@dataclass
class MpiRank:
    """One MPI rank: a CRAC session plus its message queues."""

    rank: int
    session: CracSession
    inbox: list[_Message] = field(default_factory=list)

    @property
    def backend(self):
        return self.session.backend

    @property
    def clock_ns(self) -> float:
        return self.session.process.clock_ns


class MpiWorld:
    """N single-node MPI ranks under coordinated CRAC checkpointing."""

    def __init__(
        self,
        n_ranks: int,
        *,
        gpu: str = "V100",
        seed: int = 0,
        fault_injector=None,
    ) -> None:
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        # One injector shared by every rank: stage-visit counts span the
        # whole job, so ``at_count=k`` can target "the kth region staged
        # anywhere in the job" — which is how a single node loss lands.
        self.ranks = [
            MpiRank(
                rank=i,
                session=CracSession(
                    gpu=gpu, seed=seed, fault_injector=fault_injector
                ),
            )
            for i in range(n_ranks)
        ]
        #: named scattered regions: name -> per-rank (device addr, nbytes)
        self._regions: dict[str, list[tuple[int, int]]] = {}

    @property
    def size(self) -> int:
        return len(self.ranks)

    # -- partitioned data regions ----------------------------------------------

    def scatter_region(self, name: str, data: bytes) -> list[tuple[int, int]]:
        """Partition ``data`` across ranks and stage it in device memory.

        Each rank gets one near-equal contiguous chunk (``split_bytes``)
        in a freshly cudaMalloc'd device buffer, written via an h2d
        copy — so the region rides the normal checkpoint/replay path and
        survives restart. The placement is recorded in the partition
        registry so :meth:`gather_region` and elastic restore can find
        it. Returns the per-rank ``(addr, nbytes)`` placements.
        """
        if name in self._regions:
            raise ValueError(f"region {name!r} already scattered")
        placements: list[tuple[int, int]] = []
        for r, chunk in zip(self.ranks, split_bytes(data, self.size)):
            # A zero-byte chunk (more ranks than bytes) still gets a
            # 1-byte placeholder buffer so every rank owns a valid addr.
            addr = r.backend.malloc(max(1, len(chunk)))
            if chunk:
                r.backend.memcpy(
                    addr, np.frombuffer(chunk, dtype=np.uint8),
                    len(chunk), "h2d",
                )
            placements.append((addr, len(chunk)))
        self._regions[name] = placements
        return placements

    def gather_region(self, name: str) -> bytes:
        """Read a scattered region back (d2h per rank, concatenated)."""
        if name not in self._regions:
            raise ValueError(f"no scattered region {name!r}")
        parts: list[bytes] = []
        for r, (addr, nbytes) in zip(self.ranks, self._regions[name]):
            host = np.zeros(nbytes, dtype=np.uint8)
            if nbytes:
                r.backend.memcpy(host, addr, nbytes, "d2h")
            parts.append(host.tobytes())
        return b"".join(parts)

    def partition_manifest(self) -> dict[str, list[dict]]:
        """Serializable description of every scattered region.

        Maps region name to per-rank entries ``{rank, addr, nbytes,
        offset}`` where ``offset`` is the chunk's position in the global
        byte string. Elastic restore captures this alongside the
        checkpoint images: it is everything needed to reassemble the
        global regions from restored per-rank address spaces and
        repartition them onto a differently-sized world.
        """
        manifest: dict[str, list[dict]] = {}
        for name in sorted(self._regions):
            offset = 0
            entries = []
            for rank, (addr, nbytes) in enumerate(self._regions[name]):
                entries.append(
                    {"rank": rank, "addr": addr, "nbytes": nbytes,
                     "offset": offset}
                )
                offset += nbytes
            manifest[name] = entries
        return manifest

    # -- point-to-point -------------------------------------------------------

    def send(self, src: int, dst: int, data: np.ndarray, tag: int = 0) -> None:
        """Non-blocking send (buffered, like small-message MPI_Send)."""
        sender = self.ranks[src]
        nbytes = data.nbytes
        sender.session.process.advance(MPI_LATENCY_NS)
        available = sender.clock_ns + nbytes / MPI_BANDWIDTH * NS_PER_S
        self.ranks[dst].inbox.append(
            _Message(src, dst, tag, np.array(data, copy=True), available)
        )

    def recv(self, dst: int, src: int, tag: int = 0) -> np.ndarray:
        """Blocking receive: the receiver waits for message availability."""
        receiver = self.ranks[dst]
        for i, msg in enumerate(receiver.inbox):
            if msg.src == src and msg.tag == tag:
                receiver.inbox.pop(i)
                receiver.session.process.advance(MPI_LATENCY_NS)
                receiver.session.process.advance_to(msg.available_ns)
                return msg.data
        raise ReproError(
            f"rank {dst} deadlocked: no message from {src} with tag {tag}"
        )

    # -- collectives -----------------------------------------------------------

    def barrier(self) -> None:
        """Synchronize all ranks' clocks (max + barrier cost)."""
        t = max(r.clock_ns for r in self.ranks) + BARRIER_NS
        for r in self.ranks:
            r.session.process.advance_to(t)

    def allreduce_sum(self, values: list[float]) -> float:
        """SUM allreduce of one contribution per rank."""
        if len(values) != self.size:
            raise ValueError("one contribution per rank required")
        self.barrier()
        total = float(np.sum(values))
        cost = 2 * MPI_LATENCY_NS * max(1, int(np.log2(max(2, self.size))))
        for r in self.ranks:
            r.session.process.advance(cost)
        return total

    def bcast(self, root: int, data: np.ndarray) -> list[np.ndarray]:
        """Broadcast from ``root``; returns each rank's copy."""
        self.barrier()
        nbytes = data.nbytes
        hops = max(1, int(np.log2(max(2, self.size))))
        cost = hops * (MPI_LATENCY_NS + nbytes / MPI_BANDWIDTH * NS_PER_S)
        for r in self.ranks:
            r.session.process.advance(cost)
        return [np.array(data, copy=True) for _ in self.ranks]

    def reduce_max(self, values: list[float], root: int = 0) -> float:
        """MAX reduction to ``root``."""
        if len(values) != self.size:
            raise ValueError("one contribution per rank required")
        self.barrier()
        hops = max(1, int(np.log2(max(2, self.size))))
        self.ranks[root].session.process.advance(hops * MPI_LATENCY_NS)
        return float(np.max(values))

    def gather(self, root: int, contributions: list[np.ndarray]) -> list[np.ndarray]:
        """Gather one array per rank to ``root``."""
        if len(contributions) != self.size:
            raise ValueError("one contribution per rank required")
        self.barrier()
        total = sum(c.nbytes for c in contributions)
        self.ranks[root].session.process.advance(
            MPI_LATENCY_NS * self.size + total / MPI_BANDWIDTH * NS_PER_S
        )
        return [np.array(c, copy=True) for c in contributions]

    # -- coordinated checkpoint/restart ----------------------------------------------

    def checkpoint_all(self, *, gzip: bool = False) -> list[CheckpointImage]:
        """DMTCP-coordinated checkpoint: quiesce at a barrier, then dump
        every rank (each rank drains its own GPU work first)."""
        self.barrier()
        images = [r.session.checkpoint(gzip=gzip) for r in self.ranks]
        self.barrier()
        return images

    def checkpoint_all_2pc(
        self,
        stores: list[CheckpointStore],
        *,
        gzip: bool = False,
        heartbeat: HeartbeatMonitor | None = None,
    ) -> list[int]:
        """Coordinated checkpoint with all-or-nothing commit.

        Phase 1: every rank checkpoints and *stages* its image into its
        store. If any rank fails mid-stage (a checkpoint-stage fault),
        every already-staged image is aborted and any partial is
        discarded — the previous consistent cut stays the recovery line
        and :class:`CheckpointError` propagates. Phase 2: the
        coordinator commits all stages; no rank ever holds a generation
        its peers lack. Returns one committed generation id per rank.

        With ``heartbeat``, the coordinator polls every rank's liveness
        *between* prepare and commit. A rank that misses ``max_missed``
        consecutive beats is declared dead: every staged image is
        aborted (no half-committed generation), and the survivors take a
        quorum decision — a strict majority raises
        :class:`RankDeathError` (recover from the prior cut via
        :meth:`restart_all_latest`), anything less raises
        :class:`CoordinatedAbortError` (whole-job abort).
        """
        if len(stores) != self.size:
            raise ValueError("one store per rank required")
        self.barrier()
        staged: list[tuple[CheckpointStore, StagedCheckpoint]] = []
        try:
            for r, store in zip(self.ranks, stores):
                staged.append(
                    (store, r.session.coordinator.stage_checkpoint(
                        store, gzip=gzip))
                )
        except ReproError as exc:
            for store, s in staged:
                store.abort(s)
            for store in stores:
                store.discard_partials()
            self.barrier()
            raise CheckpointError(
                f"coordinated checkpoint aborted in phase 1: {exc}"
            ) from exc
        injector = next(
            (r.session.fault_injector for r in self.ranks
             if r.session.fault_injector is not None),
            None,
        )
        if heartbeat is not None:
            dead = self._heartbeat_rounds(heartbeat, injector)
            if dead:
                for store, s in staged:
                    store.abort(s)
                for store in stores:
                    store.discard_partials()
                if not heartbeat.has_quorum():
                    raise CoordinatedAbortError(
                        f"rank(s) {dead} dead and only "
                        f"{len(heartbeat.alive_ranks())}/{self.size} alive: "
                        "no strict majority, aborting the job"
                    )
                raise RankDeathError(dead)
        generations = DmtcpCoordinator.two_phase_commit(
            staged, fault_injector=injector
        )
        self.barrier()
        return generations

    def _heartbeat_rounds(self, monitor: HeartbeatMonitor, injector) -> list[int]:
        """Run up to ``max_missed`` polling rounds; returns dead ranks.

        The ``heartbeat`` fault stage drives misses per rank per round:
        kind ``"crash"`` kills the rank's process (it misses this and
        every later round, so it ends up declared dead); any other kind
        drops only this round's beat. Surviving ranks pay the poll
        interval each round; a fully healthy round ends the exchange
        early.
        """
        for rnd in range(monitor.max_missed):
            any_missing = False
            for r in self.ranks:
                arrived = r.session.process.alive
                if arrived and injector is not None:
                    kind = injector.trip(
                        "heartbeat", f"rank {r.rank} round {rnd + 1}"
                    )
                    if kind == "crash":
                        r.session.kill()
                        arrived = False
                    elif kind is not None:
                        arrived = False
                monitor.beat(r.rank, arrived=arrived)
                any_missing = any_missing or not arrived
            for r in self.ranks:
                if r.session.process.alive:
                    r.session.process.advance(monitor.interval_ns)
            if not any_missing:
                break
        return monitor.dead_ranks()

    def kill_all(self) -> None:
        """Terminate every rank (whole-job failure)."""
        for r in self.ranks:
            r.session.kill()

    def restart_all(self, images: list[CheckpointImage]) -> None:
        """Restart the whole job; every rank replays its own log."""
        if len(images) != self.size:
            raise ValueError("one image per rank required")
        for r, image in zip(self.ranks, images):
            r.session.restart(image)
        self.barrier()

    def restart_all_latest(
        self,
        stores: list[CheckpointStore],
        *,
        retries: int = 2,
        backoff_s: float = 0.25,
    ) -> list[RestartReport]:
        """Self-healing whole-job restart from per-rank stores.

        Every rank runs its own :meth:`CracSession.restart_latest`
        (backoff + generation fallback); the ranks then synchronize so
        the restored cut is consistent before the job continues. All
        ranks restore the *same* generation id — staged cuts commit
        atomically across ranks, so falling back independently can only
        land on a cut every peer also holds; a mismatch means the
        stores were managed outside :meth:`checkpoint_all_2pc`.
        """
        if len(stores) != self.size:
            raise ValueError("one store per rank required")
        reports = [
            r.session.restart_latest(store, retries=retries, backoff_s=backoff_s)
            for r, store in zip(self.ranks, stores)
        ]
        cut = {rep.generation for rep in reports}
        if len(cut) > 1:
            raise CheckpointError(
                f"ranks restored inconsistent generations {sorted(cut)} — "
                "stores must be populated via checkpoint_all_2pc"
            )
        self.barrier()
        return reports

    # -- utilities ---------------------------------------------------------------------

    def max_clock_s(self) -> float:
        """The job's virtual makespan so far (max over ranks), seconds."""
        return max(r.clock_ns for r in self.ranks) / 1e9
