"""Hybrid MPI+CUDA checkpointing — the paper's §6 proof of principle.

"Further, a proof of principle was demonstrated for checkpointing of
hybrid MPI+CUDA on a single node. In future work, this proof of
principle … will be extended to full support for MPI on multiple
nodes." (paper §6)

This package provides that single-node proof of principle on the
simulated substrate:

- :class:`~repro.mpi.world.MpiWorld` — N ranks, each a full CRAC session
  (own process, own lower half, shared-model GPU node), with LogP-style
  virtual-time message passing (point-to-point, barrier, allreduce);
- coordinated checkpointing: the DMTCP coordinator quiesces all ranks at
  a barrier, checkpoints each rank's upper half + CUDA state, and can
  kill and restart the whole job with every rank's pointers intact;
- :class:`~repro.mpi.jacobi.MpiJacobi` — a distributed Jacobi solver
  with GPU compute and halo exchange, the canonical MPI+CUDA pattern.
"""

from repro.mpi.jacobi import MpiJacobi
from repro.mpi.world import MpiRank, MpiWorld

__all__ = ["MpiWorld", "MpiRank", "MpiJacobi"]
