"""Structured span/counter tracing over the whole virtual-time stack.

The tracer is the observability counterpart of the sanitizer: opt-in
(``attach``/``detach`` — a ``None`` tracer attribute costs nothing),
restart-surviving (the session re-attaches it to the fresh runtime and
opens a new *splice segment*, so the logical timeline stays monotone
across a checkpoint-restart cut), and self-accounting (every API-level
hook charges the calibrated ``TRACE_HOOK_NS``, so the tracer's own
overhead is a measured quantity instead of an invisible perturbation).

Span taxonomy (``cat`` / track):

- ``api``      / ``api``           — upper→lower CUDA call spans, with
  trampoline-overhead attribution in ``args`` (``trampoline_ns`` = the
  dispatch cost beyond a bare library call: fs switches, entry-table
  indirection, coordinator notify);
- ``kernel``   / ``stream-<sid>``  — device kernel execution spans, one
  track per stream;
- ``copy``     / ``copy-<engine>`` — DMA spans, one track per engine
  (h2d / d2h / d2d);
- ``uvm``      / ``uvm``           — page fault/migration instants;
- ``ckpt``     / ``ckpt``          — checkpoint-pipeline stage spans
  (quiesce → drain → stage → save-regions → write → commit, including
  forked COW windows on the background timeline);
- ``recovery`` / ``recovery``      — fault-domain ladder rungs
  (retry / stream-reset / restore) and restart spans.

A kernel launch opens a flow id pairing the ``cudaLaunchKernel`` API
span (phase ``"s"``) with the device execution span it produced (phase
``"f"``) — Perfetto draws the launch→execution arrow from the pair.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.gpu.timing import TRACE_HOOK_NS
from repro.trace.metrics import MetricsRegistry

#: categories of device-side spans (clamped on stream reset)
DEVICE_CATS = ("kernel", "copy")


@dataclass(frozen=True)
class Span:
    """One completed interval on a named track."""

    name: str
    cat: str  # "api" | "kernel" | "copy" | "ckpt" | "recovery"
    track: str
    start_ns: float
    end_ns: float
    #: splice segment (0 = before the first restart cut)
    segment: int = 0
    stream_sid: int | None = None
    flow_id: int | None = None
    flow_phase: str | None = None  # "s" (launch) | "f" (execution)
    args: tuple[tuple[str, object], ...] = ()

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns


@dataclass(frozen=True)
class Instant:
    """One point event on a named track."""

    name: str
    track: str
    ts_ns: float
    segment: int = 0
    args: tuple[tuple[str, object], ...] = ()


class Tracer:
    """Collects spans/instants/metrics from every instrumented layer.

    The tracer owns its event storage — device resets and restarts
    replace the runtime objects underneath it, but never lose recorded
    events (the device's own ``trace`` list, by contrast, dies with the
    device; the profiler splices that one explicitly).
    """

    def __init__(self, *, hook_ns: float = TRACE_HOOK_NS) -> None:
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        self.metrics = MetricsRegistry()
        #: current splice segment; bumped by :meth:`begin_segment`
        self.segment = 0
        #: total virtual time this tracer charged for its own hooks
        self.overhead_ns = 0.0
        self.hook_ns = hook_ns
        self._next_flow = 1
        self._pending_flow: int | None = None
        self._process = None

    # -- attachment (sanitizer-style: idempotent, restart-safe) ---------------

    def attach(self, backend) -> None:
        """(Re-)wire the tracer into a dispatch backend and its devices.

        Idempotent: re-attaching after a restart keeps every recorded
        span and just swaps the event sources underneath.
        """
        backend.tracer = self
        self._process = backend.process
        for dev in backend.runtime.devices:
            dev.tracer = self

    def detach(self, backend) -> None:
        """Unhook from ``backend``; recorded events are kept."""
        if getattr(backend, "tracer", None) is self:
            backend.tracer = None
        for dev in backend.runtime.devices:
            if getattr(dev, "tracer", None) is self:
                dev.tracer = None
        self._process = None

    def begin_segment(self, reason: str, at_ns: float) -> int:
        """Open a new splice segment (restart cut / device reset)."""
        self.segment += 1
        # A launch flow never crosses the cut: its device half is gone.
        self._pending_flow = None
        self.instants.append(
            Instant(f"segment:{reason}", "recovery", at_ns, self.segment)
        )
        self.metrics.counter("trace.segments").inc()
        return self.segment

    def _charge(self) -> None:
        self.overhead_ns += self.hook_ns
        proc = self._process
        if proc is not None and proc.alive:
            proc.advance(self.hook_ns)

    # -- hooks: API layer ------------------------------------------------------

    def on_api_call(
        self,
        name: str,
        start_ns: float,
        end_ns: float,
        *,
        trampoline_ns: float = 0.0,
        mode: str = "native",
    ) -> None:
        """One upper→lower dispatch completed (called by the backend)."""
        # Any armed-but-unconsumed flow is stale (its launch errored
        # before reaching the device); drop it so ids stay paired.
        self._pending_flow = None
        flow_id = phase = None
        if name == "cudaLaunchKernel":
            flow_id = self._next_flow
            self._next_flow += 1
            self._pending_flow = flow_id
            phase = "s"
        self.spans.append(Span(
            name, "api", "api", start_ns, end_ns, self.segment,
            flow_id=flow_id, flow_phase=phase,
            args=(("mode", mode), ("trampoline_ns", trampoline_ns)),
        ))
        m = self.metrics
        m.counter("api.calls").inc()
        m.counter(f"api.{name}").inc()
        if trampoline_ns:
            m.counter("api.trampoline_ns").inc(trampoline_ns)
        m.histogram("api.dispatch_ns").record(end_ns - start_ns)
        self._charge()

    # -- hooks: device layer ---------------------------------------------------

    def on_device_op(
        self,
        kind: str,
        label: str,
        stream_sid: int,
        start_ns: float,
        end_ns: float,
        *,
        engine: str | None = None,
        nbytes: int | None = None,
    ) -> None:
        """One device op was scheduled (called by :class:`GpuDevice`)."""
        flow_id = phase = None
        if kind == "kernel" and self._pending_flow is not None:
            flow_id = self._pending_flow
            phase = "f"
            self._pending_flow = None
        track = f"copy-{engine}" if kind == "copy" else f"stream-{stream_sid}"
        args = (("nbytes", nbytes),) if nbytes is not None else ()
        self.spans.append(Span(
            label, kind, track, start_ns, end_ns, self.segment,
            stream_sid=stream_sid, flow_id=flow_id, flow_phase=phase,
            args=args,
        ))
        m = self.metrics
        if kind == "kernel":
            m.counter("device.kernels").inc()
            m.histogram("device.kernel_ns").record(end_ns - start_ns)
        else:
            m.counter("device.copies").inc()
            if nbytes:
                m.counter(f"device.copied_bytes.{engine}").inc(nbytes)

    def clamp_stream(self, stream_sid: int, now_ns: float) -> None:
        """Rung-2 stream reset: the hung in-flight op is abandoned.

        Spans on the reset stream that had not finished by ``now_ns``
        are clamped to the reset instant and relabelled ``aborted:``;
        spans that had not even *started* (queued behind the fault) are
        dropped — the fault domain replays them, producing fresh
        ``replay:`` spans.
        """
        out: list[Span] = []
        for s in self.spans:
            if (
                s.cat not in DEVICE_CATS
                or s.stream_sid != stream_sid
                or s.segment != self.segment
                or s.end_ns <= now_ns
            ):
                out.append(s)
            elif s.start_ns < now_ns:
                out.append(Span(
                    f"aborted:{s.name}", s.cat, s.track, s.start_ns, now_ns,
                    s.segment, stream_sid=s.stream_sid, flow_id=s.flow_id,
                    flow_phase=s.flow_phase, args=s.args,
                ))
        self.spans = out
        self.metrics.counter("recovery.clamped_streams").inc()

    # -- hooks: UVM ------------------------------------------------------------

    def on_uvm_migration(
        self, addr: int, *, pages: int, nbytes: int, cost_ns: float, to: str
    ) -> None:
        """A page migration was serviced (called by the UVM manager)."""
        ts = self._process.clock_ns if self._process is not None else 0.0
        self.instants.append(Instant(
            f"uvm-migrate:{to}", "uvm", ts, self.segment,
            args=(
                ("addr", addr), ("pages", pages), ("nbytes", nbytes),
                ("cost_ns", cost_ns),
            ),
        ))
        self.metrics.counter("uvm.faults").inc(pages)
        self.metrics.counter("uvm.migrated_bytes").inc(nbytes)

    # -- hooks: checkpoint pipeline / recovery ladder --------------------------

    def ckpt_span(self, name: str, start_ns: float, end_ns: float, **args) -> None:
        """One checkpoint-pipeline stage (drain/stage/write/commit/...)."""
        self.spans.append(Span(
            name, "ckpt", "ckpt", start_ns, end_ns, self.segment,
            args=tuple(sorted(args.items())),
        ))
        self.metrics.counter(f"ckpt.{name}").inc()
        self.metrics.counter(f"ckpt.{name}_ns").inc(end_ns - start_ns)

    def recovery_span(self, rung: str, start_ns: float, end_ns: float, **args) -> None:
        """One recovery-ladder rung (retry/stream-reset/restore/restart)."""
        self.spans.append(Span(
            rung, "recovery", "recovery", start_ns, end_ns, self.segment,
            args=tuple(sorted(args.items())),
        ))
        self.metrics.counter(f"recovery.{rung}").inc()

    def instant(self, track: str, name: str, ts_ns: float, **args) -> None:
        """Record a point event on an arbitrary track."""
        self.instants.append(Instant(
            name, track, ts_ns, self.segment, args=tuple(sorted(args.items())),
        ))

    # -- aggregation -----------------------------------------------------------

    def device_busy_ns(self) -> dict[str, float]:
        """Total device busy time per category, summed over all spans
        (cross-checked against ``Nvprof.timeline_report`` by the CLI)."""
        busy = {"kernel": 0.0, "copy": 0.0}
        for s in self.spans:
            if s.cat in busy:
                busy[s.cat] += s.duration_ns
        return busy

    def api_call_counter(self) -> Counter:
        """Per-name count of traced API call spans (eq. 2 cross-check)."""
        return Counter(s.name for s in self.spans if s.cat == "api")
