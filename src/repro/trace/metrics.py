"""Metrics registry: counters, gauges, and histograms.

The registry is the aggregate half of :mod:`repro.trace` — where spans
record *when* something happened, metrics record *how much* of it
happened. Everything is deterministic (no wall clocks, no sampling):
two identical runs produce byte-identical snapshots, so metrics
snapshots can be diffed across commits like any other benchmark output.

Histograms bucket by powers of two, which is enough resolution to tell
"microsecond kernels" from "millisecond kernels" without making the
snapshot depend on bucket-boundary tuning.
"""

from __future__ import annotations

import math


class CounterMetric:
    """Monotonically increasing value (counts, bytes, nanoseconds)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount


class GaugeMetric:
    """Last-written value (sizes, ratios, current depths)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self.value = value


class HistogramMetric:
    """Power-of-two bucketed distribution with exact count/total/min/max."""

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        #: bucket exponent -> count; a value lands in the smallest
        #: bucket 2**e that is >= value (e=0 for values <= 1).
        self.buckets: dict[int, int] = {}

    def record(self, value: float) -> None:
        """Fold one observation into the distribution."""
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        exp = max(0, math.ceil(math.log2(value))) if value > 1.0 else 0
        self.buckets[exp] = self.buckets.get(exp, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        """JSON-safe summary: count/total/min/max/mean + bucket counts."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "buckets": {
                str(2**exp): n for exp, n in sorted(self.buckets.items())
            },
        }


class MetricsRegistry:
    """Named get-or-create registry of the three metric kinds."""

    def __init__(self) -> None:
        self._counters: dict[str, CounterMetric] = {}
        self._gauges: dict[str, GaugeMetric] = {}
        self._histograms: dict[str, HistogramMetric] = {}

    def counter(self, name: str) -> CounterMetric:
        """Get (or create) the counter called ``name``."""
        m = self._counters.get(name)
        if m is None:
            m = self._counters[name] = CounterMetric(name)
        return m

    def gauge(self, name: str) -> GaugeMetric:
        """Get (or create) the gauge called ``name``."""
        m = self._gauges.get(name)
        if m is None:
            m = self._gauges[name] = GaugeMetric(name)
        return m

    def histogram(self, name: str) -> HistogramMetric:
        """Get (or create) the histogram called ``name``."""
        m = self._histograms.get(name)
        if m is None:
            m = self._histograms[name] = HistogramMetric(name)
        return m

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other``'s metrics into this registry.

        Counters add, gauges take the other's (later) value, histograms
        fold count/total/min/max and add per-bucket counts — so merging
        per-cell registries yields the same snapshot a single shared
        registry would have produced.
        """
        for name, m in other._counters.items():
            self.counter(name).inc(m.value)
        for name, m in other._gauges.items():
            self.gauge(name).set(m.value)
        for name, m in other._histograms.items():
            mine = self.histogram(name)
            mine.count += m.count
            mine.total += m.total
            mine.min = min(mine.min, m.min)
            mine.max = max(mine.max, m.max)
            for exp, n in m.buckets.items():
                mine.buckets[exp] = mine.buckets.get(exp, 0) + n

    def snapshot(self) -> dict:
        """JSON-safe, key-sorted snapshot of every registered metric."""
        return {
            "counters": {
                k: self._counters[k].value for k in sorted(self._counters)
            },
            "gauges": {
                k: self._gauges[k].value for k in sorted(self._gauges)
            },
            "histograms": {
                k: self._histograms[k].snapshot()
                for k in sorted(self._histograms)
            },
        }
