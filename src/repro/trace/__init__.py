"""Unified tracing/metrics layer for the virtual-time stack.

Attach a :class:`Tracer` to any dispatch backend (or let
``CracSession.enable_trace`` do it) and every layer — API dispatch,
device streams, UVM, the checkpoint pipeline, the fault-domain recovery
ladder — reports structured spans and counters into it. Export with
:func:`to_chrome_trace` / :func:`write_chrome_trace` for Perfetto.
"""

from repro.trace.core import DEVICE_CATS, Instant, Span, Tracer
from repro.trace.export import assign_tracks, to_chrome_trace, write_chrome_trace
from repro.trace.metrics import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
)

__all__ = [
    "DEVICE_CATS",
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "Instant",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "assign_tracks",
    "to_chrome_trace",
    "write_chrome_trace",
]
