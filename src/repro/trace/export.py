"""Chrome/Perfetto ``trace_event`` JSON export.

Produces the JSON Object Format of the Trace Event spec: a
``traceEvents`` array of complete (``"X"``) duration events, instant
(``"i"``) events, and flow (``"s"``/``"f"``) pairs, plus metadata
(``"M"``) events naming every process/thread row. Load the file in
``chrome://tracing`` or https://ui.perfetto.dev.

Track layout:

- pid 1 ("host"): one thread row per host-side track — ``api``,
  ``ckpt``, ``recovery``, ``uvm`` (fixed tid order, so two exports of
  the same run are byte-identical);
- pid 2 ("device"): one thread row per stream (``stream-<sid>``, sorted
  numerically) followed by one per copy engine (``copy-<engine>``).

Timestamps are microseconds (the spec's unit) with fractional
nanosecond precision; span ``args`` carry the splice segment so a
restarted run's pre/post-cut halves stay distinguishable.
"""

from __future__ import annotations

import json

HOST_PID = 1
DEVICE_PID = 2

#: fixed tid precedence of the host-side tracks (stability guarantee)
_HOST_TRACK_ORDER = ("api", "ckpt", "recovery", "uvm")


def _track_sort_key(track: str) -> tuple:
    if track.startswith("stream-"):
        try:
            sid = int(track.split("-", 1)[1])
        except ValueError:
            sid = 1 << 30
        return (DEVICE_PID, 0, sid, track)
    if track.startswith("copy-"):
        return (DEVICE_PID, 1, 0, track)
    try:
        pref = _HOST_TRACK_ORDER.index(track)
    except ValueError:
        pref = len(_HOST_TRACK_ORDER)
    return (HOST_PID, pref, 0, track)


def assign_tracks(tracer) -> dict[str, tuple[int, int]]:
    """Deterministic ``track -> (pid, tid)`` assignment."""
    names = {s.track for s in tracer.spans}
    names.update(i.track for i in tracer.instants)
    mapping: dict[str, tuple[int, int]] = {}
    tids = {HOST_PID: 0, DEVICE_PID: 0}
    for track in sorted(names, key=_track_sort_key):
        pid = _track_sort_key(track)[0]
        tids[pid] += 1
        mapping[track] = (pid, tids[pid])
    return mapping


def _paired_flow_ids(tracer) -> set[int]:
    """Flow ids with both an ``"s"`` and an ``"f"`` half.

    An unpaired half (launch errored before the device saw it, or the
    device span was clamped away by a stream reset) is not emitted —
    the spec requires every flow id to form a complete arrow.
    """
    seen: dict[int, set[str]] = {}
    for s in tracer.spans:
        if s.flow_id is not None and s.flow_phase is not None:
            seen.setdefault(s.flow_id, set()).add(s.flow_phase)
    return {fid for fid, phases in seen.items() if phases == {"s", "f"}}


def to_chrome_trace(tracer, *, label: str | None = None) -> dict:
    """Render the tracer's state as a ``trace_event`` JSON object."""
    tracks = assign_tracks(tracer)
    meta: list[dict] = []
    for pid, pname in ((HOST_PID, "host"), (DEVICE_PID, "device")):
        if any(p == pid for p, _ in tracks.values()):
            meta.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": pname},
            })
    for track, (pid, tid) in sorted(tracks.items(), key=lambda kv: kv[1]):
        meta.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": track},
        })

    paired = _paired_flow_ids(tracer)
    events: list[dict] = []
    for s in tracer.spans:
        pid, tid = tracks[s.track]
        args = dict(s.args)
        args["segment"] = s.segment
        events.append({
            "name": s.name, "cat": s.cat, "ph": "X",
            "ts": s.start_ns / 1000.0, "dur": s.duration_ns / 1000.0,
            "pid": pid, "tid": tid, "args": args,
        })
        if s.flow_id in paired:
            flow = {
                "name": "launch", "cat": "flow", "ph": s.flow_phase,
                "id": s.flow_id, "ts": s.start_ns / 1000.0,
                "pid": pid, "tid": tid,
            }
            if s.flow_phase == "f":
                flow["bp"] = "e"  # bind to the enclosing slice
            events.append(flow)
    for i in tracer.instants:
        pid, tid = tracks[i.track]
        args = dict(i.args)
        args["segment"] = i.segment
        events.append({
            "name": i.name, "cat": i.track, "ph": "i", "s": "t",
            "ts": i.ts_ns / 1000.0, "pid": pid, "tid": tid, "args": args,
        })
    events.sort(key=lambda e: (e["ts"], e["pid"], e["tid"], e["ph"]))

    other = {
        "metrics": tracer.metrics.snapshot(),
        "segments": tracer.segment + 1,
        "trace_overhead_ns": tracer.overhead_ns,
    }
    if label is not None:
        other["label"] = label
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(tracer, path: str, *, label: str | None = None) -> dict:
    """Write the Chrome trace JSON to ``path``; returns the object."""
    obj = to_chrome_trace(tracer, label=label)
    with open(path, "w") as fh:
        json.dump(obj, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return obj
