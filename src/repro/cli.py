"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``list-apps`` — every workload with its Table 1/2 metadata;
- ``run APP``   — run a workload under any dispatcher, optionally with a
  mid-run checkpoint + kill + restart;
- ``reproduce WHAT`` — regenerate one (or all) of the paper's tables and
  figures at a chosen scale;
- ``fault-sim`` — §1(a)/(b) fault-tolerance economics: Young/Daly
  intervals, the analytic makespan, a Monte-Carlo check, and (with
  ``--session``) an end-to-end cross-validation that drives the real
  checkpoint pipeline with injected checkpoint/restore-stage faults;
- ``ckpt-bench`` — full vs incremental vs forked checkpoint stall
  comparison over Rodinia workloads, emitting ``BENCH_delta_ckpt.json``;
- ``perf-bench`` — wall-clock benchmark of the dirty-tracking/sanitizer
  hot paths (legacy vs vectorized, plus end-to-end capture/sanitize
  timings) with a calibration-normalized regression gate against the
  committed baseline; emits ``BENCH_perf.json``;
- ``fault-campaign`` — GPU runtime fault campaign: sweep fault class ×
  MTBF over guarded application runs, report per-rung recovery counts,
  lost virtual work, and bit-correctness, plus the
  rank-death-during-2PC scenario; emits ``BENCH_fault_campaign.json``;
- ``migrate`` — cluster migration bench: live (pre-copy) vs naive
  (stop-ship-restore) blackout across heterogeneous nodes, elastic
  N → M restore, scripted link faults, and rung-4 node failover;
  emits ``BENCH_migration.json``;
- ``serve-bench`` — multi-tenant serving-tier chaos campaign: hundreds
  of concurrent sessions through admission control, checkpoint-backed
  eviction, and the recovery ladder across fault cells (ECC, kernel
  hangs, node death, eviction storms); gates on zero lost sessions,
  digest equality, and p99 resume latency vs the committed baseline;
  emits ``BENCH_serve.json``;
- ``sanitize`` — compute-sanitizer-style hazard analysis: run one
  workload under the dynamic checkers (racecheck/synccheck/memcheck/
  initcheck), run the checkpoint-determinism lint, or run the full CI
  gate (planted-hazard detection + clean-app sweep + lint + overhead
  bound), emitting ``BENCH_sanitizer.json``;
- ``trace`` — run one workload with the unified tracer + profiler
  attached, write a Chrome/Perfetto ``trace_event`` JSON (load it at
  https://ui.perfetto.dev), and emit ``BENCH_trace.json`` with the
  overhead ratio, digest equality, and busy-ns/eq. 2 cross-checks;
- ``info``      — package version plus the calibrated cost model.
"""

from __future__ import annotations

import argparse
import sys

from repro._version import __version__
from repro.apps import (
    CublasMicro,
    Hpgmg,
    Hypre,
    Lulesh,
    SimpleStreams,
    UnifiedMemoryStreams,
)
from repro.apps.rodinia import RODINIA_SUITE

APP_REGISTRY = {cls.name.lower(): cls for cls in RODINIA_SUITE}
APP_REGISTRY.update(
    {
        "simplestreams": SimpleStreams,
        "unifiedmemorystreams": UnifiedMemoryStreams,
        "lulesh": Lulesh,
        "hpgmg": Hpgmg,
        "hypre": Hypre,
        "cublas": CublasMicro,
    }
)

EXPERIMENTS = (
    "fig0", "table1", "table2", "fig2", "fig3", "fig4",
    "fig5", "fig5c", "table3", "fig6", "all",
)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CRAC (SC 2020) reproduction: run workloads and "
        "regenerate the paper's evaluation.",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-apps", help="list available workloads")
    sub.add_parser("info", help="show the calibrated cost model")

    cal = sub.add_parser(
        "calibrate", help="print target-vs-measured calibration for all apps"
    )
    cal.add_argument("--scale", type=float, default=1.0)

    run = sub.add_parser("run", help="run one workload")
    run.add_argument("app", choices=sorted(APP_REGISTRY))
    run.add_argument("--mode", default="native",
                     choices=["native", "crac", "crum", "proxy-cma", "crcuda"])
    run.add_argument("--scale", type=float, default=0.05)
    run.add_argument("--gpu", default="V100", choices=["V100", "K600"])
    run.add_argument("--fsgsbase", action="store_true",
                     help="model the FSGSBASE kernel patch")
    run.add_argument("--checkpoint-at", type=float, default=None,
                     metavar="FRACTION",
                     help="take a checkpoint (CRAC only) at this progress")
    run.add_argument("--no-restart", action="store_true",
                     help="checkpoint without kill+restart")
    run.add_argument("--gzip", action="store_true",
                     help="enable DMTCP gzip compression")
    run.add_argument("--seed", type=int, default=0)

    rep = sub.add_parser("reproduce", help="regenerate a table/figure")
    rep.add_argument("what", choices=EXPERIMENTS)
    rep.add_argument("--scale", type=float, default=0.05)
    rep.add_argument("--bars", action="store_true",
                     help="render runtime figures as ASCII bar charts")

    fs = sub.add_parser(
        "fault-sim",
        help="fault-tolerance economics: analytic vs Monte-Carlo vs "
        "end-to-end session runs",
    )
    fs.add_argument("--work", type=float, default=2000.0,
                    help="job length in seconds of useful work")
    fs.add_argument("--mtbf", type=float, default=600.0,
                    help="mean time between failures, seconds")
    fs.add_argument("--interval", type=float, default=None,
                    help="checkpoint interval (default: Young's optimum)")
    fs.add_argument("--checkpoint-cost", type=float, default=1.0)
    fs.add_argument("--restart-cost", type=float, default=4.0)
    fs.add_argument("--runs", type=int, default=100,
                    help="Monte-Carlo repetitions")
    fs.add_argument("--session", action="store_true",
                    help="also cross-validate with end-to-end CracSession "
                    "runs through the real checkpoint store")
    fs.add_argument("--session-runs", type=int, default=3)
    fs.add_argument("--ckpt-fault-prob", type=float, default=0.0,
                    metavar="P", help="per-region fault probability while "
                    "the store writes an image (session mode)")
    fs.add_argument("--restore-fault-prob", type=float, default=0.0,
                    metavar="P", help="per-attempt mid-restore fault "
                    "probability (session mode)")
    fs.add_argument("--seed", type=int, default=0)

    cb = sub.add_parser(
        "ckpt-bench",
        help="full vs incremental vs forked checkpoint stall comparison",
    )
    cb.add_argument("--apps", nargs="+", default=["gaussian", "kmeans"],
                    choices=sorted(APP_REGISTRY),
                    help="workloads to sweep (large-image Rodinia apps "
                    "show the effect best)")
    cb.add_argument("--scale", type=float, default=1.0)
    cb.add_argument("--cuts", type=int, default=4,
                    help="number of evenly spaced checkpoint cuts")
    cb.add_argument("--gpu", default="V100", choices=["V100", "K600"])
    cb.add_argument("--out", default="BENCH_delta_ckpt.json",
                    metavar="PATH", help="write the JSON report here "
                    "('-' to skip)")
    cb.add_argument("--smoke", action="store_true",
                    help="CI smoke mode: cap the scale so the sweep "
                    "finishes in seconds")
    cb.add_argument("--seed", type=int, default=0)

    pb = sub.add_parser(
        "perf-bench",
        help="hot-path wall-clock benchmark + perf-regression gate",
    )
    pb.add_argument("--apps", nargs="+", default=["gaussian", "kmeans"],
                    choices=sorted(APP_REGISTRY),
                    help="workloads for the end-to-end sections (the "
                    "largest Rodinia apps by default)")
    pb.add_argument("--scale", type=float, default=1.0)
    pb.add_argument("--repeats", type=int, default=20,
                    help="repetitions per wall metric (aggregated; "
                    "higher = more stable)")
    pb.add_argument("--cuts", type=int, default=4,
                    help="number of evenly spaced checkpoint cuts")
    pb.add_argument("--gpu", default="V100", choices=["V100", "K600"])
    pb.add_argument("--baseline", default=None, metavar="PATH",
                    help="baseline JSON to gate against (default: "
                    "benchmarks/BENCH_perf_baseline.json; '-' to skip "
                    "the gate)")
    pb.add_argument("--update-baseline", action="store_true",
                    help="write this run's metrics to the baseline path "
                    "instead of gating against it")
    pb.add_argument("--out", default="BENCH_perf.json",
                    metavar="PATH", help="write the JSON report here "
                    "('-' to skip)")
    pb.add_argument("--smoke", action="store_true",
                    help="CI smoke mode: fewer repeats and smaller "
                    "micro traces so the bench finishes in seconds")
    pb.add_argument("--seed", type=int, default=0)

    fc = sub.add_parser(
        "fault-campaign",
        help="GPU runtime fault campaign: fault class × MTBF sweep "
        "through the recovery ladder",
    )
    fc.add_argument("--apps", nargs="+", default=["gaussian", "kmeans"],
                    choices=sorted(APP_REGISTRY),
                    help="workloads to sweep")
    fc.add_argument("--scale", type=float, default=0.05,
                    help="app scale (faults need fully-real iterations, "
                    "so keep it small)")
    fc.add_argument("--gpu", default="V100", choices=["V100", "K600"])
    fc.add_argument("--classes", nargs="+", default=None,
                    choices=["ecc", "kernel-hang", "copy-stall",
                             "xfer-corrupt", "uvm-storm"],
                    help="fault classes to sweep (default: all)")
    fc.add_argument("--mtbf", nargs="+", type=float, default=None,
                    metavar="S",
                    help="absolute MTBF values in virtual seconds "
                    "(default: --mtbf-factors of each app's baseline "
                    "runtime)")
    fc.add_argument("--mtbf-factors", nargs="+", type=float,
                    default=[0.5, 0.2], metavar="F",
                    help="per-app MTBF as a fraction of its fault-free "
                    "runtime")
    fc.add_argument("--ranks", type=int, default=3,
                    help="ranks in the rank-death-during-2PC scenario")
    fc.add_argument("--out", default="BENCH_fault_campaign.json",
                    metavar="PATH", help="write the JSON report here "
                    "('-' to skip)")
    fc.add_argument("--smoke", action="store_true",
                    help="CI smoke mode: cap the scale and sweep one "
                    "fault class per ladder rung")
    fc.add_argument("--seed", type=int, default=0)

    mg = sub.add_parser(
        "migrate",
        help="cluster migration bench: live vs naive blackout, elastic "
        "N-to-M restore, link faults, rung-4 node failover",
    )
    mg.add_argument("--apps", nargs="+", default=["gaussian", "kmeans"],
                    choices=sorted(APP_REGISTRY),
                    help="workloads to migrate mid-run")
    mg.add_argument("--scale", type=float, default=0.05,
                    help="problem-size scale in (0, 1]")
    mg.add_argument("--gpu-src", default="V100", choices=["V100", "K600"],
                    help="GPU model the jobs start on")
    mg.add_argument("--gpu-dst", default="K600", choices=["V100", "K600"],
                    help="GPU model the jobs migrate onto (a different "
                    "model exercises heterogeneous restore)")
    mg.add_argument("--ranks", type=int, default=3,
                    help="ranks in the elastic-restore source world")
    mg.add_argument("--elastic-to", nargs="+", type=int, default=[2, 5],
                    metavar="M",
                    help="rank counts to elastically restore onto")
    mg.add_argument("--out", default="BENCH_migration.json",
                    metavar="PATH", help="write the JSON report here "
                    "('-' to skip)")
    mg.add_argument("--smoke", action="store_true",
                    help="CI smoke mode: cap the scale and shrink the "
                    "elastic region")
    mg.add_argument("--seed", type=int, default=0)

    sv = sub.add_parser(
        "serve-bench",
        help="multi-tenant serving-tier chaos campaign: admission, "
        "eviction, recovery ladder, node death",
    )
    sv.add_argument("--sessions", type=int, default=200,
                    help="concurrent sessions per cell")
    sv.add_argument("--nodes", type=int, default=4,
                    help="serving nodes in the pool")
    sv.add_argument("--slots", type=int, default=12,
                    help="GPU slots (hot sessions) per node")
    sv.add_argument("--waves", type=int, default=2,
                    help="request waves over the whole population")
    sv.add_argument("--state-elems", type=int, default=64,
                    help="float32 elements of per-session state")
    sv.add_argument("--baseline", default=None, metavar="PATH",
                    help="baseline JSON to gate against (default: "
                    "benchmarks/BENCH_serve_baseline.json; '-' to skip "
                    "the gate)")
    sv.add_argument("--update-baseline", action="store_true",
                    help="write this run's metrics to the baseline path "
                    "instead of gating against it")
    sv.add_argument("--out", default="BENCH_serve.json",
                    metavar="PATH", help="write the JSON report here "
                    "('-' to skip)")
    sv.add_argument("--smoke", action="store_true",
                    help="CI smoke mode: cap sessions and waves so the "
                    "campaign finishes in seconds")
    sv.add_argument("--seed", type=int, default=0)

    sp = sub.add_parser(
        "spec-bench",
        help="speculative-checkpoint bench: near-zero stall vs forked "
        "mode at equal image fidelity + regression gate",
    )
    sp.add_argument("--apps", nargs="+", default=["gaussian", "kmeans"],
                    choices=sorted(APP_REGISTRY),
                    help="workloads to compare (large-image Rodinia apps "
                    "show the stall gap best)")
    sp.add_argument("--scale", type=float, default=0.5)
    sp.add_argument("--cuts", type=int, default=3,
                    help="number of evenly spaced checkpoint cuts")
    sp.add_argument("--gpu", default="V100", choices=["V100", "K600"])
    sp.add_argument("--baseline", default=None, metavar="PATH",
                    help="baseline JSON to gate against (default: "
                    "benchmarks/BENCH_spec_baseline.json; '-' to skip "
                    "the gate)")
    sp.add_argument("--update-baseline", action="store_true",
                    help="write this run's stall ratios to the baseline "
                    "path instead of gating against it")
    sp.add_argument("--out", default="BENCH_spec.json",
                    metavar="PATH", help="write the JSON report here "
                    "('-' to skip)")
    sp.add_argument("--smoke", action="store_true",
                    help="CI smoke mode: cap the scale and cuts so the "
                    "comparison finishes in seconds")
    sp.add_argument("--seed", type=int, default=0)

    sz = sub.add_parser(
        "sanitize",
        help="hazard analysis: dynamic checkers over one workload, the "
        "determinism lint, or the full CI gate",
    )
    sz.add_argument("app", nargs="?", choices=sorted(APP_REGISTRY),
                    help="workload to check (omit with --lint/--gate)")
    sz.add_argument("--mode", default="crac",
                    choices=["native", "crac", "crum", "proxy-cma",
                             "crcuda"])
    sz.add_argument("--scale", type=float, default=0.05)
    sz.add_argument("--gpu", default="V100", choices=["V100", "K600"])
    sz.add_argument("--checkpoint-at", type=float, default=None,
                    metavar="FRACTION",
                    help="take a CRAC checkpoint at this progress "
                    "(exercises synccheck)")
    sz.add_argument("--lint", action="store_true",
                    help="run only the static determinism lint over "
                    "src/repro")
    sz.add_argument("--gate", action="store_true",
                    help="run the full CI gate (planted detection + "
                    "clean apps + lint + overhead)")
    sz.add_argument("--out", default="BENCH_sanitizer.json",
                    metavar="PATH", help="write the gate JSON report "
                    "here ('-' to skip)")
    sz.add_argument("--smoke", action="store_true",
                    help="CI smoke mode: cap the clean-sweep scale")
    sz.add_argument("--seed", type=int, default=0)

    an = sub.add_parser(
        "analyze",
        help="whole-program static analysis: API-wiring consistency, "
        "replay-determinism dataflow, and the determinism lint; fails "
        "on any unbaselined finding",
    )
    an.add_argument("--gate", action="store_true",
                    help="also run the planted-violation corpus "
                    "(100%% detection / 0 false positives) — the CI mode")
    an.add_argument("--baseline", default="benchmarks/ANALYSIS_baseline.json",
                    metavar="PATH",
                    help="committed baseline of accepted findings")
    an.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline to accept every current "
                    "finding; requires --justify")
    an.add_argument("--justify", default=None, metavar="MSG",
                    help="justification stamped on every finding accepted "
                    "by --update-baseline (required; placeholders like "
                    "'TODO' are refused — the justification audit rejects "
                    "them)")
    an.add_argument("--out", default="-", metavar="PATH",
                    help="write the findings/inventory JSON report here")
    an.add_argument("--sarif", default=None, metavar="PATH",
                    help="also export SARIF 2.1.0 for code-scanning UIs")

    tr = sub.add_parser(
        "trace",
        help="run one workload under the unified tracer and export a "
        "Chrome/Perfetto trace + BENCH_trace.json",
    )
    tr.add_argument("app", choices=sorted(APP_REGISTRY))
    tr.add_argument("--mode", default="crac",
                    choices=["native", "crac", "crum", "proxy-cma",
                             "crcuda"])
    tr.add_argument("--scale", type=float, default=0.05)
    tr.add_argument("--gpu", default="V100", choices=["V100", "K600"])
    tr.add_argument("--checkpoint-at", type=float, default=None,
                    metavar="FRACTION",
                    help="take a CRAC checkpoint + kill + restart at this "
                    "progress (exercises the restart splice)")
    tr.add_argument("--trace-out", default=None, metavar="PATH",
                    help="Chrome trace output path (default "
                    "trace_<app>.json, '-' to skip)")
    tr.add_argument("--out", default="BENCH_trace.json",
                    metavar="PATH", help="write the JSON report here "
                    "('-' to skip)")
    tr.add_argument("--smoke", action="store_true",
                    help="CI smoke mode: cap the scale")
    tr.add_argument("--seed", type=int, default=0)
    return parser


def cmd_list_apps(out) -> int:
    """``repro list-apps``."""
    print(f"{'name':<22} {'UVM':<4} {'streams':<8} {'paper args'}", file=out)
    print("-" * 78, file=out)
    for name in sorted(APP_REGISTRY):
        cls = APP_REGISTRY[name]
        print(
            f"{name:<22} {'✓' if cls.uses_uvm else '✗':<4} "
            f"{cls.stream_range if cls.uses_streams else '—':<8} "
            f"{cls.cli_args}",
            file=out,
        )
    return 0


def cmd_info(out) -> int:
    """``repro info``: version + cost model."""
    from repro.gpu.timing import DEFAULT_HOST_COSTS, GPU_SPECS

    print(f"repro {__version__} — CRAC (SC 2020) reproduction", file=out)
    print("\nGPU models:", file=out)
    for key, spec in GPU_SPECS.items():
        print(
            f"  {key}: {spec.name}, CC {spec.compute_capability[0]}."
            f"{spec.compute_capability[1]}, {spec.memory_bytes >> 30} GB, "
            f"{spec.max_concurrent_kernels} concurrent kernels",
            file=out,
        )
    c = DEFAULT_HOST_COSTS
    print("\nhost cost model (ns):", file=out)
    for field_name in (
        "native_dispatch_ns", "trampoline_body_ns", "log_record_ns",
        "crac_startup_ns", "replay_call_ns", "restart_bootstrap_ns",
        "ckpt_quiesce_ns",
    ):
        print(f"  {field_name:<22} {getattr(c, field_name):>14,.0f}", file=out)
    return 0


def cmd_run(args, out) -> int:
    """``repro run APP``."""
    from repro.harness import Machine, run_app

    cls = APP_REGISTRY[args.app]
    app = cls(scale=args.scale, seed=args.seed)
    machine = Machine(gpu=args.gpu, fsgsbase=args.fsgsbase, seed=args.seed)
    result = run_app(
        app,
        machine,
        mode=args.mode,
        checkpoint_at=args.checkpoint_at,
        restart_after_checkpoint=not args.no_restart,
        gzip=args.gzip,
        noise=False,
    )
    print(f"app:        {result.app_name} (scale={args.scale})", file=out)
    print(f"mode:       {result.mode} on {result.gpu}", file=out)
    print(f"runtime:    {result.runtime_exact_s:.4f} s (virtual)", file=out)
    print(f"CUDA calls: {result.cuda_calls:,} ({result.cps:,.0f}/s)", file=out)
    print(f"digest:     {result.digest:#010x}", file=out)
    for rec in result.checkpoints:
        print(
            f"checkpoint: {rec.checkpoint_s:.3f} s, {rec.size_mb:.1f} MB "
            f"at {rec.at_progress:.0%}",
            file=out,
        )
        if rec.restart_s is not None:
            print(
                f"restart:    {rec.restart_s:.3f} s "
                f"({rec.replayed_calls} calls replayed)",
                file=out,
            )
    return 0


def cmd_calibrate(args, out) -> int:
    """``repro calibrate``: target-vs-measured table."""
    from repro.harness.calibration import calibration_table, worst_error

    rows = calibration_table(scale=args.scale)
    print(
        f"{'app':<22} {'runtime s (tgt)':>18} {'calls (tgt)':>22} "
        f"{'image MB (tgt)':>20}",
        file=out,
    )
    print("-" * 86, file=out)
    for r in rows:
        print(
            f"{r.name:<22} "
            f"{r.measured_runtime_s:>8.1f} ({r.target_runtime_s:>6.1f}) "
            f"{r.measured_calls:>12,} ({r.target_calls:>7,}) "
            f"{r.measured_ckpt_mb:>10.0f} ({r.target_ckpt_mb:>6.0f})",
            file=out,
        )
    name, err = worst_error(rows)
    print(f"\nworst calibration error: {err:.1%} ({name})", file=out)
    return 0


def cmd_fault_sim(args, out) -> int:
    """``repro fault-sim``: Young/Daly vs Monte-Carlo vs session runs."""
    from repro.harness.fault_tolerance import (
        FaultSimulator,
        daly_interval,
        expected_completion_time,
        young_interval,
    )

    c, r, m = args.checkpoint_cost, args.restart_cost, args.mtbf
    tau_y = young_interval(c, m)
    tau_d = daly_interval(c, m)
    tau = args.interval if args.interval is not None else tau_y
    print(f"work {args.work:.0f} s, MTBF {m:.0f} s, "
          f"C {c:.2f} s, R {r:.2f} s", file=out)
    print(f"Young interval:  {tau_y:10.2f} s", file=out)
    print(f"Daly interval:   {tau_d:10.2f} s", file=out)
    print(f"using interval:  {tau:10.2f} s", file=out)
    analytic = expected_completion_time(args.work, tau, c, r, m)
    print(f"analytic makespan:    {analytic:10.2f} s", file=out)
    sim = FaultSimulator(mtbf_s=m, seed=args.seed)
    mc = sim.mean_makespan(args.work, tau, c, r, runs=args.runs)
    print(f"Monte-Carlo makespan: {mc:10.2f} s "
          f"({args.runs} runs, {mc / analytic:.2f}× analytic)", file=out)
    no_ckpt = sim.mean_makespan(args.work, None, 0.0, r,
                                runs=max(1, args.runs // 5))
    print(f"no checkpointing:     {no_ckpt:10.2f} s "
          f"({no_ckpt / analytic:.2f}× analytic)", file=out)
    if args.session:
        cv = sim.cross_validate_session(
            args.work,
            args.interval,
            runs=args.session_runs,
            ckpt_fault_prob=args.ckpt_fault_prob,
            restore_fault_prob=args.restore_fault_prob,
        )
        print("\nsession-backed cross-validation (real pipeline, "
              "measured costs):", file=out)
        print(f"  measured C {cv.checkpoint_cost_s:.3f} s, "
              f"R {cv.restart_cost_s:.3f} s, "
              f"interval {cv.interval_s:.2f} s", file=out)
        print(f"  analytic  {cv.analytic_s:10.2f} s", file=out)
        print(f"  simulated {cv.simulated_s:10.2f} s "
              f"({cv.ratio:.2f}× analytic, {len(cv.outcomes)} runs)",
              file=out)
        for i, o in enumerate(cv.outcomes):
            print(f"  run {i}: {o.makespan_s:8.2f} s, "
                  f"{o.failures} failures, {o.checkpoints} ckpts, "
                  f"{o.aborted_checkpoints} aborted, "
                  f"{o.restart_attempts} restart attempts, "
                  f"{o.work_lost_s:.1f} s lost", file=out)
    return 0


def cmd_ckpt_bench(args, out) -> int:
    """``repro ckpt-bench``: checkpoint-mode stall sweep + JSON report."""
    import json

    from repro.harness.ckpt_bench import format_report, run_ckpt_bench

    scale = min(args.scale, 0.25) if args.smoke else args.scale
    report = run_ckpt_bench(
        [APP_REGISTRY[name] for name in args.apps],
        scale=scale,
        n_cuts=args.cuts,
        seed=args.seed,
        gpu=args.gpu,
    )
    print(format_report(report), file=out)
    if args.out != "-":
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.out}", file=out)
    return 0


def cmd_perf_bench(args, out) -> int:
    """``repro perf-bench``: hot-path wall bench + regression gate."""
    import json
    import os

    from repro.harness.perf_bench import (
        DEFAULT_BASELINE,
        baseline_payload,
        format_report,
        run_perf_bench,
    )

    baseline_path = args.baseline or DEFAULT_BASELINE
    baseline = None
    if not args.update_baseline and args.baseline != "-":
        if os.path.exists(baseline_path):
            with open(baseline_path) as fh:
                baseline = json.load(fh)
        else:
            print(f"note: no baseline at {baseline_path}; "
                  "gate records this run only", file=out)
    repeats = min(args.repeats, 10) if args.smoke else args.repeats
    report = run_perf_bench(
        [APP_REGISTRY[name] for name in args.apps],
        scale=args.scale,
        repeats=repeats,
        n_cuts=args.cuts,
        seed=args.seed,
        gpu=args.gpu,
        smoke=args.smoke,
        baseline=baseline,
    )
    print(format_report(report), file=out)
    if args.out != "-":
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.out}", file=out)
    if args.update_baseline:
        with open(baseline_path, "w") as fh:
            json.dump(baseline_payload(report), fh, indent=2,
                      sort_keys=True)
            fh.write("\n")
        print(f"wrote baseline {baseline_path}", file=out)
    return 0 if report["ok"] else 1


def cmd_fault_campaign(args, out) -> int:
    """``repro fault-campaign``: runtime fault sweep + JSON report."""
    import json

    from repro.harness.fault_tolerance import (
        format_fault_campaign,
        run_fault_campaign,
    )

    scale = min(args.scale, 0.05) if args.smoke else args.scale
    classes = args.classes
    if args.smoke and classes is None:
        # One class per ladder rung keeps the smoke run small while
        # still proving retry, stream-reset, and restore all fire.
        classes = ["xfer-corrupt", "kernel-hang", "ecc"]
    report = run_fault_campaign(
        [APP_REGISTRY[name] for name in args.apps],
        scale=scale,
        seed=args.seed,
        gpu=args.gpu,
        fault_classes=classes,
        mtbf_s=args.mtbf,
        mtbf_factors=tuple(args.mtbf_factors),
        rank_death_ranks=args.ranks,
    )
    print(format_fault_campaign(report), file=out)
    if args.out != "-":
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.out}", file=out)
    return 0


def cmd_migrate(args, out) -> int:
    """``repro migrate``: cluster migration bench + JSON report."""
    import json

    from repro.harness.migrate_bench import (
        format_migration_bench,
        run_migration_bench,
    )

    scale = min(args.scale, 0.05) if args.smoke else args.scale
    report = run_migration_bench(
        [APP_REGISTRY[name] for name in args.apps],
        scale=scale,
        seed=args.seed,
        gpu_src=args.gpu_src,
        gpu_dst=args.gpu_dst,
        ranks=args.ranks,
        elastic_to=tuple(args.elastic_to),
        smoke=args.smoke,
    )
    print(format_migration_bench(report), file=out)
    if args.out != "-":
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.out}", file=out)
    return 0


def cmd_serve_bench(args, out) -> int:
    """``repro serve-bench``: serving-tier chaos campaign + gate."""
    import json
    import os

    from repro.harness.serve_bench import (
        DEFAULT_BASELINE,
        baseline_payload,
        format_serve_bench,
        run_serve_bench,
    )

    baseline_path = args.baseline or DEFAULT_BASELINE
    gate_path: str | None = baseline_path
    if args.update_baseline or args.baseline == "-":
        gate_path = None
    elif not os.path.exists(baseline_path):
        print(f"note: no baseline at {baseline_path}; "
              "gate records this run only", file=out)
    report = run_serve_bench(
        sessions=args.sessions,
        nodes=args.nodes,
        slots=args.slots,
        waves=args.waves,
        seed=args.seed,
        state_elems=args.state_elems,
        smoke=args.smoke,
        baseline=gate_path,
    )
    print(format_serve_bench(report), file=out)
    if args.out != "-":
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.out}", file=out)
    if args.update_baseline:
        with open(baseline_path, "w") as fh:
            json.dump(baseline_payload(report), fh, indent=2,
                      sort_keys=True)
            fh.write("\n")
        print(f"wrote baseline {baseline_path}", file=out)
    return 0 if report["ok"] else 1


def cmd_spec_bench(args, out) -> int:
    """``repro spec-bench``: speculative vs forked stall + fidelity."""
    import json
    import os

    from repro.harness.spec_bench import (
        DEFAULT_BASELINE,
        baseline_payload,
        format_report,
        run_spec_bench,
    )

    baseline_path = args.baseline or DEFAULT_BASELINE
    baseline = None
    if not args.update_baseline and args.baseline != "-":
        if os.path.exists(baseline_path):
            with open(baseline_path) as fh:
                baseline = json.load(fh)
        else:
            print(f"note: no baseline at {baseline_path}; "
                  "gate records this run only", file=out)
    report = run_spec_bench(
        [APP_REGISTRY[name] for name in args.apps],
        scale=args.scale,
        n_cuts=args.cuts,
        seed=args.seed,
        gpu=args.gpu,
        smoke=args.smoke,
        baseline=baseline,
    )
    print(format_report(report), file=out)
    if args.out != "-":
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.out}", file=out)
    if args.update_baseline:
        with open(baseline_path, "w") as fh:
            json.dump(baseline_payload(report), fh, indent=2,
                      sort_keys=True)
            fh.write("\n")
        print(f"wrote baseline {baseline_path}", file=out)
    return 0 if report["ok"] else 1


def cmd_sanitize(args, out) -> int:
    """``repro sanitize``: hazard analysis / lint / CI gate."""
    import json

    if args.gate:
        from repro.sanitizer.gate import format_gate, run_gate

        scale = min(args.scale, 0.05) if args.smoke else args.scale
        report = run_gate(scale=scale, gpu=args.gpu, seed=args.seed)
        print(format_gate(report), file=out)
        if args.out != "-":
            with open(args.out, "w") as fh:
                json.dump(report, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"\nwrote {args.out}", file=out)
        return 0 if report["ok"] else 1

    if args.lint:
        from repro.sanitizer.lint import format_findings, lint_package

        findings = lint_package()
        print(format_findings(findings), file=out)
        return 0 if not findings else 1

    if args.app is None:
        print("sanitize: give an APP, or use --lint / --gate", file=out)
        return 2

    from repro.harness import Machine, run_app
    from repro.sanitizer.core import Sanitizer

    san = Sanitizer()
    result = run_app(
        APP_REGISTRY[args.app](scale=args.scale, seed=args.seed),
        Machine(gpu=args.gpu, seed=args.seed),
        mode=args.mode,
        checkpoint_at=args.checkpoint_at,
        restart_after_checkpoint=False,
        noise=False,
        sanitizer=san,
    )
    print(f"app:     {result.app_name} (scale={args.scale}, "
          f"mode={args.mode})", file=out)
    print(f"runtime: {result.runtime_exact_s:.4f} s (virtual)", file=out)
    print(san.report.summary(), file=out)
    return 0 if san.report.clean else 1


def cmd_analyze(args, out) -> int:
    """``repro analyze``: static wiring/determinism analysis + gate."""
    import json

    from repro.analysis.engine import (
        analyze_package,
        findings_from_report,
        run_corpus_gate,
    )
    from repro.analysis.findings import Baseline, format_findings, to_sarif

    ok = True
    gate = None
    if args.gate:
        gate = run_corpus_gate()
        print(
            f"corpus:  {gate['detected']}/{gate['positives']} planted "
            f"violations detected, {gate['false_positives']} false "
            f"positive(s) on {len(gate['scenarios']) - gate['positives']} "
            "negative control(s)",
            file=out,
        )
        for row in gate["scenarios"]:
            if not row["ok"]:
                print(
                    f"  FAIL {row['name']}: expected {row['expect']}, "
                    f"found {row['found']}",
                    file=out,
                )
        ok = ok and gate["ok"]

    baseline = Baseline.load(args.baseline)
    report = analyze_package(baseline=baseline)
    findings = findings_from_report(report)

    if args.update_baseline:
        # The justification audit (tests/analysis/test_baseline.py)
        # rejects empty or placeholder entries, so refuse to write them
        # here rather than producing a baseline CI will bounce.
        justify = (args.justify or "").strip()
        placeholders = ("todo", "fixme", "tbd", "xxx")
        if not justify:
            print(
                "analyze: --update-baseline requires --justify MSG — "
                "every accepted finding is stamped with it and the "
                "justification audit rejects empty entries",
                file=out,
            )
            return 2
        if any(p in justify.lower() for p in placeholders):
            print(
                f"analyze: refusing placeholder justification {justify!r} "
                "(contains TODO/FIXME/TBD/XXX); write the real reason "
                "each finding is acceptable",
                file=out,
            )
            return 2
        for f in findings:
            baseline.add(f, justify)
        baseline.save(args.baseline)
        print(
            f"baseline: accepted {len(findings)} finding(s) into "
            f"{args.baseline} with justification {justify!r}",
            file=out,
        )
        findings = []
        report["findings"] = []
        report["ok"] = True

    counts = report["counts"]
    print(
        f"analyze: {counts['apis']} APIs / {counts['modules']} modules — "
        f"{counts['unbaselined']} unbaselined, "
        f"{counts['baselined']} baselined finding(s)",
        file=out,
    )
    if findings:
        print(format_findings(findings), file=out)
        ok = False
    if report["unused_baseline"]:
        print(
            "stale baseline entries (finding fixed — delete them): "
            + ", ".join(report["unused_baseline"]),
            file=out,
        )
        ok = False

    if args.out != "-":
        payload = dict(report)
        if gate is not None:
            payload["corpus_gate"] = gate
        payload["ok"] = ok
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}", file=out)
    if args.sarif is not None:
        with open(args.sarif, "w") as fh:
            json.dump(to_sarif(findings), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.sarif}", file=out)
    return 0 if ok else 1


def cmd_trace(args, out) -> int:
    """``repro trace APP``: traced run + Chrome trace + JSON report."""
    import json

    from repro.harness.trace_bench import format_trace_bench, run_trace_bench
    from repro.trace import write_chrome_trace

    scale = min(args.scale, 0.05) if args.smoke else args.scale
    report, tracer, _profiler = run_trace_bench(
        APP_REGISTRY[args.app],
        scale=scale,
        gpu=args.gpu,
        seed=args.seed,
        mode=args.mode,
        checkpoint_at=args.checkpoint_at,
    )
    print(format_trace_bench(report), file=out)
    trace_out = args.trace_out
    if trace_out is None:
        trace_out = f"trace_{args.app}.json"
    if trace_out != "-":
        write_chrome_trace(tracer, trace_out, label=report["app"])
        print(f"\nwrote {trace_out} (load at https://ui.perfetto.dev)",
              file=out)
    if args.out != "-":
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}", file=out)
    return 0 if report["ok"] else 1


def cmd_reproduce(args, out) -> int:
    """``repro reproduce WHAT``: regenerate a table/figure."""
    from repro.harness import experiments as ex
    from repro.harness.report import render_all, render_bars, render_table

    scale = args.scale
    if getattr(args, "bars", False) and args.what in ("fig2", "fig5"):
        rows = (
            ex.fig2_rodinia_runtime(scale, noise=False)
            if args.what == "fig2"
            else ex.fig5_runtimes(scale, noise=False)
        )
        print(
            render_bars(
                f"{args.what} — native vs CRAC", rows, ["native_s", "crac_s"]
            ),
            file=out,
        )
        return 0
    table = {
        "fig0": lambda: render_table("§1 TOP500", ex.fig0_top500(), "year"),
        "table1": lambda: render_table(
            "Table 1", ex.table1_characterization(scale)),
        "table2": lambda: render_table("Table 2", ex.table2_cli_arguments()),
        "fig2": lambda: render_table(
            "Figure 2", ex.fig2_rodinia_runtime(scale, noise=False)),
        "fig3": lambda: render_table(
            "Figure 3", ex.fig3_rodinia_checkpoint(scale)),
        "fig4": lambda: render_table("Figure 4", ex.fig4_simplestreams(scale)),
        "fig5": lambda: render_table(
            "Figure 5a/5b", ex.fig5_runtimes(scale, noise=False)),
        "fig5c": lambda: render_table("Figure 5c", ex.fig5c_checkpoint(scale)),
        "table3": lambda: render_table(
            "Table 3", ex.table3_ipc_comparison(min(scale, 0.05))),
        "fig6": lambda: render_table(
            "Figure 6", ex.fig6_fsgsbase(scale, noise=False)),
        "all": lambda: render_all(scale),
    }[args.what]
    print(table(), file=out)
    return 0


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "list-apps":
        return cmd_list_apps(out)
    if args.command == "info":
        return cmd_info(out)
    if args.command == "run":
        return cmd_run(args, out)
    if args.command == "calibrate":
        return cmd_calibrate(args, out)
    if args.command == "fault-sim":
        return cmd_fault_sim(args, out)
    if args.command == "ckpt-bench":
        return cmd_ckpt_bench(args, out)
    if args.command == "perf-bench":
        return cmd_perf_bench(args, out)
    if args.command == "fault-campaign":
        return cmd_fault_campaign(args, out)
    if args.command == "migrate":
        return cmd_migrate(args, out)
    if args.command == "spec-bench":
        return cmd_spec_bench(args, out)
    if args.command == "serve-bench":
        return cmd_serve_bench(args, out)
    if args.command == "sanitize":
        return cmd_sanitize(args, out)
    if args.command == "analyze":
        return cmd_analyze(args, out)
    if args.command == "trace":
        return cmd_trace(args, out)
    if args.command == "reproduce":
        return cmd_reproduce(args, out)
    raise AssertionError(args.command)  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
