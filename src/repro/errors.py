"""Exception hierarchy shared across the repro package.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch simulation-level failures separately from programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro simulation."""


class AddressSpaceError(ReproError):
    """Invalid operation on a simulated virtual address space."""


class SegmentationFault(AddressSpaceError):
    """Access to an unmapped or permission-protected address."""

    def __init__(self, addr: int, why: str = "") -> None:
        self.addr = addr
        msg = f"SIGSEGV at {addr:#x}"
        if why:
            msg += f" ({why})"
        super().__init__(msg)


class MemoryCorruptionError(AddressSpaceError):
    """Detected silent memory corruption (e.g. lower half clobbered upper half)."""


class LoaderError(ReproError):
    """Program loading failed."""


class CheckpointError(ReproError):
    """Checkpoint could not be taken."""


class CheckpointStoreError(CheckpointError):
    """Invalid operation on the checkpoint store (e.g. committing a
    partial staged image, or loading an evicted generation)."""


class SpeculationAbortedError(CheckpointError):
    """A speculative (validated-concurrency) checkpoint rolled back.

    Raised by :meth:`repro.spec.SpeculativeCheckpoint.finish` when
    validation cannot commit the cut — an injected fault at the
    ``spec-validate`` stage, or conflict replay exceeding its budget.
    The image is already aborted (dirty bits intact, nothing committed)
    when this surfaces; the session catches it and falls back to the
    stop-the-world forked path for the same cut parameters.
    """

    def __init__(self, msg: str, *, conflicts: int = 0) -> None:
        self.conflicts = conflicts
        super().__init__(msg)


class RestartError(ReproError):
    """Restart from a checkpoint image failed."""


class CorruptCheckpointError(RestartError):
    """A committed image failed checksum verification at restore time.

    The store computes per-region CRCs when an image is staged; any
    byte flipped afterwards (disk corruption, a torn write that slipped
    past the commit protocol) is detected here — deterministically —
    instead of silently restoring garbage into the upper half.
    """


class InjectedFault(ReproError):
    """A fault deliberately fired by the fault-injection harness.

    Models a crash (node loss, OOM-kill, power cut) at a named stage of
    the checkpoint/restore pipeline; carries the stage so tests and the
    self-healing restart path can assert where the failure landed.
    """

    def __init__(self, stage: str, context: str = "") -> None:
        self.stage = stage
        self.context = context
        msg = f"injected fault at stage {stage!r}"
        if context:
            msg += f" ({context})"
        super().__init__(msg)


class ReplayDivergenceError(RestartError):
    """Log-and-replay produced a different address than the original run.

    The paper relies on determinism of the CUDA library allocator plus
    disabled ASLR; when either assumption is violated the replayed
    allocations land at new addresses and every pointer held by the
    restored upper half dangles.
    """


class CudaError(ReproError):
    """A CUDA API call returned a non-success ``cudaError_t``.

    Carries the error ``code`` (a
    :class:`repro.cuda.errors.CudaErrorCode`) and its recovery
    ``severity`` — one of ``"retryable"``, ``"sticky"``, ``"fatal"``,
    ``"program"`` — so the fault-domain ladder can pick its entry rung:
    *retryable* errors are transient (re-issue the call), *sticky*
    errors poison the issuing stream (stream reset + replay of
    unsynchronized ops), *fatal* errors mean the device/context is lost
    (device reset + restore from a checkpoint), and *program* errors
    are deterministic API misuse no rung can heal (surfaced to the
    application unchanged).

    The severity is stored as a plain string (not the
    :class:`~repro.cuda.errors.ErrorSeverity` enum) so modules below
    ``repro.cuda`` in the import graph — ``gpu/device.py``,
    ``gpu/uvm.py`` — can raise and classify without importing the
    ``repro.cuda`` package at module load time.
    """

    def __init__(self, msg: str, *, code=None, severity=None,
                 stream_sid: int | None = None) -> None:
        super().__init__(msg)
        self.code = code
        if severity is None and code is not None:
            # Deferred import: repro.errors must stay import-cycle free.
            from repro.cuda.errors import classify

            severity = classify(code)
        #: "retryable" | "sticky" | "fatal" | "program" | None
        self.severity = getattr(severity, "value", severity)
        #: stream the failed op was issued on (hang/stall classification)
        self.stream_sid = stream_sid

    @property
    def retryable(self) -> bool:
        """Transient: re-issuing the same call may succeed."""
        return self.severity == "retryable"

    @property
    def sticky(self) -> bool:
        """Poisons the issuing stream; cleared by a stream reset."""
        return self.severity == "sticky"

    @property
    def fatal(self) -> bool:
        """Device/context is lost; only a restore can continue the job."""
        return self.severity == "fatal"


class RecoveryAbortedError(ReproError):
    """The fault-domain escalation ladder ran out of rungs.

    Raised by :class:`repro.core.session.FaultDomain` when every bounded
    recovery attempt (retry, stream replay, checkpoint restore) has been
    spent; carries the full :class:`~repro.core.session.RecoveryReport`
    attempt trail and the final error, so callers see a *typed* abort —
    never silent corruption.
    """

    def __init__(self, msg: str, *, report=None, cause=None) -> None:
        super().__init__(msg)
        self.report = report
        self.cause = cause


class RankDeathError(CheckpointError):
    """One or more ranks went silent during a coordinated checkpoint.

    The coordinator's heartbeat monitor declared the ranks dead after N
    missed beats; the in-flight 2PC was aborted (no generation was
    half-committed) and the surviving quorum should recover from the
    prior committed cut via ``restart_all_latest``.
    """

    def __init__(self, dead_ranks, msg: str = "") -> None:
        self.dead_ranks = sorted(dead_ranks)
        super().__init__(
            msg or f"rank(s) {self.dead_ranks} missed heartbeats during "
            "a coordinated checkpoint; 2PC aborted"
        )


class CoordinatedAbortError(CheckpointError):
    """The surviving ranks lost quorum: the whole job must abort.

    Raised when rank deaths leave no strict majority alive — continuing
    without quorum could split-brain the recovery line.
    """


class ClusterError(ReproError):
    """Invalid operation on the simulated multi-node cluster fabric."""


class NodeDeathError(ClusterError):
    """A cluster node stopped heartbeating and was declared dead.

    Sessions hosted on the node lose their process and device state;
    recovery means restoring the latest *shipped* checkpoint generation
    on a surviving node (the fault-domain ladder's failover rung).
    """

    def __init__(self, node: str, msg: str = "") -> None:
        self.node = node
        super().__init__(
            msg or f"node {node!r} missed heartbeats and was declared dead"
        )


class MigrationError(ClusterError):
    """A live migration could not complete.

    Raised when shipping a checkpoint generation across the interconnect
    exhausts its retry budget (persistent link faults), or when the
    drain/pre-copy/cutover state machine is driven out of order.
    """


class ServeError(ReproError):
    """Invalid operation on the multi-tenant session-serving tier."""


class AdmissionRejectedError(CudaError, ServeError):
    """The serving tier shed this request at admission (load shedding).

    Raised when the bounded admission queue is full: accepting more work
    would collapse latency for everything already admitted, so the tier
    rejects *typed* instead. Routed through the CUDA error taxonomy as
    ``SERVE_ADMISSION_REJECTED`` (severity *retryable* — backing off and
    re-offering the request later is exactly the right client response).
    """

    def __init__(self, msg: str) -> None:
        from repro.cuda.errors import CudaErrorCode

        super().__init__(msg, code=CudaErrorCode.SERVE_ADMISSION_REJECTED)


class SessionEvictedError(CudaError, ServeError):
    """The target session is parked as a checkpoint image, not live.

    Raised when an operation reaches a session whose hot state was
    evicted under memory pressure. Severity *retryable*
    (``SERVE_SESSION_EVICTED``): rehydrating the session via
    ``restart_latest`` and re-issuing the operation heals it — which is
    what the serve scheduler does transparently; the error only
    surfaces when rehydration itself is impossible (e.g. a quarantined
    session).
    """

    def __init__(self, sid: str, msg: str = "") -> None:
        from repro.cuda.errors import CudaErrorCode

        self.sid = sid
        super().__init__(
            msg or f"session {sid!r} is parked as a checkpoint image",
            code=CudaErrorCode.SERVE_SESSION_EVICTED,
        )


class ServeDeadlineExceededError(CudaError, ServeError):
    """A request missed its per-session service deadline.

    By the time a slot freed up the request had already waited past its
    deadline; serving it would waste capacity on an answer nobody is
    waiting for. Severity *program* (``SERVE_DEADLINE_EXCEEDED``): the
    miss is deterministic — no recovery rung can un-miss a deadline —
    so the ladder surfaces it to the caller unchanged and the tier
    sheds the request.
    """

    def __init__(self, sid: str, waited_ns: float, deadline_ns: float) -> None:
        from repro.cuda.errors import CudaErrorCode

        self.sid = sid
        self.waited_ns = waited_ns
        self.deadline_ns = deadline_ns
        super().__init__(
            f"request for session {sid!r} waited "
            f"{waited_ns / 1e6:.2f} ms > deadline "
            f"{deadline_ns / 1e6:.2f} ms",
            code=CudaErrorCode.SERVE_DEADLINE_EXCEEDED,
        )


class UnsupportedFeatureError(ReproError):
    """A baseline system was asked to do something it cannot do.

    E.g. CRCUDA has no UVM support; CheCUDA cannot restore UVA state.
    """


class ProxyProtocolError(ReproError):
    """Malformed request/response on the proxy IPC channel."""
