"""Exception hierarchy shared across the repro package.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch simulation-level failures separately from programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro simulation."""


class AddressSpaceError(ReproError):
    """Invalid operation on a simulated virtual address space."""


class SegmentationFault(AddressSpaceError):
    """Access to an unmapped or permission-protected address."""

    def __init__(self, addr: int, why: str = "") -> None:
        self.addr = addr
        msg = f"SIGSEGV at {addr:#x}"
        if why:
            msg += f" ({why})"
        super().__init__(msg)


class MemoryCorruptionError(AddressSpaceError):
    """Detected silent memory corruption (e.g. lower half clobbered upper half)."""


class LoaderError(ReproError):
    """Program loading failed."""


class CheckpointError(ReproError):
    """Checkpoint could not be taken."""


class RestartError(ReproError):
    """Restart from a checkpoint image failed."""


class ReplayDivergenceError(RestartError):
    """Log-and-replay produced a different address than the original run.

    The paper relies on determinism of the CUDA library allocator plus
    disabled ASLR; when either assumption is violated the replayed
    allocations land at new addresses and every pointer held by the
    restored upper half dangles.
    """


class CudaError(ReproError):
    """A CUDA API call returned a non-success ``cudaError_t``."""


class UnsupportedFeatureError(ReproError):
    """A baseline system was asked to do something it cannot do.

    E.g. CRCUDA has no UVM support; CheCUDA cannot restore UVA state.
    """


class ProxyProtocolError(ReproError):
    """Malformed request/response on the proxy IPC channel."""
