"""Exception hierarchy shared across the repro package.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch simulation-level failures separately from programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro simulation."""


class AddressSpaceError(ReproError):
    """Invalid operation on a simulated virtual address space."""


class SegmentationFault(AddressSpaceError):
    """Access to an unmapped or permission-protected address."""

    def __init__(self, addr: int, why: str = "") -> None:
        self.addr = addr
        msg = f"SIGSEGV at {addr:#x}"
        if why:
            msg += f" ({why})"
        super().__init__(msg)


class MemoryCorruptionError(AddressSpaceError):
    """Detected silent memory corruption (e.g. lower half clobbered upper half)."""


class LoaderError(ReproError):
    """Program loading failed."""


class CheckpointError(ReproError):
    """Checkpoint could not be taken."""


class CheckpointStoreError(CheckpointError):
    """Invalid operation on the checkpoint store (e.g. committing a
    partial staged image, or loading an evicted generation)."""


class RestartError(ReproError):
    """Restart from a checkpoint image failed."""


class CorruptCheckpointError(RestartError):
    """A committed image failed checksum verification at restore time.

    The store computes per-region CRCs when an image is staged; any
    byte flipped afterwards (disk corruption, a torn write that slipped
    past the commit protocol) is detected here — deterministically —
    instead of silently restoring garbage into the upper half.
    """


class InjectedFault(ReproError):
    """A fault deliberately fired by the fault-injection harness.

    Models a crash (node loss, OOM-kill, power cut) at a named stage of
    the checkpoint/restore pipeline; carries the stage so tests and the
    self-healing restart path can assert where the failure landed.
    """

    def __init__(self, stage: str, context: str = "") -> None:
        self.stage = stage
        self.context = context
        msg = f"injected fault at stage {stage!r}"
        if context:
            msg += f" ({context})"
        super().__init__(msg)


class ReplayDivergenceError(RestartError):
    """Log-and-replay produced a different address than the original run.

    The paper relies on determinism of the CUDA library allocator plus
    disabled ASLR; when either assumption is violated the replayed
    allocations land at new addresses and every pointer held by the
    restored upper half dangles.
    """


class CudaError(ReproError):
    """A CUDA API call returned a non-success ``cudaError_t``."""


class UnsupportedFeatureError(ReproError):
    """A baseline system was asked to do something it cannot do.

    E.g. CRCUDA has no UVM support; CheCUDA cannot restore UVA state.
    """


class ProxyProtocolError(ReproError):
    """Malformed request/response on the proxy IPC channel."""
