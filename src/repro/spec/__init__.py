"""Validated speculative checkpointing (PhoenixOS-style, ROADMAP item 1).

Per-resource handle versioning lets a checkpoint proceed *while kernels
keep launching*: the cut snapshots versions instead of quiescing, and
validation detects + replays anything the application mutated inside
the capture window before commit. See :mod:`repro.spec.speculative` for
the full model.
"""

from repro.spec.conflicts import Conflict, brute_force_advanced, detect_conflicts
from repro.spec.handles import HANDLE_KINDS, HandleRecord, HandleTable
from repro.spec.speculative import SpeculativeCheckpoint

__all__ = [
    "HANDLE_KINDS",
    "Conflict",
    "HandleRecord",
    "HandleTable",
    "SpeculativeCheckpoint",
    "brute_force_advanced",
    "detect_conflicts",
]
