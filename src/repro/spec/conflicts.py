"""Conflict detection for speculative checkpoints.

A speculative cut captures buffer contents and handle versions *without*
quiescing; the application keeps launching through the capture window.
Validation (at :meth:`repro.spec.SpeculativeCheckpoint.finish`) must
find every resource the application mutated inside the window:

- **buffers** — the image's ``(contents, spans, epoch)`` capture tuples
  record each buffer's ``write_seq`` at the cut; the
  :class:`repro.gpu.intervals.EpochIntervalIndex` behind
  ``dirty_bytes_since(epoch)`` / ``dirty_spans_since(epoch)`` yields the
  exact spans written after it. In a real system those spans are torn in
  the speculative copy and must be re-copied from the version log; here
  the bytes are cut-consistent by construction (snapshots are physical at
  the cut) and the conflict carries the *replay cost* of that re-copy.
- **host regions** — same epoch machinery at page granularity via the
  image's region captures.
- **streams / events / modules** — the :class:`repro.spec.HandleTable`
  version snapshot stored in the image's ``crac/spec-versions`` blob,
  diffed against the live table: any advanced version means ops landed
  on the handle inside the window and its logged suffix replays.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.linux.address_space import PAGE_SIZE


@dataclass(frozen=True)
class Conflict:
    """One resource invalidated by writes inside the capture window."""

    kind: str  # "buffer" | "region" | "stream" | "event" | "module"
    key: int  # buffer addr-less uid is unavailable here; key = id/sid/eid
    #: version (epoch / write_seq) recorded at the cut
    cut_version: int
    #: live version observed at validation time
    live_version: int
    #: bytes that must be re-copied (0 for pure handle conflicts)
    nbytes: int = 0


def detect_conflicts(image, handle_table=None) -> list[Conflict]:
    """Diff the image's cut-point captures against live state.

    ``image`` is the speculative :class:`~repro.dmtcp.image.CheckpointImage`
    still holding its capture tuples (validation runs strictly before
    ``mark_committed`` empties them). ``handle_table`` is the session's
    live :class:`~repro.spec.HandleTable`; ``None`` skips handle checks
    (buffer-only validation, used by unit tests).
    """
    conflicts: list[Conflict] = []

    # Buffers: write_seq moved past the captured epoch => bytes written
    # inside the window. The replayed span set is exactly the dirty
    # bytes stamped with a later epoch.
    for contents, _spans, epoch in image.contents_captures:
        if contents.write_seq > epoch:
            nbytes = contents.dirty_bytes_since(epoch)
            if nbytes > 0:
                conflicts.append(
                    Conflict(
                        kind="buffer",
                        key=id(contents),
                        cut_version=epoch,
                        live_version=contents.write_seq,
                        nbytes=nbytes,
                    )
                )

    # Host regions: page-granular, same epoch rule.
    for region, _pages, epoch in image.region_captures:
        if region.write_seq > epoch:
            n_pages = region.dirty_pages_since(epoch)
            if n_pages:
                conflicts.append(
                    Conflict(
                        kind="region",
                        key=region.start,
                        cut_version=epoch,
                        live_version=region.write_seq,
                        nbytes=n_pages * PAGE_SIZE,
                    )
                )

    # Streams / events / modules: version table diff against the blob
    # snapshot taken at the cut.
    if handle_table is not None:
        versions = image.blobs.get("crac/spec-versions")
        if versions is not None:
            for kind, key, at_cut, live in handle_table.advanced_since(
                versions.payload
            ):
                conflicts.append(
                    Conflict(
                        kind=kind,
                        key=key,
                        cut_version=at_cut,
                        live_version=live,
                    )
                )
    return conflicts


def brute_force_advanced(
    before: dict[str, dict[int, int]], table
) -> list[tuple[str, int, int, int]]:
    """Reference oracle for :meth:`HandleTable.advanced_since`: compare
    every live record against the snapshot dict directly. Used by the
    conflict-detector unit tests to cross-check the production path."""
    rows: list[tuple[str, int, int, int]] = []
    for (kind, key), rec in sorted(table.records.items()):
        at_cut = before.get(kind, {}).get(key, None)
        if at_cut is None:
            if rec.version > 0 or not rec.live:
                rows.append((kind, key, 0, rec.version))
        elif rec.version > at_cut:
            rows.append((kind, key, at_cut, rec.version))
    return rows
