"""The validated-speculation checkpoint writer.

A ``speculative=True`` cut does **not** quiesce: the checkpointer
snapshots handle versions and buffer contents at the cut instant
(physical copies are free in virtual time — the same trick the forked
mode uses) and the application keeps launching kernels through
``cuda/api.py``/``gpu/device.py`` while capture, drain and image write
proceed on a *background virtual timeline* ending at
``validate_end_ns``. The application pays only ``HostCosts.spec_cut_ns``
plus a per-handle version-snapshot cost at the cut.

At :meth:`SpeculativeCheckpoint.finish` the speculation is *validated*:
every resource the application mutated inside the capture window — a
buffer whose ``write_seq`` moved past its captured epoch, a stream or
event whose :class:`~repro.spec.HandleTable` version advanced — is a
conflict. Conflicted handles are invalidated and their spans replayed
(re-copied from the op/version log) before commit, charged at
``spec_replay_bw`` + ``spec_invalidate_ns`` per handle. The committed
image is digest-equal to a stop-the-world cut by construction: its bytes
were captured at the cut instant; conflicts cost time, never fidelity.

If validation cannot commit — an injected ``spec-validate`` fault —
the speculation rolls back: :meth:`abort` drops the image's capture
references *without touching live dirty state* (``mark_committed``
never runs, so every dirty bit survives for the fallback cut) and
:class:`~repro.errors.SpeculationAbortedError` tells the session to
fall back to the forked (stop-the-world) path.

The writer duck-types :class:`~repro.dmtcp.forked.ForkedCheckpoint`
(``in_flight`` / ``finish`` / ``abort`` / ``committed`` / ``store``) so
the session's pending-writer machinery drives both interchangeably.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import InjectedFault, SpeculationAbortedError
from repro.gpu.timing import NS_PER_S, HostCosts
from repro.linux.process import SimProcess
from repro.spec.conflicts import Conflict, detect_conflicts

if TYPE_CHECKING:  # avoid import cycles at runtime
    from repro.dmtcp.image import CheckpointImage
    from repro.dmtcp.store import CheckpointStore
    from repro.harness.fault_injection import FaultInjector
    from repro.spec.handles import HandleTable


@dataclass
class SpeculativeCheckpoint:
    """An in-flight speculative capture awaiting validation."""

    image: "CheckpointImage"
    #: application clock at the cut (capture window opens here)
    cut_ns: float
    #: background-timeline instant capture + image write are done and
    #: the speculation can validate/commit
    validate_end_ns: float
    costs: HostCosts
    #: live handle table to diff against the image's version snapshot
    handle_table: "HandleTable | None" = None
    store: "CheckpointStore | None" = None
    fault_injector: "FaultInjector | None" = None
    #: conflicts found at validation (filled in by :meth:`finish`)
    conflicts: list[Conflict] = field(default_factory=list)
    #: handles invalidated and replayed at validation
    invalidated: int = 0
    #: bytes re-copied by invalidate-and-replay
    replayed_bytes: int = 0
    #: app-visible validation cost (conflict replay), ns
    replay_time_ns: float = 0.0
    #: residual time the app blocked waiting out the background window
    residual_wait_ns: float = 0.0
    generation: int | None = None
    aborted: bool = False
    #: checkpoint kwargs remembered for the forked fallback after abort
    fallback_kwargs: dict | None = None
    #: repro.trace.Tracer receiving spec-validate spans; None = untraced
    tracer: object | None = None
    _finished: bool = field(default=False, repr=False)

    @property
    def committed(self) -> bool:
        return self.image.committed

    def in_flight(self, now_ns: float) -> bool:
        """True while background capture is still running at ``now_ns``."""
        return not self._finished and now_ns < self.validate_end_ns

    # -- validate + commit ----------------------------------------------------

    def finish(
        self, process: SimProcess | None = None, *, block: bool = True
    ) -> None:
        """Validate the speculation and move the commit point here.

        Mirrors :meth:`ForkedCheckpoint.finish`: ``process`` is the
        application to charge replay/residual costs to (``None`` when
        the parent already died — validation still runs, against state
        frozen at death). Raises
        :class:`~repro.errors.SpeculationAbortedError` after rolling
        back if validation cannot commit.
        """
        if self._finished:
            return
        try:
            if self.fault_injector is not None:
                self.fault_injector.check(
                    "spec-validate", f"speculative commit pid {self.image.pid}"
                )
        except InjectedFault as exc:
            self.abort()
            raise SpeculationAbortedError(
                f"speculative checkpoint of pid {self.image.pid} rolled "
                f"back: {exc}"
            ) from exc

        # Conflict detection: epoch/version diff against the cut.
        self.conflicts = detect_conflicts(self.image, self.handle_table)
        self.invalidated = len(self.conflicts)
        # Only writes that landed while background capture still held
        # un-captured spans are torn and must replay; like the forked
        # mode's COW exposure, pro-rate the dirtied bytes by how much of
        # the elapsed window overlapped the capture window.
        if process is not None and process.alive:
            window = max(process.clock_ns - self.cut_ns, 1.0)
        else:
            window = max(self.validate_end_ns - self.cut_ns, 1.0)
        overlap = min(1.0, (self.validate_end_ns - self.cut_ns) / window)
        self.replayed_bytes = int(
            sum(c.nbytes for c in self.conflicts) * overlap
        )
        self.replay_time_ns = (
            self.replayed_bytes / self.costs.spec_replay_bw * NS_PER_S
            + self.invalidated * self.costs.spec_invalidate_ns
        )
        if process is not None and process.alive:
            t0 = process.clock_ns
            process.advance(self.replay_time_ns)
            if self.tracer is not None and self.replay_time_ns:
                self.tracer.ckpt_span(
                    "spec-validate", t0, process.clock_ns,
                    conflicts=self.invalidated, bytes=self.replayed_bytes,
                )
            if block and process.clock_ns < self.validate_end_ns:
                self.residual_wait_ns = self.validate_end_ns - process.clock_ns
                process.advance_to(self.validate_end_ns)
        try:
            if self.store is not None:
                # Staging fires the image-write fault stage per region; a
                # crash leaves a discardable partial and the image stays
                # uncommitted (dirty bits intact).
                self.generation = self.store.put(self.image)
            else:
                if self.fault_injector is not None:
                    self.fault_injector.check(
                        "image-write",
                        f"speculative write pid {self.image.pid}",
                    )
                self.image.mark_committed()
        except Exception:
            self.aborted = True
            self._finished = True
            raise
        self._finished = True
        if self.tracer is not None:
            # Capture + write ran on the background timeline.
            self.tracer.ckpt_span(
                "spec-write", self.cut_ns, self.validate_end_ns,
                bytes=self.image.size_bytes,
            )
            self.tracer.instant(
                "ckpt", "commit", self.validate_end_ns, pid=self.image.pid
            )

    # -- rollback -------------------------------------------------------------

    def abort(self) -> None:
        """Roll the speculation back; idempotent, a no-op after commit.

        Drops the image's capture tuples so ``mark_committed`` can never
        clear live dirty state through them — every dirty bit the cut
        observed (and everything written since) stays intact for the
        fallback checkpoint. Live buffers/regions are never touched.
        """
        if self._finished:
            return
        self.aborted = True
        self._finished = True
        self.image.region_captures = []
        self.image.contents_captures = []
        if self.tracer is not None:
            self.tracer.instant(
                "ckpt", "spec-abort", self.cut_ns, pid=self.image.pid
            )
