"""Per-resource handle table with monotone version ids.

PhoenixOS checkpoints *while kernels keep launching* by versioning every
CUDA resource handle (buffers, streams, events, modules): a speculative
cut snapshots the version table instead of quiescing, and validation
later compares live versions against the snapshot to find resources the
application touched inside the capture window. The lifecycle here mirrors
the ``POSHandle`` add/commit/restore cycle (SNIPPETS.md's
``POSHandle_CUDA_Stream.__add/__commit/__restore``):

- ``add``      — register a handle; its version starts at 0;
- ``bump``     — a mutating op on the handle advances its version
  (kernel launch or copy on a stream, event record, module re-register);
- ``cut``      — snapshot every live version (the ``__commit`` step of a
  speculative checkpoint; O(handles), no device stall);
- ``restore``  — reset versions to a snapshot after an aborted
  speculation or a restart (the ``__restore`` step).

Buffer *contents* versions are deliberately **not** duplicated here:
:class:`repro.gpu.memory.PagedContents` already maintains a monotone
``write_seq`` bumped on every mutation, and the checkpoint image records
``(contents, spans, write_seq)`` capture tuples at the cut — so buffer
conflict detection reads those epochs directly (zero extra hot-path
cost). The table tracks the handle kinds that have *no* byte-level dirty
index: streams, events and modules (fat binaries).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Handle kinds tracked by the table. Buffers are versioned by their
#: ``PagedContents.write_seq`` (see module doc) and never appear here.
HANDLE_KINDS = ("stream", "event", "module")


@dataclass
class HandleRecord:
    """One versioned resource handle (POSHandle-style)."""

    kind: str
    key: int
    #: Monotone version id; advanced by every mutating op on the handle.
    version: int = 0
    #: False once the handle is destroyed (destruction itself is a
    #: version-advancing mutation: destroying a captured stream inside
    #: the capture window is a conflict).
    live: bool = True


@dataclass
class HandleTable:
    """Version table for every live stream/event/module handle."""

    records: dict[tuple[str, int], HandleRecord] = field(default_factory=dict)

    # -- __add ----------------------------------------------------------------

    def add(self, kind: str, key: int) -> HandleRecord:
        """Register a handle; re-adding a dead key restarts it at a
        version past its previous life (arena-style key reuse must not
        read as "unchanged")."""
        if kind not in HANDLE_KINDS:
            raise KeyError(f"unknown handle kind {kind!r}")
        prev = self.records.get((kind, key))
        version = prev.version + 1 if prev is not None else 0
        rec = HandleRecord(kind=kind, key=key, version=version)
        self.records[(kind, key)] = rec
        return rec

    def bump(self, kind: str, key: int) -> int:
        """Advance a handle's version; lazily registers unknown keys
        (handles created before the table was attached, e.g. the default
        stream)."""
        rec = self.records.get((kind, key))
        if rec is None:
            rec = self.add(kind, key)
        rec.version += 1
        return rec.version

    def remove(self, kind: str, key: int) -> None:
        """Destroy a handle: version-advancing, record retained so a cut
        snapshot taken before the destroy still detects the conflict."""
        rec = self.records.get((kind, key))
        if rec is None:
            return
        rec.version += 1
        rec.live = False

    def version(self, kind: str, key: int) -> int:
        """Current version of a handle (0 for never-registered keys)."""
        rec = self.records.get((kind, key))
        return rec.version if rec is not None else 0

    def __len__(self) -> int:
        return len(self.records)

    # -- __commit -------------------------------------------------------------

    def cut(self) -> dict[str, dict[int, int]]:
        """Snapshot every version at the cut point.

        Returns ``{kind: {key: version}}`` with deterministic (sorted)
        ordering — this is what the checkpoint image stores as the
        ``crac/spec-versions`` blob and what validation later diffs
        against the live table.
        """
        snapshot: dict[str, dict[int, int]] = {k: {} for k in HANDLE_KINDS}
        for (kind, key), rec in sorted(self.records.items()):
            snapshot[kind][key] = rec.version
        return snapshot

    def advanced_since(
        self, snapshot: dict[str, dict[int, int]]
    ) -> list[tuple[str, int, int, int]]:
        """Handles whose version moved past the snapshot.

        Returns sorted ``(kind, key, cut_version, live_version)`` rows:
        exactly the handles the application mutated inside the capture
        window, plus any created after the cut (cut_version 0 for keys
        the snapshot never saw — a fresh handle is by definition not
        covered by the captured state).
        """
        advanced: list[tuple[str, int, int, int]] = []
        for (kind, key), rec in sorted(self.records.items()):
            at_cut = snapshot.get(kind, {}).get(key)
            if at_cut is None:
                if rec.version > 0 or not rec.live:
                    advanced.append((kind, key, 0, rec.version))
                continue
            if rec.version > at_cut:
                advanced.append((kind, key, at_cut, rec.version))
        return advanced

    # -- __restore ------------------------------------------------------------

    def restore(self, snapshot: dict[str, dict[int, int]]) -> None:
        """Reset the table to a snapshot (restart adopting checkpointed
        handles, or rollback after an aborted speculation)."""
        self.records = {}
        for kind in sorted(snapshot):
            for key, version in sorted(snapshot[kind].items()):
                self.records[(kind, key)] = HandleRecord(
                    kind=kind, key=key, version=version
                )
