"""The Table 3 cuBLAS microbenchmarks (§4.4.4).

Three programs — ``cublasSdot`` (inner product), ``cublasSgemv``
(matrix-vector), ``cublasSgemm`` (matrix-matrix) — each calling its
routine 10,000 times in a timing loop, with operand data sizes of 1 MB,
10 MB, or 100 MB. The reported metric is milliseconds per call.

Run under three dispatchers this reproduces Table 3's comparison:
native, CRAC (~1% overhead: direct pointer passing through the
trampoline), and CMA/IPC proxy (142%–17,812%: operands cross the
process boundary every call).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppContext, CudaApp, TimedLoop, digest_arrays
from repro.cuda.cublas import CuBlas

MB = 1 << 20

#: The paper's timing loop length.
PAPER_CALLS = 10_000


class CublasMicro(CudaApp):
    """One (routine, data size) cell of Table 3."""

    name = "cublas-micro"
    cli_args = "<routine> <MB> 10000"
    target_runtime_s = 2.0
    target_calls = PAPER_CALLS
    target_ckpt_mb = 16.0

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 0,
        *,
        routine: str = "sdot",
        data_mb: int = 1,
    ) -> None:
        super().__init__(scale, seed)
        if routine not in ("sdot", "sgemv", "sgemm"):
            raise ValueError(f"unknown routine {routine!r}")
        self.routine = routine
        self.data_mb = data_mb
        self.name = f"cublas{routine.capitalize()}-{data_mb}MB"

    def kernel_names(self):
        """Device functions in this app\'s fat binary."""
        return ("unused",)

    def ballast_bytes(self) -> int:
        return 0

    def run_app(self, ctx: AppContext) -> int:
        b = ctx.backend
        blas = CuBlas(b)
        nbytes = self.data_mb * MB
        n_vec = nbytes // 4  # float32 elements of a "data size" operand
        side = int(np.sqrt(n_vec))  # square matrix with ~nbytes

        if self.routine == "sdot":
            px = b.malloc(nbytes)
            py = b.malloc(nbytes)
            operands = (px, py)
        elif self.routine == "sgemv":
            pa = b.malloc(nbytes)
            px = b.malloc(4 * side)
            py = b.malloc(4 * side)
            operands = (pa, px, py)
        else:
            pa = b.malloc(nbytes)
            pb = b.malloc(nbytes)
            pc = b.malloc(nbytes)
            operands = (pa, pb, pc)

        calls = self.iterations(PAPER_CALLS)
        proc = b.process
        t0 = proc.clock_ns
        loop = TimedLoop(ctx, calls, measure=3, sync_each=False)
        for _ in loop:
            if self.routine == "sdot":
                blas.sdot(px, py, n_vec)
            elif self.routine == "sgemv":
                blas.sgemv(pa, px, py, side, side)
            else:
                blas.sgemm(pa, pb, pc, side, side, side)
        self._ms_per_call = (proc.clock_ns - t0) / calls / 1e6

        # A small real pass for digest verification.
        probe = np.arange(256, dtype=np.float32)
        b.memcpy(operands[0], probe, probe.nbytes, "h2d")
        b.memcpy(operands[1], probe, probe.nbytes, "h2d")
        dot = blas.sdot(operands[0], operands[1], 256, compute=True)
        for p in operands:
            b.free(p)
        return digest_arrays(np.array([dot], dtype=np.float64))

    def run(self, ctx: AppContext):
        result = super().run(ctx)
        result.extras["ms_per_call"] = self._ms_per_call
        result.extras["routine"] = self.routine
        result.extras["data_mb"] = self.data_mb
        return result
