"""Application framework: context, base class, fast-forward loop.

Calibration contract
--------------------
Each app declares paper-level targets (native runtime, total CUDA calls,
checkpoint-image size) and is parameterized by ``scale`` ∈ (0, 1]:

- ``scale=1.0`` reproduces the paper's configuration (call counts,
  virtual runtime, footprint);
- small scales (tests) shrink iteration counts and durations together,
  preserving the call *mix* and all correctness properties.

Kernels carry both a **real numpy computation** (executed eagerly on
small arrays, so outputs are bit-comparable across native/CRAC/proxy and
across checkpoint-restart) and a **virtual duration** derived from the
runtime target (so Figure-level timing has the paper's shape).

Fast-forwarding
---------------
Apps with hundreds of thousands of iterations use :class:`TimedLoop`: a
few iterations run for real *under the active backend* (so the measured
per-iteration virtual time includes that backend's dispatch costs), then
the remaining iterations advance the clock and call counters in bulk.
Content-wise the fast-forwarded iterations are steady-state repeats;
checkpoint correctness tests always run fully-real small scales.
"""

from __future__ import annotations

import zlib
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.cuda.api import FatBinary
from repro.cuda.interface import CudaDispatchBase


@dataclass
class AppContext:
    """Everything an application may touch while running."""

    backend: CudaDispatchBase
    #: allocate upper-half host memory (application heap growth)
    upper_mmap: Callable[[int], int]
    #: optional hook fired at iteration boundaries with progress ∈ [0,1];
    #: the harness uses it to trigger mid-run checkpoints.
    checkpoint_cb: Callable[[float], None] | None = None
    #: device slowdown factor relative to the V100 the targets were
    #: calibrated on (the K600 runs of Figure 6 use > 1).
    time_scale: float = 1.0

    @property
    def process(self):
        return self.backend.process

    def maybe_checkpoint(self, progress: float) -> None:
        """Fire the harness checkpoint hook, if installed."""
        if self.checkpoint_cb is not None:
            self.checkpoint_cb(progress)


@dataclass
class AppResult:
    """Outcome of one application run."""

    name: str
    #: order-insensitive digest of the computed output (bit-comparable
    #: across backends and across checkpoint/restart)
    digest: int
    #: wall (virtual) nanoseconds spent inside run()
    elapsed_ns: float
    #: total upper→lower CUDA calls issued by this run
    cuda_calls: int
    extras: dict = field(default_factory=dict)


def digest_arrays(*arrays: np.ndarray) -> int:
    """Deterministic digest of numpy contents (crc32 over raw bytes)."""
    crc = 0
    for a in arrays:
        crc = zlib.crc32(np.ascontiguousarray(a).tobytes(), crc)
    return crc


class CudaApp:
    """Base class for all workloads.

    Subclasses set the class attributes below and implement
    :meth:`run_app`. ``run`` wraps it with timing and call accounting.
    """

    name: str = "app"
    cli_args: str = ""  # the Table 2 command line
    uses_uvm: bool = False
    uses_streams: bool = False
    stream_range: str = "—"  # the "# streams" column of Table 1

    #: Paper-level targets at scale=1.0 (virtual seconds / counts / MB).
    target_runtime_s: float = 1.0
    target_calls: int = 1000
    target_ckpt_mb: float = 16.0

    def __init__(self, scale: float = 1.0, seed: int = 0) -> None:
        if not (0 < scale <= 1.0):
            raise ValueError("scale must be in (0, 1]")
        self.scale = scale
        self.seed = seed
        self.rng = np.random.default_rng(seed)

    # -- hooks for subclasses ---------------------------------------------------

    def fatbin(self) -> FatBinary:
        """The app's device code; registered before run_app."""
        return FatBinary(f"{self.name}.fatbin", tuple(self.kernel_names()))

    def kernel_names(self) -> tuple[str, ...]:
        """Names of the app's device functions (its fat-binary contents)."""
        return ("kernel",)

    def run_app(self, ctx: AppContext) -> int:
        """Execute the workload; returns the output digest."""
        raise NotImplementedError

    # -- shared helpers -------------------------------------------------------------

    def iterations(self, paper_iters: int, floor: int = 1) -> int:
        """Scale an iteration count."""
        return max(floor, int(round(paper_iters * self.scale)))

    def ballast_bytes(self) -> int:
        """Upper-half ballast so the checkpoint image hits the target.

        The default upper half (program + heap + stack + libs) is about
        16 MB; anything beyond that is modelled as application data. The
        bytes are virtual — no real RAM is consumed.
        """
        base = 16 << 20
        want = int(self.target_ckpt_mb * self.scale * (1 << 20))
        return max(0, want - base)

    def kernel_budget_ns(self, n_kernels: int, fraction: float = 0.92) -> float:
        """Per-kernel virtual duration so that ``n_kernels`` of them fill
        ``fraction`` of the runtime target (the rest is dispatch/copies)."""
        total = self.target_runtime_s * self.scale * 1e9 * fraction
        return max(2_000.0, total / max(1, n_kernels))

    # -- entry point -----------------------------------------------------------------

    def run(self, ctx: AppContext) -> AppResult:
        """Run the workload end to end; returns timing + digest."""
        backend = ctx.backend
        t0 = backend.process.clock_ns
        calls0 = backend.total_calls
        handle = backend.register_app_binary(self.fatbin())
        ballast = self.ballast_bytes()
        if ballast:
            ctx.upper_mmap(ballast)
        digest = self.run_app(ctx)
        backend.unregister_fatbin(handle)
        return AppResult(
            name=self.name,
            digest=digest,
            elapsed_ns=backend.process.clock_ns - t0,
            cuda_calls=backend.total_calls - calls0,
        )


class TimedLoop:
    """Fast-forwarding iteration driver (see module docstring).

    Example::

        loop = TimedLoop(ctx, total=100_000, measure=4)
        for i in loop:
            ...real CUDA work for iteration i...
        # loop exits after `measure` iterations and fast-forwards the rest
    """

    def __init__(
        self,
        ctx: AppContext,
        total: int,
        measure: int = 4,
        *,
        sync_each: bool = True,
        ff_hook=None,
    ) -> None:
        self.ctx = ctx
        self.total = total
        self.measure = min(measure, total)
        self.sync_each = sync_each
        #: called with the number of fast-forwarded iterations *before*
        #: the end-of-loop checkpoint callback — for state effects (e.g.
        #: malloc/free churn) that must exist when a checkpoint fires.
        self.ff_hook = ff_hook
        self.executed = 0

    def __iter__(self):
        backend = self.ctx.backend
        proc = backend.process
        per_iter_ns: list[float] = []
        per_iter_calls: list[Counter] = []
        for i in range(self.measure):
            t0 = proc.clock_ns
            c0 = Counter(backend.call_counter)
            yield i
            if self.sync_each:
                backend.device_synchronize()
            per_iter_ns.append(proc.clock_ns - t0)
            delta = Counter(backend.call_counter)
            delta.subtract(c0)
            per_iter_calls.append(+delta)
            self.executed += 1
            self.ctx.maybe_checkpoint((i + 1) / self.total)
        remaining = self.total - self.executed
        if remaining > 0:
            # Steady state: warm-up effects live in iteration 0, so the
            # mean of the *later* measured iterations extrapolates best.
            tail_ns = per_iter_ns[1:] or per_iter_ns
            mean_ns = sum(tail_ns) / len(tail_ns)
            tail_calls = per_iter_calls[1:] or per_iter_calls
            mean_calls = Counter()
            if tail_calls:
                for c in tail_calls:
                    mean_calls.update(c)
                mean_calls = Counter(
                    {
                        k: max(1, round(v / len(tail_calls)))
                        for k, v in mean_calls.items()
                    }
                )
            # Fast-forward in chunks so mid-run checkpoint triggers fire
            # at their requested progress with genuinely mid-run clocks.
            chunks = min(10, remaining)
            done = self.executed
            for ci in range(chunks):
                n = remaining // chunks + (1 if ci < remaining % chunks else 0)
                if n == 0:
                    continue
                proc.advance(mean_ns * n)
                if mean_calls:
                    backend.note_external_calls(mean_calls, n)
                if self.ff_hook is not None:
                    self.ff_hook(n)
                done += n
                self.ctx.maybe_checkpoint(done / self.total)
