"""NVIDIA's UnifiedMemoryStreams sample (§4.4.2).

A task consumer: tasks with randomized sizes live entirely in Unified
Memory; small tasks execute on the host (touching managed pages from the
CPU), large tasks on the device across many streams. The paper's
configuration: 128 streams, 1280 tasks, RNG seed 12701 (fixed so the
task-size draw — and hence host/device split — is reproducible).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppContext, CudaApp, TimedLoop, digest_arrays
from repro.cuda.api import ManagedUse

#: The paper sets the seed to 12701 "to get consistent task allocations".
PAPER_SEED = 12701

#: Per-task managed data at scale=1.0 (1280 × ~320 KB average ≈ 400 MB
#: managed, matching UMS's 421 MB checkpoint image).
TASK_BYTES = 512 * 1024


class UnifiedMemoryStreams(CudaApp):
    """NVIDIA UnifiedMemoryStreams: threaded task consumer in UVM."""

    name = "UnifiedMemoryStreams"
    cli_args = "--streams 128 --tasks 1280"
    uses_uvm = True
    uses_streams = True
    stream_range = "4–128"
    target_runtime_s = 12.0
    target_calls = 26_000
    target_ckpt_mb = 421.0

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = PAPER_SEED,
        *,
        nstreams: int = 128,
        ntasks: int = 1280,
    ) -> None:
        super().__init__(scale, seed)
        self.nstreams = nstreams
        self.ntasks = ntasks

    def kernel_names(self):
        """Device functions in this app\'s fat binary."""
        return ("task_kernel",)

    def ballast_bytes(self) -> int:
        return 0  # the managed task pool is the footprint

    #: the sample is "a simple task consumer using threads and streams";
    #: host worker threads pull tasks and drive their own streams.
    N_THREADS = 8

    def run_app(self, ctx: AppContext) -> int:
        b = ctx.backend
        ntasks = self.iterations(self.ntasks, floor=4)
        task_bytes = max(4096, int(TASK_BYTES * self.scale))
        # One managed region per task (all data in Unified Memory).
        sizes = self.rng.integers(task_bytes // 4, task_bytes, ntasks)
        ptrs = [b.malloc_managed(int(s)) for s in sizes]
        workers = [ctx.process.spawn_thread() for _ in range(self.N_THREADS)]
        streams = [b.stream_create() for _ in range(self.nstreams)]
        threshold = int(task_bytes * 0.45)  # small → host, large → device
        checks = np.zeros(ntasks, dtype=np.float64)
        probe_n = 256  # real floats computed per task

        # Per-kernel budget: device tasks carry ~10 sub-kernels each.
        n_device = int((sizes >= threshold).sum())
        kernel_ns = self.kernel_budget_ns(max(1, n_device * 10))

        def consume(t: int) -> None:
            """One task, executed by whichever worker thread pulled it."""
            ptr, size = ptrs[t], int(sizes[t])
            if size < threshold:
                # Host-side task: CPU touches the managed pages directly.
                data = b.managed_view(ptr, 4 * probe_n, np.float32)
                data[:] = np.float32(t)
                data *= np.float32(1.5)
                checks[t] = float(data.sum())
                return
            s = streams[t % self.nstreams]

            def work():
                data = b.runtime.buffers[ptr].contents.view(
                    0, 4 * probe_n, np.float32
                )
                data[:] = np.float32(t)
                data *= np.float32(2.0)

            # The sample's task body: a chain of kernels per task.
            for k in range(10):
                b.launch(
                    "task_kernel",
                    work if k == 0 else None,
                    stream=s,
                    duration_ns=kernel_ns,
                    managed=[ManagedUse(ptr, 0, size, "rw")],
                )
            b.stream_synchronize(s)
            view = b.managed_view(ptr, 4 * probe_n, np.float32)
            checks[t] = float(view.sum())

        loop = TimedLoop(ctx, ntasks, measure=6)
        for t in loop:
            with b.use_thread(workers[t % self.N_THREADS]):
                consume(t)

        b.device_synchronize()
        digest = digest_arrays(checks[: loop.executed])
        for s in streams:
            b.stream_destroy(s)
        for p in ptrs:
            b.free(p)
        return digest
