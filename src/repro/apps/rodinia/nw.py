"""Rodinia NW: Needleman-Wunsch global sequence alignment.

Paper configuration: ``40960 10`` — a 40960×40960 dynamic-programming
matrix (penalty 10) swept in anti-diagonal blocks, two traversals (upper-
left → lower-right and back): ~15K kernel launches over ~70 s, the
longest-running benchmark in Figure 2.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppContext, digest_arrays
from repro.apps.rodinia.base import RodiniaApp


class Nw(RodiniaApp):
    """Needleman-Wunsch DP swept in anti-diagonal launches."""

    name = "NW"
    cli_args = "40960 10"
    target_runtime_s = 70.0
    target_calls = 15_000
    target_ckpt_mb = 45.0
    DEVICE_MB = 25.0
    PAPER_ITERS = 3_750  # anti-diagonal block sweeps
    LAUNCHES_PER_ITER = 1
    MEASURE = 4

    N = 128
    PENALTY = np.int32(10)

    def kernel_names(self):
        """Device functions in this app\'s fat binary."""
        return ("needle_cuda_shared",)

    def setup(self, ctx: AppContext) -> None:
        b = ctx.backend
        n = self.N
        ref = self.rng.integers(-5, 5, (n, n)).astype(np.int32)
        score = np.zeros((n, n), dtype=np.int32)
        score[0, :] = -self.PENALTY * np.arange(n)
        score[:, 0] = -self.PENALTY * np.arange(n)
        self.p_ref = b.malloc(ref.nbytes)
        self.p_score = b.malloc(score.nbytes)
        b.memcpy(self.p_ref, ref, ref.nbytes, "h2d")
        b.memcpy(self.p_score, score, score.nbytes, "h2d")

    def iteration(self, ctx: AppContext, i: int) -> None:
        b = ctx.backend
        n = self.N
        diag = (i % (2 * n - 3)) + 1  # sweep diagonals repeatedly

        def needle():
            ref = b.device_view(self.p_ref, 4 * n * n, np.int32).reshape(n, n)
            sc = b.device_view(self.p_score, 4 * n * n, np.int32).reshape(n, n)
            # Cells on anti-diagonal `diag` (excluding borders).
            ii = np.arange(max(1, diag - n + 2), min(diag, n - 1) + 1)
            if len(ii) == 0:
                return
            jj = diag - ii + 1
            ok = (jj >= 1) & (jj < n)
            ii, jj = ii[ok], jj[ok]
            up = sc[ii - 1, jj] - self.PENALTY
            left = sc[ii, jj - 1] - self.PENALTY
            diag_s = sc[ii - 1, jj - 1] + ref[ii, jj]
            sc[ii, jj] = np.maximum(np.maximum(up, left), diag_s)

        self.launch(ctx, "needle_cuda_shared", needle, flop=5.0 * n)

    def finalize(self, ctx: AppContext) -> int:
        b = ctx.backend
        n = self.N
        out = np.zeros((n, n), dtype=np.int32)
        b.memcpy(out, self.p_score, out.nbytes, "d2h")
        b.free(self.p_ref)
        b.free(self.p_score)
        self.outputs = {"score": out}
        return digest_arrays(out)
