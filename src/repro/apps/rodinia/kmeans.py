"""Rodinia Kmeans: iterative k-means clustering.

Paper configuration: ``kdd_cup -l 1000`` — the KDD Cup '99 features
(494K points × 34 dims) for 1000 outer loops, the suite's second-largest
image (374 MB: the feature matrix lives on the device). Per loop:
assignment kernel, center-reduction kernel, delta check, plus center
up/downloads (~30K calls over ~15 s).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppContext, digest_arrays
from repro.apps.rodinia.base import RodiniaApp


class Kmeans(RodiniaApp):
    """Lloyd iterations with per-loop center round trips."""

    name = "Kmeans"
    cli_args = "kdd_cup -l 1000"
    target_runtime_s = 15.0
    target_calls = 30_000
    target_ckpt_mb = 374.0
    DEVICE_MB = 300.0
    PAPER_ITERS = 2_140
    LAUNCHES_PER_ITER = 3
    MEASURE = 4

    N_POINTS = 256
    N_DIMS = 8
    N_CLUSTERS = 5

    def kernel_names(self):
        """Device functions in this app\'s fat binary."""
        return ("kmeans_assign", "kmeans_reduce_centers", "kmeans_delta")

    def setup(self, ctx: AppContext) -> None:
        b = ctx.backend
        pts = self.rng.standard_normal((self.N_POINTS, self.N_DIMS)).astype(
            np.float32
        )
        centers = pts[: self.N_CLUSTERS].copy()
        self.p_pts = b.malloc(pts.nbytes)
        self.p_centers = b.malloc(centers.nbytes)
        self.p_member = b.malloc(4 * self.N_POINTS)
        b.memcpy(self.p_pts, pts, pts.nbytes, "h2d")
        b.memcpy(self.p_centers, centers, centers.nbytes, "h2d")

    def iteration(self, ctx: AppContext, i: int) -> None:
        b = ctx.backend
        npts, nd, nc = self.N_POINTS, self.N_DIMS, self.N_CLUSTERS

        # Host uploads the current centers each loop (the Rodinia code's
        # center round trip — the source of the extra memcpys).
        centers = np.zeros((nc, nd), dtype=np.float32)
        b.memcpy(centers, self.p_centers, centers.nbytes, "d2h")
        b.memcpy(self.p_centers, centers, centers.nbytes, "h2d")

        def assign():
            pts = b.device_view(self.p_pts, 4 * npts * nd, np.float32).reshape(
                npts, nd
            )
            ctr = b.device_view(self.p_centers, 4 * nc * nd, np.float32).reshape(
                nc, nd
            )
            member = b.device_view(self.p_member, 4 * npts, np.int32)
            d2 = ((pts[:, None, :] - ctr[None, :, :]) ** 2).sum(axis=2)
            member[:] = np.argmin(d2, axis=1).astype(np.int32)

        def reduce_centers():
            pts = b.device_view(self.p_pts, 4 * npts * nd, np.float32).reshape(
                npts, nd
            )
            ctr = b.device_view(self.p_centers, 4 * nc * nd, np.float32).reshape(
                nc, nd
            )
            member = b.device_view(self.p_member, 4 * npts, np.int32)
            for c in range(nc):
                mask = member == c
                if mask.any():
                    ctr[c] = pts[mask].mean(axis=0)

        self.launch(ctx, "kmeans_assign", assign, flop=3.0 * npts * nc * nd)
        self.launch(ctx, "kmeans_reduce_centers", reduce_centers,
                    flop=2.0 * npts * nd)
        self.launch(ctx, "kmeans_delta", None, flop=float(npts))
        delta = np.zeros(1, dtype=np.int32)
        b.memcpy(delta, self.p_member, 4, "d2h")
        probe = np.zeros((1, nd), dtype=np.float32)
        b.memcpy(probe, self.p_centers, probe.nbytes, "d2h")

    def finalize(self, ctx: AppContext) -> int:
        b = ctx.backend
        centers = np.zeros((self.N_CLUSTERS, self.N_DIMS), dtype=np.float32)
        member = np.zeros(self.N_POINTS, dtype=np.int32)
        b.memcpy(centers, self.p_centers, centers.nbytes, "d2h")
        b.memcpy(member, self.p_member, member.nbytes, "d2h")
        for p in (self.p_pts, self.p_centers, self.p_member):
            b.free(p)
        self.outputs = {"centers": centers, "member": member}
        return digest_arrays(centers, member)
