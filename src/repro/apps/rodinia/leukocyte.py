"""Rodinia Leukocyte: white-blood-cell detection and tracking in video.

Paper configuration: ``testfile.avi 500`` (500 frames). Detection uses a
GICOV matrix + dilation; tracking evolves a motion-gradient vector flow
per cell. Six kernels plus frame/result transfers per frame: ~12K calls
over ~6.5 s, with a large (695 MB, Figure 3) footprint from the frame
buffers.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppContext, digest_arrays
from repro.apps.rodinia.base import RodiniaApp


class Leukocyte(RodiniaApp):
    """White-blood-cell detection/tracking across video frames."""

    name = "Leukocyte"
    cli_args = "testfile.avi 500"
    target_runtime_s = 6.5
    target_calls = 12_000
    target_ckpt_mb = 695.0
    DEVICE_MB = 550.0
    PAPER_ITERS = 460  # frames
    LAUNCHES_PER_ITER = 6
    MEASURE = 4

    SIDE = 64
    N_CELLS = 10

    def kernel_names(self):
        """Device functions in this app\'s fat binary."""
        return ("GICOV_kernel", "dilate_kernel", "IMGVF_kernel",
                "heaviside_kernel", "regularize_kernel", "track_cells")

    def setup(self, ctx: AppContext) -> None:
        b = ctx.backend
        s = self.SIDE
        self.p_frame = b.malloc(4 * s * s)
        self.p_gicov = b.malloc(4 * s * s)
        self.p_imgvf = b.malloc(4 * s * s)
        self.p_cells = b.malloc(8 * self.N_CELLS)
        cells = self.rng.uniform(8, s - 8, (2, self.N_CELLS)).astype(np.float32)
        b.memcpy(self.p_cells, cells, cells.nbytes, "h2d")

    def iteration(self, ctx: AppContext, i: int) -> None:
        b = ctx.backend
        s = self.SIDE
        frame = self.rng.standard_normal((s, s)).astype(np.float32)
        b.memcpy(self.p_frame, frame, frame.nbytes, "h2d")

        def view(ptr):
            return b.device_view(ptr, 4 * s * s, np.float32).reshape(s, s)

        def gicov():
            f, g = view(self.p_frame), view(self.p_gicov)
            gx = np.zeros_like(f)
            gx[:, 1:-1] = (f[:, 2:] - f[:, :-2]) * 0.5
            g[:] = gx * gx

        def dilate():
            g = view(self.p_gicov)
            g[1:-1, 1:-1] = np.maximum.reduce(
                [g[1:-1, 1:-1], g[:-2, 1:-1], g[2:, 1:-1], g[1:-1, :-2]]
            )

        def imgvf():
            g, v = view(self.p_gicov), view(self.p_imgvf)
            v[:] = 0.9 * v + 0.1 * g

        def heaviside():
            v = view(self.p_imgvf)
            np.tanh(v, out=v)

        def regularize():
            v = view(self.p_imgvf)
            v[1:-1, 1:-1] += np.float32(0.05) * (
                v[:-2, 1:-1] + v[2:, 1:-1] + v[1:-1, :-2] + v[1:-1, 2:]
                - 4 * v[1:-1, 1:-1]
            )

        def track():
            v = view(self.p_imgvf)
            cells = b.device_view(
                self.p_cells, 8 * self.N_CELLS, np.float32
            ).reshape(2, self.N_CELLS)
            xi = np.clip(cells[0].astype(np.int64), 1, s - 2)
            yi = np.clip(cells[1].astype(np.int64), 1, s - 2)
            cells[0] = np.clip(cells[0] + 0.02 * v[yi, xi], 1, s - 2)

        flop = float(6 * s * s)
        self.launch(ctx, "GICOV_kernel", gicov, flop=flop)
        self.launch(ctx, "dilate_kernel", dilate, flop=flop)
        self.launch(ctx, "IMGVF_kernel", imgvf, flop=flop)
        self.launch(ctx, "heaviside_kernel", heaviside, flop=flop)
        self.launch(ctx, "regularize_kernel", regularize, flop=flop)
        self.launch(ctx, "track_cells", track, flop=float(self.N_CELLS))
        probe = np.zeros(4, dtype=np.float32)
        for ptr in (self.p_gicov, self.p_imgvf, self.p_cells):
            b.memcpy(probe, ptr, probe.nbytes, "d2h")
        b.memcpy(self.p_gicov, self.p_imgvf, 4 * s * s, "d2d")
        b.memcpy(probe, self.p_cells, probe.nbytes, "d2h")
        b.memcpy(probe, self.p_imgvf, probe.nbytes, "d2h")

    def finalize(self, ctx: AppContext) -> int:
        b = ctx.backend
        cells = np.zeros((2, self.N_CELLS), dtype=np.float32)
        b.memcpy(cells, self.p_cells, cells.nbytes, "d2h")
        for p in (self.p_frame, self.p_gicov, self.p_imgvf, self.p_cells):
            b.free(p)
        self.outputs = {"cells": cells}
        return digest_arrays(cells)
