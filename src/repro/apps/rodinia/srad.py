"""Rodinia SRAD: speckle-reducing anisotropic diffusion (ultrasound).

Paper configuration: ``2048 2048 0 127 0 127 0.5 1000`` — a 2048²
image, λ=0.5, 1000 diffusion iterations. Two kernels per iteration
(diffusion-coefficient computation, then the update): ~8K calls in ~6 s.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppContext, digest_arrays
from repro.apps.rodinia.base import RodiniaApp


class Srad(RodiniaApp):
    """Speckle-reducing anisotropic diffusion, two kernels per step."""

    name = "SRAD"
    cli_args = "2048 2048 0 127 0 127 0.5 1000"
    target_runtime_s = 6.0
    target_calls = 8_000
    target_ckpt_mb = 53.0
    DEVICE_MB = 35.0
    PAPER_ITERS = 1_140
    LAUNCHES_PER_ITER = 2
    MEASURE = 4

    SIDE = 64
    LAMBDA = np.float32(0.5)

    def kernel_names(self):
        """Device functions in this app\'s fat binary."""
        return ("srad_cuda_1", "srad_cuda_2")

    def setup(self, ctx: AppContext) -> None:
        b = ctx.backend
        s = self.SIDE
        img = np.exp(self.rng.standard_normal((s, s)) * 0.1).astype(np.float32)
        self.p_img = b.malloc(img.nbytes)
        self.p_coef = b.malloc(img.nbytes)
        b.memcpy(self.p_img, img, img.nbytes, "h2d")

    def iteration(self, ctx: AppContext, i: int) -> None:
        b = ctx.backend
        s = self.SIDE

        def srad1():
            img = b.device_view(self.p_img, 4 * s * s, np.float32).reshape(s, s)
            coef = b.device_view(self.p_coef, 4 * s * s, np.float32).reshape(s, s)
            dn = np.roll(img, -1, 0) - img
            ds = np.roll(img, 1, 0) - img
            de = np.roll(img, -1, 1) - img
            dw = np.roll(img, 1, 1) - img
            g2 = (dn**2 + ds**2 + de**2 + dw**2) / np.maximum(img, 1e-12) ** 2
            l_ = (dn + ds + de + dw) / np.maximum(img, 1e-12)
            num = 0.5 * g2 - 0.0625 * l_**2
            den = (1 + 0.25 * l_) ** 2
            q2 = num / np.maximum(den, 1e-12)
            q0 = np.float32(0.05)
            coef[:] = 1.0 / (1.0 + (q2 - q0) / (q0 * (1 + q0) + 1e-12))
            np.clip(coef, 0.0, 1.0, out=coef)

        def srad2():
            img = b.device_view(self.p_img, 4 * s * s, np.float32).reshape(s, s)
            coef = b.device_view(self.p_coef, 4 * s * s, np.float32).reshape(s, s)
            cn = np.roll(coef, -1, 0)
            ce = np.roll(coef, -1, 1)
            div = (
                cn * (np.roll(img, -1, 0) - img)
                + coef * (np.roll(img, 1, 0) - img)
                + ce * (np.roll(img, -1, 1) - img)
                + coef * (np.roll(img, 1, 1) - img)
            )
            img += 0.25 * self.LAMBDA * div

        self.launch(ctx, "srad_cuda_1", srad1, flop=24.0 * s * s)
        self.launch(ctx, "srad_cuda_2", srad2, flop=12.0 * s * s)

    def finalize(self, ctx: AppContext) -> int:
        b = ctx.backend
        s = self.SIDE
        out = np.zeros((s, s), dtype=np.float32)
        b.memcpy(out, self.p_img, out.nbytes, "d2h")
        b.free(self.p_img)
        b.free(self.p_coef)
        self.outputs = {"image": out}
        return digest_arrays(out)
