"""Rodinia Streamcluster: online clustering of a data stream.

Paper configuration: ``10 20 256 65536 65536 1000 none output.txt 1``
(k ∈ [10,20], 256 dims, 64K-point chunks). Streamcluster is the other
benchmark (with Heartwall) the paper calls out for *many CUDA mallocs
and frees* (§4.4.1): the pgain evaluation allocates fresh device
scratch every pass, so its restart replays a long log and exceeds its
checkpoint time. ~69K calls in ~6.8 s.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppContext, digest_arrays
from repro.apps.rodinia.base import RodiniaApp


class Streamcluster(RodiniaApp):
    """Online clustering with per-pass device scratch churn."""

    name = "Streamcluster"
    cli_args = "10 20 256 65536 65536 1000 none output.txt 1"
    target_runtime_s = 6.8
    target_calls = 69_000
    target_ckpt_mb = 83.0
    DEVICE_MB = 50.0
    PAPER_ITERS = 2_875  # pgain passes
    LAUNCHES_PER_ITER = 7
    MEASURE = 4
    CHURN_PER_ITER = 1  # per-pass pgain scratch (the §4.4.1 malloc churn)

    N_POINTS = 128
    N_DIMS = 8

    def kernel_names(self):
        """Device functions in this app\'s fat binary."""
        return ("pgain_dist", "pgain_assign", "pgain_lower", "pgain_center",
                "shuffle_points", "compute_cost", "reduce_cost")

    def setup(self, ctx: AppContext) -> None:
        b = ctx.backend
        pts = self.rng.standard_normal((self.N_POINTS, self.N_DIMS)).astype(
            np.float32
        )
        self.p_pts = b.malloc(pts.nbytes)
        self.p_centers = b.malloc(4 * self.N_POINTS)  # center flags
        self.p_cost = b.malloc(4)
        b.memcpy(self.p_pts, pts, pts.nbytes, "h2d")
        flags = np.zeros(self.N_POINTS, dtype=np.int32)
        flags[0] = 1
        b.memcpy(self.p_centers, flags, flags.nbytes, "h2d")

    def iteration(self, ctx: AppContext, i: int) -> None:
        b = ctx.backend
        n, d = self.N_POINTS, self.N_DIMS
        candidate = i % n

        # pgain's per-pass device scratch: the malloc/free churn.
        p_scratch = b.malloc(4 * n)

        def dist():
            pts = b.device_view(self.p_pts, 4 * n * d, np.float32).reshape(n, d)
            scratch = b.device_view(p_scratch, 4 * n, np.float32)
            scratch[:] = ((pts - pts[candidate]) ** 2).sum(axis=1)

        def assign():
            scratch = b.device_view(p_scratch, 4 * n, np.float32)
            flags = b.device_view(self.p_centers, 4 * n, np.int32)
            # Open the candidate as a center if it lowers local cost.
            if float(scratch.mean()) < float(scratch.max()) * 0.8:
                flags[candidate] = 1

        def cost():
            pts = b.device_view(self.p_pts, 4 * n * d, np.float32).reshape(n, d)
            flags = b.device_view(self.p_centers, 4 * n, np.int32)
            c = b.device_view(self.p_cost, 4, np.float32)
            centers = pts[flags.astype(bool)]
            if len(centers):
                d2 = ((pts[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
                c[0] = np.float32(d2.min(axis=1).sum())

        flop = float(3 * n * d)
        self.launch(ctx, "pgain_dist", dist, flop=flop)
        self.launch(ctx, "pgain_assign", assign, flop=float(n))
        self.launch(ctx, "pgain_lower", None, flop=float(n))
        self.launch(ctx, "pgain_center", None, flop=float(n))
        self.launch(ctx, "shuffle_points", None, flop=float(n))
        self.launch(ctx, "compute_cost", cost, flop=flop * 4)
        self.launch(ctx, "reduce_cost", None, flop=float(n))
        b.free(p_scratch)

    def finalize(self, ctx: AppContext) -> int:
        b = ctx.backend
        flags = np.zeros(self.N_POINTS, dtype=np.int32)
        cost = np.zeros(1, dtype=np.float32)
        b.memcpy(flags, self.p_centers, flags.nbytes, "d2h")
        b.memcpy(cost, self.p_cost, 4, "d2h")
        for p in (self.p_pts, self.p_centers, self.p_cost):
            b.free(p)
        self.outputs = {"flags": flags, "cost": cost}
        return digest_arrays(flags, cost)
