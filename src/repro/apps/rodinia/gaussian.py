"""Rodinia Gaussian: dense Gaussian elimination.

Paper configuration: ``-s 8192 -q`` — an 8192×8192 system, giving the
suite's largest checkpoint image (783 MB, Figure 3: the matrix plus the
multiplier array dominate). Two kernels per eliminated row (Fan1 computes
the multiplier column, Fan2 updates the trailing submatrix), ~18K calls
over ~45 s.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppContext, digest_arrays
from repro.apps.rodinia.base import RodiniaApp


class Gaussian(RodiniaApp):
    """Dense Gaussian elimination (Fan1/Fan2 kernels per row)."""

    name = "Gaussian"
    cli_args = "-s 8192 -q"
    target_runtime_s = 45.0
    target_calls = 18_000
    target_ckpt_mb = 783.0
    DEVICE_MB = 600.0
    PAPER_ITERS = 2_570
    LAUNCHES_PER_ITER = 2
    MEASURE = 4

    N = 96  # miniature system size

    def kernel_names(self):
        """Device functions in this app\'s fat binary."""
        return ("Fan1", "Fan2")

    def setup(self, ctx: AppContext) -> None:
        b = ctx.backend
        n = self.N
        a = self.rng.standard_normal((n, n)).astype(np.float32)
        a += n * np.eye(n, dtype=np.float32)  # diagonally dominant
        rhs = self.rng.standard_normal(n).astype(np.float32)
        self.p_a = b.malloc(a.nbytes)
        self.p_b = b.malloc(rhs.nbytes)
        self.p_m = b.malloc(a.nbytes)
        b.memcpy(self.p_a, a, a.nbytes, "h2d")
        b.memcpy(self.p_b, rhs, rhs.nbytes, "h2d")
        b.memset(self.p_m, 0, a.nbytes)

    def iteration(self, ctx: AppContext, i: int) -> None:
        b = ctx.backend
        n = self.N
        row = i % (n - 1)  # paper iterations sweep rows repeatedly

        def fan1():
            a = b.device_view(self.p_a, 4 * n * n, np.float32).reshape(n, n)
            m = b.device_view(self.p_m, 4 * n * n, np.float32).reshape(n, n)
            piv = a[row, row]
            if abs(piv) > 1e-12:
                m[row + 1 :, row] = a[row + 1 :, row] / piv

        def fan2():
            a = b.device_view(self.p_a, 4 * n * n, np.float32).reshape(n, n)
            m = b.device_view(self.p_m, 4 * n * n, np.float32).reshape(n, n)
            rhs = b.device_view(self.p_b, 4 * n, np.float32)
            mult = m[row + 1 :, row : row + 1]
            a[row + 1 :, row:] -= mult * a[row : row + 1, row:]
            rhs[row + 1 :] -= mult[:, 0] * rhs[row]

        self.launch(ctx, "Fan1", fan1, flop=float(n))
        self.launch(ctx, "Fan2", fan2, flop=2.0 * n * n)

    def finalize(self, ctx: AppContext) -> int:
        b = ctx.backend
        n = self.N
        a = np.zeros((n, n), dtype=np.float32)
        rhs = np.zeros(n, dtype=np.float32)
        b.memcpy(a, self.p_a, a.nbytes, "d2h")
        b.memcpy(rhs, self.p_b, rhs.nbytes, "d2h")
        for p in (self.p_a, self.p_b, self.p_m):
            b.free(p)
        self.outputs = {"a": a, "rhs": rhs}
        return digest_arrays(a, rhs)
