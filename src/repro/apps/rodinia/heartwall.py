"""Rodinia Heartwall: mouse-heart wall tracking across video frames.

Paper configuration: ``test.avi 104`` (104 frames). Heartwall is one of
the two benchmarks the paper singles out in §4.4.1 for doing *many CUDA
mallocs and frees* — per-frame temporary buffers — which makes its
restart (full log replay) slower than its checkpoint. Small footprint
(16 MB image, the suite's minimum).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppContext, digest_arrays
from repro.apps.rodinia.base import RodiniaApp


class Heartwall(RodiniaApp):
    """Heart-wall tracking with per-frame malloc/free churn."""

    name = "Heartwall"
    cli_args = "test.avi 104"
    target_runtime_s = 5.0
    target_calls = 1_700
    target_ckpt_mb = 16.0
    DEVICE_MB = 2.0
    PAPER_ITERS = 104  # frames
    LAUNCHES_PER_ITER = 4
    MEASURE = 4
    CHURN_PER_ITER = 2  # per-frame temporaries (the §4.4.1 malloc churn)

    SIDE = 64
    N_POINTS = 20  # tracked wall points

    def kernel_names(self):
        """Device functions in this app\'s fat binary."""
        return ("heartwall_convolve", "heartwall_gicov",
                "heartwall_dilate", "heartwall_track")

    def setup(self, ctx: AppContext) -> None:
        b = ctx.backend
        s = self.SIDE
        self.p_frame = b.malloc(4 * s * s)
        self.p_points = b.malloc(8 * self.N_POINTS)
        pts = np.stack(
            [self.rng.uniform(8, s - 8, self.N_POINTS) for _ in range(2)]
        ).astype(np.float32)
        b.memcpy(self.p_points, pts, pts.nbytes, "h2d")

    def iteration(self, ctx: AppContext, i: int) -> None:
        b = ctx.backend
        s = self.SIDE
        frame = self.rng.standard_normal((s, s)).astype(np.float32)
        b.memcpy(self.p_frame, frame, frame.nbytes, "h2d")

        # Per-frame temporaries: the malloc/free churn of §4.4.1.
        p_tmp = b.malloc(4 * s * s)
        p_tmp2 = b.malloc(4 * s * s)  # dilation scratch

        def convolve():
            f = b.device_view(self.p_frame, 4 * s * s, np.float32).reshape(s, s)
            t = b.device_view(p_tmp, 4 * s * s, np.float32).reshape(s, s)
            t[:] = f
            t[1:-1, 1:-1] = (
                f[:-2, 1:-1] + f[2:, 1:-1] + f[1:-1, :-2] + f[1:-1, 2:]
            ) * 0.25

        def gicov():
            t = b.device_view(p_tmp, 4 * s * s, np.float32).reshape(s, s)
            np.abs(t, out=t)

        def dilate():
            t = b.device_view(p_tmp, 4 * s * s, np.float32).reshape(s, s)
            t2 = b.device_view(p_tmp2, 4 * s * s, np.float32).reshape(s, s)
            t2[:] = t
            t[1:-1, 1:-1] = np.maximum(t2[1:-1, 1:-1], t2[:-2, 1:-1])

        def track():
            t = b.device_view(p_tmp, 4 * s * s, np.float32).reshape(s, s)
            pts = b.device_view(
                self.p_points, 8 * self.N_POINTS, np.float32
            ).reshape(2, self.N_POINTS)
            xi = np.clip(pts[0].astype(np.int64), 1, s - 2)
            yi = np.clip(pts[1].astype(np.int64), 1, s - 2)
            grad = t[yi, xi] - t[yi, np.maximum(xi - 1, 0)]
            pts[0] = np.clip(pts[0] + 0.01 * np.sign(grad), 1, s - 2)

        flop = float(4 * s * s)
        self.launch(ctx, "heartwall_convolve", convolve, flop=flop)
        self.launch(ctx, "heartwall_gicov", gicov, flop=flop)
        self.launch(ctx, "heartwall_dilate", dilate, flop=flop)
        self.launch(ctx, "heartwall_track", track, flop=float(self.N_POINTS))
        probe = np.zeros(2, dtype=np.float32)
        b.memcpy(probe, self.p_points, probe.nbytes, "d2h")
        b.free(p_tmp)
        b.free(p_tmp2)

    def finalize(self, ctx: AppContext) -> int:
        b = ctx.backend
        pts = np.zeros((2, self.N_POINTS), dtype=np.float32)
        b.memcpy(pts, self.p_points, pts.nbytes, "d2h")
        b.free(self.p_frame)
        b.free(self.p_points)
        self.outputs = {"points": pts}
        return digest_arrays(pts)
