"""Rodinia Particlefilter: sequential Monte-Carlo object tracking.

Paper configuration: ``-x 128 -y 128 -z 10 -np 100000`` — ten video
frames, 100K particles. Four kernels per frame (likelihood, weight
normalization, cumulative sum, resample) — the suite's *lowest* call
count (~120 calls, Figure 2 annotation).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppContext, digest_arrays
from repro.apps.rodinia.base import RodiniaApp


class Particlefilter(RodiniaApp):
    """Sequential Monte-Carlo tracker (the lowest-call-count app)."""

    name = "Particlefilter"
    cli_args = "-x 128 -y 128 -z 10 -np 100000"
    target_runtime_s = 5.0
    target_calls = 120
    target_ckpt_mb = 36.0
    DEVICE_MB = 16.0
    PAPER_ITERS = 10  # frames (-z 10)
    LAUNCHES_PER_ITER = 4
    MEASURE = 10  # small loop: fully real

    N_PARTICLES = 100

    def kernel_names(self):
        """Device functions in this app\'s fat binary."""
        return ("likelihood_kernel", "normalize_weights_kernel",
                "sum_kernel", "find_index_kernel")

    def setup(self, ctx: AppContext) -> None:
        b = ctx.backend
        n = self.N_PARTICLES
        self.true_path = np.cumsum(
            self.rng.standard_normal((self.PAPER_ITERS + 1, 2)), axis=0
        ).astype(np.float32)
        particles = (
            self.true_path[0] + self.rng.standard_normal((n, 2))
        ).astype(np.float32)
        weights = np.full(n, 1.0 / n, dtype=np.float32)
        self.p_particles = b.malloc(particles.nbytes)
        self.p_weights = b.malloc(weights.nbytes)
        self.p_cdf = b.malloc(weights.nbytes)
        b.memcpy(self.p_particles, particles, particles.nbytes, "h2d")
        b.memcpy(self.p_weights, weights, weights.nbytes, "h2d")

    def iteration(self, ctx: AppContext, i: int) -> None:
        b = ctx.backend
        n = self.N_PARTICLES
        obs = self.true_path[i + 1]
        noise = self.rng.standard_normal((n, 2)).astype(np.float32) * 0.2

        def likelihood():
            p = b.device_view(self.p_particles, 8 * n, np.float32).reshape(n, 2)
            w = b.device_view(self.p_weights, 4 * n, np.float32)
            p += noise  # motion model
            d2 = ((p - obs) ** 2).sum(axis=1)
            w[:] = np.exp(-0.5 * d2).astype(np.float32) + np.float32(1e-12)

        def normalize():
            w = b.device_view(self.p_weights, 4 * n, np.float32)
            w /= w.sum()

        def cumsum():
            w = b.device_view(self.p_weights, 4 * n, np.float32)
            c = b.device_view(self.p_cdf, 4 * n, np.float32)
            np.cumsum(w, out=c)

        def resample():
            p = b.device_view(self.p_particles, 8 * n, np.float32).reshape(n, 2)
            c = b.device_view(self.p_cdf, 4 * n, np.float32)
            u = (np.arange(n, dtype=np.float32) + np.float32(0.5)) / n
            idx = np.searchsorted(c, u).clip(0, n - 1)
            p[:] = p[idx]

        self.launch(ctx, "likelihood_kernel", likelihood, flop=8.0 * n)
        self.launch(ctx, "normalize_weights_kernel", normalize, flop=2.0 * n)
        self.launch(ctx, "sum_kernel", cumsum, flop=float(n))
        self.launch(ctx, "find_index_kernel", resample, flop=float(n) * 7)

    def finalize(self, ctx: AppContext) -> int:
        b = ctx.backend
        n = self.N_PARTICLES
        particles = np.zeros((n, 2), dtype=np.float32)
        b.memcpy(particles, self.p_particles, particles.nbytes, "d2h")
        for p in (self.p_particles, self.p_weights, self.p_cdf):
            b.free(p)
        self.outputs = {"particles": particles}
        return digest_arrays(particles)
