"""Rodinia DWT2D: 2D discrete (Haar) wavelet transform.

Paper configuration: ``rgb.bmp -d 1024x1024 -f -5 -l 100000`` — the
``-l 100000`` loop count makes DWT2D the suite's call-count outlier:
~800K CUDA calls in ~6 s, i.e. ~133K calls/second (the top of Table 1's
Rodinia CPS range). Forward/inverse Haar levels on an image, five
kernels per loop.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppContext, digest_arrays
from repro.apps.rodinia.base import RodiniaApp


class Dwt2d(RodiniaApp):
    """2D Haar wavelet transform loops (the suite's call-count outlier)."""

    name = "DWT2D"
    cli_args = "rgb.bmp -d 1024x1024 -f -5 -l 100000"
    target_runtime_s = 6.0
    target_calls = 800_000
    target_ckpt_mb = 40.0
    DEVICE_MB = 10.0
    PAPER_ITERS = 47_000
    LAUNCHES_PER_ITER = 5
    MEASURE = 4

    SIDE = 64

    def kernel_names(self):
        """Device functions in this app\'s fat binary."""
        return ("fdwt_rows_low", "fdwt_rows_high", "fdwt_cols_low",
                "fdwt_cols_high", "quantize")

    def setup(self, ctx: AppContext) -> None:
        b = ctx.backend
        s = self.SIDE
        img = self.rng.standard_normal((s, s)).astype(np.float32)
        self.p_img = b.malloc(img.nbytes)
        self.p_tmp = b.malloc(img.nbytes)
        b.memcpy(self.p_img, img, img.nbytes, "h2d")

    def iteration(self, ctx: AppContext, i: int) -> None:
        b = ctx.backend
        s = self.SIDE
        inv_sqrt2 = np.float32(1.0 / np.sqrt(2.0))

        def rows_low():
            img = b.device_view(self.p_img, 4 * s * s, np.float32).reshape(s, s)
            tmp = b.device_view(self.p_tmp, 4 * s * s, np.float32).reshape(s, s)
            tmp[:, : s // 2] = (img[:, 0::2] + img[:, 1::2]) * inv_sqrt2

        def rows_high():
            img = b.device_view(self.p_img, 4 * s * s, np.float32).reshape(s, s)
            tmp = b.device_view(self.p_tmp, 4 * s * s, np.float32).reshape(s, s)
            tmp[:, s // 2 :] = (img[:, 0::2] - img[:, 1::2]) * inv_sqrt2

        def cols_low():
            tmp = b.device_view(self.p_tmp, 4 * s * s, np.float32).reshape(s, s)
            img = b.device_view(self.p_img, 4 * s * s, np.float32).reshape(s, s)
            img[: s // 2, :] = (tmp[0::2, :] + tmp[1::2, :]) * inv_sqrt2

        def cols_high():
            tmp = b.device_view(self.p_tmp, 4 * s * s, np.float32).reshape(s, s)
            img = b.device_view(self.p_img, 4 * s * s, np.float32).reshape(s, s)
            img[s // 2 :, :] = (tmp[0::2, :] - tmp[1::2, :]) * inv_sqrt2

        def quantize():
            img = b.device_view(self.p_img, 4 * s * s, np.float32).reshape(s, s)
            np.round(img * 64.0, out=img)
            img /= 64.0

        flop = float(2 * s * s)
        self.launch(ctx, "fdwt_rows_low", rows_low, flop=flop)
        self.launch(ctx, "fdwt_rows_high", rows_high, flop=flop)
        self.launch(ctx, "fdwt_cols_low", cols_low, flop=flop)
        self.launch(ctx, "fdwt_cols_high", cols_high, flop=flop)
        self.launch(ctx, "quantize", quantize, flop=flop)
        probe = np.zeros(4, dtype=np.float32)
        b.memcpy(probe, self.p_img, probe.nbytes, "d2h")

    def finalize(self, ctx: AppContext) -> int:
        b = ctx.backend
        s = self.SIDE
        out = np.zeros((s, s), dtype=np.float32)
        b.memcpy(out, self.p_img, out.nbytes, "d2h")
        b.free(self.p_img)
        b.free(self.p_tmp)
        self.outputs = {"image": out}
        return digest_arrays(out)
