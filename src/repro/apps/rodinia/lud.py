"""Rodinia LUD: blocked LU decomposition.

Paper configuration: ``-s 2048 -v`` — a 2048×2048 matrix, 16×16 blocks.
Three kernels per block step (diagonal, perimeter, internal), ~1K calls
in ~4.5 s (a low-call, kernel-heavy profile).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppContext, digest_arrays
from repro.apps.rodinia.base import RodiniaApp


class Lud(RodiniaApp):
    """Blocked LU decomposition (diagonal/perimeter/internal kernels)."""

    name = "LUD"
    cli_args = "-s 2048 -v"
    target_runtime_s = 4.5
    target_calls = 1_000
    target_ckpt_mb = 57.0
    DEVICE_MB = 40.0
    PAPER_ITERS = 100  # block steps
    LAUNCHES_PER_ITER = 3
    MEASURE = 4

    N = 64
    B = 8  # miniature block size

    def kernel_names(self):
        """Device functions in this app\'s fat binary."""
        return ("lud_diagonal", "lud_perimeter", "lud_internal")

    def setup(self, ctx: AppContext) -> None:
        b = ctx.backend
        n = self.N
        a = self.rng.standard_normal((n, n)).astype(np.float32)
        a += n * np.eye(n, dtype=np.float32)
        self.p_a = b.malloc(a.nbytes)
        b.memcpy(self.p_a, a, a.nbytes, "h2d")

    def iteration(self, ctx: AppContext, i: int) -> None:
        b = ctx.backend
        n, blk = self.N, self.B
        nblocks = n // blk
        k = i % nblocks  # block step

        def diagonal():
            a = b.device_view(self.p_a, 4 * n * n, np.float32).reshape(n, n)
            o = k * blk
            d = a[o : o + blk, o : o + blk]
            for j in range(blk - 1):
                piv = d[j, j]
                if abs(piv) > 1e-12:
                    d[j + 1 :, j] /= piv
                    d[j + 1 :, j + 1 :] -= np.outer(d[j + 1 :, j], d[j, j + 1 :])

        def perimeter():
            a = b.device_view(self.p_a, 4 * n * n, np.float32).reshape(n, n)
            o = k * blk
            if o + blk < n:
                d = a[o : o + blk, o : o + blk]
                a[o : o + blk, o + blk :] *= 0.999  # row panel scale
                a[o + blk :, o : o + blk] *= 0.999  # col panel scale

        def internal():
            a = b.device_view(self.p_a, 4 * n * n, np.float32).reshape(n, n)
            o = k * blk
            if o + blk < n:
                a[o + blk :, o + blk :] -= (
                    a[o + blk :, o : o + blk] @ a[o : o + blk, o + blk :]
                ) * np.float32(1e-3)

        self.launch(ctx, "lud_diagonal", diagonal, flop=float(blk**3))
        self.launch(ctx, "lud_perimeter", perimeter, flop=2.0 * blk * blk * n)
        self.launch(ctx, "lud_internal", internal, flop=2.0 * n * n * blk)

    def finalize(self, ctx: AppContext) -> int:
        b = ctx.backend
        n = self.N
        out = np.zeros((n, n), dtype=np.float32)
        b.memcpy(out, self.p_a, out.nbytes, "d2h")
        b.free(self.p_a)
        self.outputs = {"a": out}
        return digest_arrays(out)
