"""Rodinia Hotspot: 2D thermal simulation (processor floorplan stencil).

Paper configuration: ``temp_512 power_512 output.out`` — a 512×512 grid.
One stencil kernel per timestep: ~7K CUDA calls in ~4 s.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppContext, digest_arrays
from repro.apps.rodinia.base import RodiniaApp


class Hotspot(RodiniaApp):
    """2D thermal stencil, one kernel per timestep."""

    name = "Hotspot"
    cli_args = "temp_512 power_512 output.out"
    target_runtime_s = 4.0
    target_calls = 7_000
    target_ckpt_mb = 18.0
    DEVICE_MB = 3.0
    PAPER_ITERS = 1_750
    LAUNCHES_PER_ITER = 1
    MEASURE = 4

    SIDE = 64
    K = np.float32(0.1)

    def kernel_names(self):
        """Device functions in this app\'s fat binary."""
        return ("calculate_temp",)

    def setup(self, ctx: AppContext) -> None:
        b = ctx.backend
        s = self.SIDE
        temp = (300.0 + self.rng.random((s, s)) * 40.0).astype(np.float32)
        power = (self.rng.random((s, s)) * 2.0).astype(np.float32)
        self.p_temp = b.malloc(temp.nbytes)
        self.p_power = b.malloc(power.nbytes)
        b.memcpy(self.p_temp, temp, temp.nbytes, "h2d")
        b.memcpy(self.p_power, power, power.nbytes, "h2d")

    def iteration(self, ctx: AppContext, i: int) -> None:
        b = ctx.backend
        s = self.SIDE
        k = self.K

        def stencil():
            t = b.device_view(self.p_temp, 4 * s * s, np.float32).reshape(s, s)
            p = b.device_view(self.p_power, 4 * s * s, np.float32).reshape(s, s)
            lap = np.zeros_like(t)
            lap[1:-1, 1:-1] = (
                t[:-2, 1:-1] + t[2:, 1:-1] + t[1:-1, :-2] + t[1:-1, 2:]
                - 4.0 * t[1:-1, 1:-1]
            )
            t += k * (lap + p)

        self.launch(ctx, "calculate_temp", stencil, flop=8.0 * s * s)

    def finalize(self, ctx: AppContext) -> int:
        b = ctx.backend
        s = self.SIDE
        out = np.zeros((s, s), dtype=np.float32)
        b.memcpy(out, self.p_temp, out.nbytes, "d2h")
        b.free(self.p_temp)
        b.free(self.p_power)
        self.outputs = {"temp": out}
        return digest_arrays(out)
