"""Rodinia BFS: level-synchronous breadth-first search on a CSR graph.

Paper configuration: ``graph1MW_6.txt`` (1M nodes, ~6 edges/node). The
miniature runs the same frontier-expansion kernel structure on a random
CSR graph. BFS is the suite's low-call-count outlier (~100 CUDA calls,
Figure 2) — its CRAC overhead is dominated by startup, not dispatch.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppContext, digest_arrays
from repro.apps.rodinia.base import RodiniaApp


class Bfs(RodiniaApp):
    """Level-synchronous BFS on a random CSR graph (see module doc)."""

    name = "BFS"
    cli_args = "graph1MW_6.txt"
    target_runtime_s = 3.0
    target_calls = 100
    target_ckpt_mb = 39.0
    DEVICE_MB = 8.0
    PAPER_ITERS = 12
    LAUNCHES_PER_ITER = 2
    MEASURE = 12  # small loop: run everything for real

    N_NODES = 256
    AVG_DEG = 4

    def kernel_names(self):
        """Device functions in this app\'s fat binary."""
        return ("bfs_expand", "bfs_update")

    def setup(self, ctx: AppContext) -> None:
        b = ctx.backend
        n = self.N_NODES
        # Random graph in CSR form.
        deg = self.rng.poisson(self.AVG_DEG, n).astype(np.int32) + 1
        row_ptr = np.zeros(n + 1, dtype=np.int32)
        np.cumsum(deg, out=row_ptr[1:])
        col_idx = self.rng.integers(0, n, int(row_ptr[-1])).astype(np.int32)

        self.p_row = b.malloc(row_ptr.nbytes)
        self.p_col = b.malloc(col_idx.nbytes)
        self.p_level = b.malloc(4 * n)
        self.p_frontier = b.malloc(n)
        b.memcpy(self.p_row, row_ptr, row_ptr.nbytes, "h2d")
        b.memcpy(self.p_col, col_idx, col_idx.nbytes, "h2d")
        levels = np.full(n, -1, dtype=np.int32)
        levels[0] = 0
        frontier = np.zeros(n, dtype=np.uint8)
        frontier[0] = 1
        b.memcpy(self.p_level, levels, levels.nbytes, "h2d")
        b.memcpy(self.p_frontier, frontier, frontier.nbytes, "h2d")

    def iteration(self, ctx: AppContext, i: int) -> None:
        b = ctx.backend
        n = self.N_NODES

        def expand():
            row = b.device_view(self.p_row, 4 * (n + 1), np.int32)
            col = b.device_view(self.p_col, 4 * int(row[-1]), np.int32)
            levels = b.device_view(self.p_level, 4 * n, np.int32)
            frontier = b.device_view(self.p_frontier, n, np.uint8)
            nxt = np.zeros(n, dtype=np.uint8)
            for u in np.nonzero(frontier)[0]:
                for v in col[row[u] : row[u + 1]]:
                    if levels[v] < 0:
                        levels[v] = i + 1
                        nxt[v] = 1
            frontier[:] = nxt

        self.launch(ctx, "bfs_expand", expand, flop=2.0 * n)
        self.launch(ctx, "bfs_update", None, flop=float(n))
        done = np.zeros(1, dtype=np.uint8)
        b.memcpy(done, self.p_frontier, 1, "d2h")

    def finalize(self, ctx: AppContext) -> int:
        b = ctx.backend
        out = np.zeros(self.N_NODES, dtype=np.int32)
        b.memcpy(out, self.p_level, out.nbytes, "d2h")
        for p in (self.p_row, self.p_col, self.p_level, self.p_frontier):
            b.free(p)
        self.outputs = {"levels": out}
        return digest_arrays(out)
