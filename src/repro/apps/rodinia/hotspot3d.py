"""Rodinia Hotspot3D: 3D thermal stencil.

Paper configuration: ``512 8 1000 power_512x8 temp_512x8 output.out`` —
a 512×512×8 grid for 1000 steps. Long-running (~30 s) with one big
kernel per step (~3K calls); one of the two benchmarks the paper
observed with slightly *negative* CRAC overhead (caching noise).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppContext, digest_arrays
from repro.apps.rodinia.base import RodiniaApp


class Hotspot3d(RodiniaApp):
    """3D thermal stencil over a 512×512×8-class grid."""

    name = "Hotspot3D"
    cli_args = "512 8 1000 power_512x8 temp_512x8 output.out"
    target_runtime_s = 30.0
    target_calls = 3_000
    target_ckpt_mb = 54.0
    DEVICE_MB = 30.0
    PAPER_ITERS = 750
    LAUNCHES_PER_ITER = 1
    MEASURE = 4

    SIDE = 32
    DEPTH = 8

    def kernel_names(self):
        """Device functions in this app\'s fat binary."""
        return ("hotspotOpt1",)

    def setup(self, ctx: AppContext) -> None:
        b = ctx.backend
        shape = (self.DEPTH, self.SIDE, self.SIDE)
        temp = (300.0 + self.rng.random(shape) * 40.0).astype(np.float32)
        power = (self.rng.random(shape) * 2.0).astype(np.float32)
        self.p_temp = b.malloc(temp.nbytes)
        self.p_power = b.malloc(power.nbytes)
        b.memcpy(self.p_temp, temp, temp.nbytes, "h2d")
        b.memcpy(self.p_power, power, power.nbytes, "h2d")

    def iteration(self, ctx: AppContext, i: int) -> None:
        b = ctx.backend
        d, s = self.DEPTH, self.SIDE
        n = d * s * s

        def stencil():
            t = b.device_view(self.p_temp, 4 * n, np.float32).reshape(d, s, s)
            p = b.device_view(self.p_power, 4 * n, np.float32).reshape(d, s, s)
            lap = np.zeros_like(t)
            lap[1:-1, 1:-1, 1:-1] = (
                t[:-2, 1:-1, 1:-1] + t[2:, 1:-1, 1:-1]
                + t[1:-1, :-2, 1:-1] + t[1:-1, 2:, 1:-1]
                + t[1:-1, 1:-1, :-2] + t[1:-1, 1:-1, 2:]
                - 6.0 * t[1:-1, 1:-1, 1:-1]
            )
            t += np.float32(0.05) * (lap + p)

        self.launch(ctx, "hotspotOpt1", stencil, flop=10.0 * n)

    def finalize(self, ctx: AppContext) -> int:
        b = ctx.backend
        n = self.DEPTH * self.SIDE * self.SIDE
        out = np.zeros(n, dtype=np.float32)
        b.memcpy(out, self.p_temp, out.nbytes, "d2h")
        b.free(self.p_temp)
        b.free(self.p_power)
        self.outputs = {"temp": out}
        return digest_arrays(out)
