"""Shared structure of the Rodinia miniatures.

Every Rodinia app is an iteration loop around a handful of kernel
launches; the base class drives it through :class:`TimedLoop` (real
measured iterations + fast-forward) and owns the calibration targets:

- ``PAPER_ITERS`` iterations at scale=1.0, each issuing the app's
  characteristic call mix, so the total call count matches Figure 2;
- per-kernel virtual durations sized so the native virtual runtime
  matches Figure 2;
- a device "footprint" allocation plus upper-half ballast so the
  checkpoint image matches Figure 3.
"""

from __future__ import annotations

from repro.apps.base import AppContext, CudaApp, TimedLoop


class RodiniaApp(CudaApp):
    """Base class for the 14 Rodinia miniatures."""

    #: iterations of the outer loop at scale=1.0
    PAPER_ITERS: int = 100
    #: kernel launches per iteration (for the per-kernel time budget)
    LAUNCHES_PER_ITER: int = 1
    #: real (measured) iterations before fast-forwarding
    MEASURE: int = 4
    #: virtual device-resident data at scale=1.0, MB (Figure 3 footprint)
    DEVICE_MB: float = 4.0
    #: cudaMalloc/cudaFree pairs per iteration that must also appear for
    #: the *fast-forwarded* iterations (their time/count is extrapolated,
    #: but CRAC's replay log needs the real entries — §4.4.1's
    #: Streamcluster/Heartwall restart behaviour depends on them).
    CHURN_PER_ITER: int = 0
    #: size of each churn allocation, bytes
    CHURN_BYTES: int = 4096

    def ballast_bytes(self) -> int:
        """Upper-half ballast = target image − base upper − device data."""
        base = 16 << 20
        device = int(self.DEVICE_MB * self.scale * (1 << 20))
        want = int(self.target_ckpt_mb * self.scale * (1 << 20))
        return max(0, want - base - device)

    # -- workload hooks ----------------------------------------------------------

    def setup(self, ctx: AppContext) -> None:
        """Allocate and initialize device state."""
        raise NotImplementedError

    def iteration(self, ctx: AppContext, i: int) -> None:
        """One outer-loop iteration (the app's characteristic call mix)."""
        raise NotImplementedError

    def finalize(self, ctx: AppContext) -> int:
        """Copy results back and digest them."""
        raise NotImplementedError

    # -- driver ---------------------------------------------------------------------

    def run_app(self, ctx: AppContext) -> int:
        backend = ctx.backend
        self.setup(ctx)
        # Device footprint ballast (virtual bytes; drained at checkpoint).
        device_ballast = int(self.DEVICE_MB * self.scale * (1 << 20))
        self._ballast_ptr = backend.malloc(max(256, device_ballast))
        iters = self.iterations(self.PAPER_ITERS)
        self._kernel_ns = (
            self.kernel_budget_ns(iters * self.LAUNCHES_PER_ITER) * ctx.time_scale
        )
        def churn(remaining: int) -> None:
            # Reproduce the alloc/free churn of the fast-forwarded
            # iterations (state effects only; cost was extrapolated).
            with backend.prepaid_calls():
                for _ in range(remaining * self.CHURN_PER_ITER):
                    p = backend.malloc(self.CHURN_BYTES)
                    backend.free(p)

        loop = TimedLoop(
            ctx, iters, measure=self.MEASURE,
            ff_hook=churn if self.CHURN_PER_ITER else None,
        )
        for i in loop:
            self.iteration(ctx, i)
        backend.device_synchronize()
        digest = self.finalize(ctx)
        backend.free(self._ballast_ptr)
        return digest

    # -- convenience ------------------------------------------------------------------

    def launch(self, ctx: AppContext, kernel: str, fn=None, **kw) -> None:
        """Launch with the calibrated per-kernel duration."""
        kw.setdefault("duration_ns", self._kernel_ns)
        ctx.backend.launch(kernel, fn, **kw)
