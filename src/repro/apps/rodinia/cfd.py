"""Rodinia CFD: an explicit finite-volume Euler solver.

Paper configuration: ``fvcorr.domn.193K`` (193K-element unstructured
mesh). The miniature solves the Sod shock tube with a Rusanov flux on a
1D mesh, keeping the benchmark's five-kernel iteration structure
(timestep, three RK flux/update kernels, variable copy) and its call
volume (~72K CUDA calls over ~25 s).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppContext, digest_arrays
from repro.apps.rodinia.base import RodiniaApp


class Cfd(RodiniaApp):
    """Explicit finite-volume Euler solver (Sod shock tube miniature)."""

    name = "CFD"
    cli_args = "fvcorr.domn.193K"
    target_runtime_s = 25.0
    target_calls = 72_000
    target_ckpt_mb = 39.0
    DEVICE_MB = 12.0
    PAPER_ITERS = 3_790
    LAUNCHES_PER_ITER = 5
    MEASURE = 4

    N = 128  # mesh cells in the miniature

    def kernel_names(self):
        """Device functions in this app\'s fat binary."""
        return (
            "cuda_compute_step_factor",
            "cuda_compute_flux",
            "cuda_time_step",
            "cuda_initialize_variables",
            "copy_variables",
        )

    def setup(self, ctx: AppContext) -> None:
        b = ctx.backend
        n = self.N
        # Sod shock tube plus a seed-dependent density perturbation (the
        # real benchmark's mesh file varies; perturbation stands in).
        rho = np.where(np.arange(n) < n // 2, 1.0, 0.125).astype(np.float64)
        rho += self.rng.uniform(0, 1e-3, n)
        mom = np.zeros(n, dtype=np.float64)
        ene = np.where(np.arange(n) < n // 2, 2.5, 0.25).astype(np.float64)
        self.p_u = b.malloc(3 * 8 * n)
        self.p_u_old = b.malloc(3 * 8 * n)
        self.p_flux = b.malloc(3 * 8 * n)
        self.p_dt = b.malloc(8)
        state = np.concatenate([rho, mom, ene])
        b.memcpy(self.p_u, state, state.nbytes, "h2d")

    def _state(self, b):
        n = self.N
        u = b.device_view(self.p_u, 3 * 8 * n, np.float64)
        return u[:n], u[n : 2 * n], u[2 * n :]

    def iteration(self, ctx: AppContext, i: int) -> None:
        b = ctx.backend
        n = self.N
        gamma = 1.4
        cfl = 0.4

        dt_holder = np.zeros(1, dtype=np.float64)

        def step_factor():
            rho, mom, ene = self._state(b)
            v = mom / np.maximum(rho, 1e-12)
            p = np.maximum((gamma - 1) * (ene - 0.5 * rho * v * v), 1e-12)
            c = np.sqrt(gamma * p / np.maximum(rho, 1e-12))
            dt_holder[0] = cfl / max(float(np.max(np.abs(v) + c)), 1e-9) / n
            b.device_view(self.p_dt, 8, np.float64)[0] = dt_holder[0]

        def flux_and_update():
            rho, mom, ene = self._state(b)
            u = np.stack([rho, mom, ene])
            v = u[1] / np.maximum(u[0], 1e-12)
            p = np.maximum((gamma - 1) * (u[2] - 0.5 * u[0] * v * v), 1e-12)
            f = np.stack([u[1], u[1] * v + p, (u[2] + p) * v])
            c = np.sqrt(gamma * p / np.maximum(u[0], 1e-12))
            a = np.maximum(np.abs(v[:-1]) + c[:-1], np.abs(v[1:]) + c[1:])
            fh = 0.5 * (f[:, :-1] + f[:, 1:]) - 0.5 * a * (u[:, 1:] - u[:, :-1])
            dt = b.device_view(self.p_dt, 8, np.float64)[0]
            u[:, 1:-1] -= dt * n * (fh[:, 1:] - fh[:, :-1])
            flat = b.device_view(self.p_u, 3 * 8 * n, np.float64)
            flat[:] = u.reshape(-1)

        self.launch(ctx, "cuda_compute_step_factor", step_factor, flop=8.0 * n)
        self.launch(ctx, "cuda_compute_flux", flux_and_update, flop=40.0 * n)
        self.launch(ctx, "cuda_time_step", None, flop=6.0 * n)
        self.launch(ctx, "cuda_initialize_variables", None, flop=float(n))
        self.launch(ctx, "copy_variables", None, flop=float(n))
        b.memcpy(self.p_u_old, self.p_u, 3 * 8 * n, "d2d")
        b.memcpy(dt_holder, self.p_dt, 8, "d2h")
        b.memcpy(self.p_flux, self.p_u, 3 * 8 * n, "d2d")

    def finalize(self, ctx: AppContext) -> int:
        b = ctx.backend
        out = np.zeros(3 * self.N, dtype=np.float64)
        b.memcpy(out, self.p_u, out.nbytes, "d2h")
        for p in (self.p_u, self.p_u_old, self.p_flux, self.p_dt):
            b.free(p)
        n = self.N
        self.outputs = {"rho": out[:n], "mom": out[n:2*n], "ene": out[2*n:]}
        return digest_arrays(out)
