"""Rodinia 3.1 benchmark suite (the 14 apps of paper §4.4.1, Table 2).

Each app is a miniature-but-real implementation of the benchmark's
algorithm (computing verifiable numpy results) whose CUDA call mix,
call count, virtual runtime, and checkpoint footprint are calibrated to
the paper's Figure 2 / Figure 3 annotations at ``scale=1.0``.
"""

from repro.apps.rodinia.base import RodiniaApp
from repro.apps.rodinia.bfs import Bfs
from repro.apps.rodinia.cfd import Cfd
from repro.apps.rodinia.dwt2d import Dwt2d
from repro.apps.rodinia.gaussian import Gaussian
from repro.apps.rodinia.heartwall import Heartwall
from repro.apps.rodinia.hotspot import Hotspot
from repro.apps.rodinia.hotspot3d import Hotspot3d
from repro.apps.rodinia.kmeans import Kmeans
from repro.apps.rodinia.leukocyte import Leukocyte
from repro.apps.rodinia.lud import Lud
from repro.apps.rodinia.nw import Nw
from repro.apps.rodinia.particlefilter import Particlefilter
from repro.apps.rodinia.srad import Srad
from repro.apps.rodinia.streamcluster import Streamcluster

#: The suite in the paper's Figure 2 order.
RODINIA_SUITE = (
    Bfs,
    Cfd,
    Dwt2d,
    Gaussian,
    Heartwall,
    Hotspot,
    Hotspot3d,
    Kmeans,
    Lud,
    Leukocyte,
    Nw,
    Particlefilter,
    Srad,
    Streamcluster,
)

__all__ = ["RodiniaApp", "RODINIA_SUITE"] + [cls.__name__ for cls in RODINIA_SUITE]
