"""NVIDIA's simpleStreams sample (§4.4.2, Figure 4).

Overlaps kernel execution with device→host memcpy: each repetition runs
(a) a non-streamed pair — one whole-array kernel then one synchronous
copy — and (b) a streamed pair — the array split across ``nstreams``
streams, each launching its chunk kernel and an async chunk copy, so
copies hide under the kernels of other streams.

Paper configuration: 128 streams (the V100 CC 7.0 concurrent-kernel
maximum), ``nreps=1000``, ``niterations`` ∈ {5, 10, 100, 500} (the inner
loop of the kernel; more iterations ⇒ longer kernel). The benchmark
reports the time to execute one kernel with and without streams
(Figure 4b) and the total runtime (Figure 4a).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppContext, CudaApp, TimedLoop, digest_arrays

#: Virtual duration of the whole-array kernel per inner iteration, ns.
#: (16M ints, ~48 µs per iteration ⇒ 24 ms at niterations=500, matching
#: Figure 4b's ~25 ms non-streamed point.)
KERNEL_NS_PER_ITERATION = 48_000.0
#: The sample's array: 16M ints = 64 MB.
ARRAY_BYTES = 64 << 20


class SimpleStreams(CudaApp):
    """NVIDIA simpleStreams: kernel/memcpy overlap across streams."""

    name = "simpleStreams"
    cli_args = "--nstreams 128 --nreps 1000"
    uses_streams = True
    stream_range = "4–128"
    target_runtime_s = 35.0
    target_calls = 516_000
    target_ckpt_mb = 142.0

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 0,
        *,
        nstreams: int = 128,
        nreps: int = 1000,
        niterations: int = 500,
    ) -> None:
        super().__init__(scale, seed)
        self.nstreams = nstreams
        self.nreps = nreps
        self.niterations = niterations

    def kernel_names(self):
        """Device functions in this app\'s fat binary."""
        return ("init_array",)

    def ballast_bytes(self) -> int:
        # 64 MB device array + 64 MB pinned host copy dominate the image.
        return max(0, int((self.target_ckpt_mb - 16 - 128) * (1 << 20) * self.scale))

    def run_app(self, ctx: AppContext) -> int:
        b = ctx.backend
        scaled_bytes = max(4096, int(ARRAY_BYTES * self.scale))
        whole_kernel_ns = KERNEL_NS_PER_ITERATION * self.niterations * self.scale

        p_dev = b.malloc(scaled_bytes)
        p_host = b.host_alloc(scaled_bytes)  # pinned destination
        streams = [b.stream_create() for _ in range(self.nstreams)]
        # Real content on a small prefix so results stay verifiable.
        probe_n = 1024
        value = np.int32(0)

        e_start = b.event_create()
        e_stop = b.event_create()
        kernel_ms = {"non_streamed": 0.0, "streamed": 0.0}
        reps = self.iterations(self.nreps)
        chunk = scaled_bytes // self.nstreams

        loop = TimedLoop(ctx, reps, measure=3)
        for rep in loop:
            value = np.int32(rep + 1)

            # --- non-streamed: kernel on the default stream, sync copy.
            def init_whole(v=value):
                arr = b.device_view(p_dev, 4 * probe_n, np.int32)
                arr[:] = v

            b.event_record(e_start)
            b.launch("init_array", init_whole, duration_ns=whole_kernel_ns)
            b.event_record(e_stop)
            b.memcpy(p_host, p_dev, scaled_bytes, "d2h", dst_offset=0)
            b.event_synchronize(e_stop)
            kernel_ms["non_streamed"] = b.event_elapsed_ms(e_start, e_stop)

            # --- streamed: chunk kernels + async chunk copies per stream.
            t_first = None
            for si, s in enumerate(streams):
                def init_chunk(v=value, si=si):
                    if si == 0:
                        arr = b.device_view(p_dev, 4 * probe_n, np.int32)
                        arr[:] = v + 1

                end = b.launch(
                    "init_array",
                    init_chunk,
                    duration_ns=whole_kernel_ns / self.nstreams,
                    stream=s,
                )
                if t_first is None:
                    t_first = end
                b.memcpy(
                    p_host,
                    p_dev,
                    chunk,
                    "d2h",
                    stream=s,
                    async_=True,
                    dst_offset=si * chunk,
                    src_offset=si * chunk,
                )
            b.device_synchronize()
            kernel_ms["streamed"] = whole_kernel_ns / self.nstreams / 1e6

        self._kernel_ms = kernel_ms
        out = np.zeros(probe_n, dtype=np.int32)
        b.memcpy(out, p_dev, out.nbytes, "d2h")
        for s in streams:
            b.stream_destroy(s)
        b.event_destroy(e_start)
        b.event_destroy(e_stop)
        b.free(p_dev)
        b.free_host(p_host)
        return digest_arrays(out)

    def run(self, ctx: AppContext):
        result = super().run(ctx)
        result.extras["kernel_ms"] = self._kernel_ms
        result.extras["niterations"] = self.niterations
        result.extras["nstreams"] = self.nstreams
        return result
