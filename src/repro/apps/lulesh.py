"""LULESH 2.0 (GPU): Livermore unstructured Lagrangian shock hydro.

Paper configuration: structured grid, ``-s 150`` (150³ elements, ~2 GB).
LULESH is the paper's stream-using real-world app (Table 1: 2–32
streams; ~210K CUDA calls in ~80 s, 65K kernel launches).

The miniature solves the Sedov blast problem's control flow on a small
structured grid: per timestep it runs the benchmark's characteristic
kernel sequence (nodal force, acceleration, velocity/position update,
element kinematics, artificial viscosity, EOS, timestep reduce) spread
across a pool of streams, with real numpy state updates on a small grid.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppContext, CudaApp, TimedLoop, digest_arrays


class Lulesh(CudaApp):
    """LULESH 2.0 shock-hydro miniature over a stream pool."""

    name = "LULESH"
    cli_args = "-s 150"
    uses_streams = True
    stream_range = "2–32"
    target_runtime_s = 80.0
    target_calls = 210_000
    target_ckpt_mb = 117.0

    PAPER_STEPS = 2_060
    LAUNCHES_PER_STEP = 32
    N_STREAMS = 8
    SIDE = 12  # miniature grid (12³ elements)

    def kernel_names(self):
        """Device functions in this app\'s fat binary."""
        return (
            "CalcForceForNodes", "CalcAccelerationForNodes",
            "CalcVelocityForNodes", "CalcPositionForNodes",
            "CalcKinematicsForElems", "CalcMonotonicQGradientsForElems",
            "ApplyMaterialPropertiesForElems", "EvalEOSForElems",
            "CalcTimeConstraintsForElems",
        )

    def ballast_bytes(self) -> int:
        return max(0, int((self.target_ckpt_mb - 16 - 80) * (1 << 20) * self.scale))

    def run_app(self, ctx: AppContext) -> int:
        b = ctx.backend
        s = self.SIDE
        nelem = s**3
        nnode = (s + 1) ** 3

        # Field arrays (energy, pressure, volume per element; position,
        # velocity per node) + device footprint ballast.
        self.p_e = b.malloc(8 * nelem)
        self.p_p = b.malloc(8 * nelem)
        self.p_v = b.malloc(8 * nelem)
        self.p_x = b.malloc(8 * nnode)
        self.p_xd = b.malloc(8 * nnode)
        p_ballast = b.malloc(int(80 * (1 << 20) * self.scale) or 4096)

        e = np.zeros(nelem)
        e[0] = 3.948746e7  # Sedov point blast energy deposit
        b.memcpy(self.p_e, e, e.nbytes, "h2d")
        b.memcpy(self.p_v, np.ones(nelem), 8 * nelem, "h2d")
        b.memcpy(self.p_x, np.linspace(0, 1, nnode), 8 * nnode, "h2d")
        b.memset(self.p_p, 0, 8 * nelem)
        b.memset(self.p_xd, 0, 8 * nnode)

        streams = [b.stream_create() for _ in range(self.N_STREAMS)]
        steps = self.iterations(self.PAPER_STEPS)
        # Kernels overlap across the stream pool (N_STREAMS-way), so the
        # per-kernel budget is sized against the per-stream serial chain.
        kernel_ns = (
            self.kernel_budget_ns(steps * self.LAUNCHES_PER_STEP)
            * self.N_STREAMS
            * ctx.time_scale
        )
        dt = 1e-7

        kernels = self.kernel_names()
        loop = TimedLoop(ctx, steps, measure=4)
        for step in loop:
            def eos():
                ee = b.device_view(self.p_e, 8 * nelem, np.float64)
                pp = b.device_view(self.p_p, 8 * nelem, np.float64)
                vv = b.device_view(self.p_v, 8 * nelem, np.float64)
                pp[:] = (2.0 / 3.0) * ee * np.maximum(vv, 1e-9)

            def advance():
                xx = b.device_view(self.p_x, 8 * nnode, np.float64)
                xd = b.device_view(self.p_xd, 8 * nnode, np.float64)
                pp = b.device_view(self.p_p, 8 * nelem, np.float64)
                grad = np.gradient(np.pad(pp, (0, nnode - nelem), mode="edge"))
                xd -= dt * grad
                xx += dt * xd

            def diffuse_energy():
                ee = b.device_view(self.p_e, 8 * nelem, np.float64)
                ee[1:-1] += 0.01 * (ee[:-2] + ee[2:] - 2 * ee[1:-1])

            # The 32-launch step: the real physics lives in three of the
            # kernels; the rest are the benchmark's other phases with the
            # same time budget (they dominate the call count, not state).
            for li in range(self.LAUNCHES_PER_STEP):
                kname = kernels[li % len(kernels)]
                fn = {0: eos, 1: advance, 2: diffuse_energy}.get(li)
                b.launch(
                    kname,
                    fn,
                    duration_ns=kernel_ns,
                    stream=streams[li % self.N_STREAMS],
                )
            # Timestep reduction: device→host dt round trip.
            dt_probe = np.zeros(1)
            b.memcpy(dt_probe, self.p_e, 8, "d2h")
            b.memcpy(self.p_v, self.p_e, 8 * nelem, "d2d")
            b.device_synchronize()

        out_e = np.zeros(nelem)
        out_x = np.zeros(nnode)
        b.memcpy(out_e, self.p_e, out_e.nbytes, "d2h")
        b.memcpy(out_x, self.p_x, out_x.nbytes, "d2h")
        for st in streams:
            b.stream_destroy(st)
        for p in (self.p_e, self.p_p, self.p_v, self.p_x, self.p_xd, p_ballast):
            b.free(p)
        return digest_arrays(out_e, out_x)
