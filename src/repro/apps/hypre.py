"""HYPRE: scalable linear solvers (the ``ij`` driver, §4.4.3).

Paper configuration::

    ij -solver 1 -rlx 18 -ns 2 -CF 0 -hmis -interptype 6 -Pmx 4
       -keepT 1 -tol 1.e-8 -agg_nl 1 -n 250 250 250 250

HYPRE's profile is the opposite of HPGMG's: only ~600 CUDA calls per
second, but *large UVM regions* (up to 1 GB per rank) on which host and
device work **simultaneously** via CUDA streams — the access pattern
CRUM's shadow pages cannot support — and long-running kernels. Largest
checkpoint image of the evaluation (2.3 GB, Figure 5c).

The miniature runs a real diagonally-preconditioned conjugate-gradient
solve of a 2D Poisson system (in managed memory), while the paper-scale
UVM regions are carried as virtual managed ballast.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppContext, CudaApp, TimedLoop, digest_arrays
from repro.cuda.api import ManagedUse


class Hypre(CudaApp):
    """HYPRE ij-driver miniature: PCG with large UVM regions."""

    name = "HYPRE"
    cli_args = (
        "ij -solver 1 -rlx 18 -ns 2 -CF 0 -hmis -interptype 6 -Pmx 4 "
        "-keepT 1 -tol 1.e-8 -agg_nl 1 -n 250 250 250 250"
    )
    uses_uvm = True
    uses_streams = True
    stream_range = "1–10"
    target_runtime_s = 42.0
    target_calls = 25_000
    target_ckpt_mb = 2_300.0

    PAPER_ITERS = 1_400  # PCG iterations
    LAUNCHES_PER_ITER = 5  # SpMV, precond, 2 axpy, dot
    N_STREAMS = 10
    SIDE = 32  # miniature Poisson grid (n = SIDE²)

    def kernel_names(self):
        """Device functions in this app\'s fat binary."""
        return ("csr_spmv", "diag_precond", "axpy", "dot", "setup_kernel")

    def ballast_bytes(self) -> int:
        return max(0, int(80 * (1 << 20) * self.scale))

    def run_app(self, ctx: AppContext) -> int:
        b = ctx.backend
        s = self.SIDE
        n = s * s

        # -- setup phase: build the IJ matrix; large UVM regions appear.
        # Two ~1 GB managed regions per rank at paper scale.
        uvm_gb = int(1.1 * (1 << 30) * self.scale)
        p_big1 = b.malloc_managed(max(1 << 16, uvm_gb))
        p_big2 = b.malloc_managed(max(1 << 16, uvm_gb))
        self.p_x = b.malloc_managed(8 * n)
        self.p_r = b.malloc_managed(8 * n)
        self.p_p = b.malloc_managed(8 * n)
        self.p_ap = b.malloc_managed(8 * n)
        streams = [b.stream_create() for _ in range(self.N_STREAMS)]
        for _ in range(self.iterations(200)):
            b.launch("setup_kernel", None, duration_ns=2_000_000)

        # 2D Poisson operator applied matrix-free (the real solve).
        rhs = np.zeros((s, s))
        rhs[s // 2, s // 2] = 1.0
        rv = b.managed_view(self.p_r, 8 * n, np.float64)
        rv[:] = rhs.reshape(-1)
        pv = b.managed_view(self.p_p, 8 * n, np.float64)
        pv[:] = rv

        def apply_A(vec):
            g = vec.reshape(s, s)
            out = 4 * g.copy()
            out[1:, :] -= g[:-1, :]
            out[:-1, :] -= g[1:, :]
            out[:, 1:] -= g[:, :-1]
            out[:, :-1] -= g[:, 1:]
            return out.reshape(-1)

        iters = self.iterations(self.PAPER_ITERS)
        kernel_ns = self.kernel_budget_ns(
            iters * self.LAUNCHES_PER_ITER + self.iterations(200)
        )
        state = {"rs_old": float(rv @ rv)}

        loop = TimedLoop(ctx, iters, measure=4)
        for it in loop:
            stream = streams[it % self.N_STREAMS]

            def spmv():
                p_ = b.runtime.buffers[self.p_p].contents.view(0, 8 * n, np.float64)
                ap = b.runtime.buffers[self.p_ap].contents.view(0, 8 * n, np.float64)
                ap[:] = apply_A(p_)

            def update():
                x = b.runtime.buffers[self.p_x].contents.view(0, 8 * n, np.float64)
                r = b.runtime.buffers[self.p_r].contents.view(0, 8 * n, np.float64)
                p_ = b.runtime.buffers[self.p_p].contents.view(0, 8 * n, np.float64)
                ap = b.runtime.buffers[self.p_ap].contents.view(0, 8 * n, np.float64)
                pap = float(p_ @ ap)
                if abs(pap) < 1e-30:
                    return
                alpha = state["rs_old"] / pap
                x += alpha * p_
                r -= alpha * ap
                rs_new = float(r @ r)
                p_[:] = r + (rs_new / max(state["rs_old"], 1e-30)) * p_
                state["rs_old"] = rs_new

            # Long-running kernels; host touches the big UVM regions
            # while the device works (the pattern CRUM cannot support —
            # CRAC's UVM support makes it safe).
            b.launch(
                "csr_spmv", spmv, duration_ns=kernel_ns * 2, stream=stream,
                managed=[ManagedUse(self.p_p, 0, 8 * n, "r"),
                         ManagedUse(self.p_ap, 0, 8 * n, "w")],
            )
            b.launch("diag_precond", None, duration_ns=kernel_ns, stream=stream)
            b.launch("axpy", update, duration_ns=kernel_ns, stream=stream,
                     managed=[ManagedUse(self.p_x, 0, 8 * n, "rw")])
            b.launch("axpy", None, duration_ns=kernel_ns, stream=stream)
            b.launch("dot", None, duration_ns=kernel_ns / 2, stream=stream)
            # Host-side touch of the big UVM region, concurrent with the
            # in-flight kernels on other data.
            big = b.managed_view(p_big1, 4096)
            big[it % 4096] = it & 0xFF
            b.stream_synchronize(stream)

        b.device_synchronize()
        x = b.managed_view(self.p_x, 8 * n, np.float64)
        digest = digest_arrays(x.copy())
        for st in streams:
            b.stream_destroy(st)
        for p in (p_big1, p_big2, self.p_x, self.p_r, self.p_p, self.p_ap):
            b.free(p)
        return digest
