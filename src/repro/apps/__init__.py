"""The paper's workloads, reimplemented against the simulated CUDA API.

Every application computes a *real* (scaled-down) result with numpy — so
checkpoint/restart correctness is checkable bit-for-bit — while its call
mix, call counts, virtual runtime, and memory footprint are calibrated
to the paper's Table 1 / Figure 2 / Figure 3 characterization.

- :mod:`~repro.apps.rodinia` — 14 Rodinia 3.1 benchmarks (§4.4.1).
- :mod:`~repro.apps.simple_streams` — NVIDIA's simpleStreams sample
  (§4.4.2, Figure 4).
- :mod:`~repro.apps.unified_memory_streams` — NVIDIA's
  UnifiedMemoryStreams sample (§4.4.2).
- :mod:`~repro.apps.lulesh` — LULESH 2.0 GPU mini-app (§4.4.2).
- :mod:`~repro.apps.hpgmg` — HPGMG-FV geometric multigrid (§4.4.3).
- :mod:`~repro.apps.hypre` — HYPRE linear-solver benchmark (§4.4.3).
- :mod:`~repro.apps.cublas_micro` — the Table 3 cuBLAS timing loops.
"""

from repro.apps.base import AppContext, AppResult, CudaApp, TimedLoop
from repro.apps.cublas_micro import CublasMicro
from repro.apps.hpgmg import Hpgmg
from repro.apps.hypre import Hypre
from repro.apps.lulesh import Lulesh
from repro.apps.simple_streams import SimpleStreams
from repro.apps.unified_memory_streams import UnifiedMemoryStreams

__all__ = [
    "AppContext",
    "AppResult",
    "CudaApp",
    "TimedLoop",
    "SimpleStreams",
    "UnifiedMemoryStreams",
    "Lulesh",
    "Hpgmg",
    "Hypre",
    "CublasMicro",
]
