"""HPGMG-FV: high-performance geometric multigrid, finite-volume variant.

Paper configuration: ``hpgmg-fv 7 8`` on one MPI rank — already "real-
world scale" because it issues ~2 million CUDA calls per minute (35K
calls/second, the highest sustained call rate in the evaluation; §4.4.3).
Uses UVM for its level data (Table 1). Its restart is the slowest in
Figure 5c (~1.75 s): a very long cudaMalloc log to replay.

The miniature runs real V-cycles (Jacobi-smoothed geometric multigrid on
a 2D Poisson problem) with the benchmark's per-level kernel structure;
V-cycle count and per-kernel durations are calibrated to the 6M-call /
~170 s profile.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppContext, CudaApp, TimedLoop, digest_arrays
from repro.cuda.api import ManagedUse


class Hpgmg(CudaApp):
    """HPGMG-FV geometric multigrid: real V-cycles, UVM level data."""

    name = "HPGMG-FV"
    cli_args = "7 8"
    uses_uvm = True
    uses_streams = False
    target_runtime_s = 171.0
    target_calls = 6_000_000
    target_ckpt_mb = 112.0

    PAPER_VCYCLES = 46_000
    N_LEVELS = 5
    FINE_SIDE = 32  # miniature fine grid

    #: launches per V-cycle: 8 kernels per non-coarsest level (smooths,
    #: residuals, restrict, interpolate), 8 coarse smooths, 2 norm/dot.
    LAUNCHES_PER_CYCLE = 8 * (N_LEVELS - 1) + 8 + 2

    #: per-box setup allocations at scale=1.0. HPGMG allocates thousands
    #: of small per-box arrays; replaying this log is what makes its
    #: restart the slowest in Figure 5c (~1.75 s).
    PAPER_BOX_ALLOCS = 15_000

    def kernel_names(self):
        """Device functions in this app\'s fat binary."""
        return ("smooth_kernel", "residual_kernel", "restriction_kernel",
                "interpolation_kernel", "norm_kernel", "dot_kernel")

    def ballast_bytes(self) -> int:
        return max(0, int((self.target_ckpt_mb - 16 - 60) * (1 << 20) * self.scale))

    def run_app(self, ctx: AppContext) -> int:
        b = ctx.backend
        sides = [max(4, self.FINE_SIDE >> l) for l in range(self.N_LEVELS)]
        # Level data lives in managed memory (UVM), as in the CUDA port.
        self.p_u = [b.malloc_managed(8 * s * s) for s in sides]
        self.p_f = [b.malloc_managed(8 * s * s) for s in sides]
        self.p_r = [b.malloc_managed(8 * s * s) for s in sides]
        p_ballast = b.malloc(int(60 * (1 << 20) * self.scale) or 4096)
        # Per-box metadata arrays: a long cudaMalloc log (see class doc).
        box_allocs = [
            b.malloc(256) for _ in range(self.iterations(self.PAPER_BOX_ALLOCS))
        ]

        # RHS: a point source on the fine grid.
        s0 = sides[0]
        f = np.zeros((s0, s0))
        f[s0 // 2, s0 // 2] = 1.0
        fv = b.managed_view(self.p_f[0], 8 * s0 * s0, np.float64)
        fv[:] = f.reshape(-1)

        cycles = self.iterations(self.PAPER_VCYCLES)
        kernel_ns = self.kernel_budget_ns(cycles * self.LAUNCHES_PER_CYCLE)

        def grid(ptr, s):
            return b.runtime.buffers[ptr].contents.view(0, 8 * s * s, np.float64).reshape(s, s)

        def smooth(level, real):
            def fn():
                u, f_ = grid(self.p_u[level], sides[level]), grid(self.p_f[level], sides[level])
                u[1:-1, 1:-1] = 0.25 * (
                    u[:-2, 1:-1] + u[2:, 1:-1] + u[1:-1, :-2] + u[1:-1, 2:]
                    + f_[1:-1, 1:-1]
                )
            s = sides[level]
            b.launch(
                "smooth_kernel",
                fn if real else None,
                duration_ns=kernel_ns,
                managed=[ManagedUse(self.p_u[level], 0, 8 * s * s, "rw"),
                         ManagedUse(self.p_f[level], 0, 8 * s * s, "r")],
                flop=8.0 * s * s,
            )

        def residual(level, real):
            def fn():
                u = grid(self.p_u[level], sides[level])
                f_ = grid(self.p_f[level], sides[level])
                r = grid(self.p_r[level], sides[level])
                r[:] = 0.0
                r[1:-1, 1:-1] = f_[1:-1, 1:-1] - (
                    4 * u[1:-1, 1:-1]
                    - u[:-2, 1:-1] - u[2:, 1:-1] - u[1:-1, :-2] - u[1:-1, 2:]
                )
            s = sides[level]
            b.launch("residual_kernel", fn if real else None,
                     duration_ns=kernel_ns,
                     managed=[ManagedUse(self.p_r[level], 0, 8 * s * s, "w")])

        def restrict_(level, real):
            def fn():
                r = grid(self.p_r[level], sides[level])
                fc = grid(self.p_f[level + 1], sides[level + 1])
                m = min(sides[level] // 2, sides[level + 1])
                fc[:m, :m] = r[: 2 * m : 2, : 2 * m : 2]
            b.launch("restriction_kernel", fn if real else None,
                     duration_ns=kernel_ns)

        def interpolate(level, real):
            def fn():
                uc = grid(self.p_u[level + 1], sides[level + 1])
                uf = grid(self.p_u[level], sides[level])
                m = min(sides[level] // 2, sides[level + 1])
                uf[: 2 * m : 2, : 2 * m : 2] += uc[:m, :m]
            b.launch("interpolation_kernel", fn if real else None,
                     duration_ns=kernel_ns)

        loop = TimedLoop(ctx, cycles, measure=3)
        for cyc in loop:
            real = True  # content is computed in measured cycles only
            for level in range(self.N_LEVELS - 1):
                smooth(level, real)
                smooth(level, real)
                residual(level, real)
                residual(level, False)
                restrict_(level, real)
                smooth(level, False)
                smooth(level, False)
                interpolate(level, real)
            # coarsest level + norms
            for _ in range(8):
                smooth(self.N_LEVELS - 1, real)
            b.launch("norm_kernel", None, duration_ns=kernel_ns)
            b.launch("dot_kernel", None, duration_ns=kernel_ns)
            norm = np.zeros(1)
            b.memcpy(norm, self.p_r[0], 8, "d2h")
            b.device_synchronize()

        out = b.managed_view(self.p_u[0], 8 * s0 * s0, np.float64)
        digest = digest_arrays(out.copy())
        for plist in (self.p_u, self.p_f, self.p_r):
            for p in plist:
                b.free(p)
        for p in box_allocs:
            b.free(p)
        b.free(p_ballast)
        return digest
