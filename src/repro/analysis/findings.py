"""Typed findings, taxonomy-routed severity, baselines, SARIF export.

A :class:`Finding` is the unit every pass produces. Severity is not a
free-form string: each rule maps to a :class:`CudaErrorCode` and the
finding's severity is whatever ``cuda/errors.classify`` says for that
code — the same four-way taxonomy (retryable/sticky/fatal/program) the
fault domain uses at runtime, so "how bad is this statically?" and
"how bad would this be at restore time?" give the same answer.

Fingerprints are ``sha1(rule|path|message)`` truncated to 16 hex
chars — deliberately line-independent, so reformatting a file does not
invalidate a baseline entry, but changing what is wrong does.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.cuda.errors import CudaErrorCode, ErrorSeverity, classify

#: Which taxonomy code each rule routes through. Wiring gaps that would
#: corrupt or lose state across a cut are LIBRARY_STATE_INCONSISTENT
#: (fatal — only restore recovers); inconsistencies that a developer
#: must fix but that fail deterministically are INVALID_VALUE /
#: NOT_SUPPORTED (program); an unsynced launch before a cut poisons the
#: stream exactly like STREAM_STALLED (sticky).
RULE_CODES: dict[str, CudaErrorCode] = {
    "wiring/entry-prologue": CudaErrorCode.INVALID_VALUE,
    "wiring/api-unreachable": CudaErrorCode.NOT_SUPPORTED,
    "wiring/trace-unattributed": CudaErrorCode.NOT_SUPPORTED,
    "wiring/dispatch-unentered": CudaErrorCode.INVALID_VALUE,
    "wiring/log-op-unreplayed": CudaErrorCode.LIBRARY_STATE_INCONSISTENT,
    "wiring/capture-blob-unrestored": CudaErrorCode.LIBRARY_STATE_INCONSISTENT,
    "wiring/sanitizer-model-missing": CudaErrorCode.NOT_SUPPORTED,
    "wiring/unlogged-alloc": CudaErrorCode.LIBRARY_STATE_INCONSISTENT,
    "wiring/severity-unclassified": CudaErrorCode.INVALID_VALUE,
    "wiring/library-kernel-unregistered": CudaErrorCode.INVALID_VALUE,
    "det/nondet-into-kernel": CudaErrorCode.LIBRARY_STATE_INCONSISTENT,
    "det/nondet-into-capture": CudaErrorCode.LIBRARY_STATE_INCONSISTENT,
    "det/unseeded-rng": CudaErrorCode.LIBRARY_STATE_INCONSISTENT,
    "det/use-after-destroy": CudaErrorCode.INVALID_VALUE,
    "det/unsynced-launch": CudaErrorCode.STREAM_STALLED,
    "det/pointer-escape": CudaErrorCode.INVALID_DEVICE_POINTER,
    "lint/nondeterminism": CudaErrorCode.LIBRARY_STATE_INCONSISTENT,
    "lint/raw-raise": CudaErrorCode.INVALID_VALUE,
    "lint/dict-iteration": CudaErrorCode.LIBRARY_STATE_INCONSISTENT,
    "lint/syntax": CudaErrorCode.INVALID_VALUE,
}


@dataclass(frozen=True)
class Finding:
    """One static finding from any pass."""

    analyzer: str  # "wiring" | "taint" | "lint"
    rule: str  # e.g. "wiring/sanitizer-model-missing"
    path: str  # repo-relative posix path
    line: int
    message: str

    @property
    def code(self) -> CudaErrorCode:
        """Taxonomy code this rule routes through."""
        return RULE_CODES.get(self.rule, CudaErrorCode.INVALID_VALUE)

    @property
    def severity(self) -> ErrorSeverity:
        """Recovery-taxonomy severity (via ``cuda/errors.classify``)."""
        return classify(self.code)

    @property
    def fingerprint(self) -> str:
        """Line-independent stable identity for baselining."""
        key = f"{self.rule}|{self.path}|{self.message}"
        return hashlib.sha1(key.encode()).hexdigest()[:16]

    def describe(self) -> str:
        """``path:line: [rule/severity] message`` rendering."""
        return (
            f"{self.path}:{self.line}: [{self.rule}/"
            f"{self.severity.value}] {self.message}"
        )

    def to_dict(self) -> dict:
        """JSON-serialisable record (report + artifact format)."""
        return {
            "analyzer": self.analyzer,
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "code": self.code.name,
            "severity": self.severity.value,
            "fingerprint": self.fingerprint,
        }


@dataclass
class Baseline:
    """Committed set of accepted findings, each with a justification."""

    entries: dict[str, dict] = field(default_factory=dict)  # fp -> entry

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        data = json.loads(path.read_text())
        return cls({e["fingerprint"]: e for e in data.get("entries", [])})

    def save(self, path: str | Path) -> None:
        """Write the baseline (sorted, so diffs are stable)."""
        data = {
            "version": 1,
            "entries": [
                self.entries[fp] for fp in sorted(self.entries)
            ],
        }
        Path(path).write_text(json.dumps(data, indent=2) + "\n")

    def add(self, finding: Finding, justification: str) -> None:
        """Accept ``finding`` with a human-readable justification."""
        self.entries[finding.fingerprint] = {
            "fingerprint": finding.fingerprint,
            "rule": finding.rule,
            "path": finding.path,
            "message": finding.message,
            "justification": justification,
        }

    def split(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[str]]:
        """``(unbaselined, baselined, unused_fingerprints)``.

        Unused entries are reported so a fixed finding's stale baseline
        line gets deleted instead of silently masking a future one.
        """
        unbaselined = [f for f in findings if f.fingerprint not in self.entries]
        baselined = [f for f in findings if f.fingerprint in self.entries]
        live = {f.fingerprint for f in findings}
        unused = sorted(fp for fp in self.entries if fp not in live)
        return unbaselined, baselined, unused


def format_findings(findings: list[Finding]) -> str:
    """Multi-line compiler-style report (CLI output)."""
    if not findings:
        return "analyze: clean"
    lines = [f"analyze: {len(findings)} finding(s)"]
    lines += ["  " + f.describe() for f in findings]
    return "\n".join(lines)


def to_sarif(findings: list[Finding]) -> dict:
    """SARIF 2.1.0-shaped export (one run, one rule per rule id)."""
    level = {
        ErrorSeverity.RETRYABLE: "note",
        ErrorSeverity.PROGRAM: "warning",
        ErrorSeverity.STICKY: "error",
        ErrorSeverity.FATAL: "error",
    }
    rules = sorted({f.rule for f in findings})
    return {
        "version": "2.1.0",
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analyze",
                        "rules": [{"id": r} for r in rules],
                    }
                },
                "results": [
                    {
                        "ruleId": f.rule,
                        "level": level[f.severity],
                        "message": {"text": f.message},
                        "partialFingerprints": {"stable": f.fingerprint},
                        "locations": [
                            {
                                "physicalLocation": {
                                    "artifactLocation": {"uri": f.path},
                                    "region": {"startLine": max(1, f.line)},
                                }
                            }
                        ],
                    }
                    for f in findings
                ],
            }
        ],
    }
