"""Pass orchestration, baseline diffing, and the corpus gate.

``analyze_package`` runs all three passes over ``src/repro`` (minus the
deliberate-violation libraries — ``sanitizer/planted.py`` plants
runtime hazards, ``analysis/corpus.py`` plants static ones) and diffs
the result against the committed baseline. ``run_corpus_gate`` mirrors
the sanitizer gate's planted-scenario structure: every positive
scenario must be detected by its expected rule, every negative control
must come back completely clean.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import taint, wiring
from repro.analysis.astutil import EXCLUDED_PARTS, PackageIndex
from repro.analysis.findings import Baseline, Finding
from repro.sanitizer.lint import lint_source

#: default committed baseline location (repo root relative)
BASELINE_PATH = "benchmarks/ANALYSIS_baseline.json"


def _lint_findings(index: PackageIndex) -> list[Finding]:
    """Run the per-line lint rules through the same Finding machinery."""
    findings: list[Finding] = []
    for rel, mod in index.modules.items():
        source = "\n".join(mod.lines)
        for lf in lint_source(source, rel):
            findings.append(
                Finding("lint", f"lint/{lf.rule}", lf.path, lf.line, lf.message)
            )
    return findings


def analyze_index(index: PackageIndex) -> tuple[list[Finding], list[dict]]:
    """All three passes over one index → (findings, api inventory)."""
    wiring_findings, inventory = wiring.analyze(index)
    findings = wiring_findings + taint.analyze(index) + _lint_findings(index)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings, inventory


def analyze_sources(sources: dict[str, str]) -> list[Finding]:
    """Analyse an in-memory tree (corpus scenarios, tests)."""
    return analyze_index(PackageIndex.from_sources(sources))[0]


def _package_root(root: str | Path | None) -> Path:
    if root is not None:
        return Path(root)
    return Path(__file__).resolve().parents[1]  # src/repro


def analyze_package(
    root: str | Path | None = None,
    *,
    baseline: Baseline | None = None,
) -> dict:
    """Analyse ``src/repro`` and diff against ``baseline``.

    Returns a report dict: unbaselined ``findings``, accepted
    ``baselined`` findings, ``unused_baseline`` fingerprints (stale
    entries that must be deleted), the per-API wiring ``inventory``,
    and ``ok`` (no unbaselined findings).
    """
    pkg = _package_root(root)
    index = PackageIndex.from_dir(
        pkg, rel_to=pkg.parent, exclude_parts=EXCLUDED_PARTS
    )
    findings, inventory = analyze_index(index)
    baseline = baseline if baseline is not None else Baseline()
    unbaselined, baselined, unused = baseline.split(findings)
    return {
        "findings": [f.to_dict() for f in unbaselined],
        "baselined": [f.to_dict() for f in baselined],
        "unused_baseline": unused,
        "inventory": inventory,
        "counts": {
            "total": len(findings),
            "unbaselined": len(unbaselined),
            "baselined": len(baselined),
            "modules": len(index.modules),
            "apis": len(inventory),
        },
        "ok": not unbaselined,
    }


def findings_from_report(report: dict) -> list[Finding]:
    """Rehydrate unbaselined Finding objects from a report dict."""
    return [
        Finding(d["analyzer"], d["rule"], d["path"], d["line"], d["message"])
        for d in report["findings"]
    ]


def run_corpus_gate() -> dict:
    """Run every planted scenario; mirrors the sanitizer gate shape."""
    from repro.analysis.corpus import SCENARIOS

    rows = []
    detected = 0
    positives = 0
    false_positives = 0
    for scenario in SCENARIOS:
        findings = analyze_sources(scenario.files)
        rules = sorted({f.rule for f in findings})
        if scenario.expect is None:
            ok = not findings
            false_positives += len(findings)
        else:
            positives += 1
            ok = scenario.expect in rules
            detected += int(ok)
        rows.append(
            {
                "name": scenario.name,
                "expect": scenario.expect,
                "found": rules,
                "ok": ok,
            }
        )
    return {
        "scenarios": rows,
        "positives": positives,
        "detected": detected,
        "detection_rate": detected / positives if positives else 1.0,
        "false_positives": false_positives,
        "ok": detected == positives and false_positives == 0,
    }
