"""Import-binding resolution: local names back to canonical origins.

The old lint matched attribute chains literally, so ``time.time()`` was
caught but ``from time import time`` or ``import numpy.random as npr``
slipped through. This module records what every imported local name
*means* and rewrites call chains into canonical dotted form before any
rule looks at them:

    from time import time as now    ->  now()        resolves to time.time
    import numpy.random as npr      ->  npr.random() resolves to numpy.random.random
    import numpy as np              ->  np.random.rand() resolves to numpy.random.rand

Relative imports (``from .foo import bar``) resolve to nothing — they
can only name package-local modules, never the stdlib sources the
nondeterminism rules care about.
"""

from __future__ import annotations

import ast

#: aliases normalised to their canonical module name
_CANONICAL_HEADS = {"np": "numpy"}


class ImportBindings:
    """Local-name → canonical dotted-origin map for one module."""

    def __init__(self) -> None:
        self.names: dict[str, str] = {}

    @classmethod
    def collect(cls, tree: ast.AST) -> "ImportBindings":
        """Walk a module body for ``import``/``from-import`` bindings."""
        b = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # `import a.b` binds the *root* name `a`; only an
                    # asname binds the full dotted path.
                    origin = alias.name if alias.asname else alias.name.split(".")[0]
                    b.names[local] = origin
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative import: package-local
                for alias in node.names:
                    local = alias.asname or alias.name
                    b.names[local] = f"{node.module}.{alias.name}"
        return b

    def resolve(self, chain: list[str]) -> list[str]:
        """Rewrite ``chain`` with its head's import origin substituted.

        Unbound heads pass through unchanged (so literal ``time.time()``
        still resolves even without seeing the import statement).
        """
        if not chain:
            return chain
        head = chain[0]
        origin = self.names.get(head, head)
        origin = _CANONICAL_HEADS.get(origin, origin)
        return origin.split(".") + chain[1:]
