"""Shared AST plumbing: the package index and call-graph reachability.

A :class:`PackageIndex` holds every parsed module of the tree under
analysis, keyed by repo-relative posix path. It can be built from a
directory (the real tree) or from an in-memory ``{relpath: source}``
dict (the planted-violation corpus) — both go through the same passes,
which is what makes the corpus a faithful gate.

The call graph is *name-based*: a call ``self.arena.alloc(...)``
reaches every ``def alloc`` in the package. Deliberately
over-approximate — for "is a sanitizer hook statically reachable from
this API?" an over-approximation can only *hide* a gap behind an
unrelated same-named function, never invent one, which keeps the pass
at zero false positives.
"""

from __future__ import annotations

import ast
from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

#: deliberate-violation libraries, excluded from whole-repo analysis
EXCLUDED_PARTS = ("sanitizer/planted.py", "analysis/corpus.py")

SUPPRESS_MARK = "lint: allow"


@dataclass
class ModuleInfo:
    """One parsed source file."""

    rel: str  # posix relative path, e.g. "repro/cuda/api.py"
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    def suppressed(self, node: ast.AST) -> bool:
        """True if the node's source line carries ``# lint: allow``."""
        line = getattr(node, "lineno", 0) - 1
        return 0 <= line < len(self.lines) and SUPPRESS_MARK in self.lines[line]


class PackageIndex:
    """All modules of one tree plus a package-wide function-name map."""

    def __init__(self, modules: dict[str, ModuleInfo]) -> None:
        self.modules = modules
        self._functions: dict[str, list[tuple[ModuleInfo, ast.AST]]] | None = None

    @classmethod
    def from_dir(
        cls,
        root: str | Path,
        *,
        rel_to: Path | None = None,
        exclude_parts: Iterable[str] = EXCLUDED_PARTS,
    ) -> "PackageIndex":
        """Parse every ``*.py`` under ``root`` (skipping exclusions)."""
        root = Path(root)
        base = rel_to if rel_to is not None else root.parent
        modules: dict[str, ModuleInfo] = {}
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(base).as_posix()
            if any(part in rel for part in exclude_parts):
                continue
            source = path.read_text()
            modules[rel] = ModuleInfo(
                rel, ast.parse(source, filename=str(path)), source.splitlines()
            )
        return cls(modules)

    @classmethod
    def from_sources(cls, sources: dict[str, str]) -> "PackageIndex":
        """Parse an in-memory tree (corpus scenarios, tests)."""
        modules = {
            rel: ModuleInfo(rel, ast.parse(src, filename=rel), src.splitlines())
            for rel, src in sources.items()
        }
        return cls(modules)

    def find(self, *suffixes: str) -> ModuleInfo | None:
        """First module whose path ends with any of ``suffixes``."""
        for suffix in suffixes:
            for rel, mod in self.modules.items():
                if rel.endswith(suffix):
                    return mod
        return None

    def functions(self) -> dict[str, list[tuple[ModuleInfo, ast.AST]]]:
        """Package-wide ``def`` name → [(module, node)] map (cached)."""
        if self._functions is None:
            fns: dict[str, list] = defaultdict(list)
            for mod in self.modules.values():
                for node in ast.walk(mod.tree):
                    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        fns[node.name].append((mod, node))
            self._functions = dict(fns)
        return self._functions


def attr_chain(node: ast.AST) -> list[str]:
    """``a.b.c`` -> ["a", "b", "c"]; [] if not a plain name chain.

    Subscripts are stepped through (``a[0].b`` -> ["a", "b"]) so real
    code like ``self.devices[i].enqueue_copy`` still yields a chain.
    """
    parts: list[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        else:
            break
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


def call_name(node: ast.Call) -> str | None:
    """Terminal name of a call target (``a.b.c()`` -> "c")."""
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def str_constants(node: ast.AST) -> list[str]:
    """All string literals anywhere under ``node`` (handles IfExp args
    like ``self._entry("cudaMemcpyAsync" if async_ else "cudaMemcpy")``)."""
    return [
        n.value
        for n in ast.walk(node)
        if isinstance(n, ast.Constant) and isinstance(n.value, str)
    ]


def called_names(node: ast.AST) -> set[str]:
    """Terminal names of every call under ``node``."""
    names: set[str] = set()
    for n in ast.walk(node):
        if isinstance(n, ast.Call):
            cn = call_name(n)
            if cn is not None:
                names.add(cn)
    return names


def body_matches(node: ast.AST, predicate: Callable[[ast.AST], bool]) -> bool:
    """True if any descendant satisfies ``predicate``."""
    return any(predicate(n) for n in ast.walk(node))


def reaches(
    index: PackageIndex,
    fn: ast.AST,
    predicate: Callable[[ast.AST], bool],
    *,
    depth: int = 3,
) -> bool:
    """BFS over the name-based call graph: does ``predicate`` hold in
    ``fn``'s body or in any function reachable within ``depth`` calls?"""
    functions = index.functions()
    frontier: list[ast.AST] = [fn]
    seen: set[int] = {id(fn)}
    for _ in range(depth + 1):
        next_frontier: list[ast.AST] = []
        for body in frontier:
            if body_matches(body, predicate):
                return True
            for name in called_names(body):
                for _mod, target in functions.get(name, ()):
                    if id(target) not in seen:
                        seen.add(id(target))
                        next_frontier.append(target)
        if not next_frontier:
            break
        frontier = next_frontier
    return False
