"""Planted-violation corpus for the static analyzer (the gate's teeth).

Mirrors ``sanitizer/planted.py``: every positive scenario plants exactly
one wiring/dataflow violation in a miniature but *consistent* tree (the
same module paths the real passes key on), and every negative control
is a clean tree that must produce zero findings. The gate asserts 100%
detection and 0 false positives — an analyzer change that breaks either
direction fails CI before it can mis-lint the real tree.

This module is data (source strings), deliberately excluded from
whole-repo analysis via ``astutil.EXCLUDED_PARTS``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PlantedScenario:
    """One corpus entry: a tree and the rule it must (not) trip."""

    name: str
    expect: str | None  # finding rule id; None → negative control
    files: dict[str, str]


_API = '''\
class CudaRuntime:
    def cudaMalloc(self, nbytes):
        self._entry("cudaMalloc")
        addr = self._device_alloc.alloc(nbytes)
        return addr

    def cudaMemcpy(self, dst, src, nbytes, kind):
        self._entry("cudaMemcpy")
        if self.sanitizer is not None:
            self.sanitizer.on_copy(self, None, kind, dst, src, nbytes, 0, 0, False)
        buf = self._buffer(dst)
        buf.contents.copy_from(src, 0, 0, nbytes)
'''

_INTERFACE = '''\
class CudaDispatchBase:
    def malloc(self, nbytes):
        self._dispatch("cudaMalloc", payload_bytes=16)
        return self.runtime.cudaMalloc(nbytes)

    def memcpy(self, dst, src, nbytes, kind):
        self._dispatch("cudaMemcpy", payload_bytes=32)
        return self.runtime.cudaMemcpy(dst, src, nbytes, kind)
'''

_MEMORY = '''\
class Arena:
    def alloc(self, nbytes):
        addr = self._take(nbytes)
        if self.sanitizer is not None:
            self.sanitizer.on_arena_alloc(self, addr, nbytes)
        return addr
'''

_TRAMPOLINE = '''\
class CracBackend:
    def _log(self, op, nbytes, addr):
        self.replay_log.append(op, nbytes, addr)

    def malloc(self, nbytes):
        addr = super().malloc(nbytes)
        self._log("malloc", nbytes, addr)
        return addr
'''

_REPLAY = '''\
class ReplayLog:
    def replay(self, runtime):
        for e in self.entries:
            if e.op == "malloc":
                runtime.cudaMalloc(e.nbytes)
'''

_PLUGIN = '''\
class CracPlugin:
    def on_precheckpoint(self, image):
        image.add_blob("crac/buffers", self._pack_buffers())
        image.add_blob("crac/replay-log", self._pack_log())
'''

_SESSION = '''\
def restart(image, fresh):
    log = image.blob("crac/replay-log")
    buffers = image.blobs.get("crac/buffers")
    return log, buffers
'''

_ERRORS = '''\
class CudaErrorCode(enum.Enum):
    SUCCESS = 0
    INVALID_VALUE = 11


SEVERITY = {
    CudaErrorCode.INVALID_VALUE: ErrorSeverity.PROGRAM,
}
'''

_CUBLAS = '''\
CUBLAS_FATBIN = FatBinary(
    name="libcublas.fatbin", kernels=("cublas_sdot_kernel",)
)


class CuBlas:
    def sdot(self, x_ptr, y_ptr, n):
        self._call("cublasSdot", "cublas_sdot_kernel", flop=2.0 * n)
'''

#: fully wired miniature tree — every positive is a one-file delta
CLEAN_TREE: dict[str, str] = {
    "repro/cuda/api.py": _API,
    "repro/cuda/interface.py": _INTERFACE,
    "repro/gpu/memory.py": _MEMORY,
    "repro/core/trampoline.py": _TRAMPOLINE,
    "repro/core/replay_log.py": _REPLAY,
    "repro/core/plugin.py": _PLUGIN,
    "repro/core/session.py": _SESSION,
    "repro/cuda/errors.py": _ERRORS,
    "repro/cuda/cublas.py": _CUBLAS,
}


def _tree(**overrides: str) -> dict[str, str]:
    """Clean tree plus overrides; ``a__b__c_py`` keys mean ``a/b/c.py``."""
    files = dict(CLEAN_TREE)
    for key, source in overrides.items():
        path = key.replace("__", "/")
        if path.endswith("_py"):
            path = path[:-3] + ".py"
        files[path] = source
    return files


SCENARIOS: tuple[PlantedScenario, ...] = (
    # ---------------------------------------------------------- wiring pass
    PlantedScenario(
        "missing-entry-prologue",
        "wiring/entry-prologue",
        _tree(
            repro__cuda__api_py=_API + '''
    def cudaDeviceReset(self):
        self.device.reset()
''',
            repro__cuda__interface_py=_INTERFACE + '''
    def device_reset(self):
        self._dispatch("cudaDeviceReset", payload_bytes=8)
        return self.runtime.cudaDeviceReset()
''',
        ),
    ),
    PlantedScenario(
        "trace-unattributed-entry",
        "wiring/trace-unattributed",
        _tree(
            repro__cuda__api_py=_API + '''
    def cudaDeviceReset(self):
        self._entry("cudaDeviceReset")
        self.device.reset()
''',
            repro__cuda__interface_py=_INTERFACE + '''
    def device_reset(self):
        return self.runtime.cudaDeviceReset()
''',
        ),
    ),
    PlantedScenario(
        "dispatch-without-entry",
        "wiring/dispatch-unentered",
        _tree(
            repro__cuda__interface_py=_INTERFACE + '''
    def device_reset(self):
        self._dispatch("cudaDeviceReset", payload_bytes=8)
''',
        ),
    ),
    PlantedScenario(
        "api-without-call-site",
        "wiring/api-unreachable",
        _tree(
            repro__cuda__api_py=_API + '''
    def cudaDeviceReset(self):
        self._entry("cudaDeviceReset")
        self.device.reset()
''',
            repro__cuda__interface_py=_INTERFACE + '''
    def device_reset(self):
        self._dispatch("cudaDeviceReset", payload_bytes=8)
''',
        ),
    ),
    PlantedScenario(
        "data-plane-api-without-sanitizer-model",
        "wiring/sanitizer-model-missing",
        _tree(
            repro__cuda__api_py=_API + '''
    def cudaMemset(self, addr, value, nbytes):
        self._entry("cudaMemset")
        buf = self._buffer(addr)
        buf.contents.fill(value, 0, nbytes)
''',
            repro__cuda__interface_py=_INTERFACE + '''
    def memset(self, addr, value, nbytes):
        self._dispatch("cudaMemset", payload_bytes=24)
        return self.runtime.cudaMemset(addr, value, nbytes)
''',
        ),
    ),
    PlantedScenario(
        "logged-op-replay-cannot-handle",
        "wiring/log-op-unreplayed",
        _tree(
            repro__core__trampoline_py=_TRAMPOLINE + '''
    def malloc_host(self, nbytes):
        addr = super().malloc_host(nbytes)
        self._log("malloc_host", nbytes, addr)
        return addr
''',
        ),
    ),
    PlantedScenario(
        "alloc-override-never-logged",
        "wiring/unlogged-alloc",
        _tree(
            repro__core__trampoline_py=_TRAMPOLINE + '''
    def free(self, addr):
        super().free(addr)
''',
        ),
    ),
    PlantedScenario(
        "captured-blob-never-restored",
        "wiring/capture-blob-unrestored",
        _tree(
            repro__core__plugin_py=_PLUGIN + '''
    def on_precheckpoint_streams(self, image):
        image.add_blob("crac/streams", self._pack_streams())
''',
        ),
    ),
    PlantedScenario(
        "error-code-without-severity",
        "wiring/severity-unclassified",
        _tree(
            repro__cuda__errors_py='''\
class CudaErrorCode(enum.Enum):
    SUCCESS = 0
    INVALID_VALUE = 11
    STREAM_STALLED = 994


SEVERITY = {
    CudaErrorCode.INVALID_VALUE: ErrorSeverity.PROGRAM,
}
''',
        ),
    ),
    PlantedScenario(
        "library-kernel-not-in-fatbin",
        "wiring/library-kernel-unregistered",
        _tree(
            repro__cuda__cublas_py=_CUBLAS + '''
    def sgemv(self, a_ptr, x_ptr, y_ptr, m, n):
        self._call("cublasSgemv", "cublas_sgemv_kernel", flop=2.0 * m * n)
''',
        ),
    ),
    # ----------------------------------------------------------- taint pass
    PlantedScenario(
        "aliased-wall-clock-into-kernel-args",
        "det/nondet-into-kernel",
        _tree(
            repro__apps__workload_py='''\
from time import time as now_s


def run_step(backend):
    t = now_s()
    backend.launch("scale_kernel", args=(t,))
''',
        ),
    ),
    PlantedScenario(
        "aliased-np-random-into-digest",
        "det/nondet-into-capture",
        _tree(
            repro__harness__capture_ext_py='''\
import numpy.random as npr


def capture_extra(image):
    noise = npr.random()
    image.add_blob("crac/noise", noise)
''',
        ),
    ),
    PlantedScenario(
        "unseeded-default-rng",
        "det/unseeded-rng",
        _tree(
            repro__apps__noise_py='''\
import numpy as np


def make_noise():
    rng = np.random.default_rng()
    return rng
''',
        ),
    ),
    PlantedScenario(
        "stream-used-after-destroy",
        "det/use-after-destroy",
        _tree(
            repro__apps__teardown_py='''\
def teardown(rt, buf):
    stream = rt.cudaStreamCreate()
    rt.cudaStreamDestroy(stream)
    rt.cudaMemcpy(buf, 0, 16, "d2h", stream=stream)
''',
        ),
    ),
    PlantedScenario(
        "launch-with-no-sync-before-cut",
        "det/unsynced-launch",
        _tree(
            repro__harness__cutter_py='''\
def cut_without_drain(backend, session):
    backend.launch("step_kernel", args=())
    session.checkpoint()
''',
        ),
    ),
    PlantedScenario(
        "device-pointer-escapes-to-module-global",
        "det/pointer-escape",
        _tree(
            repro__apps__leak_py='''\
_PTRS = []


def leak(rt):
    p = rt.cudaMalloc(1024)
    _PTRS.append(p)
    return p
''',
        ),
    ),
    # ------------------------------------------------- lint (per-line) pass
    PlantedScenario(
        "aliased-perf-counter-import",
        "lint/nondeterminism",
        _tree(
            repro__apps__measure_py='''\
from time import perf_counter


def measure():
    return perf_counter()
''',
        ),
    ),
    PlantedScenario(
        "restore-side-dict-iteration",
        "lint/dict-iteration",
        _tree(
            repro__dmtcp__restore_ext_py='''\
def restore_pages(image, vas):
    for addr, data in image.pages.items():
        vas.write(addr, data)
''',
        ),
    ),
    PlantedScenario(
        "raw-raise-in-cuda-path",
        "lint/raw-raise",
        _tree(
            repro__cuda__checks_py='''\
def check_addr(addr):
    if addr < 0:
        raise ValueError("bad addr")
''',
        ),
    ),
    # ------------------------------------------------------ negative controls
    PlantedScenario("clean-wired-tree", None, _tree()),
    PlantedScenario(
        "seeded-rng-and-virtual-clock",
        None,
        _tree(
            repro__apps__noise_py='''\
import numpy as np


def make_noise(seed, clock):
    rng = np.random.default_rng(seed)
    t = clock.now_ns
    return rng.random() + t
''',
        ),
    ),
    PlantedScenario(
        "launch-synced-before-cut-destroy-last",
        None,
        _tree(
            repro__harness__cutter_py='''\
def drain_then_cut(backend, session, rt):
    stream = rt.cudaStreamCreate()
    backend.launch("step_kernel", args=(), stream=stream)
    rt.cudaStreamSynchronize(stream)
    session.checkpoint()
    rt.cudaStreamDestroy(stream)
''',
        ),
    ),
    PlantedScenario(
        "sorted-restore-iteration",
        None,
        _tree(
            repro__dmtcp__restore_ext_py='''\
def restore_pages(image, vas):
    for addr, data in sorted(image.pages.items()):
        vas.write(addr, data)
''',
        ),
    ),
    PlantedScenario(
        "suppressed-wall-clock-bench",
        None,
        _tree(
            repro__apps__bench_py='''\
import time


def wall_elapsed(fn):
    t0 = time.perf_counter()  # lint: allow
    fn()
    return time.perf_counter() - t0  # lint: allow
''',
        ),
    ),
)
