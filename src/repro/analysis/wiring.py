"""Pass 1 — cross-layer API-wiring consistency.

CRAC's restart correctness rests on every intercepted CUDA API being
*fully* wired: entered in the lower half (call counting), dispatched in
the upper half (trace-span attribution), replay-logged if it mutates
device address space, captured *and* restored by the plugin, modelled
by the sanitizer if it moves data, and classified by the error
taxonomy. A newly added API with any strand missing becomes a typed
finding — which is exactly the per-resource-handle inventory ROADMAP
item 1 (PhoenixOS-style concurrent checkpointing) needs as input.

Everything here is *fact extraction + set difference*; there are no
hardcoded verdicts. The only model knowledge is the two documented
allowlists below.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.analysis.astutil import (
    PackageIndex,
    attr_chain,
    body_matches,
    call_name,
    called_names,
    reaches,
    str_constants,
)
from repro.analysis.findings import Finding

#: APIs the restart orchestrator calls on the *runtime* directly while
#: rebuilding the lower half — entered, never upper-half dispatched, so
#: they legitimately have no trace span of their own (they run inside
#: the restore splice segment).
RESTART_ONLY = {"cudaHostRegister"}

#: eq. 2 of the paper: one launch is *three* upper-half calls; the two
#: configuration calls exist only at the dispatch boundary and have no
#: runtime entry point of their own.
CONFIG_CALLS = {"cudaPushCallConfiguration", "cudaPopCallConfiguration"}

#: device-content writers on buffer ``contents`` objects
_CONTENTS_WRITERS = {"copy_from", "write_bytes", "fill", "apply_delta"}
#: UVM page-migration operations (registration is not data movement)
_UVM_OPS = {"device_access", "host_access", "prefetch"}
#: allocator-mutating method names on arena objects
_ARENA_OPS = {"alloc", "free"}

_ALLOC_METHOD_RE = re.compile(r"^(malloc|free|host_alloc)")


@dataclass
class ApiFacts:
    """Statically extracted facts about one ``cuda*`` runtime method."""

    name: str
    line: int
    entries: list[str] = field(default_factory=list)
    has_entry: bool = False
    sanitizer_direct: bool = False
    sanitizer_reachable: bool = False
    data_plane: list[str] = field(default_factory=list)
    call_sites: int = 0
    dispatched: bool = False

    def to_dict(self) -> dict:
        """Inventory record (the ROADMAP item 1 handle inventory)."""
        return {
            "name": self.name,
            "entries": sorted(set(self.entries)),
            "dispatched": self.dispatched,
            "call_sites": self.call_sites,
            "data_plane": self.data_plane,
            "sanitizer_model": self.sanitizer_direct or self.sanitizer_reachable,
        }


def _sanitizer_in(node: ast.AST) -> bool:
    return isinstance(node, ast.Attribute) and "sanitizer" in attr_chain(node)


def _data_plane_facts(fn: ast.AST) -> list[str]:
    """Which data-moving operations the method body performs."""
    facts: set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        chain = attr_chain(node.func)
        if name in _CONTENTS_WRITERS and "contents" in chain:
            facts.add("contents-write")
        elif name is not None and name.startswith("enqueue"):
            facts.add("enqueue")
        elif name in _UVM_OPS and "uvm" in chain:
            facts.add("uvm")
        elif name in _ARENA_OPS and any("alloc" in part for part in chain[:-1]):
            facts.add("arena")
    return sorted(facts)


def _extract_api_facts(index: PackageIndex, api_mod) -> list[ApiFacts]:
    facts: list[ApiFacts] = []
    for cls in api_mod.tree.body:
        if not isinstance(cls, ast.ClassDef):
            continue
        for fn in cls.body:
            if not isinstance(fn, ast.FunctionDef) or not fn.name.startswith("cuda"):
                continue
            f = ApiFacts(fn.name, fn.lineno)
            for node in ast.walk(fn):
                if isinstance(node, ast.Call) and call_name(node) == "_entry":
                    f.has_entry = True
                    if node.args:
                        f.entries.extend(str_constants(node.args[0]))
            f.sanitizer_direct = body_matches(fn, _sanitizer_in)
            f.data_plane = _data_plane_facts(fn)
            if f.data_plane and not f.sanitizer_direct:
                f.sanitizer_reachable = reaches(index, fn, _sanitizer_in)
            facts.append(f)
    return facts


def _count_call_sites(index: PackageIndex, method: str, own_def: ast.AST) -> int:
    """Calls to ``.method(...)`` anywhere in the package (internal API
    edges — e.g. ``cudaFree`` forwarding to ``cudaFreeManaged`` — count,
    recursion inside the method's own body does not)."""
    own = {id(n) for n in ast.walk(own_def)}
    count = 0
    for mod in index.modules.values():
        for node in ast.walk(mod.tree):
            if (
                isinstance(node, ast.Call)
                and id(node) not in own
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == method
            ):
                count += 1
    return count


def _dispatch_literals(mod) -> set[str]:
    """Names passed to ``_dispatch``/``_dispatch_batch``.

    Handles literal args, conditional literals (both IfExp arms), and
    the common ``name = "A" if flag else "B"; self._dispatch(name)``
    idiom by resolving plain-Name args against string constants
    assigned to that name in the same function body.
    """
    names: set[str] = set()
    for fn in ast.walk(mod.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        local_strs: dict[str, set[str]] = {}
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and node.targets:
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        local_strs.setdefault(t.id, set()).update(
                            str_constants(node.value)
                        )
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            cn = call_name(node)
            if cn == "_dispatch" and node.args:
                arg = node.args[0]
                names.update(str_constants(arg))
                if isinstance(arg, ast.Name):
                    names.update(local_strs.get(arg.id, ()))
            elif cn == "_dispatch_batch":
                for s in str_constants(node):
                    if s.startswith(("cuda", "__cuda")):
                        names.add(s)
    return names


def _log_ops(mod) -> dict[str, int]:
    """``self._log("op", ...)`` literals in the trampoline → first line."""
    ops: dict[str, int] = {}
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Call) and call_name(node) == "_log" and node.args:
            for s in str_constants(node.args[0]):
                ops.setdefault(s, node.lineno)
    return ops


def _replay_ops(mod) -> set[str]:
    """Op literals the replay loop compares against (``e.op == "x"``,
    ``e.op in ("x", "y")``)."""
    ops: set[str] = set()
    for node in ast.walk(mod.tree):
        if not isinstance(node, ast.Compare):
            continue
        sides = [node.left, *node.comparators]
        if any(
            isinstance(s, ast.Attribute) and s.attr == "op" for s in sides
        ):
            for s in sides:
                ops.update(str_constants(s))
    return ops


def _blob_keys(index: PackageIndex, plugin_mod) -> tuple[dict[str, int], set[str]]:
    """(written keys → line in the plugin, keys read anywhere)."""
    written: dict[str, int] = {}
    for node in ast.walk(plugin_mod.tree):
        if isinstance(node, ast.Call) and call_name(node) == "add_blob" and node.args:
            for s in str_constants(node.args[0]):
                written.setdefault(s, node.lineno)
    read: set[str] = set()
    for mod in index.modules.values():
        for node in ast.walk(mod.tree):
            if (
                isinstance(node, ast.Call)
                and call_name(node) in ("blob", "get")
                and node.args
            ):
                for s in str_constants(node.args[0]):
                    if s in written:
                        read.add(s)
    return written, read


def _severity_gaps(errors_mod) -> list[tuple[str, int]]:
    """Enum members of ``CudaErrorCode`` missing from ``SEVERITY``."""
    members: dict[str, int] = {}
    covered: set[str] = set()
    for node in ast.walk(errors_mod.tree):
        if isinstance(node, ast.ClassDef) and node.name == "CudaErrorCode":
            for stmt in node.body:
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name) and target.id != "SUCCESS":
                            members[target.id] = stmt.lineno
        target = None
        if isinstance(node, ast.Assign) and node.targets:
            target = node.targets[0]
        elif isinstance(node, ast.AnnAssign):
            target = node.target
        if (
            target is not None
            and isinstance(target, ast.Name)
            and target.id == "SEVERITY"
            and isinstance(getattr(node, "value", None), ast.Dict)
        ):
            for key in node.value.keys:
                chain = attr_chain(key) if key is not None else []
                if len(chain) == 2 and chain[0] == "CudaErrorCode":
                    covered.add(chain[1])
    return [(m, ln) for m, ln in members.items() if m not in covered]


def _library_kernel_gaps(lib_mod) -> list[tuple[str, str, int]]:
    """``_call(name, kernel)`` kernels not in the module's FatBinary."""
    registered: set[str] = set()
    for node in ast.walk(lib_mod.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "FatBinary"
        ):
            registered.update(str_constants(node))
    gaps: list[tuple[str, str, int]] = []
    for node in ast.walk(lib_mod.tree):
        if (
            isinstance(node, ast.Call)
            and call_name(node) == "_call"
            and len(node.args) >= 2
        ):
            routine = next(iter(str_constants(node.args[0])), None)
            kernel = next(iter(str_constants(node.args[1])), None)
            if routine and kernel and kernel not in registered:
                gaps.append((routine, kernel, node.lineno))
    return gaps


def _unlogged_alloc(tramp_mod) -> list[tuple[str, int]]:
    """Backend alloc/free overrides that never reach a ``_log`` call.

    Scoped to classes that use ``_log`` at all (the replay-logging
    backend), so plain dispatch bases aren't held to the rule.
    """
    gaps: list[tuple[str, int]] = []
    for cls in ast.walk(tramp_mod.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        methods = {
            n.name: n for n in cls.body if isinstance(n, ast.FunctionDef)
        }
        uses_log = any("_log" in called_names(m) for m in methods.values())
        if not uses_log:
            continue
        for name, fn in methods.items():
            if not _ALLOC_METHOD_RE.match(name):
                continue
            logged = "_log" in called_names(fn) or any(
                "_log" in called_names(methods[c])
                for c in called_names(fn)
                if c in methods
            )
            if not logged:
                gaps.append((name, fn.lineno))
    return gaps


def analyze(index: PackageIndex) -> tuple[list[Finding], list[dict]]:
    """Run the wiring pass; returns ``(findings, api_inventory)``."""
    findings: list[Finding] = []
    inventory: list[dict] = []

    def add(rule: str, mod, line: int, message: str, node: ast.AST | None = None):
        if node is not None and mod.suppressed(node):
            return
        findings.append(Finding("wiring", f"wiring/{rule}", mod.rel, line, message))

    api_mod = index.find("cuda/api.py")
    iface_mod = index.find("cuda/interface.py")
    dispatched = _dispatch_literals(iface_mod) if iface_mod is not None else set()

    if api_mod is not None:
        api_facts = _extract_api_facts(index, api_mod)
        entered: set[str] = set()
        for f in api_facts:
            entered.update(f.entries)
            f.call_sites = _count_call_sites(
                index, f.name, _find_def(api_mod, f.name)
            )
            f.dispatched = any(e in dispatched for e in f.entries)
            if not f.has_entry:
                add(
                    "entry-prologue", api_mod, f.line,
                    f"{f.name} never calls self._entry() — lower-half call "
                    "counting and checkpoint quiesce cannot see it",
                )
            if f.call_sites == 0:
                add(
                    "api-unreachable", api_mod, f.line,
                    f"{f.name} has no call site anywhere in the package — "
                    "dead trampoline surface (or a missing dispatch wrapper)",
                )
            if f.data_plane and not (f.sanitizer_direct or f.sanitizer_reachable):
                add(
                    "sanitizer-model-missing", api_mod, f.line,
                    f"{f.name} moves data ({', '.join(f.data_plane)}) but no "
                    "sanitizer hook is statically reachable from its body — "
                    "racecheck/memcheck are blind to this API",
                )
            inventory.append(f.to_dict())

        if iface_mod is not None:
            for f in api_facts:
                for entry in sorted(set(f.entries)):
                    if entry not in dispatched and entry not in RESTART_ONLY:
                        add(
                            "trace-unattributed", api_mod, f.line,
                            f"{f.name} enters {entry!r} but the dispatch layer "
                            "never dispatches that name — its upper-half calls "
                            "have no trace span",
                        )
            for name in sorted(dispatched - entered - CONFIG_CALLS):
                add(
                    "dispatch-unentered", iface_mod, 1,
                    f"dispatch layer dispatches {name!r} but no runtime "
                    "method enters it — the trace counts a call the lower "
                    "half never sees",
                )

    tramp_mod = index.find("core/trampoline.py")
    replay_mod = index.find("core/replay_log.py")
    if tramp_mod is not None and replay_mod is not None:
        replayed = _replay_ops(replay_mod)
        for op, line in sorted(_log_ops(tramp_mod).items()):
            if op not in replayed:
                add(
                    "log-op-unreplayed", tramp_mod, line,
                    f"trampoline logs replay op {op!r} but the replay loop "
                    "never handles it — restart would silently drop the call",
                )
    if tramp_mod is not None:
        for name, line in _unlogged_alloc(tramp_mod):
            add(
                "unlogged-alloc", tramp_mod, line,
                f"backend {name}() mutates device address space without "
                "reaching self._log() — the call is lost from the replay log",
            )

    plugin_mod = index.find("core/plugin.py")
    if plugin_mod is not None:
        written, read = _blob_keys(index, plugin_mod)
        for key, line in sorted(written.items()):
            if key not in read:
                add(
                    "capture-blob-unrestored", plugin_mod, line,
                    f"checkpoint blob {key!r} is captured but no restore "
                    "path ever reads it — dead image bytes or a missing "
                    "restore step",
                )

    errors_mod = index.find("cuda/errors.py")
    if errors_mod is not None:
        for member, line in sorted(_severity_gaps(errors_mod)):
            add(
                "severity-unclassified", errors_mod, line,
                f"CudaErrorCode.{member} has no SEVERITY entry — it would "
                "classify as FATAL by fallback instead of by decision",
            )

    for suffix in ("cuda/cublas.py", "cuda/cusolver.py"):
        lib_mod = index.find(suffix)
        if lib_mod is None:
            continue
        for routine, kernel, line in _library_kernel_gaps(lib_mod):
            add(
                "library-kernel-unregistered", lib_mod, line,
                f"{routine} launches kernel {kernel!r} which its FatBinary "
                "never registers — restart re-registration would not cover it",
            )

    return findings, inventory


def _find_def(mod, name: str) -> ast.AST:
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return mod.tree
