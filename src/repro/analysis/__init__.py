"""Whole-program static analysis for checkpoint-restart safety.

Three passes over the source tree (AST only — no module is imported,
so analysing a broken tree can never crash the analyser):

- **wiring** (:mod:`repro.analysis.wiring`) — cross-layer API-wiring
  consistency: every ``cuda*`` trampoline method must be entered,
  dispatched (trace attribution), reachable, sanitizer-modelled,
  replay-logged, captured *and* restored, and severity-classified.
- **taint** (:mod:`repro.analysis.taint`) — replay-determinism
  dataflow: wall-clock/unseeded-RNG values flowing into kernel args or
  capture digests, device pointers escaping into module-level host
  containers, stream/event use-after-destroy, and launches with no
  statically reachable sync before a checkpoint cut.
- **lint** (:mod:`repro.sanitizer.lint`, re-hosted here) — the
  per-line determinism rules, upgraded with import-binding resolution
  so aliased imports (``from time import time``) no longer evade them.

Findings (:mod:`repro.analysis.findings`) route severity through the
``cuda/errors.py`` taxonomy, honour ``# lint: allow`` suppressions,
diff against a committed baseline (``benchmarks/ANALYSIS_baseline.json``)
and export SARIF. ``repro analyze`` is the CLI; the ``analyze`` CI job
fails on any unbaselined finding.
"""

# Exports resolve lazily: the sanitizer lint imports
# repro.analysis.bindings (triggering this __init__), and the engine
# imports the lint — an eager engine import here would be a cycle.
_ENGINE_EXPORTS = {"analyze_package", "analyze_sources", "run_corpus_gate"}
_FINDING_EXPORTS = {"Baseline", "Finding"}

__all__ = sorted(_ENGINE_EXPORTS | _FINDING_EXPORTS)


def __getattr__(name: str):
    if name in _ENGINE_EXPORTS:
        from repro.analysis import engine

        return getattr(engine, name)
    if name in _FINDING_EXPORTS:
        from repro.analysis import findings

        return getattr(findings, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
