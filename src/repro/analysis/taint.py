"""Pass 2 — replay-determinism dataflow (intra-procedural taint).

The old lint flagged nondeterministic *calls*; this pass tracks where
their *values* flow. Replay determinism (§3.2.4 of the paper) only
breaks when a nondeterministic value reaches something replay compares:
kernel arguments, captured blobs, digests. Four flow rules:

- ``det/nondet-into-kernel`` — wall-clock / RNG value reaches a kernel
  launch argument: the replayed launch computes different bytes.
- ``det/nondet-into-capture`` — such a value reaches ``add_blob`` or a
  digest function: two identical runs produce different checksums.
- ``det/unseeded-rng`` — ``random.Random()`` / ``default_rng()`` with
  no seed argument: OS-entropy seeded, unreplayable by construction.
- ``det/pointer-escape`` — a ``cudaMalloc``-family result stored into a
  module-level container: restart rewrites the runtime's pointer
  registry, but nothing patches module globals, so the stored address
  dangles after restore.

Plus two lifecycle rules that need statement ordering, not taint:

- ``det/use-after-destroy`` — a stream/event handle used after the
  statement that destroyed it.
- ``det/unsynced-launch`` — a kernel launch followed by a checkpoint
  call in the same body with no statically reachable sync between
  them: the cut captures a stream with undrained work.

The walk is flow-ordered per function body and propagates taint
through assignments and expressions; a reassignment from a clean value
clears the name (strong update). Aliased imports are resolved through
:class:`~repro.analysis.bindings.ImportBindings`, so
``from time import time as now`` taints exactly like ``time.time``.
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import PackageIndex, attr_chain, call_name
from repro.analysis.bindings import ImportBindings
from repro.analysis.findings import Finding

_TIME_FNS = {
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "clock_gettime", "process_time",
}
_DATETIME_FNS = {"now", "utcnow", "today"}
_RANDOM_DRAWS = {
    "random", "randint", "randrange", "uniform", "gauss", "choice",
    "choices", "sample", "getrandbits", "normalvariate",
}
_NP_RANDOM_DRAWS = {
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "permutation", "normal", "uniform", "standard_normal",
}

_LAUNCH_NAMES = {"launch", "cudaLaunchKernel"}
_SYNC_NAMES = {
    "cudaDeviceSynchronize", "cudaStreamSynchronize", "cudaEventSynchronize",
    "synchronize", "device_synchronize", "stream_synchronize", "sync",
}
_CHECKPOINT_NAMES = {"checkpoint", "precheckpoint", "on_precheckpoint"}
_CAPTURE_SINKS = {
    "add_blob", "add_region", "crc32", "adler32", "sha1", "sha256",
    "md5", "blake2b",
}
_MALLOC_NAMES = {
    "cudaMalloc", "cudaMallocManaged", "cudaMallocHost", "cudaHostAlloc",
    "malloc", "malloc_managed", "malloc_host", "host_alloc",
}
_STREAM_CREATE = {"cudaStreamCreate", "stream_create"}
_EVENT_CREATE = {"cudaEventCreate", "event_create"}
_DESTROY_NAMES = {
    "cudaStreamDestroy", "stream_destroy", "cudaEventDestroy", "event_destroy",
}
_CONTAINER_MUTATORS = {"append", "add", "extend", "insert", "setdefault"}


class _FunctionTaint:
    """Flow-ordered single-function walk."""

    def __init__(self, mod, bindings: ImportBindings, module_globals: set[str]):
        self.mod = mod
        self.bindings = bindings
        self.module_globals = module_globals
        self.findings: list[Finding] = []
        self.tainted: dict[str, str] = {}  # name -> source description
        self.devptrs: set[str] = set()
        self.handles: dict[str, str] = {}  # name -> "stream"/"event"
        self.destroyed: dict[str, str] = {}
        self.pending_launch: int | None = None
        self.in_destroy_impl = False

    # -- sources -------------------------------------------------------------

    def _source_of_call(self, node: ast.Call) -> str | None:
        """Nondeterminism-source description, or None."""
        chain = self.bindings.resolve(attr_chain(node.func))
        if not chain:
            return None
        tail = chain[-1]
        if chain[0] == "time" and len(chain) == 2 and tail in _TIME_FNS:
            return f"time.{tail}() wall clock"
        if tail in _DATETIME_FNS and len(chain) >= 2 and chain[-2] in (
            "datetime", "date",
        ):
            return f"{'.'.join(chain)}() wall clock"
        if chain[0] == "random" and len(chain) == 2 and tail in _RANDOM_DRAWS:
            return f"global random.{tail}() draw"
        if (
            len(chain) == 3
            and chain[0] == "numpy"
            and chain[1] == "random"
            and tail in _NP_RANDOM_DRAWS
        ):
            return f"global numpy.random.{tail}() draw"
        return None

    def _unseeded_rng(self, node: ast.Call) -> str | None:
        chain = self.bindings.resolve(attr_chain(node.func))
        ctor = ".".join(chain)
        if ctor in ("random.Random", "numpy.random.default_rng") and not (
            node.args or node.keywords
        ):
            return ctor
        return None

    def _expr_taint(self, node: ast.AST | None) -> str | None:
        """Source description if any part of the expression is tainted."""
        if node is None:
            return None
        for n in ast.walk(node):
            if isinstance(n, ast.Name) and n.id in self.tainted:
                return self.tainted[n.id]
            if isinstance(n, ast.Call):
                src = self._source_of_call(n)
                if src is not None:
                    return src
        return None

    def _is_devptr_expr(self, node: ast.AST | None) -> bool:
        if node is None:
            return False
        for n in ast.walk(node):
            if isinstance(n, ast.Call) and call_name(n) in _MALLOC_NAMES:
                return True
            if isinstance(n, ast.Name) and n.id in self.devptrs:
                return True
        return False

    def _add(self, rule: str, node: ast.AST, message: str) -> None:
        if self.mod.suppressed(node):
            return
        self.findings.append(
            Finding("taint", rule, self.mod.rel, node.lineno, message)
        )

    # -- statement walk ------------------------------------------------------

    def run(self, fn: ast.AST) -> list[Finding]:
        # A function named like a destroy op *is* the destroy
        # implementation: touching the handle after forwarding the
        # destroy (registry bookkeeping) is not a use-after-destroy.
        self.in_destroy_impl = "destroy" in fn.name.lower()
        self._walk_body(fn.body)
        return self.findings

    def _walk_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs analysed as their own functions
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._handle_assign(stmt)
            return
        # Scan this statement's own expressions in source order, then
        # recurse into nested bodies (if/for/while/with/try arms)
        # sequentially — a conservative linearisation of control flow.
        for node in ast.iter_child_nodes(stmt):
            if isinstance(node, ast.expr):
                self._scan_expr(node)
        for item in getattr(stmt, "items", ()):  # with-statement items
            self._scan_expr(item.context_expr)
        for attr in ("body", "orelse", "finalbody"):
            inner = getattr(stmt, attr, None)
            if isinstance(inner, list):
                self._walk_body(inner)
        for handler in getattr(stmt, "handlers", ()):
            self._walk_body(handler.body)

    def _handle_assign(self, stmt: ast.stmt) -> None:
        value = getattr(stmt, "value", None)
        self._scan_expr(value)
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        taint = self._expr_taint(value)
        if isinstance(stmt, ast.AugAssign):
            # x += tainted keeps x's prior taint too
            target = stmt.target
            if isinstance(target, ast.Name) and target.id in self.tainted:
                taint = taint or self.tainted[target.id]
        if isinstance(value, ast.Call):
            unseeded = self._unseeded_rng(value)
            if unseeded is not None:
                self._add(
                    "det/unseeded-rng", stmt,
                    f"{unseeded}() with no seed — OS-entropy seeded RNG "
                    "cannot replay; pass an explicit seed",
                )
        is_devptr = self._is_devptr_expr(value)
        for t in targets:
            if isinstance(t, ast.Name):
                if taint is not None:
                    self.tainted[t.id] = taint
                else:
                    self.tainted.pop(t.id, None)
                if is_devptr:
                    self.devptrs.add(t.id)
                else:
                    self.devptrs.discard(t.id)
                self.destroyed.pop(t.id, None)
                if isinstance(value, ast.Call):
                    cn = call_name(value)
                    if cn in _STREAM_CREATE:
                        self.handles[t.id] = "stream"
                    elif cn in _EVENT_CREATE:
                        self.handles[t.id] = "event"
            elif isinstance(t, ast.Subscript):
                self._check_subscript_escape(t, value, stmt)

    def _check_subscript_escape(self, target: ast.Subscript, value, stmt) -> None:
        chain = attr_chain(target.value)
        if (
            chain
            and chain[0] in self.module_globals
            and self._is_devptr_expr(value)
        ):
            self._add(
                "det/pointer-escape", stmt,
                f"device pointer stored into module-level container "
                f"{chain[0]!r} — restart rewrites the runtime registry but "
                "never patches module globals, so this address dangles "
                "after restore",
            )

    # -- expression scan (recursive; calls own their argument scan) ----------

    def _scan_expr(self, node: ast.AST | None) -> None:
        if node is None:
            return
        if isinstance(node, ast.Call):
            self._check_call(node)
            return
        if isinstance(node, ast.Name):
            self._check_name_use(node)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.expr, ast.keyword, ast.comprehension)):
                self._scan_expr_generic(child)

    def _scan_expr_generic(self, node: ast.AST) -> None:
        if isinstance(node, ast.keyword):
            self._scan_expr(node.value)
        elif isinstance(node, ast.comprehension):
            self._scan_expr(node.iter)
            for cond in node.ifs:
                self._scan_expr(cond)
        else:
            self._scan_expr(node)

    def _check_name_use(self, n: ast.Name) -> None:
        if isinstance(n.ctx, ast.Load) and n.id in self.destroyed:
            kind = self.destroyed.pop(n.id)  # one finding per stale handle
            self._add(
                "det/use-after-destroy", n,
                f"{kind} handle {n.id!r} used after its destroy call — "
                "replay would reference a handle the lower half already "
                "dropped",
            )

    def _check_call(self, node: ast.Call) -> None:
        name = call_name(node)
        if name in _DESTROY_NAMES and not self.in_destroy_impl:
            # The handle argument of the destroy call itself is not a
            # use-after-destroy; mark it destroyed for what follows.
            kind_hint = "stream" if "tream" in (name or "") else "event"
            for arg in node.args:
                if isinstance(arg, ast.Name):
                    self.destroyed[arg.id] = self.handles.get(arg.id, kind_hint)
                else:
                    self._scan_expr(arg)
            if isinstance(node.func, ast.Attribute):
                self._scan_expr(node.func.value)
            return
        if isinstance(node.func, ast.Attribute):
            self._scan_expr(node.func.value)
        for sub in node.args:
            self._scan_expr(sub)
        for kw in node.keywords:
            self._scan_expr(kw.value)
        if name in _LAUNCH_NAMES:
            taint = self._args_taint(node)
            if taint is not None:
                self._add(
                    "det/nondet-into-kernel", node,
                    f"kernel launch argument derives from {taint} — the "
                    "replayed launch computes different bytes than the "
                    "original run",
                )
            self.pending_launch = node.lineno
        elif name in _SYNC_NAMES:
            self.pending_launch = None
        elif name in _CHECKPOINT_NAMES:
            if self.pending_launch is not None:
                self._add(
                    "det/unsynced-launch", node,
                    f"checkpoint cut with a kernel launched at line "
                    f"{self.pending_launch} and no statically reachable "
                    "sync between them — the cut captures a stream with "
                    "undrained work",
                )
                self.pending_launch = None
        elif name in _CAPTURE_SINKS:
            taint = self._args_taint(node)
            if taint is not None:
                self._add(
                    "det/nondet-into-capture", node,
                    f"captured/digested value derives from {taint} — two "
                    "identical runs produce different image checksums",
                )
        elif name in _CONTAINER_MUTATORS:
            chain = attr_chain(node.func)
            if (
                len(chain) >= 2
                and chain[0] in self.module_globals
                and any(self._is_devptr_expr(a) for a in node.args)
            ):
                self._add(
                    "det/pointer-escape", node,
                    f"device pointer stored into module-level container "
                    f"{chain[0]!r} — restart rewrites the runtime registry "
                    "but never patches module globals, so this address "
                    "dangles after restore",
                )

    def _args_taint(self, node: ast.Call) -> str | None:
        for sub in list(node.args) + [kw.value for kw in node.keywords]:
            taint = self._expr_taint(sub)
            if taint is not None:
                return taint
        return None


def _module_globals(tree: ast.Module) -> set[str]:
    """Names bound at module scope to mutable containers."""
    out: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            value = stmt.value
            is_container = isinstance(
                value, (ast.Dict, ast.List, ast.Set)
            ) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in ("dict", "list", "set", "defaultdict")
            )
            if is_container:
                for t in stmt.targets:
                    if isinstance(t, ast.Name):
                        out.add(t.id)
    return out


def analyze(index: PackageIndex) -> list[Finding]:
    """Run the taint pass over every function of every module."""
    findings: list[Finding] = []
    for mod in index.modules.values():
        bindings = ImportBindings.collect(mod.tree)
        globals_ = _module_globals(mod.tree)
        for node in ast.walk(mod.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                walker = _FunctionTaint(mod, bindings, globals_)
                findings.extend(walker.run(node))
    return findings
