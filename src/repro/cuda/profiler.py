"""nvprof stand-in: CUDA call counting and calls-per-second (CPS).

The paper (§4.3) counts only *upper→lower* calls — calls the application
makes into the CUDA runtime — because those are the calls a checkpointing
architecture adds overhead to. One kernel launch generates three such
calls (``cudaPushCallConfiguration``, ``cudaPopCallConfiguration``,
``cudaLaunchKernel``), so::

    Total CUDA calls = 3 × count(cudaLaunchKernel) + count(rest of API)   (eq. 2)

The dispatch backends count push/pop explicitly, so the paper's formula
reduces to summing the counter; :meth:`Nvprof.total_calls_formula`
recomputes it the paper's way as a cross-check.

Restart semantics: a profiling window can span a checkpoint-restart cut.
:meth:`Nvprof.reattach` folds the window-so-far into a carried baseline
and rebases on the (possibly fresh) backend, so :meth:`Nvprof.report`
describes one continuous window; ``CracSession.restart`` calls
:meth:`Nvprof.on_restart` to do this automatically and to splice the
device timeline (a restart replaces the device objects, so the old
devices' traces would otherwise be lost). A counter that goes backwards
*without* a reattach is an error — ``report`` raises instead of silently
dropping the negative deltas.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.cuda.errors import CudaErrorCode, cuda_check
from repro.cuda.interface import CudaDispatchBase
from repro.gpu.timing import NS_PER_S


@dataclass
class ProfileReport:
    """Summary of one profiled run."""

    calls: Counter
    total_calls: int
    exec_time_s: float
    cps: float
    kernel_launches: int
    #: number of restart cuts folded into this window
    restarts: int = 0


@dataclass
class KernelStats:
    """Aggregate statistics of one kernel across a trace window."""

    name: str
    count: int
    total_ns: float

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0


@dataclass
class TimelineReport:
    """GPU-timeline summary (``nvprof --print-gpu-trace`` aggregate).

    ``span_ns`` is *splice-aware*: each contiguous trace segment (one per
    device generation — restarts and device resets start new segments)
    contributes ``max(end) - min(start)`` and the segments are summed,
    so restart downtime between segments never inflates the span and an
    empty or single-event segment stays well-defined.
    """

    span_ns: float
    kernel_busy_ns: float
    copy_busy_ns: float
    kernels: dict[str, KernelStats] = field(default_factory=dict)
    events: int = 0
    #: non-empty trace segments aggregated (0 = nothing recorded)
    segments: int = 0

    @property
    def kernel_utilization(self) -> float:
        """Fraction of the span with at least this much kernel time
        (total kernel-ns over span; >1 with concurrent kernels)."""
        return self.kernel_busy_ns / self.span_ns if self.span_ns else 0.0


class Nvprof:
    """Observes a dispatch backend and reports call counts and CPS."""

    def __init__(self, backend: CudaDispatchBase | None = None) -> None:
        self.backend = backend
        self._start_calls: Counter = Counter()
        self._start_ns = 0.0
        #: pre-restart window folded forward by :meth:`reattach`
        self._carried_calls: Counter = Counter()
        self._carried_ns = 0.0
        self._restarts = 0
        self._timeline_enabled = False
        #: completed device-trace segments from replaced device
        #: generations (spliced in by :meth:`on_restart`)
        self._trace_segments: list[list] = []

    def attach(self, backend: CudaDispatchBase) -> None:
        """(Re-)bind to a backend without opening a window."""
        self.backend = backend

    def start(self) -> None:
        """Begin a fresh profiling window (discards any carried state)."""
        self._carried_calls = Counter()
        self._carried_ns = 0.0
        self._restarts = 0
        self._start_calls = Counter(self.backend.call_counter)
        self._start_ns = self.backend.process.clock_ns

    def reattach(self, backend: CudaDispatchBase | None = None) -> None:
        """Fold the window-so-far into the carry and rebase the baseline.

        Call at a restart cut (or before anything else resets the
        backend's counter): the deltas accumulated since :meth:`start`
        are added to the carried totals, then the baseline snaps to the
        current (or new) backend state, so the window continues across
        the cut as one logical interval. Idempotent for an unchanged
        counter — folding a zero delta carries nothing.
        """
        if self.backend is not None:
            delta = Counter(self.backend.call_counter)
            delta.subtract(self._start_calls)
            # Only forward progress can be folded: increments between the
            # last fold and a counter reset are unobservable afterwards.
            self._carried_calls += Counter(
                {k: v for k, v in delta.items() if v > 0}
            )
            self._carried_ns += max(
                0.0, self.backend.process.clock_ns - self._start_ns
            )
        if backend is not None:
            self.backend = backend
        self._restarts += 1
        self._start_calls = Counter(self.backend.call_counter)
        self._start_ns = self.backend.process.clock_ns

    def on_restart(self, backend: CudaDispatchBase, old_devices=()) -> None:
        """Restart hook: splice the device timeline, then reattach.

        ``old_devices`` are the pre-restart device objects — the fresh
        lower half replaced them, so their recorded traces are archived
        as completed segments and tracing is re-enabled on the new
        devices (the satellite-2 fix: ``enable_timeline`` state used to
        die with the old runtime).
        """
        if self._timeline_enabled:
            merged = []
            for dev in old_devices:
                if dev.trace:
                    merged.extend(dev.trace)
            if merged:
                self._trace_segments.append(merged)
            for dev in backend.runtime.devices:
                if dev.trace is None:
                    dev.enable_trace()
        self.reattach(backend)

    def report(self) -> ProfileReport:
        """Summarize the (possibly spliced) window without closing it."""
        delta = Counter(self.backend.call_counter)
        delta.subtract(self._start_calls)
        negative = sorted(k for k, v in delta.items() if v < 0)
        cuda_check(
            not negative,
            CudaErrorCode.INVALID_VALUE,
            "call counter went backwards for "
            + ", ".join(negative)
            + " — the backend's counter was reset mid-window; call "
            "reattach() at the cut to carry the window forward",
        )
        calls = Counter({k: v for k, v in delta.items() if v > 0})
        calls += self._carried_calls
        exec_ns = (
            self.backend.process.clock_ns - self._start_ns
        ) + self._carried_ns
        total = sum(calls.values())
        exec_s = exec_ns / NS_PER_S
        return ProfileReport(
            calls=calls,
            total_calls=total,
            exec_time_s=exec_s,
            cps=total / exec_s if exec_s > 0 else 0.0,
            kernel_launches=calls.get("cudaLaunchKernel", 0),
            restarts=self._restarts,
        )

    # -- GPU timeline (nvprof --print-gpu-trace) -----------------------------

    def enable_timeline(self) -> None:
        """Start recording device-side kernel/copy events (all devices)."""
        self._timeline_enabled = True
        for dev in self.backend.runtime.devices:
            dev.enable_trace()

    def _trace_windows(self) -> list[list]:
        """Archived segments plus the live devices' traces, non-empty."""
        windows = [seg for seg in self._trace_segments if seg]
        live = []
        live_enabled = False
        for dev in self.backend.runtime.devices:
            if dev.trace is not None:
                live_enabled = True
                live.extend(dev.trace)
        cuda_check(
            live_enabled or bool(self._trace_segments),
            CudaErrorCode.INVALID_VALUE,
            "timeline not enabled; call enable_timeline()",
        )
        if live:
            windows.append(live)
        return windows

    def timeline_report(self) -> TimelineReport:
        """Aggregate the recorded timeline across all splice segments."""
        windows = self._trace_windows()
        if not windows:
            return TimelineReport(0.0, 0.0, 0.0, {}, 0, segments=0)
        span = 0.0
        kernels: dict[str, KernelStats] = {}
        kernel_busy = 0.0
        copy_busy = 0.0
        events = 0
        for window in windows:
            span += max(e.end_ns for e in window) - min(
                e.start_ns for e in window
            )
            events += len(window)
            for e in window:
                if e.kind == "kernel":
                    kernel_busy += e.duration_ns
                    ks = kernels.get(e.label)
                    if ks is None:
                        kernels[e.label] = KernelStats(e.label, 1, e.duration_ns)
                    else:
                        ks.count += 1
                        ks.total_ns += e.duration_ns
                else:
                    copy_busy += e.duration_ns
        return TimelineReport(
            span_ns=span,
            kernel_busy_ns=kernel_busy,
            copy_busy_ns=copy_busy,
            kernels=kernels,
            events=events,
            segments=len(windows),
        )

    def total_calls_formula(self, calls: Counter) -> int:
        """The paper's eq. 2, recomputed from launch counts: 3×launches +
        all other entry points (excluding the push/pop pair, which the
        3× factor accounts for)."""
        launches = calls.get("cudaLaunchKernel", 0)
        rest = sum(
            v
            for k, v in calls.items()
            if k
            not in (
                "cudaLaunchKernel",
                "cudaPushCallConfiguration",
                "cudaPopCallConfiguration",
            )
        )
        return 3 * launches + rest
