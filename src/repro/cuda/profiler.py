"""nvprof stand-in: CUDA call counting and calls-per-second (CPS).

The paper (§4.3) counts only *upper→lower* calls — calls the application
makes into the CUDA runtime — because those are the calls a checkpointing
architecture adds overhead to. One kernel launch generates three such
calls (``cudaPushCallConfiguration``, ``cudaPopCallConfiguration``,
``cudaLaunchKernel``), so::

    Total CUDA calls = 3 × count(cudaLaunchKernel) + count(rest of API)   (eq. 2)

The dispatch backends count push/pop explicitly, so the paper's formula
reduces to summing the counter; :meth:`Nvprof.total_calls_formula`
recomputes it the paper's way as a cross-check.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.cuda.errors import CudaErrorCode, cuda_check
from repro.cuda.interface import CudaDispatchBase
from repro.gpu.timing import NS_PER_S


@dataclass
class ProfileReport:
    """Summary of one profiled run."""

    calls: Counter
    total_calls: int
    exec_time_s: float
    cps: float
    kernel_launches: int


@dataclass
class KernelStats:
    """Aggregate statistics of one kernel across a trace window."""

    name: str
    count: int
    total_ns: float

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0


@dataclass
class TimelineReport:
    """GPU-timeline summary (``nvprof --print-gpu-trace`` aggregate)."""

    span_ns: float
    kernel_busy_ns: float
    copy_busy_ns: float
    kernels: dict[str, KernelStats]
    events: int

    @property
    def kernel_utilization(self) -> float:
        """Fraction of the span with at least this much kernel time
        (total kernel-ns over span; >1 with concurrent kernels)."""
        return self.kernel_busy_ns / self.span_ns if self.span_ns else 0.0


class Nvprof:
    """Observes a dispatch backend and reports call counts and CPS."""

    def __init__(self, backend: CudaDispatchBase) -> None:
        self.backend = backend
        self._start_calls: Counter = Counter()
        self._start_ns = 0.0

    def start(self) -> None:
        """Begin a profiling window."""
        self._start_calls = Counter(self.backend.call_counter)
        self._start_ns = self.backend.process.clock_ns

    def report(self) -> ProfileReport:
        """Close the window and summarize it."""
        calls = Counter(self.backend.call_counter)
        calls.subtract(self._start_calls)
        calls = Counter({k: v for k, v in calls.items() if v > 0})
        exec_ns = self.backend.process.clock_ns - self._start_ns
        total = sum(calls.values())
        exec_s = exec_ns / NS_PER_S
        return ProfileReport(
            calls=calls,
            total_calls=total,
            exec_time_s=exec_s,
            cps=total / exec_s if exec_s > 0 else 0.0,
            kernel_launches=calls.get("cudaLaunchKernel", 0),
        )

    # -- GPU timeline (nvprof --print-gpu-trace) -----------------------------

    def enable_timeline(self) -> None:
        """Start recording device-side kernel/copy events."""
        self.backend.runtime.device.enable_trace()

    def timeline_report(self) -> TimelineReport:
        """Aggregate the recorded timeline."""
        trace = self.backend.runtime.device.trace
        cuda_check(
            trace is not None,
            CudaErrorCode.INVALID_VALUE,
            "timeline not enabled; call enable_timeline()",
        )
        if not trace:
            return TimelineReport(0.0, 0.0, 0.0, {}, 0)
        span = max(e.end_ns for e in trace) - min(e.start_ns for e in trace)
        kernels: dict[str, KernelStats] = {}
        kernel_busy = 0.0
        copy_busy = 0.0
        for e in trace:
            if e.kind == "kernel":
                kernel_busy += e.duration_ns
                ks = kernels.get(e.label)
                if ks is None:
                    kernels[e.label] = KernelStats(e.label, 1, e.duration_ns)
                else:
                    ks.count += 1
                    ks.total_ns += e.duration_ns
            else:
                copy_busy += e.duration_ns
        return TimelineReport(
            span_ns=span,
            kernel_busy_ns=kernel_busy,
            copy_busy_ns=copy_busy,
            kernels=kernels,
            events=len(trace),
        )

    def total_calls_formula(self, calls: Counter) -> int:
        """The paper's eq. 2, recomputed from launch counts: 3×launches +
        all other entry points (excluding the push/pop pair, which the
        3× factor accounts for)."""
        launches = calls.get("cudaLaunchKernel", 0)
        rest = sum(
            v
            for k, v in calls.items()
            if k
            not in (
                "cudaLaunchKernel",
                "cudaPushCallConfiguration",
                "cudaPopCallConfiguration",
            )
        )
        return 3 * launches + rest
