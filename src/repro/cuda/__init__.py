"""The CUDA runtime library stand-in ("libcuda" of Figure 1).

:class:`~repro.cuda.api.CudaRuntime` is the closed-source CUDA library of
the paper: it owns the deterministic allocation arenas, the stream/event
registries, the fat-binary registration table, UVM state, and *opaque
internal state entangled with the driver* — the thing that made
destroy-and-restore checkpointing impossible after CUDA 4.0 (§2.2).

Apps never call the runtime directly; they go through a *dispatch
backend* (:mod:`repro.cuda.interface`) which models where the runtime
lives relative to the application:

- native: same library, ordinary call (baseline timing);
- CRAC: upper→lower trampoline (:mod:`repro.core.trampoline`);
- proxy: cross-process marshalling (:mod:`repro.proxy`).
"""

from repro.cuda.api import CudaRuntime, FatBinary
from repro.cuda.cublas import CuBlas
from repro.cuda.errors import CudaErrorCode
from repro.cuda.interface import CudaDispatchBase, NativeBackend
from repro.cuda.profiler import Nvprof

__all__ = [
    "CudaRuntime",
    "FatBinary",
    "CudaErrorCode",
    "CudaDispatchBase",
    "NativeBackend",
    "CuBlas",
    "Nvprof",
]
