"""cuBLAS stand-in: Sdot, Sgemv, Sgemm (the Table 3 microbenchmarks).

The cuBLAS library resides in the lower half; the upper-half application
calls it through the same dispatch boundary as the runtime API (one
upper→lower call per BLAS routine; the kernel launches it performs
internally are library-internal and are *not* upper-half calls). This is
exactly the structure of the paper's §4.4.4 experiment: under CRAC the
call is a trampoline with direct pointer passing; under a proxy, the
vector/matrix buffers must cross the process boundary via CMA.

Routines compute real results (numpy) when ``compute=True``; the Table 3
timing loops run with ``compute=False`` so that 10,000-iteration sweeps
over 100 MB operands stay fast — virtual-time costs are identical either
way because kernel durations come from the roofline model.
"""

from __future__ import annotations

import numpy as np

from repro.cuda.api import FatBinary
from repro.cuda.interface import CudaDispatchBase

#: cuBLAS's own device code, registered once per library instance.
CUBLAS_FATBIN = FatBinary(
    name="libcublas.fatbin",
    kernels=("cublas_sdot_kernel", "cublas_sgemv_kernel", "cublas_sgemm_kernel"),
)


class CuBlas:
    """Handle to the lower-half cuBLAS library (``cublasCreate``)."""

    def __init__(self, backend: CudaDispatchBase) -> None:
        self.backend = backend
        # The library registers its own fat binary with the runtime
        # (library-internal: no upper-half dispatch).
        runtime = backend.runtime
        handle = runtime.cudaRegisterFatBinary(CUBLAS_FATBIN)
        for k in CUBLAS_FATBIN.kernels:
            runtime.cudaRegisterFunction(handle, k)
        self._fatbin_handle = handle

    # -- helpers ------------------------------------------------------------

    def _call(self, name: str, kernel: str, *, flop: float, bytes_touched: float,
              inputs: tuple[int, ...], outputs: tuple[int, ...] = (),
              fn=None, args=()) -> None:
        """One BLAS routine: one upper→lower call, one internal kernel.

        ``inputs``/``outputs`` are the device operands a proxy dispatcher
        would have to ship across the process boundary (Table 3's CMA
        benchmark: operands in, results back).
        """
        backend = self.backend
        backend._dispatch(name, payload_bytes=64, ship_in=inputs, ship_out=outputs)
        backend.runtime.cudaLaunchKernel(
            kernel, fn, args=args, flop=flop, bytes_touched=bytes_touched
        )
        # BLAS routines are blocking in the paper's timing loops.
        backend.runtime.cudaDeviceSynchronize()

    # -- routines --------------------------------------------------------------

    def sdot(self, x_ptr: int, y_ptr: int, n: int, *, compute: bool = False) -> float:
        """Inner product of two device vectors of ``n`` float32 elements."""
        result = [0.0]
        fn = None
        if compute:
            rt = self.backend.runtime

            def fn():
                x = rt.device_view(x_ptr, 4 * n, np.float32)
                y = rt.device_view(y_ptr, 4 * n, np.float32)
                result[0] = float(x @ y)

        self._call(
            "cublasSdot",
            "cublas_sdot_kernel",
            flop=2.0 * n,
            bytes_touched=8.0 * n,
            inputs=(x_ptr, y_ptr),
            fn=fn,
        )
        return result[0]

    def sgemv(
        self, a_ptr: int, x_ptr: int, y_ptr: int, m: int, n: int, *, compute: bool = False
    ) -> None:
        """y ← A·x for an m×n float32 device matrix."""
        fn = None
        if compute:
            rt = self.backend.runtime

            def fn():
                a = rt.device_view(a_ptr, 4 * m * n, np.float32).reshape(m, n)
                x = rt.device_view(x_ptr, 4 * n, np.float32)
                y = rt.device_view(y_ptr, 4 * m, np.float32)
                y[:] = a @ x

        self._call(
            "cublasSgemv",
            "cublas_sgemv_kernel",
            flop=2.0 * m * n,
            bytes_touched=4.0 * (m * n + n + m),
            inputs=(a_ptr, x_ptr),
            outputs=(y_ptr,),
            fn=fn,
        )

    def sgemm(
        self,
        a_ptr: int,
        b_ptr: int,
        c_ptr: int,
        m: int,
        n: int,
        k: int,
        *,
        compute: bool = False,
    ) -> None:
        """C ← A·B for float32 device matrices (A: m×k, B: k×n)."""
        fn = None
        if compute:
            rt = self.backend.runtime

            def fn():
                a = rt.device_view(a_ptr, 4 * m * k, np.float32).reshape(m, k)
                b = rt.device_view(b_ptr, 4 * k * n, np.float32).reshape(k, n)
                c = rt.device_view(c_ptr, 4 * m * n, np.float32).reshape(m, n)
                c[:] = a @ b

        self._call(
            "cublasSgemm",
            "cublas_sgemm_kernel",
            flop=2.0 * m * n * k,
            bytes_touched=4.0 * (m * k + k * n + 2 * m * n),
            inputs=(a_ptr, b_ptr),
            outputs=(c_ptr,),
            fn=fn,
        )
