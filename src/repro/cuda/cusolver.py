"""cuSolver stand-in (dense factorizations).

The paper's conclusion (§6) notes that the real-world applications
already pull in cuBLAS and cuSolver, and that CRAC "can easily be
extended to support other CUDA libraries" — the extension is exactly
this module: another lower-half library whose entry points are reached
through the same dispatch boundary, whose device code registers its own
fat binary, and whose calls therefore inherit CRAC's checkpoint/restart
support with no new mechanism.

Implemented routines (all float32, like the cuSOLVER "S" variants):

- ``potrf``  — Cholesky factorization of an SPD matrix (in place);
- ``getrf``  — LU factorization with partial pivoting (in place + pivots);
- ``geqrf``  — QR factorization (Householder; returns packed R with Q
  applied into a separate tau-less explicit-Q buffer for simplicity).
"""

from __future__ import annotations

import numpy as np

from repro.cuda.errors import CudaErrorCode, cuda_error
from repro.cuda.api import FatBinary
from repro.cuda.interface import CudaDispatchBase

CUSOLVER_FATBIN = FatBinary(
    name="libcusolver.fatbin",
    kernels=("cusolver_potrf_kernel", "cusolver_getrf_kernel",
             "cusolver_geqrf_kernel"),
)


class CuSolverDn:
    """Handle to the lower-half cuSolver dense library."""

    def __init__(self, backend: CudaDispatchBase) -> None:
        self.backend = backend
        runtime = backend.runtime
        handle = runtime.cudaRegisterFatBinary(CUSOLVER_FATBIN)
        for k in CUSOLVER_FATBIN.kernels:
            runtime.cudaRegisterFunction(handle, k)
        self._fatbin_handle = handle

    def _call(self, name: str, kernel: str, *, flop: float, nbytes: float,
              operands: tuple[int, ...], outputs: tuple[int, ...] = (),
              fn=None) -> None:
        backend = self.backend
        backend._dispatch(name, payload_bytes=96, ship_in=operands,
                          ship_out=outputs or operands)
        backend.runtime.cudaLaunchKernel(
            kernel, fn, flop=flop, bytes_touched=nbytes
        )
        backend.runtime.cudaDeviceSynchronize()

    def _matrix(self, a_ptr: int, n: int, m: int | None = None) -> np.ndarray:
        m = n if m is None else m
        return self.backend.runtime.device_view(
            a_ptr, 4 * n * m, np.float32
        ).reshape(n, m)

    # -- routines ----------------------------------------------------------

    def potrf(self, a_ptr: int, n: int, *, compute: bool = True) -> None:
        """In-place lower-triangular Cholesky of an n×n SPD matrix."""

        def fn():
            a = self._matrix(a_ptr, n)
            try:
                a[:] = np.tril(np.linalg.cholesky(a.astype(np.float64)))
            except np.linalg.LinAlgError as e:
                # Non-SPD input is a deterministic data condition, not a
                # device failure: program severity, no recovery rung.
                raise cuda_error(
                    CudaErrorCode.INVALID_VALUE, f"cusolverDnSpotrf: {e}"
                ) from e

        self._call(
            "cusolverDnSpotrf", "cusolver_potrf_kernel",
            flop=n**3 / 3.0, nbytes=4.0 * n * n,
            operands=(a_ptr,), fn=fn if compute else None,
        )

    def getrf(self, a_ptr: int, piv_ptr: int, n: int, *, compute: bool = True) -> None:
        """In-place LU with partial pivoting; pivot indices (int32) are
        written to ``piv_ptr``."""

        def fn():
            a = self._matrix(a_ptr, n)
            piv = self.backend.runtime.device_view(piv_ptr, 4 * n, np.int32)
            lu = a.astype(np.float64)
            p = np.arange(n)
            for k in range(n - 1):
                imax = k + int(np.argmax(np.abs(lu[k:, k])))
                if imax != k:
                    lu[[k, imax]] = lu[[imax, k]]
                    p[[k, imax]] = p[[imax, k]]
                if abs(lu[k, k]) < 1e-30:
                    raise cuda_error(
                        CudaErrorCode.INVALID_VALUE,
                        "cusolverDnSgetrf: singular matrix",
                    )
                lu[k + 1 :, k] /= lu[k, k]
                lu[k + 1 :, k + 1 :] -= np.outer(lu[k + 1 :, k], lu[k, k + 1 :])
            a[:] = lu
            piv[:] = p.astype(np.int32)

        self._call(
            "cusolverDnSgetrf", "cusolver_getrf_kernel",
            flop=2.0 * n**3 / 3.0, nbytes=4.0 * n * n,
            operands=(a_ptr,), outputs=(a_ptr, piv_ptr),
            fn=fn if compute else None,
        )

    def geqrf(self, a_ptr: int, q_ptr: int, n: int, m: int, *, compute: bool = True) -> None:
        """QR of an n×m matrix: R (upper triangular) replaces A, the
        explicit Q is written to ``q_ptr`` (n×n)."""

        def fn():
            a = self._matrix(a_ptr, n, m)
            qbuf = self._matrix(q_ptr, n, n)
            q, r = np.linalg.qr(a.astype(np.float64), mode="complete")
            a[:] = np.zeros_like(a)
            a[: min(n, m), :] = r[: min(n, m), :]
            qbuf[:] = q

        self._call(
            "cusolverDnSgeqrf", "cusolver_geqrf_kernel",
            flop=2.0 * n * m * m, nbytes=4.0 * (n * m + n * n),
            operands=(a_ptr,), outputs=(a_ptr, q_ptr),
            fn=fn if compute else None,
        )
