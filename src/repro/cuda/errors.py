"""``cudaError_t`` codes and error raising helpers."""

from __future__ import annotations

import enum

from repro.errors import CudaError


class CudaErrorCode(enum.Enum):
    """Subset of cudaError_t values the simulation can produce."""

    SUCCESS = 0
    MEMORY_ALLOCATION = 2
    INITIALIZATION_ERROR = 3
    INVALID_VALUE = 11
    INVALID_DEVICE_POINTER = 17
    LIBRARY_STATE_INCONSISTENT = 999  # simulation-specific: post-restore UVA mismatch
    NOT_SUPPORTED = 801
    LAUNCH_FAILURE = 719


def cuda_check(ok: bool, code: CudaErrorCode, msg: str) -> None:
    """Raise :class:`~repro.errors.CudaError` carrying ``code`` if not ok."""
    if not ok:
        err = CudaError(f"{code.name}: {msg}")
        err.code = code  # type: ignore[attr-defined]
        raise err
