"""``cudaError_t`` codes, the recovery-severity taxonomy, and helpers.

The fault domain (``core/session.py``) needs to know, for every error
the runtime can produce, which recovery rung is worth trying:

- **retryable** — transient transport faults (a corrupted PCIe/UVM
  transfer caught by CRC, a UVM fault storm): re-issuing the call is
  safe and usually succeeds;
- **sticky** — the issuing stream is poisoned (hung kernel, stalled
  copy engine, launch failure): no call on that stream can make
  progress until the stream is reset and its unsynchronized ops are
  replayed;
- **fatal** — the device/context is gone (uncorrectable ECC, lost
  device, irreconcilable library state): only a device reset plus
  restore from a checkpoint can continue the job;
- **program** — deterministic API misuse (bad pointer, bad value,
  unsupported feature, true OOM): retrying reproduces the same error,
  so the ladder surfaces it to the application unchanged.

Codes with real ``cudaError_t`` values use them (e.g. 214 is
``cudaErrorECCUncorrectable``, 702 is ``cudaErrorLaunchTimeout``);
simulation-specific conditions take values ≥ 990.
"""

from __future__ import annotations

import enum

from repro.errors import CudaError


class CudaErrorCode(enum.Enum):
    """Subset of cudaError_t values the simulation can produce."""

    SUCCESS = 0
    MEMORY_ALLOCATION = 2
    INITIALIZATION_ERROR = 3
    INVALID_VALUE = 11
    INVALID_DEVICE_POINTER = 17
    DEVICES_UNAVAILABLE = 46
    ECC_UNCORRECTABLE = 214
    LAUNCH_TIMEOUT = 702
    LAUNCH_FAILURE = 719
    NOT_SUPPORTED = 801
    LIBRARY_STATE_INCONSISTENT = 999  # simulation-specific: post-restore UVA mismatch
    # -- simulation-specific runtime fault conditions (≥ 990) --
    SERVE_ADMISSION_REJECTED = 990
    SERVE_SESSION_EVICTED = 991
    SERVE_DEADLINE_EXCEEDED = 992
    HEARTBEAT_LOST = 993
    STREAM_STALLED = 994
    TRANSFER_CRC_MISMATCH = 995
    UVM_FAULT_STORM = 996


class ErrorSeverity(enum.Enum):
    """Recovery classification of a ``cudaError_t`` (module docstring)."""

    RETRYABLE = "retryable"
    STICKY = "sticky"
    FATAL = "fatal"
    PROGRAM = "program"


#: Severity of every producible code. Unlisted/unknown codes classify as
#: FATAL: when the runtime cannot tell what broke, assuming the device is
#: lost is the only classification that still guarantees recovery.
SEVERITY: dict[CudaErrorCode, ErrorSeverity] = {
    CudaErrorCode.MEMORY_ALLOCATION: ErrorSeverity.PROGRAM,
    CudaErrorCode.INITIALIZATION_ERROR: ErrorSeverity.FATAL,
    CudaErrorCode.INVALID_VALUE: ErrorSeverity.PROGRAM,
    CudaErrorCode.INVALID_DEVICE_POINTER: ErrorSeverity.PROGRAM,
    CudaErrorCode.DEVICES_UNAVAILABLE: ErrorSeverity.FATAL,
    CudaErrorCode.ECC_UNCORRECTABLE: ErrorSeverity.FATAL,
    CudaErrorCode.LAUNCH_TIMEOUT: ErrorSeverity.STICKY,
    CudaErrorCode.LAUNCH_FAILURE: ErrorSeverity.STICKY,
    CudaErrorCode.NOT_SUPPORTED: ErrorSeverity.PROGRAM,
    CudaErrorCode.LIBRARY_STATE_INCONSISTENT: ErrorSeverity.FATAL,
    # Serve-tier conditions (repro.serve): admission rejection is
    # backpressure (retry after backoff is exactly the right response),
    # an evicted session heals by rehydration + re-issue (retryable),
    # and a missed deadline is deterministic — no recovery rung can
    # un-miss it, so the ladder surfaces it like API misuse.
    CudaErrorCode.SERVE_ADMISSION_REJECTED: ErrorSeverity.RETRYABLE,
    CudaErrorCode.SERVE_SESSION_EVICTED: ErrorSeverity.RETRYABLE,
    CudaErrorCode.SERVE_DEADLINE_EXCEEDED: ErrorSeverity.PROGRAM,
    CudaErrorCode.HEARTBEAT_LOST: ErrorSeverity.FATAL,
    CudaErrorCode.STREAM_STALLED: ErrorSeverity.STICKY,
    CudaErrorCode.TRANSFER_CRC_MISMATCH: ErrorSeverity.RETRYABLE,
    CudaErrorCode.UVM_FAULT_STORM: ErrorSeverity.RETRYABLE,
}


def classify(code: CudaErrorCode) -> ErrorSeverity:
    """Severity of ``code`` (unknown codes classify as FATAL)."""
    return SEVERITY.get(code, ErrorSeverity.FATAL)


def cuda_error(
    code: CudaErrorCode, msg: str, *, stream_sid: int | None = None
) -> CudaError:
    """Build a classified :class:`~repro.errors.CudaError` for ``code``."""
    return CudaError(
        f"{code.name}: {msg}", code=code, severity=classify(code),
        stream_sid=stream_sid,
    )


def cuda_check(ok: bool, code: CudaErrorCode, msg: str) -> None:
    """Raise a classified :class:`~repro.errors.CudaError` if not ok."""
    if not ok:
        raise cuda_error(code, msg)
