"""Dispatch backends: the app-facing CUDA API surface.

Applications never hold a :class:`~repro.cuda.api.CudaRuntime` directly;
they call a *dispatch backend* modelling where the CUDA library lives:

- :class:`NativeBackend` — ordinary dynamic-linker call into the library
  (the paper's "native" baseline);
- :class:`repro.core.trampoline.CracBackend` — CRAC's upper→lower
  trampoline with fs-register switches and cudaMalloc-family logging;
- :class:`repro.proxy.proxy_runtime.NaiveProxyBackend` /
  :class:`repro.proxy.crum.CrumBackend` — cross-process marshalling.

Each backend charges its own per-call dispatch cost and counts
upper→lower calls. A kernel launch counts as **three** calls
(``cudaPushCallConfiguration`` + ``cudaPopCallConfiguration`` +
``cudaLaunchKernel``) exactly as in the paper's Total-CUDA-calls formula
(§4.3, eq. 2); the profiler just sums the counter.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.cuda.api import CudaRuntime, FatBinary, ManagedUse
from repro.gpu.streams import Event, Stream
from repro.gpu.timing import DEFAULT_HOST_COSTS, HostCosts

#: Size of the marshalled argument block of one kernel launch (grid/block
#: dims + parameter buffer) — what a proxy must ship per launch.
LAUNCH_ARG_BYTES = 256


class CudaDispatchBase:
    """Shared implementation of the app-facing API.

    Subclasses implement :meth:`_charge_call` (per-call dispatch cost) and
    may hook individual methods (CRAC logs the cudaMalloc family; proxies
    ship buffers).
    """

    mode = "abstract"

    def __init__(
        self, runtime: CudaRuntime, host_costs: HostCosts = DEFAULT_HOST_COSTS
    ) -> None:
        self.runtime = runtime
        self.process = runtime.process
        self.costs = host_costs
        self.call_counter: Counter[str] = Counter()
        self._prepaid_depth = 0
        #: repro.trace.Tracer receiving API call spans; None = untraced
        self.tracer = None
        #: the host thread currently issuing CUDA calls (None = main).
        #: Multi-threaded CUDA apps — "each thread employs a separate
        #: CUDA stream" (paper §6) — set this via use_thread(); CRAC's
        #: trampoline switches that thread's fs register.
        self.current_thread = None
        #: fault-domain ladder (:class:`repro.core.session.FaultDomain`)
        #: guarding runtime calls, or None (faults propagate raw).
        self.recovery = None

    def _invoke(self, kind: str, thunk, *, sync_scope=None):
        """Run one runtime call through the fault-domain ladder.

        ``kind`` is ``"kernel"``/``"copy"``/``"sync"``; ``sync_scope``
        names what a sync drains (a Stream or ``"device"``) so the
        watchdog can pre-check for hung work before blocking on it.
        With no fault domain attached this is a plain call.
        """
        if self.recovery is None:
            return thunk()
        return self.recovery.run(kind, thunk, sync_scope=sync_scope)

    # -- cost hook -------------------------------------------------------------

    def _charge_call(
        self,
        name: str,
        *,
        payload_bytes: int = 0,
        ship_in: Sequence[int] = (),
        ship_out: Sequence[int] = (),
    ) -> None:
        """Charge the dispatch cost of one upper→lower call.

        ``ship_in``/``ship_out`` name device buffers whose *contents* a
        proxy-based dispatcher must move across the process boundary
        (inputs before the call, outputs after). Single-address-space
        dispatchers pass pointers directly and ignore them (§3.1).
        """
        raise NotImplementedError

    def _dispatch(
        self,
        name: str,
        *,
        payload_bytes: int = 0,
        ship_in: Sequence[int] = (),
        ship_out: Sequence[int] = (),
    ) -> None:
        if self._prepaid_depth:
            return  # cost and count were accounted in aggregate already
        self.call_counter[name] += 1
        tracer = self.tracer
        if tracer is None:
            self._charge_call(
                name, payload_bytes=payload_bytes, ship_in=ship_in, ship_out=ship_out
            )
            return
        t0 = self.process.clock_ns
        self._charge_call(
            name, payload_bytes=payload_bytes, ship_in=ship_in, ship_out=ship_out
        )
        t1 = self.process.clock_ns
        tracer.on_api_call(
            name, t0, t1, trampoline_ns=self._trampoline_ns(t1 - t0), mode=self.mode
        )

    def _dispatch_batch(
        self, calls: Sequence[tuple[str, int, Sequence[int], Sequence[int]]]
    ) -> None:
        """Dispatch several upper→lower calls issued back-to-back.

        ``calls`` is a sequence of ``(name, payload_bytes, ship_in,
        ship_out)`` tuples. Counting and cost are identical to calling
        :meth:`_dispatch` once per entry — batching only lets a backend
        charge the aggregate cost without re-entering its per-call
        bookkeeping (Python overhead, not virtual time). The traced path
        falls back to per-call dispatch so every call keeps its own span.
        """
        if self._prepaid_depth:
            return
        if self.tracer is not None:
            for name, payload, ship_in, ship_out in calls:
                self._dispatch(
                    name, payload_bytes=payload,
                    ship_in=ship_in, ship_out=ship_out,
                )
            return
        counter = self.call_counter
        for name, _, _, _ in calls:
            counter[name] += 1
        self._charge_batch(calls)

    def _charge_batch(
        self, calls: Sequence[tuple[str, int, Sequence[int], Sequence[int]]]
    ) -> None:
        """Charge a batch of calls; default loops :meth:`_charge_call`
        so backends with per-call side effects (proxies shipping buffer
        contents) stay exact without opting in."""
        for name, payload, ship_in, ship_out in calls:
            self._charge_call(
                name, payload_bytes=payload, ship_in=ship_in, ship_out=ship_out
            )

    def _trampoline_ns(self, dispatch_ns: float) -> float:
        """Dispatch cost beyond a bare library call, for trace attribution
        (overridden by CRAC's trampoline backend)."""
        return 0.0

    @contextmanager
    def use_thread(self, thread):
        """Issue the enclosed CUDA calls from ``thread`` (a SimThread)."""
        prev = self.current_thread
        self.current_thread = thread
        try:
            yield
        finally:
            self.current_thread = prev

    @contextmanager
    def prepaid_calls(self):
        """Suppress per-call cost/count accounting inside the block.

        Used when a loop was fast-forwarded (its calls' time and counts
        were extrapolated in aggregate) but the *state effects* of some
        of those calls — e.g. cudaMalloc/cudaFree churn that must appear
        in CRAC's replay log — still need to be produced for real.
        """
        self._prepaid_depth += 1
        try:
            yield
        finally:
            self._prepaid_depth -= 1

    @property
    def total_calls(self) -> int:
        """Total upper→lower CUDA calls (launches already count ×3)."""
        return sum(self.call_counter.values())

    def note_external_calls(self, calls: Counter, repeats: int = 1) -> None:
        """Account calls whose cost was already measured (fast-forwarded
        steady-state iterations; see apps.base.TimedLoop)."""
        for name, n in calls.items():
            self.call_counter[name] += n * repeats

    # -- memory ----------------------------------------------------------------

    def malloc(self, nbytes: int) -> int:
        """cudaMalloc: allocate device memory."""
        self._dispatch("cudaMalloc", payload_bytes=16)
        return self.runtime.cudaMalloc(nbytes)

    def free(self, addr: int) -> None:
        """cudaFree: release device (or managed) memory."""
        self._dispatch("cudaFree", payload_bytes=8)
        self.runtime.cudaFree(addr)

    def malloc_host(self, nbytes: int) -> int:
        """cudaMallocHost: allocate pinned host memory."""
        self._dispatch("cudaMallocHost", payload_bytes=16)
        return self.runtime.cudaMallocHost(nbytes)

    def host_alloc(self, nbytes: int, flags: int = 0) -> int:
        """cudaHostAlloc: allocate pinned host memory (re-registered, not replayed, at restart)."""
        self._dispatch("cudaHostAlloc", payload_bytes=16)
        return self.runtime.cudaHostAlloc(nbytes, flags)

    def free_host(self, addr: int) -> None:
        """cudaFreeHost: release pinned host memory."""
        self._dispatch("cudaFreeHost", payload_bytes=8)
        self.runtime.cudaFreeHost(addr)

    def malloc_managed(self, nbytes: int) -> int:
        """cudaMallocManaged: allocate UVM managed memory."""
        self._dispatch("cudaMallocManaged", payload_bytes=16)
        return self.runtime.cudaMallocManaged(nbytes)

    def memcpy(
        self,
        dst,
        src,
        nbytes: int,
        kind: str,
        *,
        stream: Stream | None = None,
        async_: bool = False,
        dst_offset: int = 0,
        src_offset: int = 0,
    ) -> None:
        """cudaMemcpy(Async): copy between host and device ends."""
        name = "cudaMemcpyAsync" if async_ else "cudaMemcpy"
        # Host-side payload crosses the dispatch boundary for h2d/d2h.
        payload = nbytes if kind in ("h2d", "d2h") else 32
        self._dispatch(name, payload_bytes=payload)
        self._invoke("copy", lambda: self.runtime.cudaMemcpy(
            dst,
            src,
            nbytes,
            kind,
            stream=stream,
            async_=async_,
            dst_offset=dst_offset,
            src_offset=src_offset,
        ))

    def memset(
        self,
        addr: int,
        value: int,
        nbytes: int,
        *,
        stream: Stream | None = None,
        async_: bool = False,
    ) -> None:
        """cudaMemset(Async): fill a buffer with a byte value."""
        self._dispatch("cudaMemsetAsync" if async_ else "cudaMemset", payload_bytes=24)
        self._invoke("copy", lambda: self.runtime.cudaMemset(
            addr, value, nbytes, stream=stream, async_=async_
        ))

    # -- kernels ------------------------------------------------------------------

    def launch(
        self,
        name: str,
        fn: Callable[..., None] | None = None,
        *,
        args: Sequence = (),
        flop: float = 0.0,
        bytes_touched: float = 0.0,
        stream: Stream | None = None,
        managed: Iterable[ManagedUse] = (),
        duration_ns: float | None = None,
        arg_bytes: int = LAUNCH_ARG_BYTES,
    ) -> float:
        """Launch a kernel. Counts as three upper→lower calls (eq. 2)."""
        managed = list(managed)
        ship = self._launch_ship_buffers(managed)
        self._dispatch_batch((
            ("cudaPushCallConfiguration", 32, (), ()),
            ("cudaPopCallConfiguration", 32, (), ()),
            ("cudaLaunchKernel", arg_bytes, ship, ship),
        ))
        return self._invoke("kernel", lambda: self.runtime.cudaLaunchKernel(
            name,
            fn,
            args=args,
            flop=flop,
            bytes_touched=bytes_touched,
            stream=stream,
            managed=managed,
            duration_ns=duration_ns,
        ))

    def _launch_ship_buffers(self, managed: Iterable[ManagedUse]) -> Sequence[int]:
        """Buffers a (naive) proxy would have to ship for this launch; the
        single-address-space backends ship nothing."""
        return ()

    # -- streams ------------------------------------------------------------------

    def stream_create(self) -> Stream:
        """cudaStreamCreate on the current device."""
        self._dispatch("cudaStreamCreate", payload_bytes=8)
        return self.runtime.cudaStreamCreate()

    def stream_destroy(self, stream: Stream) -> None:
        """cudaStreamDestroy."""
        self._dispatch("cudaStreamDestroy", payload_bytes=8)
        self.runtime.cudaStreamDestroy(stream)

    def stream_synchronize(self, stream: Stream | None = None) -> None:
        """cudaStreamSynchronize: block until the stream drains."""
        self._dispatch("cudaStreamSynchronize", payload_bytes=8)
        self._invoke(
            "sync", lambda: self.runtime.cudaStreamSynchronize(stream),
            sync_scope=stream if stream is not None else "device",
        )

    def device_synchronize(self) -> None:
        """cudaDeviceSynchronize: block until the current GPU drains."""
        self._dispatch("cudaDeviceSynchronize", payload_bytes=0)
        self._invoke(
            "sync", lambda: self.runtime.cudaDeviceSynchronize(),
            sync_scope="device",
        )

    # -- events --------------------------------------------------------------------

    def event_create(self) -> Event:
        """cudaEventCreate."""
        self._dispatch("cudaEventCreate", payload_bytes=8)
        return self.runtime.cudaEventCreate()

    def event_destroy(self, event: Event) -> None:
        """cudaEventDestroy."""
        self._dispatch("cudaEventDestroy", payload_bytes=8)
        self.runtime.cudaEventDestroy(event)

    def event_record(self, event: Event, stream: Stream | None = None) -> None:
        """cudaEventRecord into a stream."""
        self._dispatch("cudaEventRecord", payload_bytes=16)
        self.runtime.cudaEventRecord(event, stream)

    def event_synchronize(self, event: Event) -> None:
        """cudaEventSynchronize: block until the event completes."""
        self._dispatch("cudaEventSynchronize", payload_bytes=8)
        self._invoke(
            "sync", lambda: self.runtime.cudaEventSynchronize(event),
            sync_scope="device",
        )

    def event_elapsed_ms(self, start: Event, end: Event) -> float:
        """cudaEventElapsedTime in milliseconds."""
        self._dispatch("cudaEventElapsedTime", payload_bytes=16)
        return self.runtime.cudaEventElapsedTime(start, end)

    def stream_wait_event(self, stream: Stream, event: Event) -> None:
        """cudaStreamWaitEvent: order future stream work after the event."""
        self._dispatch("cudaStreamWaitEvent", payload_bytes=16)
        self.runtime.cudaStreamWaitEvent(stream, event)

    # -- fat binaries ------------------------------------------------------------------

    def register_fatbin(self, fatbin: FatBinary) -> int:
        """__cudaRegisterFatBinary: returns a registration handle."""
        self._dispatch("__cudaRegisterFatBinary", payload_bytes=4096)
        return self.runtime.cudaRegisterFatBinary(fatbin)

    def register_function(self, handle: int, kernel_name: str) -> None:
        """__cudaRegisterFunction: register one device function."""
        self._dispatch("__cudaRegisterFunction", payload_bytes=64)
        self.runtime.cudaRegisterFunction(handle, kernel_name)

    def unregister_fatbin(self, handle: int) -> None:
        """__cudaUnregisterFatBinary."""
        self._dispatch("__cudaUnregisterFatBinary", payload_bytes=8)
        self.runtime.cudaUnregisterFatBinary(handle)

    def register_app_binary(self, fatbin: FatBinary) -> int:
        """Convenience: register a fat binary and all its kernels."""
        handle = self.register_fatbin(fatbin)
        for k in fatbin.kernels:
            self.register_function(handle, k)
        return handle

    # -- misc -----------------------------------------------------------------------------

    def get_device_properties(self) -> dict:
        """cudaGetDeviceProperties of the current GPU."""
        self._dispatch("cudaGetDeviceProperties", payload_bytes=640)
        return self.runtime.cudaGetDeviceProperties()

    def set_device(self, index: int) -> None:
        """cudaSetDevice: select the current GPU."""
        self._dispatch("cudaSetDevice", payload_bytes=8)
        self.runtime.cudaSetDevice(index)

    def get_device(self) -> int:
        """cudaGetDevice."""
        self._dispatch("cudaGetDevice", payload_bytes=8)
        return self.runtime.cudaGetDevice()

    def get_device_count(self) -> int:
        """cudaGetDeviceCount."""
        self._dispatch("cudaGetDeviceCount", payload_bytes=8)
        return self.runtime.cudaGetDeviceCount()

    def memcpy_peer(self, dst: int, src: int, nbytes: int, *, stream=None) -> None:
        """cudaMemcpyPeer: cross-GPU device copy."""
        self._dispatch("cudaMemcpyPeer", payload_bytes=40)
        self.runtime.cudaMemcpyPeer(dst, src, nbytes, stream=stream)

    def mem_get_info(self) -> tuple[int, int]:
        """cudaMemGetInfo: (free, total) on the current GPU."""
        self._dispatch("cudaMemGetInfo", payload_bytes=16)
        return self.runtime.cudaMemGetInfo()

    def pointer_get_attributes(self, addr: int) -> dict:
        """cudaPointerGetAttributes: UVA pointer introspection."""
        self._dispatch("cudaPointerGetAttributes", payload_bytes=48)
        return self.runtime.cudaPointerGetAttributes(addr)

    def stream_query(self, stream: Stream | None = None) -> bool:
        """cudaStreamQuery: has the stream drained?"""
        self._dispatch("cudaStreamQuery", payload_bytes=8)
        return self.runtime.cudaStreamQuery(stream)

    def event_query(self, event: Event) -> bool:
        """cudaEventQuery: has the event completed?"""
        self._dispatch("cudaEventQuery", payload_bytes=8)
        return self.runtime.cudaEventQuery(event)

    def mem_prefetch(
        self,
        addr: int,
        nbytes: int,
        *,
        to_device: bool = True,
        stream: Stream | None = None,
        offset: int = 0,
    ) -> None:
        """cudaMemPrefetchAsync: migrate managed pages ahead of use."""
        self._dispatch("cudaMemPrefetchAsync", payload_bytes=32)
        self._invoke("copy", lambda: self.runtime.cudaMemPrefetchAsync(
            addr, nbytes, to_device=to_device, stream=stream, offset=offset
        ))

    # -- simulation accessors (zero-cost, not CUDA entry points) ----------------------------

    def device_view(self, addr: int, nbytes: int, dtype=np.uint8, offset: int = 0):
        """Simulation accessor: writable numpy view of a buffer's bytes."""
        return self.runtime.device_view(addr, nbytes, dtype, offset)

    def managed_view(self, addr: int, nbytes: int, dtype=np.uint8, offset: int = 0):
        """Simulation accessor: host-side view of managed memory (faults pages back)."""
        return self.runtime.managed_view(addr, nbytes, dtype, offset)


class NativeBackend(CudaDispatchBase):
    """Ordinary in-process call into the CUDA library — the baseline."""

    mode = "native"

    def _charge_call(
        self,
        name: str,
        *,
        payload_bytes: int = 0,
        ship_in: Sequence[int] = (),
        ship_out: Sequence[int] = (),
    ) -> None:
        self.process.advance(self.costs.native_dispatch_ns)

    def _charge_batch(self, calls) -> None:
        self.process.advance(len(calls) * self.costs.native_dispatch_ns)
