"""``CudaRuntime``: the closed-source CUDA library stand-in.

One instance of this class *is* "libcuda + libcudart" resident in a
process half. It owns everything the paper says the CUDA library owns:

- the deterministic allocation arenas for ``cudaMalloc`` /
  ``cudaMallocHost`` / ``cudaHostAlloc`` / ``cudaMallocManaged``
  (created through the half's interposed ``mmap`` — §3.2.1);
- stream and event registries;
- the fat-binary registration table (``__cudaRegisterFatBinary`` family,
  §3.2.5) — launching a kernel whose fat binary is not registered with
  *this* library instance fails, which is why CRAC must re-register at
  restart;
- **opaque internal state entangled with the driver**: creating UVA/UVM
  mappings advances an internal epoch in lock-step with the driver
  context. Restoring a *saved copy* of library memory into a fresh
  context desynchronizes the epochs and every later call fails — the
  observed reason CheCUDA-era approaches died with CUDA 4.0 (§2.2/§3.1).

Timing convention: methods here charge *device-side* and *blocking* time
only (a synchronous memcpy advances the host clock to completion). The
per-call *dispatch* cost — native call vs CRAC trampoline vs proxy IPC —
is charged by the dispatch backend, not by the library.
"""

from __future__ import annotations

import itertools
import zlib
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.errors import CudaError
from repro.cuda.errors import CudaErrorCode, cuda_check, cuda_error
from repro.gpu.device import GpuDevice
from repro.gpu.memory import ArenaAllocator, DeviceBuffer
from repro.gpu.streams import Event, Stream
from repro.gpu.uvm import ManagedBuffer, UvmManager
from repro.linux.process import SimProcess

#: Managed-memory oversubscription factor (UVM may exceed device memory).
MANAGED_CAPACITY_FACTOR = 4

#: Throughput efficiency of DMA from *pageable* host memory relative to
#: pinned memory (the driver stages through a bounce buffer).
PAGEABLE_COPY_EFFICIENCY = 0.65

#: Host-side latency of a blocking synchronization (driver polling /
#: wakeup), ns. Dominates the native time of short blocking calls like
#: the Table 3 cuBLAS loops (~26 µs/call for a 1 MB Sdot in the paper).
SYNC_POLL_NS = 10_000.0


@dataclass(frozen=True)
class FatBinary:
    """An embedded device-code image: the CUDA kernels of one executable."""

    name: str
    kernels: tuple[str, ...]


@dataclass
class _DriverContext:
    """Driver-side per-process context state (lives *outside* the library
    memory image — restoring saved library bytes cannot restore this)."""

    uva_epoch: int = 0


@dataclass
class ManagedUse:
    """Declares a kernel's access to a managed buffer."""

    addr: int
    offset: int
    nbytes: int
    mode: str = "r"  # 'r', 'w', or 'rw'


class CudaRuntime:
    """One loaded instance of the CUDA library (see module docstring)."""

    def __init__(
        self,
        process: SimProcess,
        device: GpuDevice | list[GpuDevice],
        mem_source: Callable[[int, str], int],
    ) -> None:
        self.process = process
        #: all GPUs visible to this library (the paper's nodes carry four
        #: V100s); ``cudaSetDevice`` selects the current one.
        self.devices: list[GpuDevice] = (
            list(device) if isinstance(device, (list, tuple)) else [device]
        )
        self.current_device = 0
        self._mem_source = mem_source
        self.ctx = _DriverContext()
        self._lib_uva_epoch = 0
        self.destroyed = False

        # One deterministic arena allocator per device, each with its own
        # VA sub-window tag (UVA carves device memory per GPU).
        self._device_allocs = [
            ArenaAllocator(
                (lambda i: lambda size: mem_source(
                    size, f"cuda-device-arena-dev{i}"
                ))(idx),
                capacity=dev.spec.memory_bytes,
            )
            for idx, dev in enumerate(self.devices)
        ]
        self._pinned_alloc = ArenaAllocator(
            lambda size: mem_source(size, "cuda-pinned-arena"),
            capacity=64 << 30,
        )
        # cudaHostAlloc gets its own arena: CRAC replays cudaMallocHost
        # fully but re-registers cudaHostAlloc buffers without allocating
        # (§3.2.4); sharing one arena would break replay determinism.
        self._hostalloc_alloc = ArenaAllocator(
            lambda size: mem_source(size, "cuda-hostalloc-arena"),
            capacity=64 << 30,
        )
        #: which allocator owns each pinned buffer ("pinned" | "hostalloc"
        #: | "registered")
        self._host_origin: dict[int, str] = {}
        self._managed_alloc = ArenaAllocator(
            lambda size: mem_source(size, "cuda-managed-arena"),
            capacity=self.devices[0].spec.memory_bytes * MANAGED_CAPACITY_FACTOR,
        )
        self.uvm = UvmManager(self.devices[0])
        self.buffers: dict[int, DeviceBuffer | ManagedBuffer] = {}
        #: allocation ids: arena addresses get reused after a free, so a
        #: checkpoint delta chain keys buffers by (addr, uid), never addr
        #: alone
        self._buffer_uids = itertools.count(1)

        # The legacy default stream lives on device 0; launches on other
        # devices must name an explicit stream (a documented simulation
        # constraint matching per-thread-stream usage on multi-GPU code).
        self.default_stream = Stream(sid=0)
        self.devices[0].register_stream(self.default_stream)
        self.streams: dict[int, Stream] = {0: self.default_stream}
        self.events: dict[int, Event] = {}

        self._fatbin_handles = itertools.count(1)
        self.fatbins: dict[int, FatBinary] = {}
        self._registered_kernels: set[str] = set()

        #: per-entry-point call counts (library-side bookkeeping)
        self.api_log: Counter[str] = Counter()

        #: optional :class:`repro.sanitizer.Sanitizer` (attached via its
        #: ``attach()``); when present, the entry points below feed it
        #: vector-clock and access events. None = zero overhead.
        self.sanitizer = None

    # ------------------------------------------------------------------ utils

    def _entry(self, name: str) -> None:
        """Common prologue of every CUDA entry point."""
        cuda_check(
            not self.destroyed,
            CudaErrorCode.INITIALIZATION_ERROR,
            "CUDA library has been destroyed",
        )
        cuda_check(
            self._lib_uva_epoch == self.ctx.uva_epoch,
            CudaErrorCode.LIBRARY_STATE_INCONSISTENT,
            "library UVA/UVM state inconsistent with driver context "
            "(restored library memory cannot be reconciled — §2.2)",
        )
        self.api_log[name] += 1

    def _buffer(self, addr: int) -> DeviceBuffer | ManagedBuffer:
        buf = self.buffers.get(addr)
        cuda_check(
            buf is not None and not buf.freed,
            CudaErrorCode.INVALID_DEVICE_POINTER,
            f"unknown or freed pointer {addr:#x}",
        )
        return buf

    def _stream(self, stream: Stream | None) -> Stream:
        return stream if stream is not None else self.default_stream

    @property
    def device(self) -> GpuDevice:
        """The current device (selected by ``cudaSetDevice``)."""
        return self.devices[self.current_device]

    @property
    def _device_alloc(self) -> ArenaAllocator:
        """The current device's allocation arena."""
        return self._device_allocs[self.current_device]

    def _device_for(self, stream: Stream | None, addr: int | None = None) -> GpuDevice:
        """Resolve which GPU an operation runs on: the stream's device if
        an explicit stream is given, else the device owning ``addr``,
        else the legacy default (device 0)."""
        if stream is not None and stream.sid != 0:
            return self.devices[stream.device_index]
        if addr is not None:
            buf = self.buffers.get(addr)
            if buf is not None:
                return self.devices[getattr(buf, "device_index", 0)]
        return self.devices[0]

    @property
    def now(self) -> float:
        return self.process.clock_ns

    # ---------------------------------------------------------------- memory

    def cudaMalloc(self, nbytes: int) -> int:
        """Allocate device memory from the deterministic arena."""
        self._entry("cudaMalloc")
        addr = self._device_alloc.alloc(nbytes)
        self.buffers[addr] = DeviceBuffer(
            addr=addr, size=nbytes, kind="device",
            device_index=self.current_device, uid=next(self._buffer_uids),
        )
        return addr

    def cudaFree(self, addr: int) -> None:
        """Free device or managed memory (real cudaFree handles both)."""
        if self.sanitizer is not None and addr not in self.buffers:
            # Double-free / wild free: record before _buffer raises.
            self.sanitizer.on_invalid_free(None, addr)
        buf = self._buffer(addr)
        if isinstance(buf, ManagedBuffer):
            self.cudaFreeManaged(addr)
            return
        self._entry("cudaFree")
        cuda_check(
            buf.kind == "device",
            CudaErrorCode.INVALID_DEVICE_POINTER,
            "cudaFree of a non-device pointer",
        )
        self._device_allocs[buf.device_index].free(addr)
        buf.freed = True
        del self.buffers[addr]

    def cudaMallocHost(self, nbytes: int) -> int:
        """Allocate pinned host memory (library-allocated! — §3.2.1)."""
        self._entry("cudaMallocHost")
        addr = self._pinned_alloc.alloc(nbytes)
        self.buffers[addr] = DeviceBuffer(
            addr=addr, size=nbytes, kind="host-pinned",
            uid=next(self._buffer_uids),
        )
        self._host_origin[addr] = "pinned"
        return addr

    def cudaHostAlloc(self, nbytes: int, flags: int = 0) -> int:
        """Like cudaMallocHost but via the cudaHostAlloc entry point; CRAC
        treats the two differently at restart (§3.2.4)."""
        self._entry("cudaHostAlloc")
        addr = self._hostalloc_alloc.alloc(nbytes)
        buf = DeviceBuffer(
            addr=addr, size=nbytes, kind="host-pinned",
            uid=next(self._buffer_uids),
        )
        buf.via_hostalloc = True  # type: ignore[attr-defined]
        self.buffers[addr] = buf
        self._host_origin[addr] = "hostalloc"
        return addr

    def cudaFreeHost(self, addr: int) -> None:
        """Release pinned host memory (arena-aware; see cudaHostRegister)."""
        self._entry("cudaFreeHost")
        buf = self._buffer(addr)
        cuda_check(
            buf.kind == "host-pinned",
            CudaErrorCode.INVALID_DEVICE_POINTER,
            "cudaFreeHost of a non-pinned pointer",
        )
        origin = self._host_origin.pop(addr, "pinned")
        if origin == "pinned":
            self._pinned_alloc.free(addr)
        elif origin == "hostalloc":
            self._hostalloc_alloc.free(addr)
        elif addr in self._hostalloc_alloc.active:
            # "registered" buffers were never arena-allocated, but a
            # restart may have *reserved* their range in the fresh arena;
            # release the reservation so the address becomes reusable.
            self._hostalloc_alloc.free(addr)
        buf.freed = True
        del self.buffers[addr]

    def cudaMallocManaged(self, nbytes: int) -> int:
        """Allocate UVM managed memory; perturbs library⇄driver state."""
        self._entry("cudaMallocManaged")
        addr = self._managed_alloc.alloc(nbytes)
        buf = ManagedBuffer(addr=addr, size=nbytes, uid=next(self._buffer_uids))
        self.uvm.register(buf)
        self.buffers[addr] = buf
        # UVA/UVM mappings entangle library and driver state (§2.2).
        self._lib_uva_epoch += 1
        self.ctx.uva_epoch += 1
        return addr

    def cudaHostRegister(self, addr: int, nbytes: int) -> None:
        """Register existing host memory as pinned (``cudaHostRegister``).

        CRAC uses this at restart to re-register still-active
        ``cudaHostAlloc`` buffers whose bytes were already restored with
        the upper half (§3.2.4) — no arena allocation happens.
        """
        self._entry("cudaHostRegister")
        cuda_check(
            addr not in self.buffers,
            CudaErrorCode.INVALID_VALUE,
            "cudaHostRegister of an already-registered pointer",
        )
        buf = DeviceBuffer(
            addr=addr, size=nbytes, kind="host-pinned",
            uid=next(self._buffer_uids),
        )
        buf.via_hostalloc = True  # type: ignore[attr-defined]
        self.buffers[addr] = buf
        self._host_origin[addr] = "registered"

    def cudaFreeManaged(self, addr: int) -> None:
        """Free managed memory (dispatched from cudaFree in real CUDA; a
        separate entry point here for log clarity)."""
        self._entry("cudaFree")
        buf = self._buffer(addr)
        cuda_check(
            isinstance(buf, ManagedBuffer),
            CudaErrorCode.INVALID_DEVICE_POINTER,
            "managed free of a non-managed pointer",
        )
        self._managed_alloc.free(addr)
        self.uvm.unregister(addr)
        buf.freed = True
        del self.buffers[addr]
        self._lib_uva_epoch += 1
        self.ctx.uva_epoch += 1

    # -------------------------------------------------------------- memcpy etc.

    def cudaMemcpy(
        self,
        dst,
        src,
        nbytes: int,
        kind: str,
        *,
        stream: Stream | None = None,
        async_: bool = False,
        dst_offset: int = 0,
        src_offset: int = 0,
    ) -> None:
        """Copy memory; ``kind`` is ``"h2d"``, ``"d2h"`` or ``"d2d"``.

        Host ends may be numpy arrays (the app's data) or plain ints
        (simulated host VAS addresses). Synchronous copies block the host
        until the DMA completes; async copies only enqueue.
        """
        self._entry("cudaMemcpyAsync" if async_ else "cudaMemcpy")
        cuda_check(
            kind in ("h2d", "d2h", "d2d"),
            CudaErrorCode.INVALID_VALUE,
            f"bad memcpy kind {kind!r}",
        )
        s = self._stream(stream)
        dev_addr = dst if kind == "h2d" else src
        dev = self._device_for(stream, dev_addr if isinstance(dev_addr, (int, np.integer)) else None)
        # Pageable host memory cannot be DMA'd directly: the driver stages
        # through a pinned bounce buffer, costing ~35% of the PCIe rate.
        # (Pinned memory — cudaMallocHost/cudaHostAlloc — goes full rate,
        # which is why simpleStreams allocates its destination pinned.)
        effective = nbytes
        if kind in ("h2d", "d2h"):
            host_end = src if kind == "h2d" else dst
            host_buf, _ = self._resolve_host_ptr(host_end)
            if host_buf is None:  # numpy array or plain VAS memory
                effective = int(nbytes / PAGEABLE_COPY_EFFICIENCY)
        if self.sanitizer is not None:
            # Before the enqueue and the _buffer lookups below, so
            # memcheck records wild/freed pointers before the raise.
            self.sanitizer.on_copy(
                self, s, kind, dst, src, nbytes, dst_offset, src_offset,
                async_,
            )
        end = dev.enqueue_copy(s, effective, kind, at_ns=self.now)
        if kind in ("h2d", "d2h"):
            self._xfer_crc_trip(dev, s, kind, dst, src, nbytes,
                                dst_offset, src_offset)
        if kind == "h2d":
            buf = self._buffer(dst)
            host_buf, host_off = self._resolve_host_ptr(src)
            if host_buf is not None:
                buf.contents.copy_from(
                    host_buf.contents, host_off + src_offset, dst_offset, nbytes
                )
            else:
                data = self._host_bytes(src, src_offset, nbytes)
                buf.contents.write_bytes(dst_offset, data)
            if isinstance(buf, ManagedBuffer):
                self.uvm.device_access(buf, dst_offset, nbytes)
        elif kind == "d2h":
            buf = self._buffer(src)
            if isinstance(buf, ManagedBuffer):
                self.uvm.host_access(buf, src_offset, nbytes, write=False)
            host_buf, host_off = self._resolve_host_ptr(dst)
            if host_buf is not None:
                host_buf.contents.copy_from(
                    buf.contents, src_offset, host_off + dst_offset, nbytes
                )
            else:
                data = buf.contents.read_bytes(src_offset, nbytes)
                self._host_store(dst, dst_offset, data)
        elif kind == "d2d":
            sbuf = self._buffer(src)
            dbuf = self._buffer(dst)
            dbuf.contents.copy_from(sbuf.contents, src_offset, dst_offset, nbytes)
        else:
            cuda_check(False, CudaErrorCode.INVALID_VALUE, f"bad kind {kind!r}")
        if not async_:
            self.process.advance_to(end)

    #: bytes of a transfer protected by one CRC word (per-region CRCs in
    #: the style of the checkpoint image's integrity check)
    XFER_CRC_WINDOW = 4096

    def _xfer_crc_trip(self, dev, stream, kind, dst, src, nbytes,
                       dst_offset, src_offset) -> None:
        """Injected PCIe transfer corruption, caught by a CRC check.

        Fires *after* the DMA is scheduled (the wire time was spent) but
        *before* any content lands at the destination, so a retried
        memcpy is a clean retransfer. The check is genuine: the source
        window's CRC is compared against the CRC of the in-flight bytes
        with one flipped bit, and the mismatch — not the injector —
        raises the retryable error.
        """
        if dev.fault_injector is None:
            return
        if dev.fault_injector.trip("xfer-corrupt", f"memcpy-{kind}") is None:
            return
        window = min(nbytes, self.XFER_CRC_WINDOW)
        if kind == "h2d":
            host_buf, host_off = self._resolve_host_ptr(src)
            if host_buf is not None:
                data = host_buf.contents.read_bytes(
                    host_off + src_offset, window
                )
            else:
                data = self._host_bytes(src, src_offset, window)
        else:
            data = self._buffer(src).contents.read_bytes(src_offset, window)
        expected = zlib.crc32(data)
        wire = bytearray(data)
        if wire:
            wire[len(wire) // 2] ^= 0x40  # the in-flight bit flip
        got = zlib.crc32(bytes(wire))
        if got != expected or not wire:
            raise cuda_error(
                CudaErrorCode.TRANSFER_CRC_MISMATCH,
                f"memcpy-{kind} of {nbytes} B: region CRC {got:#010x} != "
                f"expected {expected:#010x}",
                stream_sid=stream.sid,
            )

    def _resolve_host_ptr(self, ptr):
        """If ``ptr`` is an address inside a pinned/managed buffer this
        library manages, return (buffer, offset-of-ptr-within-buffer);
        otherwise (None, 0) — the address is plain host (VAS) memory."""
        if not isinstance(ptr, (int, np.integer)):
            return None, 0
        addr = int(ptr)
        buf = self.buffers.get(addr)
        if buf is not None:
            return buf, 0
        for base, buf in self.buffers.items():
            kind = getattr(buf, "kind", "managed")  # ManagedBuffer has no kind
            if base <= addr < base + buf.size and kind != "device":
                return buf, addr - base
        return None, 0

    def _host_bytes(self, src, offset: int, nbytes: int) -> bytes:
        if isinstance(src, (int, np.integer)):
            return self.process.vas.read(int(src) + offset, nbytes)
        arr = np.ascontiguousarray(src).view(np.uint8).ravel()
        return arr[offset : offset + nbytes].tobytes()

    def _host_store(self, dst, offset: int, data: bytes) -> None:
        if isinstance(dst, (int, np.integer)):
            self.process.vas.write(int(dst) + offset, data)
            return
        if not dst.flags["C_CONTIGUOUS"]:
            cuda_check(
                False, CudaErrorCode.INVALID_VALUE, "d2h into non-contiguous host array"
            )
        arr = dst.view(np.uint8).reshape(-1)
        arr[offset : offset + len(data)] = np.frombuffer(data, dtype=np.uint8)

    def cudaMemset(
        self,
        addr: int,
        value: int,
        nbytes: int,
        *,
        stream: Stream | None = None,
        async_: bool = False,
    ) -> None:
        """Fill ``nbytes`` of a buffer with ``value``."""
        self._entry("cudaMemsetAsync" if async_ else "cudaMemset")
        s = self._stream(stream)
        if self.sanitizer is not None:
            # Before _buffer, so memcheck records freed/wild pointers
            # before the raise.
            self.sanitizer.on_memset(self, s, addr, nbytes, async_)
        buf = self._buffer(addr)
        dev = self._device_for(stream, addr)
        end = dev.enqueue_copy(s, nbytes, "d2d", at_ns=self.now)
        if nbytes >= buf.size:
            buf.contents.fill(value)
        else:
            buf.contents.write_bytes(0, bytes([value & 0xFF]) * nbytes)
        if not async_:
            self.process.advance_to(end)

    # --------------------------------------------------------------- kernels

    def cudaLaunchKernel(
        self,
        name: str,
        fn: Callable[..., None] | None = None,
        *,
        args: Sequence = (),
        flop: float = 0.0,
        bytes_touched: float = 0.0,
        stream: Stream | None = None,
        managed: Iterable[ManagedUse] = (),
        duration_ns: float | None = None,
    ) -> float:
        """Launch a kernel asynchronously; returns its completion time.

        ``fn(*args)`` is executed eagerly for *content* (kernels mutate
        the numpy views the app obtained from :meth:`device_view`), while
        *timing* is scheduled on the stream. ``duration_ns`` overrides the
        roofline cost model when given. Managed-buffer use is declared via
        ``managed`` so UVM migration and write tracking apply.

        The kernel's fat binary must be registered with *this* library
        instance — the §3.2.5 invariant CRAC re-establishes at restart.
        """
        self._entry("cudaLaunchKernel")
        cuda_check(
            name in self._registered_kernels,
            CudaErrorCode.INITIALIZATION_ERROR,
            f"kernel {name!r} launched but its fat binary is not registered "
            "with this CUDA library instance",
        )
        s = self._stream(stream)
        dev = self._device_for(stream)
        cuda_check(
            stream is not None or self.current_device == 0,
            CudaErrorCode.NOT_SUPPORTED,
            "default-stream launch on a non-zero device: create a stream "
            "with cudaStreamCreate after cudaSetDevice",
        )
        migration = 0.0
        uses = list(managed)
        for use in uses:
            buf = self._buffer(use.addr)
            cuda_check(
                isinstance(buf, ManagedBuffer),
                CudaErrorCode.INVALID_DEVICE_POINTER,
                "managed= declared on a non-managed pointer",
            )
            migration += self.uvm.device_access(buf, use.offset, use.nbytes)
        if duration_ns is None:
            duration_ns = dev.spec.kernel_cost_ns(flop, bytes_touched)
        duration_ns += migration
        end = dev.enqueue_kernel(s, duration_ns, at_ns=self.now, label=name)
        start = end - duration_ns
        for use in uses:
            if "w" in use.mode:
                self.uvm.record_device_write(
                    self.buffers[use.addr], use.offset, use.nbytes, s,
                    start, end, now_ns=self.now,
                )
        san_op = None
        if self.sanitizer is not None:
            # device_view calls inside fn() attribute to this kernel op.
            san_op = self.sanitizer.on_kernel_begin(self, s, name, uses)
        if fn is not None:
            fn(*args)
        if san_op is not None:
            self.sanitizer.on_kernel_end(san_op)
        return end

    # ---------------------------------------------------------------- streams

    def cudaStreamCreate(self) -> Stream:
        """Create a stream on the current device."""
        self._entry("cudaStreamCreate")
        s = Stream(device_index=self.current_device)
        s.ready_ns = self.now
        self.device.register_stream(s)
        self.streams[s.sid] = s
        if self.sanitizer is not None:
            self.sanitizer.on_stream_created(s)
        return s

    def cudaStreamDestroy(self, stream: Stream) -> None:
        """Destroy a non-default stream."""
        self._entry("cudaStreamDestroy")
        cuda_check(
            stream.sid in self.streams and stream.sid != 0,
            CudaErrorCode.INVALID_VALUE,
            "destroying unknown or default stream",
        )
        stream.destroyed = True
        self.devices[stream.device_index].unregister_stream(stream)
        del self.streams[stream.sid]

    def cudaStreamSynchronize(self, stream: Stream | None = None) -> None:
        """Block the host until the stream drains."""
        self._entry("cudaStreamSynchronize")
        self.process.advance(SYNC_POLL_NS)
        s = self._stream(stream)
        self.process.advance_to(self._device_for(stream).stream_ready(s))
        if self.sanitizer is not None:
            self.sanitizer.on_sync(self, s)

    def cudaDeviceSynchronize(self) -> None:
        """Drain the whole device — the checkpoint-time quiesce step."""
        self._entry("cudaDeviceSynchronize")
        self.process.advance(SYNC_POLL_NS)
        self.process.advance_to(self.device.synchronize_all())
        if self.sanitizer is not None:
            self.sanitizer.on_sync(self)

    def cudaSetDevice(self, index: int) -> None:
        """Select the current GPU (allocation/launch/sync target)."""
        self._entry("cudaSetDevice")
        cuda_check(
            0 <= index < len(self.devices),
            CudaErrorCode.INVALID_VALUE,
            f"cudaSetDevice({index}) with {len(self.devices)} device(s)",
        )
        self.current_device = index

    def cudaGetDevice(self) -> int:
        """Index of the current GPU."""
        self._entry("cudaGetDevice")
        return self.current_device

    def cudaGetDeviceCount(self) -> int:
        """Number of GPUs visible to this library."""
        self._entry("cudaGetDeviceCount")
        return len(self.devices)

    def cudaMemcpyPeer(
        self, dst: int, src: int, nbytes: int, *, stream: Stream | None = None
    ) -> None:
        """Device-to-device copy across GPUs (PCIe/NVLink path): occupies
        both GPUs' copy engines for the transfer."""
        self._entry("cudaMemcpyPeer")
        s = self._stream(stream)
        if self.sanitizer is not None:
            # Before the _buffer lookups, so memcheck records wild/freed
            # peer pointers before the raise (same order as cudaMemcpy).
            self.sanitizer.on_copy(self, s, "d2d", dst, src, nbytes, 0, 0, False)
        sbuf = self._buffer(src)
        dbuf = self._buffer(dst)
        src_dev = self.devices[getattr(sbuf, "device_index", 0)]
        dst_dev = self.devices[getattr(dbuf, "device_index", 0)]
        end = src_dev.enqueue_copy(s, nbytes, "d2h", at_ns=self.now)
        end = max(end, dst_dev.enqueue_copy(s, nbytes, "h2d", at_ns=self.now))
        dbuf.contents.copy_from(sbuf.contents, 0, 0, nbytes)
        self.process.advance_to(end)

    # ----------------------------------------------------------------- events

    def cudaEventCreate(self) -> Event:
        """Create an event handle."""
        self._entry("cudaEventCreate")
        e = Event()
        self.events[e.eid] = e
        return e

    def cudaEventDestroy(self, event: Event) -> None:
        """Destroy an event handle."""
        self._entry("cudaEventDestroy")
        event.destroyed = True
        self.events.pop(event.eid, None)

    def cudaEventRecord(self, event: Event, stream: Stream | None = None) -> None:
        """Record the event at the stream's current tail."""
        self._entry("cudaEventRecord")
        self._device_for(stream).record_event(
            event, self._stream(stream), at_ns=self.now
        )
        if self.sanitizer is not None:
            self.sanitizer.on_event_record(event, self._stream(stream))

    def cudaEventSynchronize(self, event: Event) -> None:
        """Block the host until the event completes."""
        self._entry("cudaEventSynchronize")
        cuda_check(event.recorded, CudaErrorCode.INVALID_VALUE, "event not recorded")
        self.process.advance(SYNC_POLL_NS)
        self.process.advance_to(event.timestamp_ns)
        if self.sanitizer is not None:
            self.sanitizer.on_event_sync(event)

    def cudaEventElapsedTime(self, start: Event, end: Event) -> float:
        """Elapsed milliseconds between two recorded events."""
        self._entry("cudaEventElapsedTime")
        return end.elapsed_ms_since(start)

    def cudaStreamWaitEvent(self, stream: Stream, event: Event) -> None:
        """Order future stream work after the event."""
        self._entry("cudaStreamWaitEvent")
        self._device_for(stream).stream_wait_event(stream, event)
        if self.sanitizer is not None:
            self.sanitizer.on_stream_wait_event(stream, event)

    # ------------------------------------------------------------- fat binaries

    def cudaRegisterFatBinary(self, fatbin: FatBinary) -> int:
        """``__cudaRegisterFatBinary``: returns a registration handle."""
        self._entry("__cudaRegisterFatBinary")
        handle = next(self._fatbin_handles)
        self.fatbins[handle] = fatbin
        return handle

    def cudaRegisterFunction(self, handle: int, kernel_name: str) -> None:
        """``__cudaRegisterFunction``: register one device function."""
        self._entry("__cudaRegisterFunction")
        fatbin = self.fatbins.get(handle)
        cuda_check(
            fatbin is not None and kernel_name in fatbin.kernels,
            CudaErrorCode.INVALID_VALUE,
            f"kernel {kernel_name!r} not in fat binary handle {handle}",
        )
        self._registered_kernels.add(kernel_name)

    def cudaUnregisterFatBinary(self, handle: int) -> None:
        """``__cudaUnregisterFatBinary``: cleanup at process exit."""
        self._entry("__cudaUnregisterFatBinary")
        fatbin = self.fatbins.pop(handle, None)
        if fatbin is not None:
            self._registered_kernels.difference_update(fatbin.kernels)

    # ------------------------------------------------------------ device info

    def cudaGetDeviceProperties(self) -> dict:
        """Properties of the current GPU (name, CC, memory, ...)."""
        self._entry("cudaGetDeviceProperties")
        spec = self.device.spec
        return {
            "name": spec.name,
            "major": spec.compute_capability[0],
            "minor": spec.compute_capability[1],
            "totalGlobalMem": spec.memory_bytes,
            "concurrentKernels": spec.max_concurrent_kernels,
            "multiProcessorCount": spec.sm_count,
        }

    def cudaMemGetInfo(self) -> tuple[int, int]:
        """(free, total) device memory in bytes."""
        self._entry("cudaMemGetInfo")
        total = self.device.spec.memory_bytes
        return total - self._device_alloc.active_bytes, total

    def cudaPointerGetAttributes(self, addr: int) -> dict:
        """UVA pointer introspection (memory type + owning buffer base)."""
        self._entry("cudaPointerGetAttributes")
        for base, buf in self.buffers.items():
            if base <= addr < base + buf.size:
                kind = (
                    "managed" if isinstance(buf, ManagedBuffer) else buf.kind
                )
                return {"type": kind, "devicePointer": base, "size": buf.size}
        return {"type": "unregistered", "devicePointer": 0, "size": 0}

    def cudaStreamQuery(self, stream: Stream | None = None) -> bool:
        """True if all work enqueued on the stream has completed."""
        self._entry("cudaStreamQuery")
        return self.device.stream_ready(self._stream(stream)) <= self.now

    def cudaEventQuery(self, event: Event) -> bool:
        """True if the event has been recorded and completed."""
        self._entry("cudaEventQuery")
        return event.recorded and event.timestamp_ns <= self.now

    def cudaMemPrefetchAsync(
        self,
        addr: int,
        nbytes: int,
        *,
        to_device: bool = True,
        stream: Stream | None = None,
        offset: int = 0,
    ) -> None:
        """UVM prefetch (CUDA 8.0): migrate managed pages ahead of use so
        kernels don't pay demand-fault costs. The migration occupies the
        copy engine like a normal DMA instead of stalling the kernel."""
        self._entry("cudaMemPrefetchAsync")
        buf = self._buffer(addr)
        cuda_check(
            isinstance(buf, ManagedBuffer),
            CudaErrorCode.INVALID_DEVICE_POINTER,
            "prefetch of a non-managed pointer",
        )
        s = self._stream(stream)
        if self.sanitizer is not None:
            self.sanitizer.on_prefetch(self, s, buf, offset, nbytes, to_device)
        if to_device:
            cost = self.uvm.device_access(buf, offset, nbytes)
        else:
            cost = self.uvm.host_access(buf, offset, nbytes, write=False)
        if cost > 0:
            # Bulk migration rides the copy engine (cheaper per byte than
            # demand faulting, which pays per-page latency).
            self.device.enqueue_copy(s, nbytes, "h2d" if to_device else "d2h",
                                     at_ns=self.now)

    # --------------------------------------------------- simulation accessors
    # (not CUDA entry points; not dispatched, not counted)

    def device_view(self, addr: int, nbytes: int, dtype=np.uint8, offset: int = 0):
        """Writable numpy view of a device/pinned buffer's contents."""
        if self.sanitizer is not None:
            buf = self.buffers.get(addr)
            if buf is not None:
                self.sanitizer.on_device_view(self, buf, offset, nbytes)
            else:
                # Freed/wild pointer: record the hazard before _buffer
                # raises below.
                self.sanitizer.on_pointer_miss(self, addr)
        return self._buffer(addr).contents.view(offset, nbytes, dtype)

    def managed_view(self, addr: int, nbytes: int, dtype=np.uint8, offset: int = 0):
        """Host-side access to managed memory: faults pages back to the
        host (advancing the host clock) and returns a writable view."""
        buf = self._buffer(addr)
        cuda_check(
            isinstance(buf, ManagedBuffer),
            CudaErrorCode.INVALID_DEVICE_POINTER,
            "managed_view of non-managed pointer",
        )
        cost = self.uvm.host_access(buf, offset, nbytes, write=True)
        self.process.advance(cost)
        if self.sanitizer is not None:
            self.sanitizer.on_managed_view(self, buf, offset, nbytes)
        return buf.contents.view(offset, nbytes, dtype)

    def active_allocations(self, kinds: tuple[str, ...] = ("device", "host-pinned", "managed")) -> list:
        """Live (not freed) buffers — what CRAC saves at checkpoint."""
        out = []
        for buf in self.buffers.values():
            kind = "managed" if isinstance(buf, ManagedBuffer) else buf.kind
            if kind in kinds:
                out.append(buf)
        return sorted(out, key=lambda b: b.addr)

    # ------------------------------------------------------- restart adoption
    # CRAC recreates streams/events in the fresh lower half and virtualizes
    # the application's handles onto them; adopting the original handle
    # objects models that virtualization (process-level virtualization is
    # DMTCP's plugin mechanism, §3/[20]).

    def adopt_stream(self, stream: Stream) -> None:
        """Attach an application-held stream handle to this fresh library."""
        stream.ready_ns = max(stream.ready_ns, self.process.clock_ns)
        stream.destroyed = False
        self.devices[stream.device_index].register_stream(stream)
        self.streams[stream.sid] = stream

    def adopt_event(self, event: Event) -> None:
        """Attach an application-held event handle to this fresh library."""
        event.destroyed = False
        self.events[event.eid] = event

    # ---------------------------------------------------------- CheCUDA hooks

    def destroy(self) -> None:
        """Tear down all CUDA resources (CheCUDA step (c), §2.2)."""
        self.destroyed = True
        for s in list(self.streams.values()):
            self.device.unregister_stream(s)
        self.streams.clear()
        self.buffers.clear()

    def library_memory_snapshot(self) -> dict:
        """What a pre-CUDA-4.0 checkpointer would save: the library's
        in-memory state, including the (UVA-entangled) internal epoch."""
        return {
            "uva_epoch": self._lib_uva_epoch,
            "buffer_meta": {
                a: (type(b).__name__, b.size, b.kind if isinstance(b, DeviceBuffer) else "managed")
                for a, b in self.buffers.items()
            },
            "registered_kernels": set(self._registered_kernels),
            "fatbins": dict(self.fatbins),
        }

    def restore_library_memory(self, snap: dict) -> None:
        """CheCUDA-style restore of saved library memory into a *fresh*
        runtime. Works pre-UVA; with UVA/UVM state it leaves the library
        inconsistent with the driver context, and the next entry point
        fails (§2.2: "the restored CUDA library was then inconsistent
        when called after restart")."""
        self._lib_uva_epoch = snap["uva_epoch"]
        self._registered_kernels = set(snap["registered_kernels"])
        self.fatbins = dict(snap["fatbins"])
