"""Checkpoint image container.

An image holds the saved upper-half memory regions plus named *blobs*
contributed by plugins (CRAC stores drained device buffers, the
malloc/free replay log, and stream/event metadata as blobs).

Sizes are accounted in *virtual* bytes — a 1 GB device buffer drained
into the image accounts 1 GB even though its sparse backing may be tiny —
so checkpoint-image sizes are directly comparable to the paper's
Figure 3 / Figure 5c annotations.
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.linux.address_space import PAGE_SIZE

if TYPE_CHECKING:
    from repro.gpu.memory import PagedContents
    from repro.linux.address_space import MemoryRegion


@dataclass
class SavedRegion:
    """One saved memory region (content + metadata).

    For incremental images ``pages`` holds only the pages dirtied since
    the parent checkpoint; ``size`` is always the full virtual size so
    restore can recreate the mapping.
    """

    start: int
    size: int
    perms: str
    tag: str
    pages: dict[int, bytes]
    incremental: bool = False

    @property
    def backed_bytes(self) -> int:
        return sum(len(p) for p in self.pages.values())

    def checksum(self) -> int:
        """CRC32 over this region's metadata and page contents.

        The checkpoint store records this per region at save time and
        re-verifies it at restore, so a single flipped byte is caught
        before it reaches the restored address space.
        """
        crc = zlib.crc32(f"{self.start:x}:{self.size:x}:{self.perms}".encode())
        for pg in sorted(self.pages):
            crc = zlib.crc32(self.pages[pg], zlib.crc32(str(pg).encode(), crc))
        return crc


@dataclass
class SavedBlob:
    """A plugin-contributed payload.

    ``accounted_bytes`` is the virtual size the blob represents in the
    image (e.g. the full size of a drained device buffer).
    """

    name: str
    payload: Any
    accounted_bytes: int


@dataclass
class CheckpointImage:
    """A complete checkpoint of one process (DMTCP ``.dmtcp`` file model).

    ``parent`` links incremental images into a chain ending at a full
    base image; restore walks the chain base-first.
    """

    pid: int
    created_at_ns: float
    gzip: bool = False
    regions: list[SavedRegion] = field(default_factory=list)
    blobs: dict[str, SavedBlob] = field(default_factory=dict)
    incremental: bool = False
    parent: "CheckpointImage | None" = None
    #: Virtual-time cost of taking this checkpoint (set by the
    #: checkpointer; what Figures 3/5c report).
    checkpoint_time_ns: float = 0.0
    #: CRC recorded by :meth:`seal` (``None`` until sealed).
    sealed_checksum: int | None = None
    #: True for a validated-speculation cut (no quiesce; capture runs
    #: concurrently with the application and commit moves to the
    #: :class:`repro.spec.SpeculativeCheckpoint` writer's validation).
    #: Plugins branch on this to defer their drain costs off the
    #: critical path.
    speculative: bool = False
    #: True once the image is durably committed (store commit, or the
    #: end of a direct store-less checkpoint). Dirty-state clearing in
    #: the live process happens only at this point, so an aborted or
    #: torn checkpoint never loses the dirty bits the next incremental
    #: cut depends on.
    committed: bool = False
    #: live-process dirty state captured at snapshot time — (object,
    #: captured pages/spans, snapshot write epoch) — cleared (only the
    #: captured part, and only where the last write precedes the
    #: snapshot epoch) when the image commits. Runtime-only, never
    #: pickled.
    region_captures: list[tuple["MemoryRegion", frozenset[int], int]] = field(
        default_factory=list, repr=False, compare=False
    )
    contents_captures: list[
        tuple["PagedContents", tuple[tuple[int, int], ...], int]
    ] = field(default_factory=list, repr=False, compare=False)

    # -- commit point ----------------------------------------------------------

    def record_region_capture(
        self, region: "MemoryRegion", pages: frozenset[int], epoch: int
    ) -> None:
        """Remember which dirty pages of ``region`` this image captured,
        and the region's write epoch at snapshot time."""
        self.region_captures.append((region, pages, epoch))

    def record_contents_capture(
        self,
        contents: "PagedContents",
        spans: tuple[tuple[int, int], ...],
        epoch: int,
    ) -> None:
        """Remember which dirty byte spans of ``contents`` were captured,
        and the contents' write epoch at snapshot time."""
        self.contents_captures.append((contents, spans, epoch))

    def mark_committed(self) -> None:
        """The image became durable: clear exactly the captured dirty
        state from the live process (idempotent).

        Clearing is epoch-bounded: a page/span dirtied *after* the
        snapshot — including one the image captured that was re-written
        while a forked write was still in flight — keeps its dirty bit,
        because the image holds the pre-window bytes and the next
        incremental cut must save the new content.
        """
        if self.committed:
            return
        hook = getattr(self, "sync_hook", None)
        if hook is not None:
            # Sanitizer synccheck: flags a commit while device work the
            # image claims to cover is still in flight.
            hook(self)
        for region, pages, epoch in self.region_captures:
            region.clear_dirty(pages, up_to_epoch=epoch)
        for contents, spans, epoch in self.contents_captures:
            contents.clear_dirty(list(spans), up_to_epoch=epoch)
        self.region_captures = []
        self.contents_captures = []
        self.committed = True

    def new_dirty_bytes(self) -> int:
        """Bytes dirtied since this image's snapshot (the forked
        checkpoint's copy-on-write exposure). Re-writes of captured
        pages/spans count too — the forked child still holds the old
        bytes, so they must be COW-duplicated like any other write."""
        total = 0
        for region, _pages, epoch in self.region_captures:
            total += region.dirty_pages_since(epoch) * PAGE_SIZE
        for contents, _spans, epoch in self.contents_captures:
            total += contents.dirty_bytes_since(epoch)
        return total

    def __getstate__(self) -> dict:
        # Captures reference live process objects; they exist only until
        # commit and must never be serialized with the image.
        state = dict(self.__dict__)
        state["region_captures"] = []
        state["contents_captures"] = []
        state.pop("forked_writer", None)  # runtime handle, never on disk
        state.pop("sync_hook", None)  # sanitizer callback, never on disk
        return state

    def export_payload(self) -> bytes:
        """Portable pickled form of *this image alone* (parent stripped).

        Chains ship one generation per payload so a migration can move
        them incrementally; the receiving store re-links parents from
        its own imported copies (``CheckpointStore.import_chain``).
        Runtime-only state (dirty captures, forked writer, sanitizer
        hook) never serializes, so the payload carries nothing tied to
        the source host or its filesystem.
        """
        parent = self.parent
        self.parent = None
        try:
            return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
        finally:
            self.parent = parent

    @classmethod
    def from_payload(
        cls, payload: bytes, *, parent: "CheckpointImage | None" = None
    ) -> "CheckpointImage":
        """Rebuild an image from :meth:`export_payload` bytes, re-linking
        ``parent`` for incremental images. Callers are expected to have
        CRC-verified the payload first (the store's import path does)."""
        from repro.errors import CheckpointError

        try:
            image = pickle.loads(payload)
        except Exception as exc:
            raise CheckpointError(
                f"checkpoint payload does not deserialize: {exc!r}"
            ) from exc
        if not isinstance(image, cls):
            raise CheckpointError("payload is not a checkpoint image")
        image.parent = parent
        return image

    def chain(self) -> list["CheckpointImage"]:
        """The restore chain, base (full) image first."""
        out: list[CheckpointImage] = []
        img: CheckpointImage | None = self
        while img is not None:
            out.append(img)
            img = img.parent
        return list(reversed(out))

    def add_region(self, region: SavedRegion) -> None:
        """Append one saved memory region."""
        self.regions.append(region)

    def add_blob(self, name: str, payload: Any, accounted_bytes: int = 0) -> None:
        """Attach a named plugin payload (accounted in the image size)."""
        if name in self.blobs:
            raise ValueError(f"duplicate blob {name!r}")
        self.blobs[name] = SavedBlob(name, payload, accounted_bytes)

    def blob(self, name: str) -> Any:
        """Fetch a plugin payload by name."""
        return self.blobs[name].payload

    @property
    def region_bytes(self) -> int:
        """Bytes of saved memory: full virtual size for a base image,
        only the dirtied pages for an incremental one."""
        if self.incremental:
            return sum(r.backed_bytes for r in self.regions)
        return sum(r.size for r in self.regions)

    @property
    def blob_bytes(self) -> int:
        return sum(b.accounted_bytes for b in self.blobs.values())

    @property
    def size_bytes(self) -> int:
        """Total image size (what Figure 3 annotates), virtual bytes."""
        return self.region_bytes + self.blob_bytes

    def describe(self) -> str:
        """One-line human-readable summary."""
        mb = self.size_bytes / (1 << 20)
        return (
            f"<CheckpointImage pid={self.pid} {len(self.regions)} regions, "
            f"{len(self.blobs)} blobs, {mb:.1f} MB>"
        )

    # -- integrity --------------------------------------------------------

    def content_checksum(self) -> int:
        """CRC32 over all region contents (structure-independent)."""
        crc = 0
        for r in sorted(self.regions, key=lambda r: r.start):
            crc = zlib.crc32(
                f"{r.start:x}:{r.size:x}:{r.perms}".encode(), crc
            )
            for pg in sorted(r.pages):
                crc = zlib.crc32(r.pages[pg], zlib.crc32(str(pg).encode(), crc))
        return crc

    def seal(self) -> None:
        """Record the current checksum (done automatically by save())."""
        self.sealed_checksum = self.content_checksum()

    def verify(self) -> bool:
        """True if contents still match the sealed checksum."""
        return (
            self.sealed_checksum is not None
            and self.sealed_checksum == self.content_checksum()
        )

    # -- on-disk format (the ``.dmtcp`` file model) ---------------------------

    def save(self, path: str | Path) -> int:
        """Serialize to disk (sealed with a checksum); returns file size."""
        self.seal()
        path = Path(path)
        with path.open("wb") as fh:
            pickle.dump(self, fh, protocol=pickle.HIGHEST_PROTOCOL)
        return path.stat().st_size

    @classmethod
    def load(cls, path: str | Path) -> "CheckpointImage":
        """Deserialize and verify integrity; corrupt files are rejected."""
        with Path(path).open("rb") as fh:
            image = pickle.load(fh)
        if not isinstance(image, cls):
            raise ValueError(f"{path} is not a checkpoint image")
        if not image.verify():
            raise ValueError(f"{path}: checksum mismatch (corrupt image)")
        return image
