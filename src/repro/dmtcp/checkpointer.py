"""The DMTCP checkpoint/restore engine.

Checkpoint: quiesce → run plugin precheckpoint hooks → walk the address
space → save every region *not* covered by a plugin skip range → account
write time (optionally through the gzip cost model; the paper disables
gzip). Restore: map every saved region back at its original address
(``MAP_FIXED``) in the target process and reload its pages.

Note the §3.2.2 subtlety: DMTCP's view of memory is the *merged*
``/proc/PID/maps``; deciding which bytes inside a merged entry belong to
the upper half is impossible from the maps file alone. The checkpointer
therefore intersects merged entries with plugin skip ranges — which CRAC
computes from its own loader registry — and saves the remainder.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.dmtcp.forked import ForkedCheckpoint
from repro.dmtcp.image import CheckpointImage, SavedRegion
from repro.dmtcp.plugins import DmtcpPlugin
from repro.gpu.timing import DEFAULT_HOST_COSTS, NS_PER_S, HostCosts
from repro.linux.address_space import PAGE_SIZE
from repro.linux.process import SimProcess

if TYPE_CHECKING:  # avoid a dmtcp → harness import cycle at runtime
    from repro.harness.fault_injection import FaultInjector


def _subtract_ranges(
    span: tuple[int, int], skips: list[tuple[int, int]]
) -> list[tuple[int, int]]:
    """Remove skip ranges from ``span``; returns surviving (start, end) parts."""
    parts = [span]
    for s_start, s_size in skips:
        s_end = s_start + s_size
        new: list[tuple[int, int]] = []
        for lo, hi in parts:
            if s_end <= lo or s_start >= hi:
                new.append((lo, hi))
                continue
            if lo < s_start:
                new.append((lo, s_start))
            if s_end < hi:
                new.append((s_end, hi))
        parts = new
    return parts


class DmtcpCheckpointer:
    """Checkpoints and restores one :class:`SimProcess`."""

    def __init__(
        self,
        process: SimProcess,
        plugins: list[DmtcpPlugin] | None = None,
        costs: HostCosts = DEFAULT_HOST_COSTS,
        fault_injector: "FaultInjector | None" = None,
    ) -> None:
        self.process = process
        self.plugins = list(plugins or [])
        self.costs = costs
        self.fault_injector = fault_injector
        #: repro.trace.Tracer receiving pipeline stage spans; None = untraced
        self.tracer = None
        #: repro.spec.HandleTable snapshotted by speculative cuts; None
        #: disables speculative=True (no versions to validate against)
        self.handle_table = None

    # -- checkpoint ------------------------------------------------------------

    def checkpoint(
        self,
        *,
        gzip: bool = False,
        incremental: bool = False,
        parent: CheckpointImage | None = None,
        forked: bool = False,
        speculative: bool = False,
        defer_commit: bool = False,
    ) -> CheckpointImage:
        """Take a checkpoint; advances the process clock by the cost.

        With ``incremental=True`` (requires a ``parent`` image) only the
        pages dirtied since the previous checkpoint are saved; restore
        walks the parent chain base-first. Plugins see ``image.incremental``
        and may delta-encode their blobs the same way (CRAC stages only
        dirtied GPU spans).

        Dirty tracking is cleared only when the image durably *commits*
        (:meth:`CheckpointImage.mark_committed`): a fault at any later
        stage — region-save, image-write, 2PC commit — leaves every dirty
        bit intact so the next incremental cut still captures them. With
        ``defer_commit=True`` the caller (a checkpoint store or a forked
        writer) owns the commit point; otherwise the image commits at the
        end of this call.

        ``forked=True`` skips the synchronous image write: the app
        resumes after quiesce + snapshot, and the write proceeds on a
        background timeline tracked by the :class:`ForkedCheckpoint`
        attached as ``image.forked_writer`` — commit (and the
        ``image-write`` fault stage) move to its ``finish()``.

        ``speculative=True`` goes further (PhoenixOS-style validated
        speculation): *nothing* stops the world. The cut snapshots the
        handle-version table and buffer contents instantly, kernels keep
        launching, and quiesce + region walk + PCIe drain + image write
        all run on a background timeline tracked by the
        :class:`repro.spec.SpeculativeCheckpoint` attached as
        ``image.forked_writer``. Conflict detection and commit move to
        its ``finish()``; an aborted speculation rolls back with every
        dirty bit intact. Requires a wired ``handle_table``.
        """
        if incremental and parent is None:
            raise ValueError("incremental checkpoint requires a parent image")
        if speculative and forked:
            raise ValueError(
                "speculative and forked checkpoints are exclusive modes"
            )
        if speculative and self.handle_table is None:
            raise ValueError(
                "speculative checkpoint requires a wired handle table"
            )
        proc = self.process
        t_start = proc.clock_ns
        background_ns = 0.0
        if speculative:
            # No quiesce: the app stalls only for the version-table
            # snapshot; the coordination work joins the background
            # timeline the writer validates against.
            proc.advance(
                self.costs.spec_cut_ns
                + len(self.handle_table) * self.costs.spec_handle_ns
            )
            background_ns += self.costs.ckpt_quiesce_ns
            if self.tracer is not None:
                self.tracer.ckpt_span("spec-cut", t_start, proc.clock_ns)
        else:
            proc.advance(self.costs.ckpt_quiesce_ns)
            if self.tracer is not None:
                self.tracer.ckpt_span("quiesce", t_start, proc.clock_ns)

        image = CheckpointImage(
            pid=proc.pid,
            created_at_ns=proc.clock_ns,
            gzip=gzip,
            incremental=incremental,
            parent=parent if incremental else None,
            speculative=speculative,
        )
        for plugin in self.plugins:
            if self.fault_injector is not None:
                self.fault_injector.check("precheckpoint", plugin.name)
            plugin.on_precheckpoint(image)

        # Plugin veto ranges are not guaranteed page-aligned, but both
        # the dirty-page bookkeeping and restore's MAP_FIXED mmap work in
        # whole pages: expand every skip outward to page boundaries (skip
        # granularity is the page, like DMTCP's).
        skips: list[tuple[int, int]] = []
        for plugin in self.plugins:
            for s_start, s_size in plugin.skip_ranges():
                lo = s_start - (s_start % PAGE_SIZE)
                hi = s_start + s_size
                hi = (hi + PAGE_SIZE - 1) // PAGE_SIZE * PAGE_SIZE
                skips.append((lo, hi - lo))

        # A speculative plugin deferred its PCIe drain instead of
        # advancing the app clock; fold it into the background window.
        background_ns += getattr(image, "spec_deferred_ns", 0.0)

        t_regions = proc.clock_ns
        for region in proc.vas.regions():
            if self.fault_injector is not None:
                self.fault_injector.check("region-save", region.tag)
            if speculative:
                background_ns += self.costs.ckpt_region_ns
            else:
                proc.advance(self.costs.ckpt_region_ns)
            snapshot = (
                region.dirty_pages_snapshot()
                if incremental
                else region.pages_snapshot()
            )
            for lo, hi in _subtract_ranges((region.start, region.end), skips):
                shift = (lo - region.start) // PAGE_SIZE
                pages = {
                    pg - shift: data
                    for pg, data in snapshot.items()
                    if lo <= region.start + pg * PAGE_SIZE < hi
                }
                image.add_region(
                    SavedRegion(
                        start=lo,
                        size=hi - lo,
                        perms=region.perms,
                        tag=region.tag,
                        pages=pages,
                        incremental=incremental,
                    )
                )
            image.record_region_capture(
                region, frozenset(region.dirty), region.write_seq
            )

        if self.tracer is not None:
            self.tracer.ckpt_span(
                "save-regions", t_regions, proc.clock_ns,
                regions=len(image.regions),
            )

        written = image.size_bytes
        write_ns = written / self.costs.ckpt_write_bw * NS_PER_S
        if gzip:
            write_ns += written / self.costs.gzip_bw * NS_PER_S
        if speculative:
            # Everything a stop-the-world cut pays synchronously runs on
            # the background timeline; validation happens at finish().
            from repro.spec import SpeculativeCheckpoint

            image.forked_writer = SpeculativeCheckpoint(  # type: ignore[attr-defined]
                image=image,
                cut_ns=proc.clock_ns,
                validate_end_ns=proc.clock_ns + background_ns + write_ns,
                costs=self.costs,
                handle_table=self.handle_table,
                fault_injector=self.fault_injector,
                tracer=self.tracer,
            )
        elif forked:
            # The write happens on the forked child's timeline; the app
            # resumes now and only pays COW for pages it touches inside
            # the write window (charged at finish()).
            image.forked_writer = ForkedCheckpoint(  # type: ignore[attr-defined]
                image=image,
                fork_ns=proc.clock_ns,
                write_end_ns=proc.clock_ns + write_ns,
                costs=self.costs,
                fault_injector=self.fault_injector,
                tracer=self.tracer,
            )
        else:
            t_write = proc.clock_ns
            proc.advance(write_ns)
            if self.tracer is not None:
                self.tracer.ckpt_span(
                    "write", t_write, proc.clock_ns, bytes=written, gzip=gzip
                )

        for plugin in self.plugins:
            plugin.on_resume(image)
        image.checkpoint_time_ns = proc.clock_ns - t_start
        if not forked and not speculative and not defer_commit:
            image.mark_committed()
            if self.tracer is not None:
                self.tracer.instant(
                    "ckpt", "commit", proc.clock_ns, pid=image.pid
                )
        return image

    # -- restore -----------------------------------------------------------------

    def restore_memory(self, image: CheckpointImage, target: SimProcess) -> float:
        """Map the image's regions into ``target`` at original addresses.

        Incremental images restore by walking their parent chain
        base-first: the base recreates mappings and full contents; each
        increment overlays its dirtied pages.

        Returns the virtual-time cost (the caller — CRAC's restart
        orchestrator — owns the clock of the restarted process).
        """
        cost = 0.0
        for img in image.chain():
            for saved in img.regions:
                region = target.vas.find(saved.start)
                if region is None or region.start != saved.start:
                    target.vas.mmap(
                        saved.size,
                        addr=saved.start,
                        fixed=True,
                        perms=saved.perms,
                        tag=saved.tag,
                    )
                    region = target.vas.find(saved.start)
                if saved.incremental:
                    region.apply_pages(dict(saved.pages))
                else:
                    region.load_pages(dict(saved.pages))
                cost += self.costs.ckpt_region_ns
            cost += img.size_bytes / self.costs.ckpt_read_bw * NS_PER_S
            if img.gzip:
                cost += img.size_bytes / self.costs.gzip_bw * NS_PER_S
        return cost
