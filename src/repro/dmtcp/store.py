"""Crash-consistent checkpoint store: two-phase commit, checksums, GC.

Real transparent-checkpointing deployments treat the checkpoint image
itself as a failure domain: a node can die halfway through writing an
image (a *torn* image must never be restored), bytes can rot between
save and restore (CRIUgpu-style integrity validation), and disk budgets
force old generations out (but never a base image that a live
incremental chain still needs). :class:`CheckpointStore` owns that
lifecycle:

- **Two-phase atomic commit.** ``stage()`` writes the image region by
  region into a staging slot; only ``commit()`` makes it a visible
  generation. A crash mid-write (the ``image-write`` fault stage)
  leaves a ``complete=False`` partial that :meth:`discard_partials`
  throws away — committed generations are never torn.
- **Per-region checksums.** CRCs are computed at stage time and
  re-verified by :meth:`load`; any byte flipped in between raises
  :class:`CorruptCheckpointError` deterministically.
- **Generational retention.** ``keep_generations=N`` bounds the store;
  GC walks every retained image's incremental parent chain and never
  evicts a generation that a retained chain still parents. Generations
  being shipped off-node are :meth:`pin`-ned so keep-N cannot race an
  in-flight migration.
- **Portability.** :meth:`export_generation` turns a committed
  generation into a host-independent wire record (parent-stripped
  pickle + payload CRC + the per-region CRCs recorded at stage time);
  :meth:`import_generation` re-verifies everything on arrival and
  registers the image as a local generation that passes :meth:`verify`
  and restores unchanged.
"""

from __future__ import annotations

import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.dmtcp.image import CheckpointImage
from repro.errors import CheckpointStoreError, CorruptCheckpointError

if TYPE_CHECKING:  # avoid a dmtcp → harness import cycle at runtime
    from repro.harness.fault_injection import FaultInjector


@dataclass
class StagedCheckpoint:
    """An image in the staging area (phase 1 of the commit protocol).

    ``complete`` flips to True only after every region's bytes and
    checksum have been written; a crash mid-write leaves it False and
    the partial can only be discarded, never committed.
    """

    staging_id: int
    image: CheckpointImage
    checksums: dict[int, int] = field(default_factory=dict)
    complete: bool = False
    aborted: bool = False

    @property
    def written_regions(self) -> int:
        return len(self.checksums)


@dataclass
class StoredGeneration:
    """One committed generation (phase 2 made it visible)."""

    generation: int
    image: CheckpointImage
    checksums: dict[int, int]
    committed_at_ns: float

    @property
    def size_bytes(self) -> int:
        return self.image.size_bytes


class CheckpointStore:
    """Owns checkpoint-image lifecycle: stage → commit → verify → GC."""

    def __init__(
        self,
        *,
        keep_generations: int = 3,
        fault_injector: "FaultInjector | None" = None,
    ) -> None:
        if keep_generations < 1:
            raise ValueError("must keep at least one generation")
        self.keep_generations = keep_generations
        self.fault_injector = fault_injector
        self._generations: dict[int, StoredGeneration] = {}
        self._staged: dict[int, StagedCheckpoint] = {}
        #: generation → pin count (migration in-flight protection)
        self._pins: dict[int, int] = {}
        self._next_generation = 1
        self._next_staging_id = 1
        self.evicted = 0
        self.discarded_partials = 0

    # -- phase 1: staging ------------------------------------------------------

    def stage(self, image: CheckpointImage) -> StagedCheckpoint:
        """Write ``image`` into the staging area, region by region.

        Computes each region's CRC as it is written. The ``image-write``
        fault stage fires per region: a crash leaves the partial staged
        entry behind (discardable, never committable); a corruption
        fault silently flips a byte *after* the checksum was recorded —
        the classic undetected-at-write error that only restore-time
        verification catches.
        """
        staged = StagedCheckpoint(staging_id=self._next_staging_id, image=image)
        self._next_staging_id += 1
        self._staged[staged.staging_id] = staged
        for idx, region in enumerate(image.regions):
            kind = None
            if self.fault_injector is not None:
                kind = self.fault_injector.check(
                    "image-write", f"region {idx} @{region.start:#x}",
                    corruptible=True,
                )
            staged.checksums[idx] = region.checksum()
            if kind == "corrupt" and region.pages:
                pg = min(region.pages)
                data = bytearray(region.pages[pg])
                if data:
                    data[0] ^= 0xFF
                    region.pages[pg] = bytes(data)
        staged.complete = True
        return staged

    def abort(self, staged: StagedCheckpoint) -> None:
        """Throw a staged image away (phase-1 rollback)."""
        staged.aborted = True
        self._staged.pop(staged.staging_id, None)

    def partials(self) -> list[StagedCheckpoint]:
        """Staged images whose write never completed (torn by a crash)."""
        return [s for s in self._staged.values() if not s.complete]

    def discard_partials(self) -> int:
        """Drop every torn staged image; returns how many were dropped."""
        torn = self.partials()
        for staged in torn:
            self.abort(staged)
        self.discarded_partials += len(torn)
        return len(torn)

    # -- phase 2: commit -------------------------------------------------------

    def commit(self, staged: StagedCheckpoint) -> int:
        """Make a fully-staged image a visible generation; runs GC."""
        if staged.aborted:
            raise CheckpointStoreError(
                f"staging slot {staged.staging_id} was aborted"
            )
        if not staged.complete:
            raise CheckpointStoreError(
                f"staging slot {staged.staging_id} is a partial "
                f"({staged.written_regions}/{len(staged.image.regions)} "
                "regions written) — discard it, a torn image must never "
                "become a generation"
            )
        if staged.staging_id not in self._staged:
            raise CheckpointStoreError(
                f"staging slot {staged.staging_id} is not staged here"
            )
        del self._staged[staged.staging_id]
        gen = self._next_generation
        self._next_generation += 1
        self._generations[gen] = StoredGeneration(
            generation=gen,
            image=staged.image,
            checksums=dict(staged.checksums),
            committed_at_ns=staged.image.created_at_ns,
        )
        # The image is durable now — this is the one point where the live
        # process's dirty tracking (captured at snapshot time) may be
        # cleared. Aborted/partial stagings never reach here, so a torn
        # checkpoint keeps every dirty bit for the next incremental cut.
        staged.image.mark_committed()
        self.gc()
        return gen

    def put(self, image: CheckpointImage) -> int:
        """Stage + commit in one call (the common single-rank path).

        A crash mid-write propagates after the partial is recorded in
        the staging area; callers recover via :meth:`discard_partials`
        (the self-healing restart path does this automatically).
        """
        return self.commit(self.stage(image))

    # -- lookup ----------------------------------------------------------------

    @property
    def generations(self) -> list[int]:
        """Committed generation ids, oldest first."""
        return sorted(self._generations)

    def latest(self) -> int | None:
        """Newest committed generation id, or ``None`` if empty."""
        return max(self._generations) if self._generations else None

    def get(self, generation: int) -> StoredGeneration:
        """Fetch a committed generation's entry (no integrity check)."""
        entry = self._generations.get(generation)
        if entry is None:
            raise CheckpointStoreError(
                f"generation {generation} is not in the store "
                f"(have {self.generations})"
            )
        return entry

    def iter_restore_candidates(self) -> Iterator[int]:
        """Generations to try at restore, newest first."""
        return iter(sorted(self._generations, reverse=True))

    # -- restore-time verification ---------------------------------------------

    def verify(self, generation: int) -> None:
        """Re-checksum every region of ``generation`` (and of every
        chain ancestor also held by this store); raise
        :class:`CorruptCheckpointError` on the first mismatch."""
        entry = self.get(generation)
        by_image = {id(e.image): e for e in self._generations.values()}
        for img in entry.image.chain():
            owner = by_image.get(id(img))
            if owner is None:
                continue  # ancestor predates the store; nothing recorded
            for idx, region in enumerate(img.regions):
                want = owner.checksums.get(idx)
                if want is None or region.checksum() != want:
                    raise CorruptCheckpointError(
                        f"generation {owner.generation}: region {idx} "
                        f"@{region.start:#x} failed checksum verification"
                    )

    def load(self, generation: int | None = None) -> CheckpointImage:
        """Fetch a generation's image after verifying its integrity.

        ``generation=None`` loads the newest. This is the only sanctioned
        way to get an image out of the store for restore.
        """
        if generation is None:
            generation = self.latest()
            if generation is None:
                raise CheckpointStoreError("store holds no generations")
        self.verify(generation)
        return self.get(generation).image

    # -- migration pins --------------------------------------------------------

    def pin(self, generation: int) -> None:
        """Protect ``generation`` (and its whole chain) from GC.

        A migration pins every generation it is shipping so keep-N
        retention on the source node cannot evict the image mid-flight;
        the pin is released with :meth:`unpin` once the destination
        acknowledges its commit. Pins nest (pin twice → unpin twice).
        """
        self.get(generation)  # must be a committed generation here
        self._pins[generation] = self._pins.get(generation, 0) + 1

    def unpin(self, generation: int) -> None:
        """Release one pin on ``generation`` (idempotent past zero).

        The generation becomes GC-eligible again at the next
        :meth:`gc` (which every commit runs); nothing is evicted here.
        """
        n = self._pins.get(generation, 0)
        if n <= 1:
            self._pins.pop(generation, None)
        else:
            self._pins[generation] = n - 1

    def pinned(self) -> list[int]:
        """Currently pinned generation ids, oldest first."""
        return sorted(self._pins)

    @contextmanager
    def pin_guard(self, generations: Iterable[int]):
        """Pin ``generations`` for the duration of a ``with`` block.

        The balance guarantee every shipping path needs: however the
        block exits — a clean import acknowledgement, a
        :class:`~repro.errors.CorruptCheckpointError` from arrival
        re-verification, a :class:`~repro.errors.MigrationError` after
        the retry budget, or a dead destination — every pin taken here
        is released, so an abandoned shipment can never wedge keep-N GC.
        Only generations that were successfully pinned are unpinned
        (a missing generation raises before any later pin is taken).
        """
        taken: list[int] = []
        try:
            for gen in generations:
                self.pin(gen)
                taken.append(gen)
            yield taken
        finally:
            for gen in taken:
                self.unpin(gen)

    # -- portability: export / import ------------------------------------------

    def export_generation(self, generation: int) -> dict:
        """Portable wire record of one committed generation.

        The record carries no host- or path-specific state: the image is
        pickled with its ``parent`` link stripped (chains ship one
        generation per record, re-linked at import by
        ``parent_generation``), runtime-only capture state never
        serializes (``CheckpointImage.__getstate__``), and integrity
        travels with the bytes — a CRC over the whole payload plus the
        per-region CRCs recorded when the generation was staged. The
        generation is verified before export so rot on the source node
        is caught here, not attributed to the wire.
        """
        self.verify(generation)
        entry = self.get(generation)
        payload = entry.image.export_payload()
        by_image = {id(e.image): g for g, e in self._generations.items()}
        parent = entry.image.parent
        parent_gen = by_image.get(id(parent)) if parent is not None else None
        return {
            "generation": entry.generation,
            "parent_generation": parent_gen,
            "incremental": entry.image.incremental,
            "payload": payload,
            "payload_crc": zlib.crc32(payload),
            "checksums": {
                int(i): int(c) for i, c in sorted(entry.checksums.items())
            },
            "size_bytes": entry.size_bytes,
        }

    def export_chain(self, generation: int) -> list[dict]:
        """Export ``generation`` plus every chain ancestor held by this
        store, base (full) image first — the ship order of a migration."""
        entry = self.get(generation)
        by_image = {id(e.image): g for g, e in self._generations.items()}
        records = []
        for img in entry.image.chain():
            owner = by_image.get(id(img))
            if owner is not None:
                records.append(self.export_generation(owner))
        return records

    def import_generation(
        self, record: dict, *, parent: CheckpointImage | None = None
    ) -> int:
        """Register an exported generation in *this* store (arrival side).

        Re-verifies integrity end to end before anything is admitted:
        the payload CRC catches bytes flipped on the wire, and after
        unpickling every region is re-checksummed against the CRCs the
        *source* store recorded at stage time — so a corrupt transfer
        raises :class:`CorruptCheckpointError` instead of becoming a
        restorable-looking generation. ``parent`` re-links an
        incremental image to its already-imported ancestor. Returns the
        new local generation id.
        """
        payload = record["payload"]
        if zlib.crc32(payload) != record["payload_crc"]:
            raise CorruptCheckpointError(
                f"imported generation {record['generation']}: payload CRC "
                "mismatch (bytes corrupted in transit)"
            )
        image = CheckpointImage.from_payload(payload, parent=parent)
        checksums = {
            int(i): int(c) for i, c in sorted(record["checksums"].items())
        }
        for idx, region in enumerate(image.regions):
            want = checksums.get(idx)
            if want is None or region.checksum() != want:
                raise CorruptCheckpointError(
                    f"imported generation {record['generation']}: region "
                    f"{idx} @{region.start:#x} failed arrival re-verification"
                )
        if image.incremental and parent is None:
            raise CheckpointStoreError(
                f"generation {record['generation']} is incremental — import "
                "its parent first and pass it as parent="
            )
        gen = self._next_generation
        self._next_generation += 1
        self._generations[gen] = StoredGeneration(
            generation=gen,
            image=image,
            checksums=checksums,
            committed_at_ns=image.created_at_ns,
        )
        self.gc()
        return gen

    def import_chain(self, records: list[dict]) -> list[int]:
        """Import an exported chain (base first); re-links parents by the
        records' ``parent_generation`` ids. Returns the new local ids."""
        by_src_gen: dict[int, CheckpointImage] = {}
        imported: list[int] = []
        for record in records:
            parent_src = record.get("parent_generation")
            parent = by_src_gen.get(parent_src) if parent_src is not None else None
            gen = self.import_generation(record, parent=parent)
            by_src_gen[record["generation"]] = self._generations[gen].image
            imported.append(gen)
        return imported

    # -- retention -------------------------------------------------------------

    def _protected(self) -> set[int]:
        """Generations that must survive GC: the newest ``keep_generations``
        plus every pinned (in-flight) generation, plus every ancestor a
        retained incremental chain still parents."""
        newest = sorted(self._generations, reverse=True)[: self.keep_generations]
        by_image = {id(e.image): g for g, e in self._generations.items()}
        roots = set(newest)
        roots.update(g for g in self._pins if g in self._generations)
        keep = set(roots)
        for gen in sorted(roots):
            for img in self._generations[gen].image.chain():
                owner = by_image.get(id(img))
                if owner is not None:
                    keep.add(owner)
        return keep

    def gc(self) -> list[int]:
        """Evict unprotected generations; returns the evicted ids."""
        keep = self._protected()
        victims = sorted(g for g in self._generations if g not in keep)
        for gen in victims:
            del self._generations[gen]
        self.evicted += len(victims)
        return victims

    # -- introspection ---------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        """Total virtual bytes across committed generations."""
        return sum(e.size_bytes for e in self._generations.values())

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"<CheckpointStore {len(self._generations)} generations "
            f"(latest {self.latest()}), {len(self._staged)} staged, "
            f"{self.size_bytes / (1 << 20):.1f} MB, keep "
            f"{self.keep_generations}>"
        )
