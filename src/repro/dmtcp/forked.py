"""Forked (copy-on-write) checkpointing: write the image off the
application's critical path.

CRUM (Garg et al.) observed that most of a GPU checkpoint's cost is the
image write, and that a forked child can flush the snapshot while the
parent keeps computing; PhoenixOS extends the idea to concurrent
checkpoint/restore. The model here: after quiesce + snapshot, the
application resumes immediately and the image write proceeds on a
*background virtual timeline* ending at ``write_end_ns``. The price:

- writes the application lands inside the not-yet-flushed window charge
  a copy-on-write duplication cost (``HostCosts.cow_copy_bw``), pro-rated
  by how much of the write window the application's dirtying overlapped;
- the *commit point* — and with it the ``image-write`` fault stage and
  the dirty-state clearing of :meth:`CheckpointImage.mark_committed` —
  moves to write completion. A crash before :meth:`ForkedCheckpoint
  .finish` completes leaves the previous generation as the recovery line
  and every dirty bit intact, exactly like an aborted 2PC checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.dmtcp.image import CheckpointImage
from repro.gpu.timing import NS_PER_S, HostCosts
from repro.linux.process import SimProcess

if TYPE_CHECKING:  # avoid a dmtcp → harness import cycle at runtime
    from repro.dmtcp.store import CheckpointStore
    from repro.harness.fault_injection import FaultInjector


@dataclass
class ForkedCheckpoint:
    """An in-flight background image write (the forked child's work)."""

    image: CheckpointImage
    #: application clock when the write was forked off
    fork_ns: float
    #: background-timeline instant the full image is durable on disk
    write_end_ns: float
    costs: HostCosts
    store: "CheckpointStore | None" = None
    fault_injector: "FaultInjector | None" = None
    #: bytes the application dirtied inside the write window and thus
    #: had to be COW-duplicated (filled in by :meth:`finish`)
    cow_bytes: int = 0
    cow_time_ns: float = 0.0
    #: residual time the application blocked waiting for the write to
    #: drain (non-zero only if it needed durability before write_end)
    residual_wait_ns: float = 0.0
    generation: int | None = None
    aborted: bool = False
    #: repro.trace.Tracer receiving COW/forked-write spans; None = untraced
    tracer: object | None = None
    _finished: bool = field(default=False, repr=False)

    @property
    def committed(self) -> bool:
        return self.image.committed

    def in_flight(self, now_ns: float) -> bool:
        """True while the background write is still flushing at ``now_ns``."""
        return not self._finished and now_ns < self.write_end_ns

    def finish(
        self, process: SimProcess | None = None, *, block: bool = True
    ) -> None:
        """Complete the background write and move the commit point here.

        ``process`` is the application process to charge COW/residual
        costs to (``None`` when the parent already died — the forked
        child outlives it and still commits). With ``block=False`` the
        caller does not wait out the remaining write window (the child
        keeps flushing on its own timeline); the commit is still
        recorded, since restore always happens after the child's
        ``write_end_ns``.
        """
        if self._finished:
            return
        if process is not None and process.alive:
            now = process.clock_ns
            window = max(now - self.fork_ns, 1.0)
            # Fraction of the app's post-fork dirtying that landed while
            # the writer still held unflushed pages.
            overlap = min(1.0, (self.write_end_ns - self.fork_ns) / window)
            self.cow_bytes = int(self.image.new_dirty_bytes() * overlap)
            self.cow_time_ns = self.cow_bytes / self.costs.cow_copy_bw * NS_PER_S
            process.advance(self.cow_time_ns)
            if self.tracer is not None and self.cow_time_ns:
                self.tracer.ckpt_span(
                    "cow", now, process.clock_ns, bytes=self.cow_bytes
                )
            if block and process.clock_ns < self.write_end_ns:
                self.residual_wait_ns = self.write_end_ns - process.clock_ns
                process.advance_to(self.write_end_ns)
        try:
            if self.store is not None:
                # Staging fires the image-write fault stage per region; a
                # crash leaves a discardable partial and the image stays
                # uncommitted (dirty bits intact).
                self.generation = self.store.put(self.image)
            else:
                if self.fault_injector is not None:
                    self.fault_injector.check(
                        "image-write", f"forked write pid {self.image.pid}"
                    )
                self.image.mark_committed()
        except Exception:
            self.aborted = True
            self._finished = True
            raise
        self._finished = True
        if self.tracer is not None:
            # The write ran on the forked child's background timeline.
            self.tracer.ckpt_span(
                "forked-write", self.fork_ns, self.write_end_ns,
                bytes=self.image.size_bytes,
            )
            self.tracer.instant(
                "ckpt", "commit", self.write_end_ns, pid=self.image.pid
            )

    def abort(self) -> None:
        """Release a background write that died mid-window; idempotent.

        A no-op after :meth:`finish` completed (the commit cannot be
        undone). Otherwise the writer is torn down without ever reaching
        ``mark_committed``: the image's capture tuples — references into
        the live process's dirty state — are dropped so nothing can
        clear dirty bits later, and every dirty page/span stays intact
        for the next cut. The fault-domain ladder calls this before
        killing a process with an in-flight fork, instead of letting the
        dead window's snapshot epoch dangle (the same leak class as the
        migration pin-leak fix).
        """
        if self._finished:
            return
        self.aborted = True
        self._finished = True
        self.image.region_captures = []
        self.image.contents_captures = []
        if self.tracer is not None:
            self.tracer.instant(
                "ckpt", "forked-abort", self.fork_ns, pid=self.image.pid
            )
