"""DMTCP plugin event API (modelled on dmtcp_event_hook).

Plugins participate in the checkpoint lifecycle:

1. ``on_precheckpoint(image)`` — before memory is written. CRAC uses this
   to drain the GPU, stage active device buffers into blobs, and log
   stream/event metadata.
2. ``skip_ranges()`` — address ranges DMTCP must *not* save. CRAC returns
   every lower-half range: the CUDA library and its arenas are not
   checkpointed (§3.1: "we do not save the memory of the proxy program").
3. ``on_resume(image)`` — after a checkpoint, when the original process
   continues running.
4. ``on_restart(image, process)`` — in the restarted process, after
   upper-half memory is restored. CRAC replays the allocation log into
   the fresh lower half here.
"""

from __future__ import annotations

from repro.dmtcp.image import CheckpointImage
from repro.linux.process import SimProcess


class DmtcpPlugin:
    """Base class; default hooks do nothing."""

    name = "plugin"

    def on_precheckpoint(self, image: CheckpointImage) -> None:
        """Stage plugin state into the image before memory is saved."""

    def skip_ranges(self) -> list[tuple[int, int]]:
        """(start, size) ranges to exclude from the memory dump."""
        return []

    def on_resume(self, image: CheckpointImage) -> None:
        """The original process continues after a checkpoint."""

    def on_restart(self, image: CheckpointImage, process: SimProcess) -> None:
        """Reconstruct plugin-managed state in the restarted process."""
