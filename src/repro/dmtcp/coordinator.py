"""DMTCP coordinator: checkpoint triggering policy.

The real coordinator is a network daemon that tells every rank when to
checkpoint; here it is the policy object the harness uses to trigger a
checkpoint "at a random time during an entire run" (§4.4.1) — modelled
as *after the Nth upper→lower CUDA call*, drawn from a seeded RNG so
experiments are reproducible.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.dmtcp.checkpointer import DmtcpCheckpointer
from repro.dmtcp.image import CheckpointImage


class DmtcpCoordinator:
    """Holds the checkpointer and a trigger predicate."""

    def __init__(self, checkpointer: DmtcpCheckpointer, seed: int = 0) -> None:
        self.checkpointer = checkpointer
        self._rng = random.Random(seed)
        self._trigger_at_call: int | None = None
        self._calls_seen = 0
        self.images: list[CheckpointImage] = []
        self.on_checkpoint: Callable[[CheckpointImage], None] | None = None

    def schedule_random_checkpoint(self, expected_total_calls: int) -> int:
        """Arm a checkpoint at a uniformly random call index."""
        self._trigger_at_call = self._rng.randrange(
            1, max(2, expected_total_calls)
        )
        self._calls_seen = 0
        return self._trigger_at_call

    def schedule_checkpoint_at_call(self, n: int) -> None:
        """Arm a checkpoint after the nth CUDA call from now."""
        self._trigger_at_call = n
        self._calls_seen = 0

    def notify_call(self) -> CheckpointImage | None:
        """Called by the CRAC backend once per upper→lower call; fires the
        checkpoint when the armed call index is reached."""
        if self._trigger_at_call is None:
            return None
        self._calls_seen += 1
        if self._calls_seen < self._trigger_at_call:
            return None
        self._trigger_at_call = None
        return self.checkpoint()

    def checkpoint(
        self,
        *,
        gzip: bool = False,
        incremental: bool = False,
        parent: CheckpointImage | None = None,
    ) -> CheckpointImage:
        """Take a checkpoint now."""
        image = self.checkpointer.checkpoint(
            gzip=gzip, incremental=incremental, parent=parent
        )
        self.images.append(image)
        if self.on_checkpoint is not None:
            self.on_checkpoint(image)
        return image
