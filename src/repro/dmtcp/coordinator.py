"""DMTCP coordinator: checkpoint triggering policy + two-phase commit.

The real coordinator is a network daemon that tells every rank when to
checkpoint; here it is the policy object the harness uses to trigger a
checkpoint "at a random time during an entire run" (§4.4.1) — modelled
as *after the Nth upper→lower CUDA call*, drawn from a seeded RNG so
experiments are reproducible.

For multi-rank jobs the coordinator also owns the *commit* decision of
the distributed checkpoint protocol: every rank stages its image into
its checkpoint store (phase 1), and only if **all** ranks staged
successfully does the coordinator commit them all (phase 2) — otherwise
every staged image is aborted and the previous consistent cut remains
the job's recovery line (:meth:`DmtcpCoordinator.two_phase_commit`,
driven by ``MpiWorld.checkpoint_all_2pc``).

PR 3 adds the :class:`HeartbeatMonitor`: between prepare and commit the
coordinator polls every rank's heartbeat; a rank that misses
``max_missed`` consecutive beats is declared dead, the 2PC is aborted
(no generation half-commits), and the survivors take a quorum decision —
a strict majority continues from the prior cut, anything less aborts the
whole job.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.dmtcp.checkpointer import DmtcpCheckpointer
from repro.dmtcp.image import CheckpointImage
from repro.dmtcp.store import CheckpointStore, StagedCheckpoint
from repro.errors import CheckpointError

if TYPE_CHECKING:  # avoid a dmtcp → harness import cycle at runtime
    from repro.harness.fault_injection import FaultInjector


class DmtcpCoordinator:
    """Holds the checkpointer and a trigger predicate."""

    def __init__(self, checkpointer: DmtcpCheckpointer, seed: int = 0) -> None:
        self.checkpointer = checkpointer
        self._rng = random.Random(seed)
        # Named RNG stream for checkpoint *placement*: other consumers of
        # seeded randomness (fault injection, backoff jitter) must never
        # shift where a scheduled checkpoint lands, or campaigns stop
        # being comparable across fault plans. Same derivation as
        # harness.fault_injection.derive_seed (inlined: dmtcp must not
        # import harness at runtime).
        self._ckpt_rng = random.Random(
            (seed & 0xFFFFFFFF) ^ zlib.crc32(b"ckpt-schedule")
        )
        self._trigger_at_call: int | None = None
        self._calls_seen = 0
        self.images: list[CheckpointImage] = []
        self.on_checkpoint: Callable[[CheckpointImage], None] | None = None

    def schedule_random_checkpoint(self, expected_total_calls: int) -> int:
        """Arm a checkpoint at a uniformly random call index (drawn from
        the placement-only RNG stream)."""
        self._trigger_at_call = self._ckpt_rng.randrange(
            1, max(2, expected_total_calls)
        )
        self._calls_seen = 0
        return self._trigger_at_call

    def schedule_checkpoint_at_call(self, n: int) -> None:
        """Arm a checkpoint after the nth CUDA call from now."""
        self._trigger_at_call = n
        self._calls_seen = 0

    def notify_call(self) -> CheckpointImage | None:
        """Called by the CRAC backend once per upper→lower call; fires the
        checkpoint when the armed call index is reached."""
        if self._trigger_at_call is None:
            return None
        self._calls_seen += 1
        if self._calls_seen < self._trigger_at_call:
            return None
        self._trigger_at_call = None
        return self.checkpoint()

    def checkpoint(
        self,
        *,
        gzip: bool = False,
        incremental: bool = False,
        parent: CheckpointImage | None = None,
        store: CheckpointStore | None = None,
        forked: bool = False,
        speculative: bool = False,
    ) -> CheckpointImage:
        """Take a checkpoint now.

        With ``store`` the image goes through the store's two-phase
        commit (stage → commit); a crash mid-write leaves a discardable
        partial in the store and propagates. With ``forked`` (or
        ``speculative``) the image write (and the store commit, if any)
        happens later, when the attached ``image.forked_writer``
        finishes — the session drives that.
        """
        image = self.checkpointer.checkpoint(
            gzip=gzip, incremental=incremental, parent=parent,
            forked=forked, speculative=speculative,
            defer_commit=store is not None,
        )
        if forked or speculative:
            image.forked_writer.store = store
        elif store is not None:
            store.put(image)
            tracer = self.checkpointer.tracer
            if tracer is not None:
                tracer.instant(
                    "ckpt", "commit",
                    self.checkpointer.process.clock_ns, pid=image.pid,
                )
        self.images.append(image)
        if self.on_checkpoint is not None:
            self.on_checkpoint(image)
        return image

    def stage_checkpoint(
        self,
        store: CheckpointStore,
        *,
        gzip: bool = False,
        incremental: bool = False,
        parent: CheckpointImage | None = None,
    ) -> StagedCheckpoint:
        """Phase 1 of a coordinated checkpoint: capture + stage, no commit.

        The commit point (and with it the dirty-tracking reset) stays
        with phase 2: an aborted 2PC leaves every rank's dirty state
        intact for the next attempt.
        """
        image = self.checkpointer.checkpoint(
            gzip=gzip, incremental=incremental, parent=parent,
            defer_commit=True,
        )
        return store.stage(image)

    @staticmethod
    def two_phase_commit(
        staged: Sequence[tuple[CheckpointStore, StagedCheckpoint]],
        *,
        fault_injector: "FaultInjector | None" = None,
    ) -> list[int]:
        """Phase 2: commit every rank's staged image, or abort them all.

        All-or-nothing: if any staged image is a partial — or the
        ``commit`` fault stage fires, modelling a coordinator crash
        between the phases — every staged image is aborted so no rank
        ever holds a generation its peers lack (a mixed cut would be
        unrestorable as a consistent distributed state).
        """
        try:
            if fault_injector is not None:
                fault_injector.check("commit", f"{len(staged)} ranks staged")
            if any(not s.complete for _, s in staged):
                raise CheckpointError(
                    "coordinated checkpoint aborted: a rank staged a partial"
                )
        except Exception:
            for store, s in staged:
                store.abort(s)
            raise
        return [store.commit(s) for store, s in staged]


# -- heartbeats (runtime fault domain) ----------------------------------------


@dataclass
class RankHealth:
    """The coordinator's view of one rank's liveness."""

    rank: int
    missed: int = 0
    dead: bool = False
    #: beats the coordinator actually received (diagnostics)
    beats: int = 0


class HeartbeatMonitor:
    """Coordinator-side rank liveness during a coordinated checkpoint.

    Between prepare and commit the coordinator runs ``max_missed``
    heartbeat rounds: each round every rank is polled (``beat``), the
    poll interval is charged to the surviving ranks' clocks by the
    caller, and a rank that misses every round is declared dead. The
    ``heartbeat`` fault stage drives misses: kind ``"crash"`` means the
    rank's process died (it misses this and every later round); any
    other kind drops just this round's beat (a transient network miss a
    healthy rank recovers from).
    """

    def __init__(self, n_ranks: int, *, interval_s: float = 0.5,
                 max_missed: int = 3) -> None:
        if max_missed < 1:
            raise ValueError("max_missed must be >= 1")
        self.interval_s = interval_s
        self.max_missed = max_missed
        self.health = [RankHealth(r) for r in range(n_ranks)]

    @property
    def interval_ns(self) -> float:
        return self.interval_s * 1e9

    def beat(self, rank: int, *, arrived: bool) -> None:
        """Record one polling round's outcome for ``rank``."""
        h = self.health[rank]
        if h.dead:
            return
        if arrived:
            h.beats += 1
            h.missed = 0
        else:
            h.missed += 1
            if h.missed >= self.max_missed:
                h.dead = True

    def rebaseline(self, *, revive: bool = False) -> None:
        """Forget pre-migration misses after a restore onto a new node.

        A rank that was mid-migration (or mid-restore) legitimately
        missed beats on the *old* node's timeline; carrying those counts
        across means the first post-migration poll round can tip a
        healthy rank over ``max_missed`` and declare it dead spuriously.
        Clears the miss counter of every live rank; with ``revive`` a
        dead verdict is also withdrawn (the rank demonstrably came back —
        e.g. it was failed over and restored elsewhere).
        """
        for h in self.health:
            if revive:
                h.dead = False
            if not h.dead:
                h.missed = 0

    def dead_ranks(self) -> list[int]:
        """Ranks declared dead so far."""
        return [h.rank for h in self.health if h.dead]

    def alive_ranks(self) -> list[int]:
        """Ranks still considered live."""
        return [h.rank for h in self.health if not h.dead]

    def has_quorum(self) -> bool:
        """Strict majority of ranks alive — the continue/abort decision.

        Without a strict majority the survivors could be the minority
        half of a partition; continuing risks two recovery lines
        (split-brain), so the job must abort.
        """
        return len(self.alive_ranks()) * 2 > len(self.health)
