"""DMTCP stand-in: transparent host-side checkpointing with plugins.

CRAC is literally a DMTCP plugin (§3.2 / §4.2): DMTCP quiesces the
process, walks ``/proc/PID/maps``, and writes every saveable region to a
checkpoint image; plugins get *precheckpoint / resume / restart* events
and may veto address ranges (CRAC vetoes the whole lower half). On
restart DMTCP recreates the saved regions at their original addresses
and hands control back through the plugin chain.

This package models exactly that lifecycle, with virtual-time costs for
image writing/reading (gzip on/off) so checkpoint/restart *times* and
*sizes* (Figures 3 and 5c) are first-class measurables.
"""

from repro.dmtcp.checkpointer import DmtcpCheckpointer
from repro.dmtcp.coordinator import DmtcpCoordinator
from repro.dmtcp.image import CheckpointImage, SavedBlob, SavedRegion
from repro.dmtcp.plugins import DmtcpPlugin
from repro.dmtcp.store import CheckpointStore, StagedCheckpoint, StoredGeneration

__all__ = [
    "CheckpointImage",
    "SavedRegion",
    "SavedBlob",
    "DmtcpPlugin",
    "DmtcpCheckpointer",
    "DmtcpCoordinator",
    "CheckpointStore",
    "StagedCheckpoint",
    "StoredGeneration",
]
