"""Vectorized interval structures for the capture/sanitize hot path.

Two data structures back the per-write bookkeeping that used to be pure
Python span-list rebuilds (the O(pages)/O(history) hot loops the ROADMAP
calls out):

- :class:`EpochIntervalIndex` — sorted disjoint ``(start, end, epoch)``
  byte intervals held in numpy arrays, where ``epoch`` is the monotone
  write-sequence number of the range's *last* write. Writes append to a
  pending buffer in O(1); queries flush the buffer with one vectorized
  boundary sweep. Byte-exact: observationally identical to the legacy
  per-write span-list rebuild (``tests/gpu/test_dirty_vector_equivalence``
  proves it with Hypothesis), so the epoch-bounded-commit semantics of
  the forked checkpoint path are preserved bit-for-bit.
- :class:`SpanSet` — a sorted disjoint interval set (no epochs) with the
  same lazy-append design, used for the sanitizer's written-byte
  coverage (initcheck) and access-summary footprints.

Both structures expose a *page-granular epoch/coverage view*
(:meth:`EpochIntervalIndex.page_epochs`) so page-oriented consumers (UVM
residency accounting, perf reporting) can read one numpy array instead
of walking spans.

Flush preconditions: ``mark()`` must be called with non-decreasing
epochs (the caller's write counter is monotone), which makes
"last write wins" equal to "max epoch wins" and keeps the sweep exact.
"""

from __future__ import annotations

import numpy as np

_EMPTY = np.empty(0, dtype=np.int64)


def _program_error(code_name: str, msg: str):
    """Classified program-severity error (deferred import: this module
    sits below ``repro.cuda`` in the import graph)."""
    from repro.cuda.errors import CudaErrorCode
    from repro.errors import CudaError

    return CudaError(
        f"{code_name}: {msg}", code=CudaErrorCode[code_name], severity="program"
    )


def _normalize(starts: np.ndarray, ends: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sort + merge (possibly overlapping/touching) intervals, vectorized."""
    keep = ends > starts
    starts, ends = starts[keep], ends[keep]
    if starts.size == 0:
        return _EMPTY, _EMPTY
    order = np.argsort(starts, kind="stable")
    s, e = starts[order], ends[order]
    cm = np.maximum.accumulate(e)
    # A new merged group starts where the interval begins past the
    # running maximum end of everything before it.
    new_group = np.empty(s.size, dtype=bool)
    new_group[0] = True
    np.greater(s[1:], cm[:-1], out=new_group[1:])
    gidx = np.flatnonzero(new_group)
    out_s = s[gidx]
    last = np.empty(gidx.size, dtype=np.int64)
    last[:-1] = gidx[1:] - 1
    last[-1] = s.size - 1
    return out_s, cm[last]


class SpanSet:
    """Sorted disjoint byte intervals with O(1) lazy insertion.

    ``add`` appends to a pending list; any query first folds the pending
    intervals into the committed arrays with one vectorized merge. This
    replaces the sanitizer's per-write ``merge_spans(written + [(lo,
    hi)])`` full rebuild with amortized O(1) inserts.
    """

    __slots__ = ("_starts", "_ends", "_pending")

    def __init__(self, spans=()) -> None:
        self._starts = _EMPTY
        self._ends = _EMPTY
        self._pending: list[tuple[int, int]] = [
            (lo, hi) for lo, hi in spans if hi > lo
        ]

    def add(self, lo: int, hi: int) -> None:
        """Insert ``[lo, hi)`` (amortized O(1))."""
        if hi > lo:
            self._pending.append((lo, hi))

    def _flush(self) -> None:
        if not self._pending:
            return
        p = np.asarray(self._pending, dtype=np.int64)
        self._pending.clear()
        self._starts, self._ends = _normalize(
            np.concatenate([self._starts, p[:, 0]]),
            np.concatenate([self._ends, p[:, 1]]),
        )

    def spans(self) -> list[tuple[int, int]]:
        """The merged intervals as a list of ``(lo, hi)`` tuples."""
        self._flush()
        return list(zip(self._starts.tolist(), self._ends.tolist()))

    def holes(self, lo: int, hi: int) -> list[tuple[int, int]]:
        """Sub-ranges of ``[lo, hi)`` not covered by the set."""
        if hi <= lo:
            return []
        self._flush()
        # Committed intervals overlapping the query window.
        i = int(np.searchsorted(self._ends, lo, side="right"))
        j = int(np.searchsorted(self._starts, hi, side="left"))
        gap_lo = np.concatenate([[lo], self._ends[i:j]])
        gap_hi = np.concatenate([self._starts[i:j], [hi]])
        gap_lo = np.clip(gap_lo, lo, hi)
        gap_hi = np.clip(gap_hi, lo, hi)
        keep = gap_hi > gap_lo
        return list(zip(gap_lo[keep].tolist(), gap_hi[keep].tolist()))

    def covers(self, lo: int, hi: int) -> bool:
        """True iff ``[lo, hi)`` is entirely inside the set."""
        if hi <= lo:
            return True
        self._flush()
        i = int(np.searchsorted(self._starts, lo, side="right")) - 1
        return i >= 0 and self._ends[i] >= hi

    @property
    def byte_count(self) -> int:
        self._flush()
        return int((self._ends - self._starts).sum())

    def __bool__(self) -> bool:
        return bool(self._pending) or self._starts.size > 0


class EpochIntervalIndex:
    """Disjoint ``(start, end, epoch)`` intervals; epoch = last write.

    The committed state lives in three parallel numpy arrays (sorted by
    start, disjoint, non-empty). :meth:`mark` is an O(1) append to a
    pending buffer; queries call :meth:`_flush`, which folds the pending
    writes in with a single boundary sweep over only the *window* of
    committed intervals the pending writes overlap — later writes
    supersede earlier epochs byte-for-byte, exactly like the legacy
    per-write rebuild.
    """

    __slots__ = ("_starts", "_ends", "_epochs", "_pending", "_last_epoch")

    def __init__(self) -> None:
        self._starts = _EMPTY
        self._ends = _EMPTY
        self._epochs = _EMPTY
        self._pending: list[tuple[int, int, int]] = []
        self._last_epoch = 0

    # -- write path ----------------------------------------------------------

    def mark(self, lo: int, hi: int, epoch: int) -> None:
        """Record a write of ``[lo, hi)`` at ``epoch`` (amortized O(1)).

        Epochs must be non-decreasing across calls — the flush sweep
        relies on "last write wins" coinciding with "max epoch wins".
        """
        if hi <= lo:
            return
        if epoch < self._last_epoch:
            raise _program_error(
                "INVALID_VALUE",
                f"mark() epoch went backwards ({epoch} < {self._last_epoch})",
            )
        self._last_epoch = epoch
        self._pending.append((lo, hi, epoch))

    # -- flush ---------------------------------------------------------------

    @staticmethod
    def _sweep(
        los: np.ndarray, his: np.ndarray, eps: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Boundary sweep: paint intervals in order (later wins), then
        compress equal-epoch contiguous segments. ``los/his/eps`` must be
        ordered so that a later entry supersedes any earlier overlap."""
        bounds = np.unique(np.concatenate([los, his]))
        seg_ep = np.zeros(bounds.size - 1, dtype=np.int64)
        il = np.searchsorted(bounds, los)
        ih = np.searchsorted(bounds, his)
        for k in range(los.size):
            seg_ep[il[k] : ih[k]] = eps[k]
        keep = np.flatnonzero(seg_ep)
        if keep.size == 0:
            return _EMPTY, _EMPTY, _EMPTY
        s = bounds[keep]
        e = bounds[keep + 1]
        ep = seg_ep[keep]
        new_group = np.empty(keep.size, dtype=bool)
        new_group[0] = True
        np.logical_or(s[1:] != e[:-1], ep[1:] != ep[:-1], out=new_group[1:])
        gidx = np.flatnonzero(new_group)
        last = np.empty(gidx.size, dtype=np.int64)
        last[:-1] = gidx[1:] - 1
        last[-1] = keep.size - 1
        return s[gidx], e[last], ep[gidx]

    def _flush(self) -> None:
        if not self._pending:
            return
        p = np.asarray(self._pending, dtype=np.int64)
        self._pending.clear()
        p_lo = int(p[:, 0].min())
        p_hi = int(p[:, 1].max())
        # Only committed intervals inside the pending window participate
        # in the sweep; the untouched prefix/suffix pass through.
        i = int(np.searchsorted(self._ends, p_lo, side="right"))
        j = int(np.searchsorted(self._starts, p_hi, side="left"))
        s, e, ep = self._sweep(
            np.concatenate([self._starts[i:j], p[:, 0]]),
            np.concatenate([self._ends[i:j], p[:, 1]]),
            np.concatenate([self._epochs[i:j], p[:, 2]]),
        )
        s = np.concatenate([self._starts[:i], s, self._starts[j:]])
        e = np.concatenate([self._ends[:i], e, self._ends[j:]])
        ep = np.concatenate([self._epochs[:i], ep, self._epochs[j:]])
        # Seam repair: a swept interval may now touch an untouched
        # neighbour with the same epoch; re-merge contiguity groups.
        if s.size > 1:
            new_group = np.empty(s.size, dtype=bool)
            new_group[0] = True
            np.logical_or(s[1:] != e[:-1], ep[1:] != ep[:-1], out=new_group[1:])
            if not new_group.all():
                gidx = np.flatnonzero(new_group)
                last = np.empty(gidx.size, dtype=np.int64)
                last[:-1] = gidx[1:] - 1
                last[-1] = s.size - 1
                s, e, ep = s[gidx], e[last], ep[gidx]
        self._starts, self._ends, self._epochs = s, e, ep

    # -- queries -------------------------------------------------------------

    def intervals(self) -> list[tuple[int, int, int]]:
        """All ``(start, end, epoch)`` triples (sorted, disjoint)."""
        self._flush()
        return list(zip(
            self._starts.tolist(), self._ends.tolist(), self._epochs.tolist()
        ))

    def spans(self) -> list[tuple[int, int]]:
        """Dirty byte ranges, merged across epochs."""
        self._flush()
        if self._starts.size == 0:
            return []
        new_group = np.empty(self._starts.size, dtype=bool)
        new_group[0] = True
        np.greater(self._starts[1:], self._ends[:-1], out=new_group[1:])
        gidx = np.flatnonzero(new_group)
        last = np.empty(gidx.size, dtype=np.int64)
        last[:-1] = gidx[1:] - 1
        last[-1] = self._starts.size - 1
        return list(zip(
            self._starts[gidx].tolist(), self._ends[last].tolist()
        ))

    @property
    def byte_count(self) -> int:
        """Total dirty bytes."""
        self._flush()
        return int((self._ends - self._starts).sum())

    def bytes_since(self, epoch: int) -> int:
        """Bytes whose last write came strictly after ``epoch``."""
        self._flush()
        sel = self._epochs > epoch
        return int((self._ends[sel] - self._starts[sel]).sum())

    def page_epochs(self, page_size: int, size: int) -> np.ndarray:
        """Page-granular epoch array: max last-write epoch per page
        (0 = clean). The coarse view page-oriented consumers read."""
        self._flush()
        n_pages = (size + page_size - 1) // page_size
        out = np.zeros(n_pages, dtype=np.int64)
        starts, ends, epochs = self._starts, self._ends, self._epochs
        for k in range(starts.size):
            p0 = starts[k] // page_size
            p1 = (ends[k] - 1) // page_size + 1
            np.maximum(out[p0:p1], epochs[k], out=out[p0:p1])
        return out

    # -- clearing ------------------------------------------------------------

    def clear_all(self) -> None:
        """Forget everything (a full-image commit)."""
        self._starts = self._ends = self._epochs = _EMPTY
        self._pending.clear()

    def clear(self, spans, up_to_epoch: int | None = None) -> None:
        """Remove ``spans`` from the index, epoch-bounded.

        With ``up_to_epoch`` only bytes whose last write is at or before
        that epoch are cleared — bytes re-written while a (forked) image
        was still flushing stay dirty for the next incremental cut.
        """
        self._flush()
        c = np.asarray(
            [(lo, hi) for lo, hi in spans if hi > lo], dtype=np.int64
        ).reshape(-1, 2)
        if c.size == 0 or self._starts.size == 0:
            return
        c_lo, c_hi = _normalize(c[:, 0], c[:, 1])
        bounds = np.unique(np.concatenate([
            self._starts, self._ends, c_lo, c_hi
        ]))
        seg_ep = np.zeros(bounds.size - 1, dtype=np.int64)
        il = np.searchsorted(bounds, self._starts)
        ih = np.searchsorted(bounds, self._ends)
        for k in range(self._starts.size):
            seg_ep[il[k] : ih[k]] = self._epochs[k]
        cleared = np.zeros(bounds.size - 1, dtype=bool)
        jl = np.searchsorted(bounds, c_lo)
        jh = np.searchsorted(bounds, c_hi)
        for k in range(c_lo.size):
            cleared[jl[k] : jh[k]] = True
        if up_to_epoch is not None:
            cleared &= seg_ep <= up_to_epoch
        seg_ep[cleared] = 0
        keep = np.flatnonzero(seg_ep)
        if keep.size == 0:
            self._starts = self._ends = self._epochs = _EMPTY
            return
        s, e, ep = bounds[keep], bounds[keep + 1], seg_ep[keep]
        new_group = np.empty(keep.size, dtype=bool)
        new_group[0] = True
        np.logical_or(s[1:] != e[:-1], ep[1:] != ep[:-1], out=new_group[1:])
        gidx = np.flatnonzero(new_group)
        last = np.empty(gidx.size, dtype=np.int64)
        last[:-1] = gidx[1:] - 1
        last[-1] = keep.size - 1
        self._starts, self._ends, self._epochs = s[gidx], e[last], ep[gidx]

    def __bool__(self) -> bool:
        return bool(self._pending) or self._starts.size > 0
