"""The virtual-time GPU execution engine.

Models the three hardware resources whose contention shapes the paper's
stream experiments (Figure 4):

- **compute**: up to ``spec.max_concurrent_kernels`` kernels execute
  simultaneously (128 on the V100's compute capability 7.0 — the limit
  simpleStreams is configured up to in §4.4.2);
- **copy engines**: one H2D and one D2H DMA engine; copies on different
  streams serialize per engine but overlap with kernels, which is what
  makes the streamed simpleStreams version ≈n× cheaper on memcpy;
- **legacy default stream**: stream 0 synchronizes with all others.

All methods take and return virtual-time nanoseconds; the host's clock is
owned by :class:`repro.linux.process.SimProcess`, not by the device.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.gpu.streams import Event, Stream
from repro.gpu.timing import GpuSpec


@dataclass(frozen=True)
class TraceEvent:
    """One scheduled device operation (nvprof-timeline style)."""

    kind: str  # "kernel" | "copy"
    label: str
    stream_sid: int
    start_ns: float
    end_ns: float

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns


class GpuDevice:
    """One simulated GPU."""

    def __init__(self, spec: GpuSpec) -> None:
        self.spec = spec
        self._streams: set[Stream] = set()
        #: end-times of kernels admitted to the compute resource
        self._running: list[float] = []
        self._copy_engine_ready = {"h2d": 0.0, "d2h": 0.0, "d2d": 0.0}
        #: completion time of the last default-stream operation
        self._default_barrier_ns = 0.0
        # -- accounting (read by the profiler / harness) --
        self.total_kernel_ns = 0.0
        self.total_kernels = 0
        self.copied_bytes = {"h2d": 0, "d2h": 0, "d2d": 0}
        #: nvprof-style timeline; None unless tracing is enabled
        self.trace: list[TraceEvent] | None = None

    def enable_trace(self) -> None:
        """Start recording a device timeline (nvprof --print-gpu-trace)."""
        self.trace = []

    def disable_trace(self) -> None:
        """Stop recording the device timeline."""
        self.trace = None

    # -- stream management ----------------------------------------------------

    def register_stream(self, stream: Stream) -> None:
        """Attach a stream to this device's timeline."""
        stream.ready_ns = max(stream.ready_ns, self._default_barrier_ns)
        self._streams.add(stream)

    def unregister_stream(self, stream: Stream) -> None:
        """Detach a (destroyed) stream from the timeline."""
        self._streams.discard(stream)

    @property
    def active_streams(self) -> int:
        return len(self._streams)

    # -- scheduling -------------------------------------------------------------

    def _start_time(self, stream: Stream, at_ns: float) -> float:
        """Earliest time an op on ``stream`` submitted at ``at_ns`` may start."""
        earliest = max(stream.ready_ns, at_ns)
        if stream.sid == 0:
            # Legacy default stream waits for everything in flight.
            for s in self._streams:
                earliest = max(earliest, s.ready_ns)
        earliest = max(earliest, self._default_barrier_ns)
        return earliest

    def _finish(self, stream: Stream, end_ns: float) -> None:
        stream.ready_ns = end_ns
        if stream.sid == 0:
            self._default_barrier_ns = end_ns

    def enqueue_kernel(
        self, stream: Stream, duration_ns: float, at_ns: float, label: str = "kernel"
    ) -> float:
        """Schedule a kernel; returns its completion time.

        Admission respects the concurrent-kernel limit: when the device is
        saturated the kernel waits for the earliest-finishing one.
        """
        earliest = self._start_time(stream, at_ns)
        start = self._admit_kernel(earliest)
        end = start + duration_ns
        heapq.heappush(self._running, end)
        self._finish(stream, end)
        stream.kernel_count += 1
        self.total_kernel_ns += duration_ns
        self.total_kernels += 1
        if self.trace is not None:
            self.trace.append(TraceEvent("kernel", label, stream.sid, start, end))
        return end

    def _admit_kernel(self, earliest: float) -> float:
        heap = self._running
        while heap and heap[0] <= earliest:
            heapq.heappop(heap)
        if len(heap) >= self.spec.max_concurrent_kernels:
            # Wait for a slot: the earliest-finishing running kernel.
            slot_free = heapq.heappop(heap)
            earliest = max(earliest, slot_free)
            while heap and heap[0] <= earliest:
                heapq.heappop(heap)
        return earliest

    def enqueue_copy(
        self, stream: Stream, nbytes: int, kind: str, at_ns: float
    ) -> float:
        """Schedule a DMA copy; returns its completion time."""
        if kind not in self._copy_engine_ready:
            raise ValueError(f"unknown copy kind {kind!r}")
        earliest = max(
            self._start_time(stream, at_ns), self._copy_engine_ready[kind]
        )
        end = earliest + self.spec.copy_cost_ns(nbytes, kind)
        self._copy_engine_ready[kind] = end
        self._finish(stream, end)
        self.copied_bytes[kind] += nbytes
        if self.trace is not None:
            self.trace.append(
                TraceEvent("copy", f"memcpy-{kind}", stream.sid, earliest, end)
            )
        return end

    def busy_delay(self, stream: Stream, duration_ns: float, at_ns: float) -> float:
        """Schedule an opaque device-side delay (fault servicing etc.)."""
        start = self._start_time(stream, at_ns)
        end = start + duration_ns
        self._finish(stream, end)
        return end

    # -- synchronization ------------------------------------------------------------

    def stream_ready(self, stream: Stream) -> float:
        """Time at which all work enqueued so far on ``stream`` completes."""
        return stream.ready_ns

    def synchronize_all(self) -> float:
        """cudaDeviceSynchronize: completion time of all enqueued work."""
        t = self._default_barrier_ns
        for s in self._streams:
            t = max(t, s.ready_ns)
        return t

    def record_event(self, event: Event, stream: Stream, at_ns: float) -> None:
        """cudaEventRecord: event completes when prior stream work does."""
        event.timestamp_ns = max(stream.ready_ns, at_ns)
        event.recorded = True

    def stream_wait_event(self, stream: Stream, event: Event) -> None:
        """cudaStreamWaitEvent: future stream work waits for the event."""
        if event.recorded:
            stream.ready_ns = max(stream.ready_ns, event.timestamp_ns)
