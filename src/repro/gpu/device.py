"""The virtual-time GPU execution engine.

Models the three hardware resources whose contention shapes the paper's
stream experiments (Figure 4):

- **compute**: up to ``spec.max_concurrent_kernels`` kernels execute
  simultaneously (128 on the V100's compute capability 7.0 — the limit
  simpleStreams is configured up to in §4.4.2);
- **copy engines**: one H2D and one D2H DMA engine; copies on different
  streams serialize per engine but overlap with kernels, which is what
  makes the streamed simpleStreams version ≈n× cheaper on memcpy;
- **legacy default stream**: stream 0 synchronizes with all others.

All methods take and return virtual-time nanoseconds; the host's clock is
owned by :class:`repro.linux.process.SimProcess`, not by the device.

Runtime fault domain (PR 3): when a :class:`FaultInjector` is attached
(``fault_injector`` attribute), enqueue paths consult the runtime fault
stages. An ``ecc`` fault raises a fatal :class:`~repro.errors.CudaError`
*before* any scheduling state changes, so a retried enqueue is clean. A
``kernel-hang``/``copy-stall`` fault completes the enqueue but inflates
the op past the watchdog bound and poisons the stream (``stream.fault``)
— detection happens later, at the next synchronization, exactly like a
real driver watchdog. Every enqueue is also recorded into ``op_log`` (a
:class:`repro.core.replay_log.StreamOpLog`) so the fault domain's
stream-reset rung can re-issue the in-flight window.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import CudaError
from repro.gpu.streams import Event, Stream
from repro.gpu.timing import COPY_STALL_NS, KERNEL_HANG_NS, GpuSpec


@dataclass(frozen=True)
class TraceEvent:
    """One scheduled device operation (nvprof-timeline style)."""

    kind: str  # "kernel" | "copy"
    label: str
    stream_sid: int
    start_ns: float
    end_ns: float

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns


class GpuDevice:
    """One simulated GPU."""

    def __init__(self, spec: GpuSpec) -> None:
        self.spec = spec
        self._streams: set[Stream] = set()
        #: end-times of kernels admitted to the compute resource
        self._running: list[float] = []
        self._copy_engine_ready = {"h2d": 0.0, "d2h": 0.0, "d2d": 0.0}
        #: completion time of the last default-stream operation
        self._default_barrier_ns = 0.0
        # -- accounting (read by the profiler / harness) --
        self.total_kernel_ns = 0.0
        self.total_kernels = 0
        self.copied_bytes = {"h2d": 0, "d2h": 0, "d2d": 0}
        #: nvprof-style timeline; None unless tracing is enabled
        self.trace: list[TraceEvent] | None = None
        #: repro.trace.Tracer receiving per-op spans; None = untraced
        self.tracer = None
        # -- runtime fault domain (module docstring) --
        #: FaultInjector consulted at enqueue time; None = no faults
        self.fault_injector = None
        #: StreamOpLog of in-flight ops for the stream-reset rung; None
        #: until the fault domain attaches one
        self.op_log = None
        #: count of injected ECC page errors (campaign accounting)
        self.ecc_errors = 0
        #: repro.spec.HandleTable whose stream/event versions advance on
        #: every mutating op — the speculative checkpoint's conflict
        #: source; None until a session wires one
        self.handle_table = None

    def _trip(self, stage: str, context: str) -> str | None:
        """Consult the attached injector at a runtime fault stage."""
        if self.fault_injector is None:
            return None
        return self.fault_injector.trip(stage, context)

    @staticmethod
    def _fatal(code_name: str, msg: str) -> CudaError:
        # Deferred import: repro.gpu must not pull in repro.cuda at
        # module load time (cuda/api.py imports this module).
        from repro.cuda.errors import CudaErrorCode

        return CudaError(
            f"{code_name}: {msg}", code=CudaErrorCode[code_name],
            severity="fatal",
        )

    def enable_trace(self) -> None:
        """Start recording a device timeline (nvprof --print-gpu-trace)."""
        self.trace = []

    def disable_trace(self) -> None:
        """Stop recording the device timeline."""
        self.trace = None

    # -- stream management ----------------------------------------------------

    def register_stream(self, stream: Stream) -> None:
        """Attach a stream to this device's timeline."""
        stream.ready_ns = max(stream.ready_ns, self._default_barrier_ns)
        self._streams.add(stream)

    def unregister_stream(self, stream: Stream) -> None:
        """Detach a (destroyed) stream from the timeline."""
        self._streams.discard(stream)

    @property
    def active_streams(self) -> int:
        return len(self._streams)

    # -- scheduling -------------------------------------------------------------

    def _start_time(self, stream: Stream, at_ns: float) -> float:
        """Earliest time an op on ``stream`` submitted at ``at_ns`` may start."""
        earliest = max(stream.ready_ns, at_ns)
        if stream.sid == 0:
            # Legacy default stream waits for everything in flight.
            for s in self._streams:
                earliest = max(earliest, s.ready_ns)
        earliest = max(earliest, self._default_barrier_ns)
        return earliest

    def _finish(self, stream: Stream, end_ns: float) -> None:
        stream.ready_ns = end_ns
        if stream.sid == 0:
            self._default_barrier_ns = end_ns

    def enqueue_kernel(
        self, stream: Stream, duration_ns: float, at_ns: float, label: str = "kernel"
    ) -> float:
        """Schedule a kernel; returns its completion time.

        Admission respects the concurrent-kernel limit: when the device is
        saturated the kernel waits for the earliest-finishing one.
        """
        # ECC fires before any scheduling state changes: a post-restore
        # re-issue of this launch starts from a clean timeline.
        if self._trip("ecc", label) is not None:
            self.ecc_errors += 1
            raise self._fatal(
                "ECC_UNCORRECTABLE",
                f"uncorrectable ECC page error during {label!r}",
            )
        intended_ns = duration_ns
        hang = self._trip("kernel-hang", label) is not None
        if hang:
            duration_ns += KERNEL_HANG_NS
            stream.fault = "kernel-hang"
        earliest = self._start_time(stream, at_ns)
        start = self._admit_kernel(earliest)
        end = start + duration_ns
        heapq.heappush(self._running, end)
        self._finish(stream, end)
        stream.kernel_count += 1
        self.total_kernel_ns += duration_ns
        self.total_kernels += 1
        if self.handle_table is not None:
            self.handle_table.bump("stream", stream.sid)
        if self.op_log is not None:
            # Log the *intended* duration: the stream-reset rung replays
            # the op as it should have run, not the hung version.
            self.op_log.record(
                stream.sid, "kernel", label, intended_ns
            )
        if self.trace is not None:
            self.trace.append(TraceEvent("kernel", label, stream.sid, start, end))
        if self.tracer is not None:
            self.tracer.on_device_op("kernel", label, stream.sid, start, end)
        return end

    def _admit_kernel(self, earliest: float) -> float:
        heap = self._running
        while heap and heap[0] <= earliest:
            heapq.heappop(heap)
        if len(heap) >= self.spec.max_concurrent_kernels:
            # Wait for a slot: the earliest-finishing running kernel.
            slot_free = heapq.heappop(heap)
            earliest = max(earliest, slot_free)
            while heap and heap[0] <= earliest:
                heapq.heappop(heap)
        return earliest

    def enqueue_copy(
        self, stream: Stream, nbytes: int, kind: str, at_ns: float
    ) -> float:
        """Schedule a DMA copy; returns its completion time."""
        if kind not in self._copy_engine_ready:
            from repro.gpu.timing import _program_error

            raise _program_error(
                "INVALID_VALUE", f"unknown copy kind {kind!r}"
            )
        stall = self._trip("copy-stall", f"memcpy-{kind}") is not None
        earliest = max(
            self._start_time(stream, at_ns), self._copy_engine_ready[kind]
        )
        end = earliest + self.spec.copy_cost_ns(nbytes, kind)
        if stall:
            # The engine wedges mid-transfer: it (and the stream) stay
            # busy past the watchdog bound until a stream reset clears it.
            end += COPY_STALL_NS
            stream.fault = "copy-stall"
        self._copy_engine_ready[kind] = end
        self._finish(stream, end)
        self.copied_bytes[kind] += nbytes
        if self.handle_table is not None:
            self.handle_table.bump("stream", stream.sid)
        if self.op_log is not None:
            self.op_log.record(
                stream.sid, "copy", f"memcpy-{kind}",
                self.spec.copy_cost_ns(nbytes, kind),
                copy_kind=kind, nbytes=nbytes,
            )
        if self.trace is not None:
            self.trace.append(
                TraceEvent("copy", f"memcpy-{kind}", stream.sid, earliest, end)
            )
        if self.tracer is not None:
            self.tracer.on_device_op(
                "copy", f"memcpy-{kind}", stream.sid, earliest, end,
                engine=kind, nbytes=nbytes,
            )
        return end

    def requeue(self, stream: Stream, record) -> float:
        """Re-enqueue a logged op during stream-reset replay.

        Timing-only re-issue of a :class:`StreamOpRecord`: bypasses
        fault injection (replay must not re-fault) and op logging
        (replay must not observe itself). Content was already applied at
        the original enqueue, so only device occupancy is re-charged.
        """
        at_ns = stream.ready_ns
        if record.kind == "kernel":
            earliest = self._start_time(stream, at_ns)
            start = self._admit_kernel(earliest)
            end = start + record.duration_ns
            heapq.heappush(self._running, end)
            self._finish(stream, end)
            self.total_kernel_ns += record.duration_ns
            if self.trace is not None:
                self.trace.append(TraceEvent(
                    "kernel", f"replay:{record.label}", stream.sid, start, end
                ))
            if self.tracer is not None:
                self.tracer.on_device_op(
                    "kernel", f"replay:{record.label}", stream.sid, start, end
                )
            return end
        engine = record.copy_kind or "d2d"
        earliest = max(
            self._start_time(stream, at_ns), self._copy_engine_ready[engine]
        )
        end = earliest + record.duration_ns
        self._copy_engine_ready[engine] = end
        self._finish(stream, end)
        if self.trace is not None:
            self.trace.append(TraceEvent(
                "copy", f"replay:{record.label}", stream.sid, earliest, end
            ))
        if self.tracer is not None:
            self.tracer.on_device_op(
                "copy", f"replay:{record.label}", stream.sid, earliest, end,
                engine=engine,
            )
        return end

    # -- fault-domain resets ----------------------------------------------------

    def flagged_streams(self) -> list[Stream]:
        """Streams currently poisoned by a hang/stall fault."""
        return sorted(
            (s for s in self._streams if s.fault is not None),
            key=lambda s: s.sid,
        )

    def reset_stream(self, stream: Stream, now_ns: float) -> None:
        """Fault-domain stream reset: clear the poison and the backlog.

        The hung/stalled work is abandoned (its inflated completion time
        is discarded) and the stream becomes schedulable at ``now_ns``.
        The caller replays the abandoned window via ``requeue``.
        """
        stream.fault = None
        stream.ready_ns = now_ns
        if stream.sid == 0:
            self._default_barrier_ns = now_ns
        if self.trace is not None:
            # Abandoned work never completed: clamp the in-flight event
            # to the reset instant and drop queued-but-unstarted ones,
            # mirroring what Tracer.clamp_stream does for span storage.
            clamped: list[TraceEvent] = []
            for ev in self.trace:
                if ev.stream_sid != stream.sid or ev.end_ns <= now_ns:
                    clamped.append(ev)
                elif ev.start_ns < now_ns:
                    clamped.append(TraceEvent(
                        ev.kind, f"aborted:{ev.label}", ev.stream_sid,
                        ev.start_ns, now_ns,
                    ))
            self.trace = clamped
        if self.tracer is not None:
            self.tracer.clamp_stream(stream.sid, now_ns)

    def rebaseline_stream(self, stream: Stream, now_ns: float) -> None:
        """Restart/migration rebaseline of an adopted stream handle.

        An application-held handle crossing a restore carries the *dead*
        process's timeline state: a poison flag from a fault that hit
        after the checkpoint cut, or a ``ready_ns`` inflated by a hung
        kernel. The checkpoint drained every stream before capture, so
        none of that state describes restored work — drop the poison and
        clamp the baseline down to the restored clock (``adopt`` paths
        only ever raise it), or the first post-restore sync trips the
        watchdog on a fault that no longer exists.
        """
        stream.fault = None
        if stream.ready_ns > now_ns:
            stream.ready_ns = now_ns

    def reset_copy_engines(self, now_ns: float) -> None:
        """Clamp wedged copy engines back to ``now_ns``."""
        for kind, ready in self._copy_engine_ready.items():
            if ready > now_ns:
                self._copy_engine_ready[kind] = now_ns

    def busy_delay(self, stream: Stream, duration_ns: float, at_ns: float) -> float:
        """Schedule an opaque device-side delay (fault servicing etc.)."""
        start = self._start_time(stream, at_ns)
        end = start + duration_ns
        self._finish(stream, end)
        return end

    # -- synchronization ------------------------------------------------------------

    def stream_ready(self, stream: Stream) -> float:
        """Time at which all work enqueued so far on ``stream`` completes."""
        return stream.ready_ns

    def synchronize_all(self) -> float:
        """cudaDeviceSynchronize: completion time of all enqueued work."""
        t = self._default_barrier_ns
        for s in self._streams:
            t = max(t, s.ready_ns)
        return t

    def record_event(self, event: Event, stream: Stream, at_ns: float) -> None:
        """cudaEventRecord: event completes when prior stream work does."""
        event.timestamp_ns = max(stream.ready_ns, at_ns)
        event.recorded = True
        if self.handle_table is not None:
            self.handle_table.bump("event", event.eid)

    def stream_wait_event(self, stream: Stream, event: Event) -> None:
        """cudaStreamWaitEvent: future stream work waits for the event."""
        if event.recorded:
            stream.ready_ns = max(stream.ready_ns, event.timestamp_ns)
