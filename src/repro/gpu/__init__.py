"""Simulated NVIDIA GPU device.

A discrete-event, virtual-time model of the pieces of a GPU that CRAC's
evaluation exercises:

- :mod:`~repro.gpu.timing`   — the calibrated cost model and device specs
  (Tesla V100 and Quadro K600, the two GPUs of the paper).
- :mod:`~repro.gpu.device`   — per-stream timelines, the concurrent-kernel
  limit (128 on compute capability 7.0), and separate H2D/D2H copy
  engines so streams genuinely overlap copies with kernels (Figure 4b).
- :mod:`~repro.gpu.memory`   — the deterministic "allocation arena"
  behaviour of ``cudaMalloc`` that CRAC's log-and-replay relies on
  (paper §3.2.1/§3.2.3), plus sparse buffer contents so paper-scale
  footprints don't need paper-scale RAM.
- :mod:`~repro.gpu.uvm`      — page-granular managed memory with
  fault-driven migration and concurrent-writer tracking (the case that
  breaks CRUM's shadow pages).
"""

from repro.gpu.device import GpuDevice
from repro.gpu.memory import ArenaAllocator, DeviceBuffer, PagedContents
from repro.gpu.streams import Event, Stream
from repro.gpu.timing import GPU_SPECS, GpuSpec, HostCosts
from repro.gpu.uvm import ManagedBuffer, PageLocation, UvmManager

__all__ = [
    "GpuDevice",
    "Stream",
    "Event",
    "GpuSpec",
    "GPU_SPECS",
    "HostCosts",
    "ArenaAllocator",
    "DeviceBuffer",
    "PagedContents",
    "UvmManager",
    "ManagedBuffer",
    "PageLocation",
]
