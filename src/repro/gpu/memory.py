"""Device memory: sparse buffer contents and the deterministic arena.

Two paper-critical behaviours live here:

- **Arena allocation** (§3.2.1/§3.2.3): the CUDA library's first
  ``cudaMalloc`` creates a *large* allocation arena with ``mmap`` (and
  more bookkeeping mmaps besides); subsequent ``cudaMalloc`` calls
  sub-allocate from the arena and may not call ``mmap`` at all. The
  allocator is **deterministic**: the same sequence of alloc/free calls
  produces the same addresses — the property CRAC's log-and-replay
  exploits to restore every allocation at its original address.
- **Sparse contents**: buffers have a *virtual* size (checkpoint-size
  accounting can reach the paper's GB scale) but only spans actually
  written hold real numpy data, so the test suite stays laptop-sized.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import CudaError
from repro.gpu.intervals import EpochIntervalIndex

#: Sub-allocation alignment, matching CUDA's 256-byte texture alignment.
ALLOC_ALIGN = 256
#: Size of a freshly created malloc arena (the paper's "large CUDA malloc
#: arena" created by the first cudaMalloc).
ARENA_CHUNK = 64 << 20


def _align_up(n: int, a: int = ALLOC_ALIGN) -> int:
    return (n + a - 1) & ~(a - 1)


def _program_error(code_name: str, msg: str) -> CudaError:
    """A classified program-severity :class:`CudaError`.

    The code enum lives in :mod:`repro.cuda.errors`, which this module
    must not import at load time (``repro.cuda.__init__`` pulls in
    ``cuda.api`` which imports ``repro.gpu``); the raise paths are cold,
    so the deferred import costs nothing.
    """
    from repro.cuda.errors import CudaErrorCode

    return CudaError(
        f"{code_name}: {msg}", code=CudaErrorCode[code_name], severity="program"
    )


def merge_spans(spans: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Normalize (start, end) intervals: sorted, disjoint, non-empty."""
    out: list[tuple[int, int]] = []
    for lo, hi in sorted(s for s in spans if s[1] > s[0]):
        if out and lo <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], hi))
        else:
            out.append((lo, hi))
    return out


def subtract_spans(
    base: list[tuple[int, int]], minus: list[tuple[int, int]]
) -> list[tuple[int, int]]:
    """Interval-set difference ``base - minus`` (both normalized)."""
    out: list[tuple[int, int]] = []
    for lo, hi in base:
        parts = [(lo, hi)]
        for m_lo, m_hi in minus:
            nxt: list[tuple[int, int]] = []
            for p_lo, p_hi in parts:
                if m_hi <= p_lo or m_lo >= p_hi:
                    nxt.append((p_lo, p_hi))
                    continue
                if p_lo < m_lo:
                    nxt.append((p_lo, m_lo))
                if m_hi < p_hi:
                    nxt.append((m_hi, p_hi))
            parts = nxt
        out.extend(parts)
    return out


class PagedContents:
    """Sparse byte contents of a (possibly huge) buffer.

    Data is stored as non-overlapping *spans* — (start, ndarray) pairs —
    plus a background fill value for unmaterialized bytes. ``view()``
    returns a writable numpy view into the stored span, so kernels mutate
    contents in place; overlapping spans are consolidated on demand.

    Every mutation path also records the touched byte range in a *dirty*
    interval set so checkpointing can delta-encode device memory the way
    soft-dirty page tracking delta-encodes host memory. Because ``view()``
    hands out writable views, any viewed range counts as dirtied —
    conservative, never lossy.
    """

    def __init__(self, size: int, fill_value: int = 0) -> None:
        self.size = size
        self.fill_value = fill_value
        self._spans: dict[int, np.ndarray] = {}  # start -> uint8 array
        #: vectorized (start, end, epoch) interval index of byte ranges
        #: touched since the last committed checkpoint cut; ``epoch`` is
        #: the :attr:`write_seq` value of the range's last write
        self._dirty = EpochIntervalIndex()
        self._write_seq = 0

    @property
    def backed_bytes(self) -> int:
        return sum(a.nbytes for a in self._spans.values())

    # -- dirty-span tracking ---------------------------------------------------

    @property
    def write_seq(self) -> int:
        """Monotone write counter; a checkpoint snapshot records it so
        commit can distinguish pre-snapshot dirtiness (safe to clear)
        from bytes re-written while the image was still being flushed
        (must stay dirty for the next incremental cut)."""
        return self._write_seq

    def _mark_dirty(self, offset: int, nbytes: int) -> None:
        if nbytes <= 0:
            return
        self._write_seq += 1
        self._dirty.mark(offset, offset + nbytes, self._write_seq)

    def dirty_spans(self) -> list[tuple[int, int]]:
        """Byte ranges touched since the last :meth:`clear_dirty`."""
        return self._dirty.spans()

    @property
    def dirty_byte_count(self) -> int:
        return self._dirty.byte_count

    def dirty_page_epochs(self, page_size: int) -> np.ndarray:
        """Page-granular view of the dirty index: per page, the
        :attr:`write_seq` of its newest write (0 = clean page)."""
        return self._dirty.page_epochs(page_size, self.size)

    def clear_dirty(
        self,
        spans: list[tuple[int, int]] | None = None,
        *,
        up_to_epoch: int | None = None,
    ) -> None:
        """Drop dirty tracking once a checkpoint durably commits.

        ``spans=None`` clears everything; otherwise only the given byte
        ranges (the ones the committed image captured) are cleared. With
        ``up_to_epoch`` (the :attr:`write_seq` recorded at snapshot
        time) a range is cleared only where its last write precedes the
        snapshot — bytes the image captured but the app re-wrote while
        the (forked) write was still in flight stay dirty, so the next
        incremental cut saves the new content.
        """
        if spans is None:
            self._dirty.clear_all()
            return
        self._dirty.clear(spans, up_to_epoch=up_to_epoch)

    def dirty_bytes_since(self, epoch: int) -> int:
        """Bytes whose last write came after ``epoch`` — the
        copy-on-write exposure of a snapshot taken at that epoch."""
        return self._dirty.bytes_since(epoch)

    def dirty_snapshot(self) -> dict:
        """Deep copy of only the dirtied byte ranges (a GPU *delta*).

        ``whole=True`` marks a delta that happens to cover the entire
        buffer (e.g. after ``fill``); applying it is equivalent to a full
        :meth:`restore`, which also resets the fill value.
        """
        dirty = self.dirty_spans()
        if dirty == [(0, self.size)]:
            snap = self.snapshot()
            snap["whole"] = True
            return snap
        return {
            "size": self.size,
            "whole": False,
            "spans": {
                lo: np.frombuffer(
                    self.read_bytes(lo, hi - lo), dtype=np.uint8
                ).copy()
                for lo, hi in dirty
            },
        }

    def apply_delta(self, snap: dict) -> None:
        """Overlay a :meth:`dirty_snapshot` onto the current contents."""
        if snap["size"] != self.size:
            raise _program_error("INVALID_VALUE", "delta snapshot size mismatch")
        if snap.get("whole"):
            self.restore(snap)
            return
        for lo, arr in snap["spans"].items():
            self.write_bytes(lo, arr)

    def _check(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.size:
            raise _program_error(
                "INVALID_VALUE",
                f"access [{offset}, +{nbytes}) outside buffer of {self.size} bytes",
            )

    def view(self, offset: int, nbytes: int, dtype=np.uint8) -> np.ndarray:
        """A writable view of ``[offset, offset+nbytes)`` as ``dtype``.

        Materializes (with the fill value) any bytes not yet backed;
        consolidates overlapping spans so the view is one contiguous
        array. Holding a view across a *later overlapping* ``view()``
        call is allowed — consolidation reuses an exactly-matching span.

        The viewed range is conservatively marked dirty: the caller holds
        a writable view, so these bytes *may* change under us.
        """
        self._check(offset, nbytes)
        self._mark_dirty(offset, nbytes)
        exact = self._spans.get(offset)
        if exact is not None and exact.nbytes == nbytes:
            return exact.view(dtype)
        overlapping = [
            (s, a)
            for s, a in self._spans.items()
            if s < offset + nbytes and s + a.nbytes > offset
        ]
        lo = min([offset] + [s for s, _ in overlapping])
        hi = max([offset + nbytes] + [s + a.nbytes for s, a in overlapping])
        merged = np.full(hi - lo, self.fill_value, dtype=np.uint8)
        for s, a in overlapping:
            merged[s - lo : s - lo + a.nbytes] = a
            del self._spans[s]
        self._spans[lo] = merged
        return merged[offset - lo : offset - lo + nbytes].view(dtype)

    def write_bytes(self, offset: int, data: bytes | np.ndarray) -> None:
        """Copy bytes into the buffer."""
        arr = np.frombuffer(data, dtype=np.uint8) if isinstance(data, (bytes, bytearray, memoryview)) else np.ascontiguousarray(data).view(np.uint8).ravel()
        self.view(offset, arr.nbytes)[:] = arr

    def read_bytes(self, offset: int, nbytes: int) -> bytes:
        """Copy bytes out of the buffer (holes read as the fill value)."""
        self._check(offset, nbytes)
        out = np.full(nbytes, self.fill_value, dtype=np.uint8)
        for s, a in self._spans.items():
            if s < offset + nbytes and s + a.nbytes > offset:
                lo = max(s, offset)
                hi = min(s + a.nbytes, offset + nbytes)
                out[lo - offset : hi - offset] = a[lo - s : hi - s]
        return out.tobytes()

    def copy_from(
        self, other: "PagedContents", src_offset: int, dst_offset: int, nbytes: int
    ) -> None:
        """Copy a range from ``other`` without materializing holes.

        Only the *backed* spans of the source range are copied; unbacked
        source bytes leave the destination range at the source's fill
        value. This keeps GB-scale ballast copies O(real data).

        Self-copies with overlapping ranges are memmove-safe: the backed
        source bytes are snapshotted before the destination range is
        reset, so the copy always sees the pre-call source contents.
        """
        self._check(dst_offset, nbytes)
        other._check(src_offset, nbytes)
        self._mark_dirty(dst_offset, nbytes)
        if self.fill_value != other.fill_value:
            # Rare slow path: differing fills force materialization.
            self.write_bytes(dst_offset, other.read_bytes(src_offset, nbytes))
            return
        # Gather the backed source portions first — when ``other is
        # self`` and the ranges overlap, resetting the destination
        # before reading would destroy the very bytes being copied.
        shift = dst_offset - src_offset
        parts: list[tuple[int, np.ndarray]] = []
        for s, a in list(other._spans.items()):
            lo = max(s, src_offset)
            hi = min(s + a.nbytes, src_offset + nbytes)
            if lo < hi:
                seg = a[lo - s : hi - s]
                parts.append((lo + shift, seg.copy() if other is self else seg))
        # Reset the destination range to fill wherever it is backed.
        for s, a in list(self._spans.items()):
            lo = max(s, dst_offset)
            hi = min(s + a.nbytes, dst_offset + nbytes)
            if lo < hi:
                a[lo - s : hi - s] = self.fill_value
        for dst, seg in parts:
            self.write_bytes(dst, seg)

    def fill(self, value: int) -> None:
        """cudaMemset over the whole buffer: drop spans, set fill value."""
        self._spans.clear()
        self.fill_value = value & 0xFF
        self._mark_dirty(0, self.size)

    def snapshot(self) -> dict:
        """Deep copy for checkpointing."""
        return {
            "size": self.size,
            "fill": self.fill_value,
            "spans": {s: a.copy() for s, a in self._spans.items()},
        }

    def restore(self, snap: dict) -> None:
        """Restore from :meth:`snapshot`; the whole buffer becomes dirty
        (contents were replaced wholesale — callers that restore *to the
        committed cut's state*, like restart refill, clear it after)."""
        if snap["size"] != self.size:
            raise _program_error("INVALID_VALUE", "snapshot size mismatch")
        self.fill_value = snap["fill"]
        self._spans = {s: a.copy() for s, a in snap["spans"].items()}
        self._mark_dirty(0, self.size)

    def equal_contents(self, other: "PagedContents") -> bool:
        """Bit-exact comparison (materialization-layout independent)."""
        if self.size != other.size:
            return False
        # Merge both span sets into a sorted union of intervals.
        intervals = sorted(
            [(s, s + a.nbytes) for s, a in self._spans.items()]
            + [(s, s + a.nbytes) for s, a in other._spans.items()]
        )
        merged: list[tuple[int, int]] = []
        for lo, hi in intervals:
            if merged and lo <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        for lo, hi in merged:
            if self.read_bytes(lo, hi - lo) != other.read_bytes(lo, hi - lo):
                return False
        covered = sum(hi - lo for lo, hi in merged)
        if covered < self.size and self.fill_value != other.fill_value:
            return False
        return True


@dataclass
class DeviceBuffer:
    """One live allocation returned by the cudaMalloc family."""

    addr: int
    size: int
    kind: str  # "device" | "host-pinned" | "managed"
    contents: PagedContents = field(default=None)  # type: ignore[assignment]
    freed: bool = False
    #: index of the GPU holding this allocation ("device" kind only)
    device_index: int = 0
    #: runtime-unique allocation id; distinguishes two allocations that
    #: reused the same arena address across checkpoint cuts, so a GPU
    #: delta never stacks on a stale predecessor's bytes
    uid: int = 0

    def __post_init__(self) -> None:
        if self.contents is None:
            self.contents = PagedContents(self.size)


@dataclass
class _FreeBlock:
    start: int
    size: int


class ArenaAllocator:
    """Deterministic first-fit sub-allocator over mmap-created arenas.

    Args:
        mmap_fn: called to create a new arena; returns its base address.
            In CRAC this is routed through the lower half's interposed
            ``mmap`` so arenas are attributed to the lower half.
        capacity: device memory capacity; exceeded ⇒ ``CudaError`` (OOM).
        extra_mmaps_per_arena: number of small bookkeeping mmaps issued
            alongside each arena, reproducing the paper's observation
            that one ``cudaMalloc`` may issue *many* ``mmap`` calls.
    """

    def __init__(
        self,
        mmap_fn: Callable[[int], int],
        capacity: int,
        *,
        extra_mmaps_per_arena: int = 3,
    ) -> None:
        self._mmap = mmap_fn
        self.capacity = capacity
        self.extra_mmaps_per_arena = extra_mmaps_per_arena
        self._free: list[_FreeBlock] = []  # sorted by start
        self.active: dict[int, int] = {}  # addr -> size
        #: running sum of ``active.values()`` — kept in lockstep by
        #: alloc/free/reserve so the per-alloc capacity check is O(1)
        #: instead of an O(live-allocations) recomputation
        self._active_bytes = 0
        self.arena_bytes = 0
        self.mmap_calls = 0
        #: optional repro.sanitizer hook target (memcheck lifecycle);
        #: attached by Sanitizer.attach, consulted in alloc/free
        self.sanitizer = None

    @property
    def active_bytes(self) -> int:
        return self._active_bytes

    def alloc(self, nbytes: int) -> int:
        """Allocate; deterministic for a fixed alloc/free sequence."""
        if nbytes <= 0:
            raise _program_error("INVALID_VALUE", "cudaMalloc of non-positive size")
        need = _align_up(nbytes)
        if self._active_bytes + need > self.capacity:
            raise _program_error(
                "MEMORY_ALLOCATION",
                "out of device memory (cudaErrorMemoryAllocation)",
            )
        for i, blk in enumerate(self._free):
            if blk.size >= need:
                addr = blk.start
                if blk.size == need:
                    self._free.pop(i)
                else:
                    blk.start += need
                    blk.size -= need
                self.active[addr] = need
                self._active_bytes += need
                if self.sanitizer is not None:
                    self.sanitizer.on_arena_alloc(self, addr, need)
                return addr
        # No free block fits: grow by a new arena (possibly many mmaps).
        arena_size = max(_align_up(need, 1 << 20), ARENA_CHUNK)
        base = self._mmap(arena_size)
        self.mmap_calls += 1
        for _ in range(self.extra_mmaps_per_arena):
            self._mmap(1 << 16)  # bookkeeping pages
            self.mmap_calls += 1
        self.arena_bytes += arena_size
        self._insert_free(_FreeBlock(base, arena_size))
        return self.alloc(nbytes)

    def free(self, addr: int) -> int:
        """Release an allocation; returns its size."""
        size = self.active.pop(addr, None)
        if size is None:
            if self.sanitizer is not None:
                # Record the double/invalid free before the raise so the
                # hazard survives even if the caller swallows the error.
                self.sanitizer.on_invalid_free(self, addr)
            raise _program_error(
                "INVALID_DEVICE_POINTER", f"cudaFree of unknown pointer {addr:#x}"
            )
        self._active_bytes -= size
        self._insert_free(_FreeBlock(addr, size))
        if self.sanitizer is not None:
            self.sanitizer.on_arena_free(self, addr, size)
        return size

    def reserve(self, addr: int, nbytes: int) -> None:
        """Mark ``[addr, addr+nbytes)`` as allocated without choosing it.

        Used at restart for re-registered ``cudaHostAlloc`` buffers: their
        pages are already mapped (restored with the upper half), so the
        fresh library must never hand out those addresses again — exactly
        as a real mmap-backed allocator would skip already-mapped pages.
        Grows arenas deterministically until the range is covered.
        """
        need = _align_up(nbytes)
        for _ in range(64):
            for i, blk in enumerate(self._free):
                if blk.start <= addr and addr + need <= blk.start + blk.size:
                    self._free.pop(i)
                    if blk.start < addr:
                        self._insert_free(_FreeBlock(blk.start, addr - blk.start))
                    tail = blk.start + blk.size - (addr + need)
                    if tail > 0:
                        self._insert_free(_FreeBlock(addr + need, tail))
                    self.active[addr] = need
                    self._active_bytes += need
                    if self.sanitizer is not None:
                        self.sanitizer.on_arena_alloc(self, addr, need)
                    return
            # Not covered yet: grow by one arena (same deterministic path
            # the original allocation took).
            base = self._mmap(ARENA_CHUNK)
            self.mmap_calls += 1
            for _ in range(self.extra_mmaps_per_arena):
                self._mmap(1 << 16)
                self.mmap_calls += 1
            self.arena_bytes += ARENA_CHUNK
            self._insert_free(_FreeBlock(base, ARENA_CHUNK))
        raise _program_error(
            "INVALID_VALUE",
            f"could not reserve {addr:#x}+{nbytes:#x}: address outside any arena",
        )

    def _insert_free(self, blk: _FreeBlock) -> None:
        """Insert into the sorted free list, coalescing neighbours."""
        starts = [b.start for b in self._free]
        i = bisect.bisect_left(starts, blk.start)
        self._free.insert(i, blk)
        # Coalesce with right neighbour, then left.
        if i + 1 < len(self._free) and blk.start + blk.size == self._free[i + 1].start:
            right = self._free.pop(i + 1)
            blk.size += right.size
        if i > 0 and self._free[i - 1].start + self._free[i - 1].size == blk.start:
            left = self._free[i - 1]
            left.size += blk.size
            self._free.pop(i)
