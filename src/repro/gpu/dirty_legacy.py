"""Reference (pre-vectorization) dirty-tracking implementation.

This module preserves the original pure-Python span-list algorithms
that :class:`repro.gpu.memory.PagedContents` used for dirty/epoch
tracking before the numpy :class:`repro.gpu.intervals.EpochIntervalIndex`
replaced them. It exists for two reasons:

- the Hypothesis equivalence suite
  (``tests/gpu/test_dirty_vector_equivalence.py``) runs random op
  sequences against both implementations and asserts observational
  equality, which is what lets the vectorized index claim *exact*
  epoch-bounded-commit semantics rather than "probably the same";
- ``repro perf-bench`` measures the micro speedup of the new index
  against this one on synthetic write traces, backing the ROADMAP's
  ≥5x target with an apples-to-apples number.

Do not use this in the runtime path; it is O(spans) per write.
"""

from __future__ import annotations

from repro.gpu.memory import merge_spans, subtract_spans


class LegacyDirtyIndex:
    """The original per-write span-list rebuild, verbatim semantics."""

    __slots__ = ("_dirty",)

    def __init__(self) -> None:
        #: sorted disjoint (start, end, epoch) ranges
        self._dirty: list[tuple[int, int, int]] = []

    def mark(self, lo: int, hi: int, epoch: int) -> None:
        """Record a write of ``[lo, hi)`` at ``epoch`` (O(spans) rebuild)."""
        if hi <= lo:
            return
        out: list[tuple[int, int, int]] = []
        for s, e, ep in self._dirty:
            if e <= lo or s >= hi:
                out.append((s, e, ep))
                continue
            # The new write supersedes the overlapped part's epoch.
            if s < lo:
                out.append((s, lo, ep))
            if e > hi:
                out.append((hi, e, ep))
        out.append((lo, hi, epoch))
        out.sort()
        merged: list[tuple[int, int, int]] = []
        for s, e, ep in out:
            if merged and merged[-1][1] == s and merged[-1][2] == ep:
                merged[-1] = (merged[-1][0], e, ep)
            else:
                merged.append((s, e, ep))
        self._dirty = merged

    def spans(self) -> list[tuple[int, int]]:
        """Dirty byte ranges, merged across epochs."""
        return merge_spans([(lo, hi) for lo, hi, _ in self._dirty])

    def intervals(self) -> list[tuple[int, int, int]]:
        """All ``(start, end, epoch)`` triples (sorted, disjoint)."""
        return list(self._dirty)

    @property
    def byte_count(self) -> int:
        return sum(hi - lo for lo, hi, _ in self._dirty)

    def bytes_since(self, epoch: int) -> int:
        """Bytes whose last write came strictly after ``epoch``."""
        return sum(hi - lo for lo, hi, ep in self._dirty if ep > epoch)

    def clear_all(self) -> None:
        """Forget everything (a full-image commit)."""
        self._dirty = []

    def clear(self, spans, up_to_epoch: int | None = None) -> None:
        """Remove ``spans`` from the index, epoch-bounded."""
        clear = merge_spans(list(spans))
        out: list[tuple[int, int, int]] = []
        for s, e, ep in self._dirty:
            if up_to_epoch is not None and ep > up_to_epoch:
                out.append((s, e, ep))
                continue
            out.extend(
                (p_lo, p_hi, ep)
                for p_lo, p_hi in subtract_spans([(s, e)], clear)
            )
        self._dirty = out

    def __bool__(self) -> bool:
        return bool(self._dirty)


class LegacyWrittenSet:
    """The original per-write ``merge_spans(written + [(lo, hi)])``
    rebuild used by the sanitizer's initcheck coverage."""

    __slots__ = ("_written",)

    def __init__(self, spans=()) -> None:
        self._written: list[tuple[int, int]] = merge_spans(list(spans))

    def add(self, lo: int, hi: int) -> None:
        """Insert ``[lo, hi)`` via a full ``merge_spans`` rebuild."""
        self._written = merge_spans(self._written + [(lo, hi)])

    def spans(self) -> list[tuple[int, int]]:
        """The merged intervals as a list of ``(lo, hi)`` tuples."""
        return list(self._written)

    def holes(self, lo: int, hi: int) -> list[tuple[int, int]]:
        """Sub-ranges of ``[lo, hi)`` not covered by the set."""
        if hi <= lo:
            return []
        return subtract_spans([(lo, hi)], self._written)

    def covers(self, lo: int, hi: int) -> bool:
        """True iff ``[lo, hi)`` is entirely inside the set."""
        return not self.holes(lo, hi)

    @property
    def byte_count(self) -> int:
        return sum(hi - lo for lo, hi in self._written)

    def __bool__(self) -> bool:
        return bool(self._written)
