"""CUDA streams and events (handles only; scheduling lives in device.py).

A stream is an in-order queue of device operations; operations in
different streams may overlap subject to the device's concurrent-kernel
limit and copy-engine availability. Stream 0 is the legacy default
stream: it synchronizes with every other stream, which the device engine
enforces.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

_ids = itertools.count(1)


@dataclass
class Stream:
    """A CUDA stream handle.

    Attributes:
        sid: stream id; 0 is the legacy default stream.
        ready_ns: virtual time at which all work so far enqueued on this
            stream will have completed.
    """

    sid: int = field(default_factory=lambda: next(_ids))
    ready_ns: float = 0.0
    destroyed: bool = False
    #: number of kernels ever launched on this stream (diagnostics)
    kernel_count: int = 0
    #: index of the GPU this stream was created on (cudaSetDevice state
    #: at cudaStreamCreate time); streams are bound to one device.
    device_index: int = 0
    #: fault poisoning this stream (``"kernel-hang"``/``"copy-stall"``)
    #: or ``None``; set by the device when an injected runtime fault
    #: lands on this stream, cleared by a fault-domain stream reset.
    fault: str | None = None

    def __hash__(self) -> int:
        return self.sid


#: The legacy default stream singleton marker (per-runtime instances are
#: created by the CUDA runtime; this type alias documents intent).
DEFAULT_STREAM_ID = 0


@dataclass
class Event:
    """A CUDA event: a timestamp marker recorded into a stream."""

    eid: int = field(default_factory=lambda: next(_ids))
    #: virtual time the event will complete (-inf = never recorded)
    timestamp_ns: float = float("-inf")
    recorded: bool = False
    destroyed: bool = False

    def elapsed_ms_since(self, earlier: "Event") -> float:
        """cudaEventElapsedTime equivalent (milliseconds)."""
        if not (self.recorded and earlier.recorded):
            # Deferred import: repro.gpu must not pull in repro.cuda at
            # module load time (cuda/api.py imports this module).
            from repro.gpu.timing import _program_error

            raise _program_error(
                "INVALID_VALUE", "cudaEventElapsedTime on unrecorded event"
            )
        return (self.timestamp_ns - earlier.timestamp_ns) / 1e6

    def __hash__(self) -> int:
        return self.eid
