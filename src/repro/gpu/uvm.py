"""Unified Virtual Memory (UVM): page-granular managed memory.

CUDA 6.0's UVM lets host and device touch the same pointer; the
hardware/driver migrates pages on demand (hardware page faults on Pascal
and later — §2.3). The model tracks per-page residency, charges
fault + migration costs on access from the "wrong" side, and records
device-side writes per kernel so the CRUM baseline's shadow-page failure
mode (two concurrent streams writing the same page, §1 contribution 2)
is detectable.

The UVM mapping is part of the CUDA library's *irrecoverable* internal
state: once created, it cannot be destroyed and later restored through
any public API — the historical reason CheCUDA-era checkpointing died
with CUDA 4.0 (§2.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import CudaError
from repro.gpu.device import GpuDevice
from repro.gpu.memory import PagedContents
from repro.gpu.streams import Stream


def _retryable_error(code_name: str, msg: str) -> CudaError:
    # Deferred import: repro.gpu must not pull in repro.cuda at module
    # load time (cuda/api.py imports this module).
    from repro.cuda.errors import CudaErrorCode

    return CudaError(
        f"{code_name}: {msg}", code=CudaErrorCode[code_name],
        severity="retryable",
    )

#: UVM migration granularity. Real UVM uses 4 KiB–2 MiB chunks; 64 KiB is
#: the driver's common prefetch granule and keeps page tables small.
UVM_PAGE = 64 * 1024


class PageLocation(enum.IntEnum):
    """Residency of one UVM page."""

    HOST = 0
    DEVICE = 1


@dataclass
class DeviceWriteRecord:
    """One kernel's write footprint on a managed buffer."""

    page_lo: int
    page_hi: int  # inclusive
    stream_sid: int
    start_ns: float
    end_ns: float

    def overlaps_pages(self, other: "DeviceWriteRecord") -> bool:
        """True if the two write footprints share a page."""
        return self.page_lo <= other.page_hi and other.page_lo <= self.page_hi

    def overlaps_time(self, other: "DeviceWriteRecord") -> bool:
        """True if the two kernels were in flight simultaneously."""
        return self.start_ns < other.end_ns and other.start_ns < self.end_ns


@dataclass
class ManagedBuffer:
    """A cudaMallocManaged allocation."""

    addr: int
    size: int
    contents: PagedContents = field(default=None)  # type: ignore[assignment]
    residency: np.ndarray = field(default=None)  # type: ignore[assignment]
    freed: bool = False
    device_writes: list[DeviceWriteRecord] = field(default_factory=list)
    #: conflict pairs whose records were compacted out of
    #: ``device_writes`` before any overlap query observed them — kept so
    #: :meth:`UvmManager.concurrent_same_page_writes` never misses a real
    #: CRUM failure. Bounded by the number of actual conflicts.
    stashed_conflicts: list[tuple[DeviceWriteRecord, DeviceWriteRecord]] = field(
        default_factory=list, repr=False
    )
    #: runtime-unique allocation id (see :class:`DeviceBuffer.uid`)
    uid: int = 0

    def __post_init__(self) -> None:
        if self.contents is None:
            self.contents = PagedContents(self.size)
        if self.residency is None:
            # Fresh managed memory is host-resident (first-touch on CPU).
            self.residency = np.zeros(self.num_pages, dtype=np.uint8)

    @property
    def num_pages(self) -> int:
        return (self.size + UVM_PAGE - 1) // UVM_PAGE

    def page_range(self, offset: int, nbytes: int) -> tuple[int, int]:
        """Inclusive page index range covering ``[offset, offset+nbytes)``."""
        if nbytes <= 0:
            nbytes = 1
        return offset // UVM_PAGE, (offset + nbytes - 1) // UVM_PAGE


class UvmManager:
    """Tracks all managed buffers of one CUDA library instance."""

    def __init__(self, device: GpuDevice) -> None:
        self.device = device
        self.buffers: dict[int, ManagedBuffer] = {}
        self.fault_count = 0
        self.migrated_bytes = 0
        #: Creating any managed mapping permanently perturbs the CUDA
        #: library's internal state (see module docstring); the CUDA
        #: runtime consults this to refuse naive restore-after-destroy.
        self.ever_used = False

    def register(self, buf: ManagedBuffer) -> None:
        """Track a new managed allocation (perturbs library state)."""
        self.buffers[buf.addr] = buf
        self.ever_used = True

    def unregister(self, addr: int) -> None:
        """Stop tracking a freed managed allocation."""
        self.buffers.pop(addr, None)

    # -- access paths --------------------------------------------------------

    def _migrate(self, buf: ManagedBuffer, lo: int, hi: int, to: PageLocation) -> float:
        """Migrate pages [lo, hi] to ``to``; returns the cost in ns."""
        pages = buf.residency[lo : hi + 1]
        wrong = int(np.count_nonzero(pages != int(to)))
        if wrong == 0:
            return 0.0
        # Runtime faults fire before residency mutates, so a retried
        # migration starts from the same page state.
        injector = self.device.fault_injector
        if injector is not None:
            ctx = f"uvm@{buf.addr:#x}[{lo}:{hi}]"
            if injector.trip("uvm-storm", ctx) is not None:
                raise _retryable_error(
                    "UVM_FAULT_STORM",
                    f"fault storm migrating {wrong} page(s) ({ctx})",
                )
            if injector.trip("xfer-corrupt", ctx) is not None:
                raise _retryable_error(
                    "TRANSFER_CRC_MISMATCH",
                    f"UVM migration CRC mismatch ({ctx})",
                )
        spec = self.device.spec
        cost = wrong * spec.uvm_fault_ns + (
            wrong * UVM_PAGE / spec.uvm_migrate_bw * 1e9
        )
        pages[:] = int(to)
        self.fault_count += wrong
        self.migrated_bytes += wrong * UVM_PAGE
        tracer = self.device.tracer
        if tracer is not None:
            tracer.on_uvm_migration(
                buf.addr,
                pages=wrong,
                nbytes=wrong * UVM_PAGE,
                cost_ns=cost,
                to="device" if to == PageLocation.DEVICE else "host",
            )
        return cost

    def host_access(
        self, buf: ManagedBuffer, offset: int, nbytes: int, *, write: bool
    ) -> float:
        """CPU touches managed memory; returns the stall cost in ns.

        Device-resident pages fault back to the host. (Write vs read only
        matters for bookkeeping; both migrate under the pre-Volta model.)
        """
        lo, hi = buf.page_range(offset, nbytes)
        return self._migrate(buf, lo, hi, PageLocation.HOST)

    def device_access(
        self, buf: ManagedBuffer, offset: int, nbytes: int
    ) -> float:
        """Kernel will touch managed memory; returns migration cost in ns
        to be folded into the kernel's duration."""
        lo, hi = buf.page_range(offset, nbytes)
        return self._migrate(buf, lo, hi, PageLocation.DEVICE)

    #: ``record_device_write`` opportunistically compacts once a buffer's
    #: log exceeds this many records, so the log stays bounded even on
    #: checkpoint-free runs.
    COMPACT_THRESHOLD = 512

    def record_device_write(
        self,
        buf: ManagedBuffer,
        offset: int,
        nbytes: int,
        stream: Stream,
        start_ns: float,
        end_ns: float,
        *,
        now_ns: float | None = None,
    ) -> None:
        """Log a kernel's write footprint (used by the CRUM failure check).

        ``now_ns`` (the enqueue-time clock) enables opportunistic
        compaction: a record that ended before *now* can never overlap a
        future enqueue (kernel start times are bounded below by their
        enqueue time), so once the log grows past ``COMPACT_THRESHOLD``
        those dead records are dropped — after stashing any conflict
        pairs they participate in (see :meth:`compact_writes`).
        """
        lo, hi = buf.page_range(offset, nbytes)
        buf.device_writes.append(
            DeviceWriteRecord(lo, hi, stream.sid, start_ns, end_ns)
        )
        if (
            now_ns is not None
            and len(buf.device_writes) > self.COMPACT_THRESHOLD
        ):
            self.compact_writes(buf, before_ns=now_ns)

    @staticmethod
    def _sweep_conflicts(
        records: list[DeviceWriteRecord],
    ) -> list[tuple[DeviceWriteRecord, DeviceWriteRecord]]:
        """Cross-stream same-page time-overlap pairs among ``records``.

        A sweep over records sorted by start time with an active set of
        still-in-flight records: O(n log n + conflicts) instead of the
        naive O(n²) pairwise scan.
        """
        writes = sorted(records, key=lambda r: (r.start_ns, r.end_ns))
        out: list[tuple[DeviceWriteRecord, DeviceWriteRecord]] = []
        active: list[DeviceWriteRecord] = []
        for rec in writes:
            active = [a for a in active if a.end_ns > rec.start_ns]
            for a in active:
                if (
                    a.stream_sid != rec.stream_sid
                    and a.overlaps_pages(rec)
                    and a.overlaps_time(rec)
                ):
                    out.append((a, rec))
            active.append(rec)
        return out

    def compact_writes(self, buf: ManagedBuffer, *, before_ns: float) -> int:
        """Drop write records that finished at or before ``before_ns``.

        Any conflict pair involving a to-be-dropped record could never be
        observed again once the record is gone, so those pairs are
        stashed on the buffer first — compaction is therefore safe at any
        point, including opportunistically at enqueue time. Returns the
        number of records dropped.
        """
        kept = [r for r in buf.device_writes if r.end_ns > before_ns]
        dropped = len(buf.device_writes) - len(kept)
        if dropped:
            kept_ids = {id(r) for r in kept}
            buf.stashed_conflicts.extend(
                (a, b)
                for a, b in self._sweep_conflicts(buf.device_writes)
                if id(a) not in kept_ids or id(b) not in kept_ids
            )
            buf.device_writes = kept
        return dropped

    def concurrent_same_page_writes(
        self, buf: ManagedBuffer, *, compact_before_ns: float | None = None
    ) -> list[tuple[DeviceWriteRecord, DeviceWriteRecord]]:
        """Pairs of writes from *different streams* that overlapped in time
        on the *same page* — the pattern CRUM's shadow-page strategy cannot
        synchronize (paper §1, contribution 2).

        Reports conflicts found in the live log *plus* any pairs stashed
        by earlier compactions, so compacting the log never hides a real
        conflict. Pass ``compact_before_ns`` (typically the current
        clock, after a synchronize) to also drop drained records — and
        the just-reported stash — once they are reported.

        Drain semantics are *exact*: a compacting query removes from the
        stash only what this call reported — the stash prefix it read
        plus the pairs its own compaction stashed that also appeared in
        the live sweep. A pair stashed but *not* reported (e.g. one a
        bounded ``compact_before_ns`` dropped without the sweep pairing
        it) survives for the next query, and a non-compacting query
        never observes — or leaves behind — a half-drained stash.
        """
        reported_stash = len(buf.stashed_conflicts)
        out = list(buf.stashed_conflicts)
        live = self._sweep_conflicts(buf.device_writes)
        out.extend(live)
        if compact_before_ns is not None:
            live_ids = {(id(a), id(b)) for a, b in live}
            self.compact_writes(buf, before_ns=compact_before_ns)
            buf.stashed_conflicts = [
                pair
                for pair in buf.stashed_conflicts[reported_stash:]
                if (id(pair[0]), id(pair[1])) not in live_ids
            ]
        return out

    # -- checkpoint support -------------------------------------------------------

    def total_managed_bytes(self) -> int:
        """Sum of live managed allocation sizes."""
        return sum(b.size for b in self.buffers.values())
