"""The calibrated cost model — every timing constant lives here.

All results in this reproduction are *virtual time*. Constants below are
calibrated so that native runtimes of the paper's workloads land near the
paper's Figures 2/4/5 values on the simulated V100, and so that overhead
*ratios* — the paper's actual claims — have the right structure:

- CRAC adds ~2 fs-register switches + a table indirection per CUDA call
  (constants in :mod:`repro.linux.process` and :mod:`repro.core.trampoline`),
  which at the paper's 0.6–132K calls/second works out to ≈0–2% overhead;
- proxy/IPC baselines add a per-call marshalling cost plus a per-byte
  cross-memory-attach copy (constants in :mod:`repro.proxy.cma`), which on
  Table 3's cuBLAS loops works out to 142–17,812% overhead.

Nothing else in the package contains a hard-coded time.
"""

from __future__ import annotations

from dataclasses import dataclass

NS_PER_S = 1_000_000_000

#: Host-side cost of one sanitizer instrumentation hook (shadow-state
#: update + vector-clock bookkeeping), ns. Charged per instrumented op
#: when :class:`repro.sanitizer.Sanitizer` is attached; the CI gate
#: bounds the resulting end-to-end overhead at ≤25%.
SANITIZER_CHECK_NS = 500.0

#: Host-side cost of one trace instrumentation hook (span append +
#: metrics update), ns. Charged per traced *API* call when a
#: :class:`repro.trace.Tracer` is attached; device/UVM/pipeline hooks
#: piggyback on work the model already charges and add nothing. The CI
#: trace job bounds the resulting end-to-end overhead at ≤1.25x.
TRACE_HOOK_NS = 120.0


def _program_error(code_name: str, msg: str):
    """Classified program-severity CudaError with a deferred import
    (``repro.gpu`` must not pull in ``repro.cuda`` at module load)."""
    from repro.cuda.errors import CudaErrorCode

    from repro.errors import CudaError

    return CudaError(
        f"{code_name}: {msg}", code=CudaErrorCode[code_name], severity="program"
    )


@dataclass(frozen=True)
class GpuSpec:
    """Static description of one GPU model."""

    name: str
    compute_capability: tuple[int, int]
    memory_bytes: int
    #: Hardware limit on concurrently executing kernels (CC 7.0 ⇒ 128).
    max_concurrent_kernels: int
    sm_count: int
    #: Effective single-precision throughput, FLOP/s.
    flops: float
    #: Device (HBM/GDDR) bandwidth, bytes/s.
    mem_bw: float
    #: Host↔device interconnect bandwidth per direction, bytes/s.
    pcie_bw: float
    #: Kernel launch latency on the device side, ns.
    kernel_launch_ns: float = 3_000.0
    #: UVM page-fault service latency, ns per fault (Pascal+ hardware
    #: faulting; on pre-Pascal parts UVM migrates at kernel boundaries).
    uvm_fault_ns: float = 20_000.0
    #: UVM page-migration bandwidth, bytes/s.
    uvm_migrate_bw: float = 9.0e9

    def kernel_cost_ns(self, flop: float, bytes_touched: float = 0.0) -> float:
        """Roofline-style kernel duration: launch + max(compute, memory)."""
        compute = flop / self.flops * NS_PER_S
        memory = bytes_touched / self.mem_bw * NS_PER_S
        return self.kernel_launch_ns + max(compute, memory)

    def copy_cost_ns(self, nbytes: int, kind: str) -> float:
        """Duration of a memory copy on the relevant engine."""
        if kind in ("h2d", "d2h"):
            bw = self.pcie_bw
        elif kind == "d2d":
            bw = self.mem_bw
        else:
            raise _program_error("INVALID_VALUE", f"unknown copy kind {kind!r}")
        return 1_500.0 + nbytes / bw * NS_PER_S


#: The two GPUs used in the paper's evaluation (§4.1).
GPU_SPECS: dict[str, GpuSpec] = {
    "V100": GpuSpec(
        name="Tesla V100",
        compute_capability=(7, 0),
        memory_bytes=32 << 30,
        max_concurrent_kernels=128,
        sm_count=80,
        flops=14.0e12,
        mem_bw=900.0e9,
        pcie_bw=12.0e9,
    ),
    "K600": GpuSpec(
        name="Quadro K600",
        compute_capability=(3, 0),
        memory_bytes=1 << 30,
        max_concurrent_kernels=16,
        sm_count=1,
        flops=336.0e9,
        mem_bw=29.0e9,
        pcie_bw=6.0e9,
        kernel_launch_ns=6_000.0,
        uvm_fault_ns=45_000.0,
        uvm_migrate_bw=4.0e9,
    ),
}


@dataclass(frozen=True)
class HostCosts:
    """Host-side dispatch costs that do not depend on the GPU model."""

    #: Native CUDA runtime call dispatch (user code → driver), ns.
    native_dispatch_ns: float = 1_400.0
    #: Extra work in CRAC's upper→lower trampoline besides the two fs
    #: switches: entry-table indirection + bookkeeping, ns per call.
    trampoline_body_ns: float = 45.0
    #: Extra bookkeeping when CRAC logs a cudaMalloc-family call, ns.
    log_record_ns: float = 250.0
    #: DMTCP+CRAC launch-time startup (helper load, entry-table copy,
    #: coordinator handshake), ns. Dominates overhead on <7 s apps.
    crac_startup_ns: float = 280_000_000.0
    #: Checkpoint-image write bandwidth (gzip disabled), bytes/s.
    ckpt_write_bw: float = 2.6e9
    #: Checkpoint-image read bandwidth on restart, bytes/s (reads come
    #: from the page cache more often than writes hit it).
    ckpt_read_bw: float = 3.4e9
    #: Gzip compression throughput when enabled, bytes/s (DMTCP default
    #: gzip is disabled in the paper's experiments).
    gzip_bw: float = 0.20e9
    #: Per-region constant cost when scanning/saving maps, ns.
    ckpt_region_ns: float = 18_000.0
    #: Cost to replay one logged CUDA call at restart time, ns.
    replay_call_ns: float = 120_000.0
    #: Cost to re-register one fat binary / CUDA element at restart, ns.
    reregister_ns: float = 150_000.0
    #: Fixed restart bootstrap (fresh lower half load, driver init), ns.
    restart_bootstrap_ns: float = 70_000_000.0
    #: Fixed checkpoint coordination cost (quiesce threads, drain), ns.
    ckpt_quiesce_ns: float = 90_000_000.0
    #: Copy-on-write page-duplication bandwidth during a *forked*
    #: checkpoint's write window (memcpy of a touched page before the
    #: writer has flushed it), bytes/s.
    cow_copy_bw: float = 8.0e9
    #: Cost to reset one poisoned stream (drain, destroy, recreate the
    #: hardware queue) during fault-domain recovery, ns.
    stream_reset_ns: float = 5_000_000.0
    #: Application-visible cost of a *speculative* checkpoint cut: arm
    #: the handle-version trackers and snapshot the version table — the
    #: only stall the validated-speculation path leaves on the critical
    #: path (no quiesce, no drain), ns.
    spec_cut_ns: float = 2_000_000.0
    #: Per-handle version-snapshot cost at a speculative cut, ns.
    spec_handle_ns: float = 2_000.0
    #: Bandwidth at which conflicted spans are re-copied during
    #: speculative validation (invalidate-and-replay of buffers the app
    #: wrote inside the capture window), bytes/s.
    spec_replay_bw: float = 10.0e9
    #: Per-invalidated-handle fixed replay cost during validation
    #: (re-issue the handle's logged ops against the captured state), ns.
    spec_invalidate_ns: float = 50_000.0


DEFAULT_HOST_COSTS = HostCosts()


# -- fault-domain timing ------------------------------------------------------

#: How long a hung kernel occupies its stream before the watchdog's
#: kernel-latency bound declares it stuck, ns (mirrors the ~30 s driver
#: watchdog on display GPUs, scaled to simulation virtual time).
KERNEL_HANG_NS = 30.0 * NS_PER_S

#: How long a stalled copy engine sits idle before the watchdog's copy
#: bound fires, ns.
COPY_STALL_NS = 10.0 * NS_PER_S


@dataclass(frozen=True)
class WatchdogLimits:
    """Virtual-time latency bounds enforced by the session watchdog.

    A kernel, copy, or synchronization whose *scheduled* completion sits
    further in the future than the relevant bound (beyond what the cost
    model alone would predict) is classified as hung/stalled and the
    watchdog raises a sticky :class:`~repro.errors.CudaError` instead of
    letting virtual time silently absorb the stall.
    """

    #: Max tolerated single-kernel duration before LAUNCH_TIMEOUT, ns.
    kernel_timeout_ns: float = KERNEL_HANG_NS
    #: Max tolerated copy-engine occupancy before STREAM_STALLED, ns.
    copy_timeout_ns: float = COPY_STALL_NS
    #: Virtual time the watchdog charges for *detecting* a hang: the
    #: host spins on cudaStreamQuery until the bound expires, ns.
    detection_wait_ns: float = 2_000_000.0


DEFAULT_WATCHDOG_LIMITS = WatchdogLimits()
