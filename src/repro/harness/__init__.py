"""Experiment harness: run apps under any dispatcher, reproduce §4.

- :mod:`~repro.harness.runner`      — build a machine, run an app under
  native / CRAC / CRUM / CMA-proxy / CRCUDA, with optional mid-run
  checkpoint + kill + restart.
- :mod:`~repro.harness.metrics`     — the paper's formulas: runtime
  overhead (eq. 1) and CUDA calls-per-second (eq. 2).
- :mod:`~repro.harness.experiments` — one entry point per table/figure.
- :mod:`~repro.harness.report`      — plain-text rendering of the
  tables/series the paper reports.
"""

from repro.harness.ckpt_bench import format_report, run_ckpt_bench
from repro.harness.fault_injection import FaultInjector, FaultSpec, FiredFault
from repro.harness.metrics import cps, overhead_pct
from repro.harness.runner import CkptRecord, Machine, RunResult, run_app

__all__ = [
    "Machine",
    "RunResult",
    "CkptRecord",
    "run_app",
    "run_ckpt_bench",
    "format_report",
    "overhead_pct",
    "cps",
    "FaultInjector",
    "FaultSpec",
    "FiredFault",
]
