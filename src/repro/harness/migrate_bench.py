"""The ``repro migrate`` benchmark: the cluster fault domain end to end.

One run exercises every capability the cluster package claims, in
virtual time, and emits a machine-readable report (BENCH_migration.json
in CI):

- **live vs naive migration** per app: the same workload migrates
  ``gpu_src → gpu_dst`` once with :class:`~repro.cluster.migration.\
LiveMigration` (pre-copy converges the target in the background; only
  the final delta cut is inside the blackout) and once with
  :func:`~repro.cluster.migration.naive_migrate` (stop-ship-restore).
  Both must land the fault-free digest, and the live blackout must be
  measurably below naive.
- **heterogeneous restore** falls out of the same cells: the
  destination node hosts a different GPU model, so every resume is an
  image captured on one device spec replayed onto another.
- **elastic restore**: an N-rank world's scattered regions are
  checkpointed, replayed through scratch sessions, and repartitioned
  onto M-rank worlds for each M in ``elastic_to`` — digest-checked
  byte-for-byte.
- **link faults**: a migration over an interconnect scripted to corrupt
  then drop the first two transfers must still converge (arrival CRCs +
  bounded retry), with the resends on the record.
- **rung-4 failover**: the fault-campaign's node-failover scenario (a
  node dies mid-run, the ladder restores the latest shipped generation
  on a survivor) runs homogeneous and heterogeneous.
"""

from __future__ import annotations

import zlib

import numpy as np


def _run_app(app_cls, session, *, scale, seed, checkpoint_cb=None):
    """Run one workload on an existing session; returns its AppResult.

    Mirrors the guarded-run wiring (fault_tolerance.run_guarded_app):
    every iteration runs for real so migration triggers land at true
    progress fractions, and ``upper_mmap`` re-binds through the session
    so it follows a mid-run restore onto a new split process.
    """
    from repro.apps.base import AppContext
    from repro.harness.runner import TIME_SCALE

    app = app_cls(scale=scale, seed=seed)
    if hasattr(app, "MEASURE"):
        app.MEASURE = 10**9
    ctx = AppContext(
        backend=session.backend,
        upper_mmap=lambda size: session.split.upper_mmap(size),
        checkpoint_cb=checkpoint_cb,
        time_scale=TIME_SCALE[session.gpu],
    )
    return app.run(ctx)


def _baseline_cell(app_cls, *, scale, seed, gpu) -> dict:
    """Fault-free single-node run: the digest every migration must hit."""
    from repro.core.session import CracSession

    session = CracSession(gpu=gpu, seed=seed)
    try:
        result = _run_app(app_cls, session, scale=scale, seed=seed)
        return {
            "digest": result.digest,
            "runtime_s": session.process.clock_ns / 1e9,
            "cuda_calls": result.cuda_calls,
        }
    finally:
        session.kill()


def _live_cell(
    app_cls, *, scale, seed, gpu_src, gpu_dst, checkpoint_fracs, baseline
) -> dict:
    """Migrate the app mid-run with the pre-copy state machine.

    The app's progress callback drives the phases: ``begin()`` at the
    first fraction, a ``precopy_round()`` per middle fraction, and
    ``cutover()`` at the last. If a tiny run finishes before the last
    trigger the remaining phases complete after the app (the blackout
    is still measured the same way).
    """
    from repro.cluster import ClusterNode, Interconnect, LiveMigration
    from repro.core.session import CracSession
    from repro.harness.fault_injection import derive_seed

    name = app_cls.name
    src = ClusterNode(f"{name}-src", gpu=gpu_src, seed=derive_seed(seed, f"{name}:src"))
    dst = ClusterNode(f"{name}-dst", gpu=gpu_dst, seed=derive_seed(seed, f"{name}:dst"))
    ic = Interconnect(seed=derive_seed(seed, f"{name}:live"))
    session = CracSession(gpu=gpu_src, seed=seed)
    src.adopt(name, session)
    mig = LiveMigration(session, src, dst, interconnect=ic, job=name)
    fracs = sorted(checkpoint_fracs)
    steps = [mig.begin]
    steps += [mig.precopy_round] * max(0, len(fracs) - 2)
    steps += [mig.cutover]
    fired = [0]
    reports = []

    def drive_next() -> None:
        out = steps[fired[0]]()
        fired[0] += 1
        if fired[0] == len(steps):
            reports.append(out)

    def cb(progress: float) -> None:
        while fired[0] < len(fracs) and progress >= fracs[fired[0]]:
            drive_next()

    try:
        result = _run_app(app_cls, session, scale=scale, seed=seed, checkpoint_cb=cb)
        while fired[0] < len(steps):
            drive_next()
        rep = reports[0]
        return {
            "digest": result.digest,
            "bit_correct": result.digest == baseline["digest"],
            "blackout_s": rep.blackout_ns / 1e9,
            "precopy_rounds": rep.precopy_rounds,
            "full_mb": rep.full_bytes / (1 << 20),
            "delta_mb": rep.delta_bytes / (1 << 20),
            "retries": rep.retries,
            "runtime_s": session.process.clock_ns / 1e9,
            "finished_on": f"{dst.name}:{session.gpu}",
        }
    finally:
        session.kill()


def _naive_cell(
    app_cls, *, scale, seed, gpu_src, gpu_dst, cut_frac, baseline
) -> dict:
    """Migrate the same app at the live run's cutover fraction, naively."""
    from repro.cluster import ClusterNode, Interconnect, naive_migrate
    from repro.core.session import CracSession
    from repro.harness.fault_injection import derive_seed

    name = app_cls.name
    src = ClusterNode(f"{name}-nsrc", gpu=gpu_src, seed=derive_seed(seed, f"{name}:nsrc"))
    dst = ClusterNode(f"{name}-ndst", gpu=gpu_dst, seed=derive_seed(seed, f"{name}:ndst"))
    ic = Interconnect(seed=derive_seed(seed, f"{name}:naive"))
    session = CracSession(gpu=gpu_src, seed=seed)
    src.adopt(name, session)
    reports = []

    def cb(progress: float) -> None:
        if not reports and progress >= cut_frac:
            reports.append(
                naive_migrate(session, src, dst, interconnect=ic, job=name)
            )

    try:
        result = _run_app(app_cls, session, scale=scale, seed=seed, checkpoint_cb=cb)
        if not reports:
            reports.append(
                naive_migrate(session, src, dst, interconnect=ic, job=name)
            )
        rep = reports[0]
        return {
            "digest": result.digest,
            "bit_correct": result.digest == baseline["digest"],
            "blackout_s": rep.blackout_ns / 1e9,
            "full_mb": rep.full_bytes / (1 << 20),
            "retries": rep.retries,
            "runtime_s": session.process.clock_ns / 1e9,
            "finished_on": f"{dst.name}:{session.gpu}",
        }
    finally:
        session.kill()


def _elastic_cells(
    *, ranks, elastic_to, region_bytes, seed, gpu
) -> dict:
    """Checkpoint an N-rank world's regions; restore onto each M."""
    from repro.cluster import elastic_restore
    from repro.harness.fault_injection import derive_seed
    from repro.mpi.world import MpiWorld

    rng = np.random.default_rng(derive_seed(seed, "elastic-region"))
    weights = rng.integers(0, 256, region_bytes, dtype=np.uint8).tobytes()
    bias = rng.integers(0, 256, max(1, region_bytes // 64), dtype=np.uint8).tobytes()
    world = MpiWorld(ranks, gpu=gpu, seed=seed)
    try:
        world.scatter_region("weights", weights)
        world.scatter_region("bias", bias)
        images = world.checkpoint_all()
        manifest = world.partition_manifest()
    finally:
        world.kill_all()
    cells = []
    for m in elastic_to:
        new_world, rep = elastic_restore(
            images, manifest, m, gpu=gpu, seed=seed
        )
        new_world.kill_all()
        cells.append({"m": m, **rep})
    return {
        "ranks": ranks,
        "region_bytes": {"weights": len(weights), "bias": len(bias)},
        "cells": cells,
        "ok": all(c["ok"] for c in cells),
    }


def _link_fault_cell(*, seed, gpu) -> dict:
    """Ship through a link scripted to corrupt then drop; must converge.

    Transfer 0 arrives with a flipped payload byte (the destination's
    CRC rejects it), transfer 1 never arrives; the retry loop's third
    attempt lands. The restored buffer is then read back and compared
    byte-for-byte.
    """
    from repro.cluster import ClusterNode, Interconnect, naive_migrate
    from repro.core.session import CracSession
    from repro.harness.fault_injection import derive_seed

    src = ClusterNode("lf-src", gpu=gpu, seed=derive_seed(seed, "lf:src"))
    dst = ClusterNode("lf-dst", gpu=gpu, seed=derive_seed(seed, "lf:dst"))
    ic = Interconnect(
        seed=derive_seed(seed, "lf:wire"),
        fault_plan={0: "corrupt", 1: "drop"},
    )
    rng = np.random.default_rng(derive_seed(seed, "lf:data"))
    data = rng.integers(0, 256, 64 << 10, dtype=np.uint8)
    session = CracSession(gpu=gpu, seed=seed)
    src.adopt("lf", session)
    try:
        addr = session.backend.malloc(data.nbytes)
        session.backend.memcpy(addr, data, data.nbytes, "h2d")
        rep = naive_migrate(session, src, dst, interconnect=ic, job="lf")
        out = np.zeros(data.nbytes, dtype=np.uint8)
        session.backend.memcpy(out, addr, data.nbytes, "d2h")
        outcomes = [t.outcome for t in ic.transfers]
        return {
            "retries": rep.retries,
            "digest_equal": bool(np.array_equal(out, data)),
            "crc": zlib.crc32(out.tobytes()),
            "transfers": len(ic.transfers),
            "outcomes": {o: outcomes.count(o) for o in sorted(set(outcomes))},
            "blackout_s": rep.blackout_ns / 1e9,
            "ok": rep.retries >= 2 and bool(np.array_equal(out, data)),
        }
    finally:
        session.kill()


def run_migration_bench(
    app_classes,
    *,
    scale: float = 0.05,
    seed: int = 0,
    gpu_src: str = "V100",
    gpu_dst: str = "K600",
    ranks: int = 3,
    elastic_to=(2, 5),
    region_bytes: int = 1 << 20,
    checkpoint_fracs=(0.25, 0.5, 0.75),
    smoke: bool = False,
) -> dict:
    """Run the full migration benchmark; returns the report dict.

    ``smoke`` shrinks the elastic region so the whole bench stays
    CI-cheap; every correctness check still runs.
    """
    from repro.harness.fault_tolerance import run_node_failover_scenario

    if smoke:
        region_bytes = min(region_bytes, 64 << 10)
    report: dict = {
        "config": {
            "apps": [cls.name for cls in app_classes],
            "scale": scale,
            "seed": seed,
            "gpu_src": gpu_src,
            "gpu_dst": gpu_dst,
            "ranks": ranks,
            "elastic_to": list(elastic_to),
            "region_bytes": region_bytes,
            "checkpoint_fracs": list(checkpoint_fracs),
            "smoke": smoke,
        },
        "apps": {},
    }
    fracs = sorted(checkpoint_fracs)
    for cls in app_classes:
        baseline = _baseline_cell(cls, scale=scale, seed=seed, gpu=gpu_src)
        live = _live_cell(
            cls, scale=scale, seed=seed, gpu_src=gpu_src, gpu_dst=gpu_dst,
            checkpoint_fracs=fracs, baseline=baseline,
        )
        naive = _naive_cell(
            cls, scale=scale, seed=seed, gpu_src=gpu_src, gpu_dst=gpu_dst,
            cut_frac=fracs[-1], baseline=baseline,
        )
        report["apps"][cls.name] = {
            "baseline": baseline,
            "live": live,
            "naive": naive,
            "blackout_speedup": (
                naive["blackout_s"] / live["blackout_s"]
                if live["blackout_s"] > 0 else float("inf")
            ),
            "ok": (
                live["bit_correct"]
                and naive["bit_correct"]
                and live["blackout_s"] < naive["blackout_s"]
            ),
        }
    report["elastic"] = _elastic_cells(
        ranks=ranks, elastic_to=elastic_to, region_bytes=region_bytes,
        seed=seed, gpu=gpu_src,
    )
    report["link_fault"] = _link_fault_cell(seed=seed, gpu=gpu_src)
    targets = [gpu_src] + ([gpu_dst] if gpu_dst != gpu_src else [])
    report["failover"] = [
        run_node_failover_scenario(
            app_classes[0], scale=scale, seed=seed,
            gpu_src=gpu_src, gpu_dst=dst,
        )
        for dst in targets
    ]
    failover_ok = all(
        cell.get("bit_correct", False)
        for cell in report["failover"]
        if "skipped" not in cell
    )
    report["ok"] = (
        all(c["ok"] for c in report["apps"].values())
        and report["elastic"]["ok"]
        and report["link_fault"]["ok"]
        and failover_ok
    )
    return report


def format_migration_bench(report: dict) -> str:
    """Render the migration bench report for terminals."""
    cfg = report["config"]
    lines = [
        f"migration bench: {cfg['gpu_src']} → {cfg['gpu_dst']}, "
        f"scale {cfg['scale']}, seed {cfg['seed']}",
        "",
    ]
    for name, cell in report["apps"].items():
        live, naive = cell["live"], cell["naive"]
        verdict = "bit-correct" if cell["ok"] else "FAILED"
        lines.append(
            f"  {name}: live blackout {live['blackout_s'] * 1e3:.1f} ms "
            f"({live['precopy_rounds']} pre-copy rounds, "
            f"{live['full_mb']:.2f} MB full + {live['delta_mb']:.2f} MB delta) "
            f"vs naive {naive['blackout_s'] * 1e3:.1f} ms "
            f"— {cell['blackout_speedup']:.2f}x shorter; {verdict}"
        )
    el = report["elastic"]
    for cell in el["cells"]:
        regions = ", ".join(
            f"{n} {r['nbytes']} B" for n, r in sorted(cell["regions"].items())
        )
        verdict = "digest-equal" if cell["ok"] else "FAILED"
        lines.append(
            f"  elastic {el['ranks']} → {cell['m']} ranks: "
            f"{cell['replayed_calls']} calls replayed; {regions}; {verdict}"
        )
    lf = report["link_fault"]
    lines.append(
        f"  link-fault ship: {lf['transfers']} transfers "
        f"({', '.join(f'{v} {k}' for k, v in sorted(lf['outcomes'].items()))}), "
        f"{lf['retries']} resend(s); "
        f"{'digest-equal' if lf['ok'] else 'FAILED'}"
    )
    for cell in report["failover"]:
        if "skipped" in cell:
            lines.append(
                f"  failover {cell['app']} → {cell['gpu_dst']}: "
                f"skipped ({cell['skipped']})"
            )
            continue
        verdict = "bit-correct" if cell["bit_correct"] else "FAILED"
        lines.append(
            f"  failover {cell['app']} {cell['gpu_src']} → {cell['gpu_dst']}: "
            f"{', '.join(cell['declared_dead'])} declared dead, "
            f"{cell['failovers']} failover(s), "
            f"lost {cell['lost_work_s']:.3f} s, "
            f"finished on {cell['finished_on']}; {verdict}"
        )
    lines.append("")
    lines.append(f"overall: {'OK' if report['ok'] else 'FAILED'}")
    return "\n".join(lines)
