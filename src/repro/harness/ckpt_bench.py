"""Checkpoint-mode cost sweep: full vs incremental vs forked.

Runs a workload several times on the same virtual machine — once with no
checkpoints (the baseline), then once per checkpoint mode with the same
set of mid-run cuts — and reports the *checkpoint stall*: the extra
virtual time the checkpointed run paid over the baseline. This is the
quantity CRUM/PhoenixOS-style forked checkpointing attacks: delta
encoding shrinks the image, forking moves its write off the critical
path so only quiesce + snapshot + COW remain as stall.

``repro ckpt-bench`` drives this and emits ``BENCH_delta_ckpt.json``;
``benchmarks/test_delta_ckpt.py`` asserts the ≥30% stall reduction.
"""

from __future__ import annotations

from typing import Sequence

from repro.harness.runner import Machine, run_app

#: (mode name, incremental?, forked?) — forked implies incremental, the
#: combination both CRUM and PhoenixOS converge on.
CKPT_MODES: tuple[tuple[str, bool, bool], ...] = (
    ("full", False, False),
    ("incremental", True, False),
    ("forked", True, True),
)


def default_cuts(n_cuts: int) -> list[float]:
    """``n_cuts`` evenly spaced progress fractions, e.g. 4 → .2/.4/.6/.8."""
    if n_cuts < 1:
        raise ValueError("need at least one cut")
    return [(i + 1) / (n_cuts + 1) for i in range(n_cuts)]


def run_ckpt_bench(
    app_classes: Sequence[type],
    *,
    scale: float = 1.0,
    n_cuts: int = 4,
    seed: int = 0,
    gpu: str = "V100",
) -> dict:
    """Run the full/incremental/forked comparison; returns the report.

    Every run uses ``noise=False`` (pure virtual time) and keeps the
    original process alive (``restart_after_checkpoint=False``) so the
    runtime difference against the uncheckpointed baseline isolates the
    checkpoint stall exactly.
    """
    cuts = default_cuts(n_cuts)
    machine = Machine(gpu=gpu, seed=seed)
    report: dict = {
        "benchmark": "delta_ckpt",
        "scale": scale,
        "gpu": gpu,
        "cuts": cuts,
        "apps": {},
    }
    for cls in app_classes:
        app_name = cls.name
        baseline = run_app(
            cls(scale=scale, seed=seed), machine, mode="crac", noise=False
        )
        entry: dict = {
            "baseline_s": baseline.runtime_exact_s,
            "modes": {},
            "reduction_pct": {},
        }
        for mode, incremental, forked in CKPT_MODES:
            res = run_app(
                cls(scale=scale, seed=seed),
                machine,
                mode="crac",
                checkpoint_at=cuts,
                restart_after_checkpoint=False,
                incremental=incremental,
                forked=forked,
                noise=False,
            )
            entry["modes"][mode] = {
                "runtime_s": res.runtime_exact_s,
                "stall_s": res.runtime_exact_s - baseline.runtime_exact_s,
                "image_mb": [r.size_mb for r in res.checkpoints],
                "ckpt_s": [r.checkpoint_s for r in res.checkpoints],
            }
        full_stall = entry["modes"]["full"]["stall_s"]
        for mode in ("incremental", "forked"):
            stall = entry["modes"][mode]["stall_s"]
            entry["reduction_pct"][mode] = (
                100.0 * (1.0 - stall / full_stall) if full_stall > 0 else 0.0
            )
        report["apps"][app_name] = entry
    reductions = [
        e["reduction_pct"]["forked"] for e in report["apps"].values()
    ]
    report["summary"] = {
        "min_forked_reduction_pct": min(reductions),
        "max_forked_reduction_pct": max(reductions),
        "n_cuts": n_cuts,
    }
    return report


def format_report(report: dict) -> str:
    """Human-readable table of a :func:`run_ckpt_bench` report."""
    lines = [
        f"checkpoint-mode sweep (scale={report['scale']}, "
        f"gpu={report['gpu']}, cuts at "
        + ", ".join(f"{c:.0%}" for c in report["cuts"])
        + ")",
        f"{'app':<16} {'mode':<12} {'runtime s':>10} {'stall s':>9} "
        f"{'images MB':>24} {'vs full':>8}",
        "-" * 84,
    ]
    for app_name, entry in report["apps"].items():
        lines.append(
            f"{app_name:<16} {'(baseline)':<12} "
            f"{entry['baseline_s']:>10.3f}"
        )
        for mode, m in entry["modes"].items():
            sizes = "/".join(f"{s:.0f}" for s in m["image_mb"])
            red = entry["reduction_pct"].get(mode)
            lines.append(
                f"{'':<16} {mode:<12} {m['runtime_s']:>10.3f} "
                f"{m['stall_s']:>9.3f} {sizes:>24} "
                + (f"{red:>7.1f}%" if red is not None else f"{'—':>8}")
            )
    s = report["summary"]
    lines.append(
        f"\nforked+incremental stall reduction vs full: "
        f"{s['min_forked_reduction_pct']:.1f}%–"
        f"{s['max_forked_reduction_pct']:.1f}% "
        f"across {len(report['apps'])} apps, {s['n_cuts']} cuts"
    )
    return "\n".join(lines)
