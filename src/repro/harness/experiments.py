"""One entry point per paper table/figure (the per-experiment index of
DESIGN.md §3). Each function returns structured rows; `repro.harness.
report` renders them as text tables shaped like the paper's.

All experiments take a ``scale`` so the same code drives quick sanity
runs (tests, scale ≈ 0.01) and paper-scale benchmark runs (scale = 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps import (
    CublasMicro,
    Hpgmg,
    Hypre,
    Lulesh,
    SimpleStreams,
    UnifiedMemoryStreams,
)
from repro.apps.rodinia import RODINIA_SUITE
from repro.harness.runner import Machine, run_app

#: §1's motivation graph: TOP500 systems with NVIDIA GPUs, per year.
TOP500_NVIDIA_BY_YEAR = {
    2010: 10, 2011: 15, 2012: 31, 2013: 38, 2014: 46,
    2015: 52, 2016: 60, 2017: 86, 2018: 122, 2019: 136,
}


@dataclass
class ExperimentRow:
    """One row of a reproduced table/figure."""

    label: str
    values: dict = field(default_factory=dict)


def fig0_top500() -> list[ExperimentRow]:
    """§1's TOP500-with-NVIDIA-GPUs time series (static data)."""
    return [
        ExperimentRow(str(year), {"systems": count})
        for year, count in sorted(TOP500_NVIDIA_BY_YEAR.items())
    ]


# ---------------------------------------------------------------- Table 1/2

def table1_characterization(scale: float = 0.02) -> list[ExperimentRow]:
    """Table 1: UVM/Streams usage, CPS, and stream counts per app family."""
    rows: list[ExperimentRow] = []
    rodinia_cps: list[float] = []
    for cls in RODINIA_SUITE:
        res = run_app(cls(scale=scale), mode="native", noise=False)
        rodinia_cps.append(res.cps)
    rows.append(
        ExperimentRow(
            "Rodinia",
            {
                "UVM": "✗", "Streams": "✗",
                "CPS": f"{min(rodinia_cps):,.0f}–{max(rodinia_cps):,.0f}",
                "# streams": "—",
            },
        )
    )
    for app, streams in (
        (Lulesh(scale=scale), "2–32"),
        (SimpleStreams(scale=scale), "4–128"),
        (UnifiedMemoryStreams(scale=scale), "4–128"),
        (Hpgmg(scale=scale), "—"),
        (Hypre(scale=scale), "1–10"),
    ):
        res = run_app(app, mode="native", noise=False)
        rows.append(
            ExperimentRow(
                app.name,
                {
                    "UVM": "✓" if app.uses_uvm else "✗",
                    "Streams": "✓" if app.uses_streams else "✗",
                    "CPS": f"{res.cps:,.0f}",
                    "# streams": streams,
                },
            )
        )
    return rows


def table2_cli_arguments() -> list[ExperimentRow]:
    """Table 2: command-line arguments (static configuration)."""
    rows = [
        ExperimentRow(cls.name, {"args": cls.cli_args}) for cls in RODINIA_SUITE
    ]
    rows.append(ExperimentRow(Lulesh.name, {"args": Lulesh.cli_args}))
    return rows


# ---------------------------------------------------------------- Figures 2/3

def fig2_rodinia_runtime(
    scale: float = 1.0, machine: Machine = Machine(), noise: bool = True
) -> list[ExperimentRow]:
    """Figure 2: Rodinia runtimes, native vs CRAC, with call counts."""
    rows = []
    for cls in RODINIA_SUITE:
        native = run_app(cls(scale=scale), machine, mode="native", noise=noise)
        crac = run_app(cls(scale=scale), machine, mode="crac", noise=noise)
        assert native.digest == crac.digest, f"{cls.name}: output mismatch"
        rows.append(
            ExperimentRow(
                cls.name,
                {
                    "native_s": native.runtime_s,
                    "crac_s": crac.runtime_s,
                    "overhead_pct": crac.overhead_pct(native),
                    "cuda_calls": native.cuda_calls,
                },
            )
        )
    return rows


def fig3_rodinia_checkpoint(scale: float = 1.0) -> list[ExperimentRow]:
    """Figure 3: Rodinia checkpoint/restart times + image sizes (gzip off,
    checkpoint triggered during the run)."""
    rows = []
    for cls in RODINIA_SUITE:
        res = run_app(
            cls(scale=scale), mode="crac", checkpoint_at=0.5, noise=False
        )
        (rec,) = res.checkpoints
        rows.append(
            ExperimentRow(
                cls.name,
                {
                    "checkpoint_s": rec.checkpoint_s,
                    "restart_s": rec.restart_s,
                    "size_mb": rec.size_mb,
                    "replayed_calls": rec.replayed_calls,
                },
            )
        )
    return rows


# ---------------------------------------------------------------- Figure 4

def fig4_simplestreams(
    scale: float = 1.0, iteration_counts=(5, 10, 100, 500)
) -> list[ExperimentRow]:
    """Figure 4: simpleStreams iteration sweep — total runtime (4a) and
    per-kernel time streamed (128) vs non-streamed (4b)."""
    rows = []
    for niter in iteration_counts:
        native = run_app(
            SimpleStreams(scale=scale, niterations=niter),
            mode="native", noise=False,
        )
        crac = run_app(
            SimpleStreams(scale=scale, niterations=niter),
            mode="crac", noise=False,
        )
        rows.append(
            ExperimentRow(
                f"niterations={niter}",
                {
                    "native_total_s": native.runtime_s,
                    "crac_total_s": crac.runtime_s,
                    "overhead_pct": crac.overhead_pct(native),
                    "native_kernel_ms": native.extras["kernel_ms"]["non_streamed"],
                    "crac_kernel_ms": crac.extras["kernel_ms"]["non_streamed"],
                    "native_streamed_ms": native.extras["kernel_ms"]["streamed"],
                    "crac_streamed_ms": crac.extras["kernel_ms"]["streamed"],
                },
            )
        )
    return rows


def stream_scaling(
    scale: float = 1.0, stream_counts=(4, 8, 16, 32, 64, 128)
) -> list[ExperimentRow]:
    """Supplementary sweep for contribution 3: CRAC's overhead as the
    stream count grows to the V100's 128-concurrent-kernel limit.

    The paper notes "the lack of previous experiments in the literature
    for more than two concurrent CUDA streams" — this sweep shows the
    overhead stays flat all the way up (the per-call trampoline cost is
    independent of stream concurrency).
    """
    rows = []
    for nstreams in stream_counts:
        native = run_app(
            SimpleStreams(scale=scale, nstreams=nstreams, niterations=100),
            mode="native", noise=False,
        )
        crac = run_app(
            SimpleStreams(scale=scale, nstreams=nstreams, niterations=100),
            mode="crac", noise=False,
        )
        rows.append(
            ExperimentRow(
                f"nstreams={nstreams}",
                {
                    "native_s": native.runtime_s,
                    "crac_s": crac.runtime_s,
                    "overhead_pct": crac.overhead_pct(native),
                    "cuda_calls": native.cuda_calls,
                },
            )
        )
    return rows


# ---------------------------------------------------------------- Figure 5

def _fig5_apps(scale: float):
    return (
        SimpleStreams(scale=scale),
        UnifiedMemoryStreams(scale=scale),
        Lulesh(scale=scale),
        Hpgmg(scale=scale),
        Hypre(scale=scale),
    )


def fig5_runtimes(scale: float = 1.0, noise: bool = True) -> list[ExperimentRow]:
    """Figure 5a/5b: stream-oriented + real-world runtimes, native vs CRAC."""
    rows = []
    for app in _fig5_apps(scale):
        native = run_app(app, mode="native", noise=noise)
        crac = run_app(type(app)(scale=scale), mode="crac", noise=noise)
        rows.append(
            ExperimentRow(
                app.name,
                {
                    "native_s": native.runtime_s,
                    "crac_s": crac.runtime_s,
                    "overhead_pct": crac.overhead_pct(native),
                    "cuda_calls": native.cuda_calls,
                },
            )
        )
    return rows


def fig5c_checkpoint(scale: float = 1.0) -> list[ExperimentRow]:
    """Figure 5c: checkpoint/restart times + sizes for the five apps."""
    rows = []
    for app in _fig5_apps(scale):
        res = run_app(app, mode="crac", checkpoint_at=0.5, noise=False)
        (rec,) = res.checkpoints
        rows.append(
            ExperimentRow(
                app.name,
                {
                    "checkpoint_s": rec.checkpoint_s,
                    "restart_s": rec.restart_s,
                    "size_mb": rec.size_mb,
                    "replayed_calls": rec.replayed_calls,
                },
            )
        )
    return rows


# ---------------------------------------------------------------- Table 3

def table3_ipc_comparison(scale: float = 0.01) -> list[ExperimentRow]:
    """Table 3: cuBLAS under native vs CRAC vs CMA/IPC proxy.

    The timing loop is size-invariant per call, so small scales (fewer
    loop repetitions) measure the same per-call milliseconds.
    """
    rows = []
    for routine in ("sdot", "sgemv", "sgemm"):
        for mb in (1, 10, 100):
            per_mode = {}
            for mode in ("native", "crac", "proxy-cma"):
                res = run_app(
                    CublasMicro(scale=scale, routine=routine, data_mb=mb),
                    mode=mode, noise=False,
                )
                per_mode[mode] = res.extras["ms_per_call"]
            native_ms = per_mode["native"]
            rows.append(
                ExperimentRow(
                    f"cublas{routine.capitalize()} {mb}MB",
                    {
                        "native_ms": native_ms,
                        "crac_ms": per_mode["crac"],
                        "crac_overhead_pct": (per_mode["crac"] - native_ms)
                        / native_ms * 100,
                        "cma_ms": per_mode["proxy-cma"],
                        "cma_overhead_pct": (per_mode["proxy-cma"] - native_ms)
                        / native_ms * 100,
                    },
                )
            )
    return rows


def baseline_matrix(
    scale: float = 0.05, app_cls=None
) -> list[ExperimentRow]:
    """Supplementary: one workload under every checkpointing generation.

    Native, CRAC, CRUM (proxy + shadow pages), the naive CMA proxy
    (CRCUDA-class dispatch), and CRCUDA — runtime and overhead for each,
    the condensed form of the paper's entire comparison.
    """
    if app_cls is None:
        from repro.apps.rodinia import Hotspot as app_cls  # noqa: N813
    native = run_app(app_cls(scale=scale), mode="native", noise=False)
    rows = [
        ExperimentRow(
            "native",
            {"runtime_s": native.runtime_exact_s, "overhead_pct": 0.0,
             "checkpointable": "—"},
        )
    ]
    for mode, ckpt in (
        ("crac", "full (UVM + streams)"),
        ("crum", "UVM restricted"),
        ("proxy-cma", "no UVM (CRCUDA-class)"),
        ("crcuda", "no UVM"),
    ):
        res = run_app(app_cls(scale=scale), mode=mode, noise=False)
        assert res.digest == native.digest
        rows.append(
            ExperimentRow(
                mode,
                {
                    "runtime_s": res.runtime_exact_s,
                    "overhead_pct": (res.runtime_exact_s - native.runtime_exact_s)
                    / native.runtime_exact_s * 100,
                    "checkpointable": ckpt,
                },
            )
        )
    return rows


def overhead_model(scale: float = 1.0) -> list[ExperimentRow]:
    """Supplementary: CRAC's overhead decomposed analytically.

    The paper's overhead story is a two-term model:
    ``overhead ≈ startup/T + CPS × per-call-cost`` — startup dominates
    the short Rodinia apps, the per-call term dominates call-dense apps
    (DWT2D, HPGMG). This experiment measures both the actual (exact,
    noise-free) overhead and the model's prediction per app.
    """
    from repro.gpu.timing import DEFAULT_HOST_COSTS
    from repro.linux.process import SYSCALL_NS

    costs = DEFAULT_HOST_COSTS
    per_call_ns = 2 * SYSCALL_NS + costs.trampoline_body_ns
    rows = []
    for cls in RODINIA_SUITE:
        native = run_app(cls(scale=scale), mode="native", noise=False)
        crac = run_app(cls(scale=scale), mode="crac", noise=False)
        measured = (
            (crac.runtime_exact_s - native.runtime_exact_s)
            / native.runtime_exact_s * 100
        )
        predicted = (
            costs.crac_startup_ns / 1e9 / native.runtime_exact_s
            + native.cuda_calls * per_call_ns / 1e9 / native.runtime_exact_s
        ) * 100
        rows.append(
            ExperimentRow(
                cls.name,
                {
                    "native_s": native.runtime_exact_s,
                    "cps": native.cps,
                    "measured_ovh_pct": measured,
                    "model_ovh_pct": predicted,
                    "residual_pp": measured - predicted,
                },
            )
        )
    return rows


# ---------------------------------------------------------------- Figure 6

def fig6_fsgsbase(scale: float = 1.0, noise: bool = True) -> list[ExperimentRow]:
    """Figure 6: Rodinia on the K600, CRAC overhead on an unpatched vs
    FSGSBASE-patched kernel."""
    rows = []
    for cls in RODINIA_SUITE:
        res = {}
        for fsgsbase in (False, True):
            machine = Machine.k600(fsgsbase=fsgsbase)
            native = run_app(cls(scale=scale), machine, mode="native", noise=noise)
            crac = run_app(cls(scale=scale), machine, mode="crac", noise=noise)
            key = "fsgsbase" if fsgsbase else "unpatched"
            res[f"native_{key}_s"] = native.runtime_s
            res[f"crac_{key}_s"] = crac.runtime_s
            res[f"overhead_{key}_pct"] = crac.overhead_pct(native)
        res["overhead_delta_pct"] = (
            res["overhead_fsgsbase_pct"] - res["overhead_unpatched_pct"]
        )
        rows.append(ExperimentRow(cls.name, res))
    return rows
