"""The serve-tier chaos campaign: many sessions, five fault cells.

``repro serve-bench`` drives the :mod:`repro.serve` tier through a
matrix of *cells* — identical serving workloads under different fault
regimes — and holds the result to three hard requirements:

- **zero lost sessions** — every opened session closes (possibly after
  eviction, quarantine, or node death);
- **every digest equal** — each closed session's state vector matches
  the pure-numpy reference replay of exactly the requests it served;
- **bounded resume latency** — p99 rehydrate/failover resume must not
  regress more than :data:`RESUME_REGRESSION_LIMIT` against the
  committed baseline (virtual time, so the gate is deterministic).

Cells (all sharing the session/wave schedule, differing only in faults):

==================  =========================================================
``baseline``        no faults — the digest/latency reference
``ecc``             double-bit ECC per-session fault plan (fatal: the ladder
                    goes straight to the restore rung)
``kernel-hang``     wedged-kernel plan (sticky: watchdog trips at sync,
                    stream reset first, restore if the replay re-wedges)
``node-death``      a node stops heartbeating after the first wave; hot
                    sessions fail over to their buddy's shadow, parked ones
                    re-home without a restore
``eviction-storm``  slots cut to a third — every wave churns most of the
                    population through park/rehydrate
==================  =========================================================

Latencies and throughput are *virtual-time* (the simulation's clocks),
so reports are bit-reproducible for a given seed; the JSON also records
wall time per cell for CI budget tracking.
"""

from __future__ import annotations

import json
import os
import time

from repro.errors import AdmissionRejectedError, ServeDeadlineExceededError
from repro.gpu.timing import NS_PER_S
from repro.harness.fault_injection import FaultSpec, derive_seed
from repro.serve.admission import AdmissionController
from repro.serve.pool import SessionPool
from repro.serve.scheduler import ServeScheduler
from repro.trace.metrics import MetricsRegistry

#: Baseline file the CI gate compares against.
DEFAULT_BASELINE = "benchmarks/BENCH_serve_baseline.json"
#: p99 resume-latency ratio above which the CI gate fails.
RESUME_REGRESSION_LIMIT = 1.25
#: Sessions/sec ratio *below* which the CI gate fails.
THROUGHPUT_FLOOR = 0.80

_NS_PER_MS = 1e6


def _percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile over virtual-time samples (0 if empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx]


def _cell_faults(name: str) -> list[FaultSpec]:
    if name == "ecc":
        return [FaultSpec("ecc", probability=0.02, max_fires=2)]
    if name == "kernel-hang":
        return [FaultSpec("kernel-hang", probability=0.02, max_fires=2)]
    return []


def run_cell(
    name: str,
    *,
    sessions: int,
    nodes: int,
    slots: int,
    waves: int,
    seed: int,
    state_elems: int,
) -> tuple[dict, MetricsRegistry]:
    """Run one campaign cell; return (JSON-safe summary, its metrics)."""
    t_wall = time.perf_counter()  # lint: allow — CI wall-budget tracking only
    cell_seed = derive_seed(seed, f"serve-cell:{name}")
    if name == "eviction-storm":
        slots = max(1, slots // 3)
        waves += 1
    pool = SessionPool(nodes, slots=slots, seed=cell_seed)
    admission = AdmissionController(
        max_queue=max(8, (sessions * 3) // 4),
        deadline_ns=5e9,
        service_estimate_ns=500_000.0,
        servers=nodes * slots,
    )
    sched = ServeScheduler(
        pool,
        admission=admission,
        seed=cell_seed,
        state_elems=state_elems,
        fault_plan=_cell_faults(name),
    )
    sids = [f"{name}-{i:04d}" for i in range(sessions)]
    for sid in sids:
        sched.open_session(sid)
    shed = 0
    for wave in range(waves):
        admitted: list[tuple[str, float]] = []
        for sid in sids:
            try:
                admitted.append((sid, sched.offer(sid)))
            except (AdmissionRejectedError, ServeDeadlineExceededError):
                shed += 1
        for sid, wait_ns in admitted:
            sched.handle_request(sid, wait_ns=wait_ns)
        if name == "node-death" and wave == 0:
            pool.fail(pool.nodes[0].name)
            sched.sweep()
    results = [sched.close_session(sid) for sid in sids]
    lost = sum(1 for r in results if r["lost"])
    mismatches = sum(1 for r in results if not r["lost"] and not r["ok"])
    served = sum(r["requests"] for r in results if not r["lost"])
    # Campaign makespan: the furthest-advanced session clock (virtual
    # timelines are per-session; the slowest one bounds the campaign).
    makespan_ns = max(
        (rec.session.process.clock_ns for rec in sched.records.values()),
        default=0.0,
    )
    counters = sched.metrics.snapshot()["counters"]
    summary = {
        "cell": name,
        "sessions": sessions,
        "nodes": nodes,
        "slots": slots,
        "waves": waves,
        "requests_served": served,
        "requests_shed": shed,
        "lost_sessions": lost,
        "digest_mismatches": mismatches,
        "parks": int(counters.get("serve.evicted", 0)),
        "rehydrates": int(counters.get("serve.rehydrated", 0)),
        "failovers": int(counters.get("serve.failed_over", 0)),
        "quarantined": int(counters.get("serve.quarantined", 0)),
        "recovery_rungs": {
            rung: int(counters.get(f"serve.recovery.{rung}", 0))
            for rung in ("retry", "stream-reset", "restore", "failover")
        },
        "resume_p50_ms": _percentile(sched.resume_ns, 0.50) / _NS_PER_MS,
        "resume_p99_ms": _percentile(sched.resume_ns, 0.99) / _NS_PER_MS,
        "resume_samples": len(sched.resume_ns),
        "makespan_s": makespan_ns / NS_PER_S,
        "sessions_per_sec": (
            sessions / (makespan_ns / NS_PER_S) if makespan_ns else 0.0
        ),
        "admission": admission.snapshot(),
        "shipped_bytes": pool.shipped_bytes,
        "wall_s": round(time.perf_counter() - t_wall, 3),  # lint: allow — CI wall budget
    }
    return summary, sched.metrics


def evaluate_gate(report: dict, baseline_path: str | None) -> dict:
    """Compare campaign totals against the committed baseline."""
    gate: dict = {
        "baseline": baseline_path,
        "baseline_found": False,
        "resume_limit": RESUME_REGRESSION_LIMIT,
        "throughput_floor": THROUGHPUT_FLOOR,
    }
    if not baseline_path or not os.path.exists(baseline_path):
        gate["ok"] = True
        return gate
    with open(baseline_path) as fh:
        base = json.load(fh)
    gate["baseline_found"] = True
    totals = report["totals"]
    base_p99 = base["resume_p99_ms"]
    base_tput = base["sessions_per_sec"]
    # A sub-millisecond baseline would let scheduler-grade noise flip
    # the gate; floor both sides the way perf-bench does.
    floor = 0.05
    gate["resume_ratio"] = (totals["resume_p99_ms"] + floor) / (
        base_p99 + floor
    )
    gate["throughput_ratio"] = (
        totals["sessions_per_sec"] / base_tput if base_tput else 1.0
    )
    gate["ok"] = (
        gate["resume_ratio"] <= RESUME_REGRESSION_LIMIT
        and gate["throughput_ratio"] >= THROUGHPUT_FLOOR
    )
    return gate


def run_serve_bench(
    *,
    sessions: int = 200,
    nodes: int = 4,
    slots: int = 12,
    waves: int = 2,
    seed: int = 0,
    state_elems: int = 64,
    smoke: bool = False,
    baseline: str | None = DEFAULT_BASELINE,
) -> dict:
    """Run the full five-cell campaign; return the gated report."""
    if smoke:
        sessions = min(sessions, 200)
        waves = min(waves, 2)
    cells = ["baseline", "ecc", "kernel-hang", "node-death", "eviction-storm"]
    report: dict = {
        "benchmark": "serve-bench",
        "version": 1,
        "smoke": smoke,
        "config": {
            "sessions": sessions,
            "nodes": nodes,
            "slots": slots,
            "waves": waves,
            "seed": seed,
            "state_elems": state_elems,
            "cells": cells,
        },
        "cells": [],
    }
    merged = MetricsRegistry()
    resume_all: list[float] = []
    for cell in cells:
        summary, metrics = run_cell(
            cell,
            sessions=sessions,
            nodes=nodes,
            slots=slots,
            waves=waves,
            seed=seed,
            state_elems=state_elems,
        )
        report["cells"].append(summary)
        merged.merge(metrics)
    counters = merged.snapshot()["counters"]
    resume_hist = merged.snapshot()["histograms"].get("serve.resume_ns")
    # Exact percentiles need the raw samples, which per-cell summaries
    # carry only as p50/p99; recompute totals from the worst cell to
    # stay conservative (p99 over pooled samples <= max per-cell p99).
    worst_p99 = max(c["resume_p99_ms"] for c in report["cells"])
    med_p50 = sorted(c["resume_p50_ms"] for c in report["cells"])[
        len(report["cells"]) // 2
    ]
    total_sessions = sessions * len(cells)
    total_makespan = max(c["makespan_s"] for c in report["cells"])
    report["totals"] = {
        "sessions": total_sessions,
        "requests_served": sum(c["requests_served"] for c in report["cells"]),
        "requests_shed": sum(c["requests_shed"] for c in report["cells"]),
        "lost_sessions": sum(c["lost_sessions"] for c in report["cells"]),
        "digest_mismatches": sum(
            c["digest_mismatches"] for c in report["cells"]
        ),
        "parks": sum(c["parks"] for c in report["cells"]),
        "rehydrates": sum(c["rehydrates"] for c in report["cells"]),
        "failovers": sum(c["failovers"] for c in report["cells"]),
        "resume_p50_ms": med_p50,
        "resume_p99_ms": worst_p99,
        "resume_mean_ms": (
            (resume_hist["mean"] / _NS_PER_MS) if resume_hist else 0.0
        ),
        "sessions_per_sec": (
            total_sessions / total_makespan if total_makespan else 0.0
        ),
        "wall_s": round(sum(c["wall_s"] for c in report["cells"]), 3),
    }
    report["metrics"] = {"counters": counters}
    report["gate"] = evaluate_gate(report, baseline)
    report["checks"] = {
        "zero_lost": report["totals"]["lost_sessions"] == 0,
        "digests_equal": report["totals"]["digest_mismatches"] == 0,
        "gate_ok": report["gate"]["ok"],
    }
    report["ok"] = all(report["checks"].values())
    return report


def baseline_payload(report: dict) -> dict:
    """The slice of a report worth committing as the gate baseline."""
    return {
        "benchmark": "serve-baseline",
        "version": report["version"],
        "config": report["config"],
        "smoke": report["smoke"],
        "resume_p50_ms": report["totals"]["resume_p50_ms"],
        "resume_p99_ms": report["totals"]["resume_p99_ms"],
        "sessions_per_sec": report["totals"]["sessions_per_sec"],
    }


def format_serve_bench(report: dict) -> str:
    """Human-readable campaign summary."""
    lines = [
        f"serve-bench ({'smoke' if report['smoke'] else 'full'}): "
        f"{report['config']['sessions']} sessions/cell x "
        f"{len(report['config']['cells'])} cells, "
        f"{report['config']['nodes']} nodes x "
        f"{report['config']['slots']} slots"
    ]
    for c in report["cells"]:
        rungs = ", ".join(
            f"{k}={v}" for k, v in c["recovery_rungs"].items() if v
        ) or "none"
        lines.append(
            f"  {c['cell']:<15} served={c['requests_served']:>4} "
            f"shed={c['requests_shed']:>3} lost={c['lost_sessions']} "
            f"mismatch={c['digest_mismatches']} parks={c['parks']:>4} "
            f"p99 resume={c['resume_p99_ms']:.2f}ms "
            f"[{rungs}] ({c['wall_s']:.1f}s wall)"
        )
    t = report["totals"]
    lines.append(
        f"  totals: {t['sessions']} sessions, {t['requests_served']} served, "
        f"{t['lost_sessions']} lost, {t['digest_mismatches']} mismatched, "
        f"p50/p99 resume {t['resume_p50_ms']:.2f}/{t['resume_p99_ms']:.2f}ms, "
        f"{t['sessions_per_sec']:.1f} sessions/s"
    )
    gate = report["gate"]
    if not gate.get("baseline_found"):
        lines.append("  gate:   no baseline — recording run only")
    else:
        lines.append(
            f"  gate:   p99 ratio {gate['resume_ratio']:.2f} "
            f"(limit {gate['resume_limit']:.2f}), throughput ratio "
            f"{gate['throughput_ratio']:.2f} "
            f"(floor {gate['throughput_floor']:.2f})"
        )
    lines.append(f"  result: {'OK' if report['ok'] else 'FAILED'}")
    return "\n".join(lines)
