"""Fault-tolerance economics: what CRAC's costs buy (paper §1(a)/(b)).

The paper motivates transparent checkpointing with GPU soft errors and
long-running jobs; this module turns the *measured* checkpoint/restart
costs of the reproduction into completion-time predictions:

- :func:`young_interval` — Young's first-order optimal checkpoint
  interval √(2·C·MTBF) for checkpoint cost C;
- :func:`daly_interval` — Daly's higher-order refinement;
- :func:`expected_completion_time` — analytic expected makespan of a job
  with periodic checkpointing under exponential failures;
- :class:`FaultSimulator` — a seeded Monte-Carlo of the same process
  (inject failures, lose work back to the last checkpoint, pay restart),
  used to cross-validate the analytic model and to compare "CRAC with
  interval τ" against "no checkpointing, restart from scratch".
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field


def young_interval(checkpoint_cost_s: float, mtbf_s: float) -> float:
    """Young's optimal interval: √(2·C·M)."""
    if checkpoint_cost_s <= 0 or mtbf_s <= 0:
        raise ValueError("cost and MTBF must be positive")
    return math.sqrt(2.0 * checkpoint_cost_s * mtbf_s)


def daly_interval(checkpoint_cost_s: float, mtbf_s: float) -> float:
    """Daly's refinement of Young's formula (valid for C < 2M)."""
    if checkpoint_cost_s <= 0 or mtbf_s <= 0:
        raise ValueError("cost and MTBF must be positive")
    c, m = checkpoint_cost_s, mtbf_s
    if c >= 2 * m:
        return m
    return math.sqrt(2.0 * c * m) * (
        1.0 + math.sqrt(c / (2.0 * m)) / 3.0 + (c / (2.0 * m)) / 9.0
    ) - c


def expected_completion_time(
    work_s: float,
    interval_s: float,
    checkpoint_cost_s: float,
    restart_cost_s: float,
    mtbf_s: float,
) -> float:
    """Expected makespan with periodic checkpointing, exponential faults.

    Standard first-order model: each segment of ``interval_s`` work plus
    its checkpoint is retried until it completes without a failure; a
    failure costs the partial segment (≈ half on average, modelled via
    the exponential's memorylessness exactly) plus the restart.
    """
    if work_s <= 0:
        raise ValueError("work must be positive")
    if interval_s <= 0:
        raise ValueError("interval must be positive")
    if mtbf_s <= 0:
        raise ValueError("MTBF must be positive")
    lam = 1.0 / mtbf_s
    segments = max(1, math.ceil(work_s / interval_s))
    seg_work = work_s / segments
    seg_span = seg_work + checkpoint_cost_s
    # Expected time to push one segment through, with exponential
    # failures at rate λ: E = (e^{λT} − 1)/λ per attempt-cycle plus a
    # restart per failure (classic renewal argument).
    p_survive = math.exp(-lam * seg_span)
    if p_survive == 0.0:
        # Degenerate regime: a segment is so long relative to the MTBF
        # that (in double precision) it can never complete fault-free —
        # the expected makespan diverges.
        return math.inf
    e_attempt = (math.exp(lam * seg_span) - 1.0) / lam
    p_fail = 1.0 - p_survive
    e_segment = e_attempt + (p_fail / p_survive) * restart_cost_s
    return segments * e_segment


@dataclass
class SimOutcome:
    """Result of one Monte-Carlo run."""

    makespan_s: float
    failures: int
    checkpoints: int
    work_lost_s: float


@dataclass
class SessionSimOutcome(SimOutcome):
    """Result of one *session-backed* run (real checkpoint pipeline)."""

    aborted_checkpoints: int = 0
    restart_attempts: int = 0
    generations_restored: list[int] = field(default_factory=list)


@dataclass
class CrossValidation:
    """Analytic Young/Daly prediction vs end-to-end simulated runs."""

    interval_s: float
    checkpoint_cost_s: float
    restart_cost_s: float
    analytic_s: float
    simulated_s: float
    outcomes: list[SessionSimOutcome]

    @property
    def ratio(self) -> float:
        """simulated / analytic (1.0 = perfect agreement)."""
        return self.simulated_s / self.analytic_s if self.analytic_s else math.inf


class FaultSimulator:
    """Seeded Monte-Carlo of a checkpointed job under random failures."""

    def __init__(self, mtbf_s: float, seed: int = 0) -> None:
        if mtbf_s <= 0:
            raise ValueError("MTBF must be positive")
        self.mtbf_s = mtbf_s
        self._rng = random.Random(seed)

    def run_once(
        self,
        work_s: float,
        interval_s: float | None,
        checkpoint_cost_s: float,
        restart_cost_s: float,
    ) -> SimOutcome:
        """Simulate one job. ``interval_s=None`` means no checkpointing
        (a failure loses *all* completed work)."""
        clock = 0.0
        done = 0.0  # committed (checkpointed) work
        progress = 0.0  # uncommitted work since the last checkpoint
        failures = 0
        checkpoints = 0
        lost = 0.0
        next_fault = self._rng.expovariate(1.0 / self.mtbf_s)
        while done + progress < work_s:
            # Time until the next event: checkpoint boundary or job end.
            if interval_s is None:
                until_ckpt = work_s - done - progress
            else:
                until_ckpt = min(interval_s - progress, work_s - done - progress)
            if clock + until_ckpt >= next_fault:
                # Failure strikes mid-segment: everything run since the
                # last checkpoint — the uncommitted progress plus the
                # part of this slice that actually ran — is lost.
                ran = min(max(0.0, next_fault - clock), until_ckpt)
                lost += progress + ran
                progress = 0.0
                if interval_s is None:
                    done = 0.0  # no checkpoint: start over
                clock = next_fault + restart_cost_s
                failures += 1
                next_fault = clock + self._rng.expovariate(1.0 / self.mtbf_s)
                continue
            clock += until_ckpt
            progress += until_ckpt
            if done + progress >= work_s:
                break
            # Checkpoint boundary reached: commit, pay the cost (a fault
            # during the checkpoint loses the segment).
            if clock + checkpoint_cost_s >= next_fault:
                lost += progress
                progress = 0.0
                clock = next_fault + restart_cost_s
                failures += 1
                next_fault = clock + self._rng.expovariate(1.0 / self.mtbf_s)
                continue
            clock += checkpoint_cost_s
            done += progress
            progress = 0.0
            checkpoints += 1
        return SimOutcome(
            makespan_s=clock, failures=failures,
            checkpoints=checkpoints, work_lost_s=lost,
        )

    def mean_makespan(
        self,
        work_s: float,
        interval_s: float | None,
        checkpoint_cost_s: float,
        restart_cost_s: float,
        runs: int = 200,
    ) -> float:
        """Mean makespan over ``runs`` Monte-Carlo repetitions."""
        total = 0.0
        for _ in range(runs):
            total += self.run_once(
                work_s, interval_s, checkpoint_cost_s, restart_cost_s
            ).makespan_s
        return total / runs

    # -- session-backed mode ---------------------------------------------------

    def run_session_once(
        self,
        work_s: float,
        interval_s: float,
        *,
        ckpt_fault_prob: float = 0.0,
        restore_fault_prob: float = 0.0,
        keep_generations: int = 3,
        retries: int = 3,
        backoff_s: float = 0.05,
        gpu: str = "V100",
    ) -> SessionSimOutcome:
        """One end-to-end run through the *real* checkpoint pipeline.

        Unlike :meth:`run_once` — which charges abstract per-event
        costs — this drives an actual :class:`~repro.core.session.CracSession`
        with a :class:`~repro.dmtcp.store.CheckpointStore`: checkpoints
        pay the measured drain/stage/write costs, faults can also land
        *inside* the checkpoint path (``ckpt_fault_prob`` per staged
        region — the partial is discarded and the job continues from
        the previous generation), restores can fail transiently
        (``restore_fault_prob``) and self-heal via
        :meth:`~repro.core.session.CracSession.restart_latest`'s
        backoff + generation fallback. Work advances the session's
        virtual clock; the makespan is the session's own elapsed time.
        """
        from repro.core.session import CracSession
        from repro.dmtcp.store import CheckpointStore
        from repro.errors import InjectedFault
        from repro.harness.fault_injection import FaultInjector, FaultSpec

        specs = []
        if ckpt_fault_prob > 0.0:
            specs.append(FaultSpec(
                "image-write", probability=ckpt_fault_prob, max_fires=None))
        if restore_fault_prob > 0.0:
            specs.append(FaultSpec(
                "restore", probability=restore_fault_prob, max_fires=None))
        injector = FaultInjector(specs, seed=self._rng.randrange(1 << 30))
        store = CheckpointStore(
            keep_generations=keep_generations, fault_injector=injector)
        session = CracSession(
            gpu=gpu, seed=self._rng.randrange(1 << 30),
            fault_injector=injector,
        )
        # Give the job some state worth checkpointing.
        ptr = session.backend.malloc(1 << 16)
        session.backend.memset(ptr, 0x5A, 1 << 16)

        def take_checkpoint() -> int | None:
            """Two-phase checkpoint; None if a fault tore the write."""
            try:
                session.checkpoint(store=store)
            except InjectedFault:
                store.discard_partials()
                return None
            return store.latest()

        # Anchor generation 0 so the very first fault has a recovery
        # line (a job with *no* checkpoint yet would restart from
        # scratch; cap the attempts so a hostile plan cannot spin).
        committed_at: dict[int, float] = {}
        for _ in range(50):
            gen = take_checkpoint()
            if gen is not None:
                committed_at[gen] = 0.0
                break
        else:
            raise RuntimeError("could not commit the anchor checkpoint")

        t0 = session.process.clock_ns
        committed = 0.0  # work protected by the latest committed image
        progress = 0.0  # work since the last *committed* checkpoint
        since_attempt = 0.0  # work since the last checkpoint *attempt*
        failures = 0
        checkpoints = 0
        aborted = 0
        lost = 0.0
        restart_attempts = 0
        restored_gens: list[int] = []
        next_fault = self._rng.expovariate(1.0 / self.mtbf_s)

        while committed + progress < work_s:
            until_attempt = min(
                interval_s - since_attempt, work_s - committed - progress
            )
            elapsed = (session.process.clock_ns - t0) / 1e9
            if elapsed + until_attempt >= next_fault:
                # The node dies mid-segment.
                ran = min(max(0.0, next_fault - elapsed), until_attempt)
                session.process.advance(ran * 1e9)
                lost += progress + ran
                progress = 0.0
                since_attempt = 0.0
                failures += 1
                session.kill()
                report = session.restart_latest(
                    store, retries=retries, backoff_s=backoff_s
                )
                restart_attempts += len(report.attempts)
                restored_gens.append(report.generation)
                if committed_at[report.generation] < committed:
                    # Fell back past the newest cut: that work is lost too.
                    lost += committed - committed_at[report.generation]
                    committed = committed_at[report.generation]
                now = (session.process.clock_ns - t0) / 1e9
                next_fault = now + self._rng.expovariate(1.0 / self.mtbf_s)
                continue
            session.process.advance(until_attempt * 1e9)
            progress += until_attempt
            since_attempt += until_attempt
            if committed + progress >= work_s:
                break
            gen = take_checkpoint()
            since_attempt = 0.0
            if gen is None:
                aborted += 1  # torn write discarded; keep running uncommitted
                continue
            committed += progress
            progress = 0.0
            committed_at[gen] = committed
            checkpoints += 1

        return SessionSimOutcome(
            makespan_s=(session.process.clock_ns - t0) / 1e9,
            failures=failures,
            checkpoints=checkpoints,
            work_lost_s=lost,
            aborted_checkpoints=aborted,
            restart_attempts=restart_attempts,
            generations_restored=restored_gens,
        )

    def measure_session_costs(self, *, gpu: str = "V100") -> tuple[float, float]:
        """Probe one checkpoint + restart of a minimal session; returns
        (checkpoint_cost_s, restart_cost_s) in virtual seconds."""
        from repro.core.session import CracSession

        session = CracSession(gpu=gpu, seed=0)
        ptr = session.backend.malloc(1 << 16)
        session.backend.memset(ptr, 0x5A, 1 << 16)
        image = session.checkpoint()
        session.kill()
        report = session.restart(image)
        return image.checkpoint_time_ns / 1e9, report.restart_time_ns / 1e9

    def cross_validate_session(
        self,
        work_s: float,
        interval_s: float | None = None,
        *,
        runs: int = 3,
        ckpt_fault_prob: float = 0.0,
        restore_fault_prob: float = 0.0,
        gpu: str = "V100",
    ) -> CrossValidation:
        """Cross-validate Young/Daly analytics against end-to-end runs.

        Probes the real checkpoint/restart costs, predicts the makespan
        with :func:`expected_completion_time` (at ``interval_s`` or
        Young's optimum), then measures the mean makespan of ``runs``
        session-backed simulations *with* checkpoint-stage faults
        enabled. The returned :class:`CrossValidation` carries both
        numbers and the per-run outcomes.
        """
        ckpt_cost, restart_cost = self.measure_session_costs(gpu=gpu)
        if interval_s is None:
            interval_s = young_interval(max(ckpt_cost, 1e-6), self.mtbf_s)
        analytic = expected_completion_time(
            work_s, interval_s, ckpt_cost, restart_cost, self.mtbf_s
        )
        outcomes = [
            self.run_session_once(
                work_s, interval_s,
                ckpt_fault_prob=ckpt_fault_prob,
                restore_fault_prob=restore_fault_prob,
                gpu=gpu,
            )
            for _ in range(runs)
        ]
        simulated = sum(o.makespan_s for o in outcomes) / len(outcomes)
        return CrossValidation(
            interval_s=interval_s,
            checkpoint_cost_s=ckpt_cost,
            restart_cost_s=restart_cost,
            analytic_s=analytic,
            simulated_s=simulated,
            outcomes=outcomes,
        )
