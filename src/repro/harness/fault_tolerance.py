"""Fault-tolerance economics: what CRAC's costs buy (paper §1(a)/(b)).

The paper motivates transparent checkpointing with GPU soft errors and
long-running jobs; this module turns the *measured* checkpoint/restart
costs of the reproduction into completion-time predictions:

- :func:`young_interval` — Young's first-order optimal checkpoint
  interval √(2·C·MTBF) for checkpoint cost C;
- :func:`daly_interval` — Daly's higher-order refinement;
- :func:`expected_completion_time` — analytic expected makespan of a job
  with periodic checkpointing under exponential failures;
- :class:`FaultSimulator` — a seeded Monte-Carlo of the same process
  (inject failures, lose work back to the last checkpoint, pay restart),
  used to cross-validate the analytic model and to compare "CRAC with
  interval τ" against "no checkpointing, restart from scratch".
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass


def young_interval(checkpoint_cost_s: float, mtbf_s: float) -> float:
    """Young's optimal interval: √(2·C·M)."""
    if checkpoint_cost_s <= 0 or mtbf_s <= 0:
        raise ValueError("cost and MTBF must be positive")
    return math.sqrt(2.0 * checkpoint_cost_s * mtbf_s)


def daly_interval(checkpoint_cost_s: float, mtbf_s: float) -> float:
    """Daly's refinement of Young's formula (valid for C < 2M)."""
    if checkpoint_cost_s <= 0 or mtbf_s <= 0:
        raise ValueError("cost and MTBF must be positive")
    c, m = checkpoint_cost_s, mtbf_s
    if c >= 2 * m:
        return m
    return math.sqrt(2.0 * c * m) * (
        1.0 + math.sqrt(c / (2.0 * m)) / 3.0 + (c / (2.0 * m)) / 9.0
    ) - c


def expected_completion_time(
    work_s: float,
    interval_s: float,
    checkpoint_cost_s: float,
    restart_cost_s: float,
    mtbf_s: float,
) -> float:
    """Expected makespan with periodic checkpointing, exponential faults.

    Standard first-order model: each segment of ``interval_s`` work plus
    its checkpoint is retried until it completes without a failure; a
    failure costs the partial segment (≈ half on average, modelled via
    the exponential's memorylessness exactly) plus the restart.
    """
    if interval_s <= 0:
        raise ValueError("interval must be positive")
    lam = 1.0 / mtbf_s
    segments = max(1, math.ceil(work_s / interval_s))
    seg_work = work_s / segments
    seg_span = seg_work + checkpoint_cost_s
    # Expected time to push one segment through, with exponential
    # failures at rate λ: E = (e^{λT} − 1)/λ per attempt-cycle plus a
    # restart per failure (classic renewal argument).
    e_attempt = (math.exp(lam * seg_span) - 1.0) / lam
    p_fail = 1.0 - math.exp(-lam * seg_span)
    e_segment = e_attempt + (p_fail / (1.0 - p_fail + 1e-300)) * restart_cost_s
    return segments * e_segment


@dataclass
class SimOutcome:
    """Result of one Monte-Carlo run."""

    makespan_s: float
    failures: int
    checkpoints: int
    work_lost_s: float


class FaultSimulator:
    """Seeded Monte-Carlo of a checkpointed job under random failures."""

    def __init__(self, mtbf_s: float, seed: int = 0) -> None:
        if mtbf_s <= 0:
            raise ValueError("MTBF must be positive")
        self.mtbf_s = mtbf_s
        self._rng = random.Random(seed)

    def run_once(
        self,
        work_s: float,
        interval_s: float | None,
        checkpoint_cost_s: float,
        restart_cost_s: float,
    ) -> SimOutcome:
        """Simulate one job. ``interval_s=None`` means no checkpointing
        (a failure loses *all* completed work)."""
        clock = 0.0
        done = 0.0  # committed (checkpointed) work
        progress = 0.0  # uncommitted work since the last checkpoint
        failures = 0
        checkpoints = 0
        lost = 0.0
        next_fault = self._rng.expovariate(1.0 / self.mtbf_s)
        while done + progress < work_s:
            # Time until the next event: checkpoint boundary or job end.
            if interval_s is None:
                until_ckpt = work_s - done - progress
            else:
                until_ckpt = min(interval_s - progress, work_s - done - progress)
            if clock + until_ckpt >= next_fault:
                # Failure strikes mid-segment.
                ran = max(0.0, next_fault - clock)
                lost += min(progress + ran, progress + until_ckpt)
                progress = 0.0 if interval_s is None else 0.0
                if interval_s is None:
                    done = 0.0  # no checkpoint: start over
                clock = next_fault + restart_cost_s
                failures += 1
                next_fault = clock + self._rng.expovariate(1.0 / self.mtbf_s)
                continue
            clock += until_ckpt
            progress += until_ckpt
            if done + progress >= work_s:
                break
            # Checkpoint boundary reached: commit, pay the cost (a fault
            # during the checkpoint loses the segment).
            if clock + checkpoint_cost_s >= next_fault:
                lost += progress
                progress = 0.0
                clock = next_fault + restart_cost_s
                failures += 1
                next_fault = clock + self._rng.expovariate(1.0 / self.mtbf_s)
                continue
            clock += checkpoint_cost_s
            done += progress
            progress = 0.0
            checkpoints += 1
        return SimOutcome(
            makespan_s=clock, failures=failures,
            checkpoints=checkpoints, work_lost_s=lost,
        )

    def mean_makespan(
        self,
        work_s: float,
        interval_s: float | None,
        checkpoint_cost_s: float,
        restart_cost_s: float,
        runs: int = 200,
    ) -> float:
        """Mean makespan over ``runs`` Monte-Carlo repetitions."""
        total = 0.0
        for _ in range(runs):
            total += self.run_once(
                work_s, interval_s, checkpoint_cost_s, restart_cost_s
            ).makespan_s
        return total / runs
