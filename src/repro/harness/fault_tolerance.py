"""Fault-tolerance economics: what CRAC's costs buy (paper §1(a)/(b)).

The paper motivates transparent checkpointing with GPU soft errors and
long-running jobs; this module turns the *measured* checkpoint/restart
costs of the reproduction into completion-time predictions:

- :func:`young_interval` — Young's first-order optimal checkpoint
  interval √(2·C·MTBF) for checkpoint cost C;
- :func:`daly_interval` — Daly's higher-order refinement;
- :func:`expected_completion_time` — analytic expected makespan of a job
  with periodic checkpointing under exponential failures;
- :class:`FaultSimulator` — a seeded Monte-Carlo of the same process
  (inject failures, lose work back to the last checkpoint, pay restart),
  used to cross-validate the analytic model and to compare "CRAC with
  interval τ" against "no checkpointing, restart from scratch".
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field


def young_interval(checkpoint_cost_s: float, mtbf_s: float) -> float:
    """Young's optimal interval: √(2·C·M)."""
    if checkpoint_cost_s <= 0 or mtbf_s <= 0:
        raise ValueError("cost and MTBF must be positive")
    return math.sqrt(2.0 * checkpoint_cost_s * mtbf_s)


def daly_interval(checkpoint_cost_s: float, mtbf_s: float) -> float:
    """Daly's refinement of Young's formula (valid for C < 2M)."""
    if checkpoint_cost_s <= 0 or mtbf_s <= 0:
        raise ValueError("cost and MTBF must be positive")
    c, m = checkpoint_cost_s, mtbf_s
    if c >= 2 * m:
        return m
    return math.sqrt(2.0 * c * m) * (
        1.0 + math.sqrt(c / (2.0 * m)) / 3.0 + (c / (2.0 * m)) / 9.0
    ) - c


def expected_completion_time(
    work_s: float,
    interval_s: float,
    checkpoint_cost_s: float,
    restart_cost_s: float,
    mtbf_s: float,
) -> float:
    """Expected makespan with periodic checkpointing, exponential faults.

    Standard first-order model: each segment of ``interval_s`` work plus
    its checkpoint is retried until it completes without a failure; a
    failure costs the partial segment (≈ half on average, modelled via
    the exponential's memorylessness exactly) plus the restart.
    """
    if work_s <= 0:
        raise ValueError("work must be positive")
    if interval_s <= 0:
        raise ValueError("interval must be positive")
    if mtbf_s <= 0:
        raise ValueError("MTBF must be positive")
    lam = 1.0 / mtbf_s
    segments = max(1, math.ceil(work_s / interval_s))
    seg_work = work_s / segments
    seg_span = seg_work + checkpoint_cost_s
    # Expected time to push one segment through, with exponential
    # failures at rate λ: E = (e^{λT} − 1)/λ per attempt-cycle plus a
    # restart per failure (classic renewal argument).
    p_survive = math.exp(-lam * seg_span)
    if p_survive == 0.0:
        # Degenerate regime: a segment is so long relative to the MTBF
        # that (in double precision) it can never complete fault-free —
        # the expected makespan diverges.
        return math.inf
    e_attempt = (math.exp(lam * seg_span) - 1.0) / lam
    p_fail = 1.0 - p_survive
    e_segment = e_attempt + (p_fail / p_survive) * restart_cost_s
    return segments * e_segment


@dataclass
class SimOutcome:
    """Result of one Monte-Carlo run."""

    makespan_s: float
    failures: int
    checkpoints: int
    work_lost_s: float


@dataclass
class SessionSimOutcome(SimOutcome):
    """Result of one *session-backed* run (real checkpoint pipeline)."""

    aborted_checkpoints: int = 0
    restart_attempts: int = 0
    generations_restored: list[int] = field(default_factory=list)


@dataclass
class CrossValidation:
    """Analytic Young/Daly prediction vs end-to-end simulated runs."""

    interval_s: float
    checkpoint_cost_s: float
    restart_cost_s: float
    analytic_s: float
    simulated_s: float
    outcomes: list[SessionSimOutcome]

    @property
    def ratio(self) -> float:
        """simulated / analytic (1.0 = perfect agreement)."""
        return self.simulated_s / self.analytic_s if self.analytic_s else math.inf


class FaultSimulator:
    """Seeded Monte-Carlo of a checkpointed job under random failures."""

    def __init__(self, mtbf_s: float, seed: int = 0) -> None:
        if mtbf_s <= 0:
            raise ValueError("MTBF must be positive")
        self.mtbf_s = mtbf_s
        self._rng = random.Random(seed)

    def run_once(
        self,
        work_s: float,
        interval_s: float | None,
        checkpoint_cost_s: float,
        restart_cost_s: float,
    ) -> SimOutcome:
        """Simulate one job. ``interval_s=None`` means no checkpointing
        (a failure loses *all* completed work)."""
        clock = 0.0
        done = 0.0  # committed (checkpointed) work
        progress = 0.0  # uncommitted work since the last checkpoint
        failures = 0
        checkpoints = 0
        lost = 0.0
        next_fault = self._rng.expovariate(1.0 / self.mtbf_s)
        while done + progress < work_s:
            # Time until the next event: checkpoint boundary or job end.
            if interval_s is None:
                until_ckpt = work_s - done - progress
            else:
                until_ckpt = min(interval_s - progress, work_s - done - progress)
            if clock + until_ckpt >= next_fault:
                # Failure strikes mid-segment: everything run since the
                # last checkpoint — the uncommitted progress plus the
                # part of this slice that actually ran — is lost.
                ran = min(max(0.0, next_fault - clock), until_ckpt)
                lost += progress + ran
                progress = 0.0
                if interval_s is None:
                    done = 0.0  # no checkpoint: start over
                clock = next_fault + restart_cost_s
                failures += 1
                next_fault = clock + self._rng.expovariate(1.0 / self.mtbf_s)
                continue
            clock += until_ckpt
            progress += until_ckpt
            if done + progress >= work_s:
                break
            # Checkpoint boundary reached: commit, pay the cost (a fault
            # during the checkpoint loses the segment).
            if clock + checkpoint_cost_s >= next_fault:
                lost += progress
                progress = 0.0
                clock = next_fault + restart_cost_s
                failures += 1
                next_fault = clock + self._rng.expovariate(1.0 / self.mtbf_s)
                continue
            clock += checkpoint_cost_s
            done += progress
            progress = 0.0
            checkpoints += 1
        return SimOutcome(
            makespan_s=clock, failures=failures,
            checkpoints=checkpoints, work_lost_s=lost,
        )

    def mean_makespan(
        self,
        work_s: float,
        interval_s: float | None,
        checkpoint_cost_s: float,
        restart_cost_s: float,
        runs: int = 200,
    ) -> float:
        """Mean makespan over ``runs`` Monte-Carlo repetitions."""
        total = 0.0
        for _ in range(runs):
            total += self.run_once(
                work_s, interval_s, checkpoint_cost_s, restart_cost_s
            ).makespan_s
        return total / runs

    # -- session-backed mode ---------------------------------------------------

    def run_session_once(
        self,
        work_s: float,
        interval_s: float,
        *,
        ckpt_fault_prob: float = 0.0,
        restore_fault_prob: float = 0.0,
        keep_generations: int = 3,
        retries: int = 3,
        backoff_s: float = 0.05,
        gpu: str = "V100",
    ) -> SessionSimOutcome:
        """One end-to-end run through the *real* checkpoint pipeline.

        Unlike :meth:`run_once` — which charges abstract per-event
        costs — this drives an actual :class:`~repro.core.session.CracSession`
        with a :class:`~repro.dmtcp.store.CheckpointStore`: checkpoints
        pay the measured drain/stage/write costs, faults can also land
        *inside* the checkpoint path (``ckpt_fault_prob`` per staged
        region — the partial is discarded and the job continues from
        the previous generation), restores can fail transiently
        (``restore_fault_prob``) and self-heal via
        :meth:`~repro.core.session.CracSession.restart_latest`'s
        backoff + generation fallback. Work advances the session's
        virtual clock; the makespan is the session's own elapsed time.
        """
        from repro.core.session import CracSession
        from repro.dmtcp.store import CheckpointStore
        from repro.errors import InjectedFault
        from repro.harness.fault_injection import FaultInjector, FaultSpec

        specs = []
        if ckpt_fault_prob > 0.0:
            specs.append(FaultSpec(
                "image-write", probability=ckpt_fault_prob, max_fires=None))
        if restore_fault_prob > 0.0:
            specs.append(FaultSpec(
                "restore", probability=restore_fault_prob, max_fires=None))
        injector = FaultInjector(specs, seed=self._rng.randrange(1 << 30))
        store = CheckpointStore(
            keep_generations=keep_generations, fault_injector=injector)
        session = CracSession(
            gpu=gpu, seed=self._rng.randrange(1 << 30),
            fault_injector=injector,
        )
        # Give the job some state worth checkpointing.
        ptr = session.backend.malloc(1 << 16)
        session.backend.memset(ptr, 0x5A, 1 << 16)

        def take_checkpoint() -> int | None:
            """Two-phase checkpoint; None if a fault tore the write."""
            try:
                session.checkpoint(store=store)
            except InjectedFault:
                store.discard_partials()
                return None
            return store.latest()

        # Anchor generation 0 so the very first fault has a recovery
        # line (a job with *no* checkpoint yet would restart from
        # scratch; cap the attempts so a hostile plan cannot spin).
        committed_at: dict[int, float] = {}
        for _ in range(50):
            gen = take_checkpoint()
            if gen is not None:
                committed_at[gen] = 0.0
                break
        else:
            raise RuntimeError("could not commit the anchor checkpoint")

        t0 = session.process.clock_ns
        committed = 0.0  # work protected by the latest committed image
        progress = 0.0  # work since the last *committed* checkpoint
        since_attempt = 0.0  # work since the last checkpoint *attempt*
        failures = 0
        checkpoints = 0
        aborted = 0
        lost = 0.0
        restart_attempts = 0
        restored_gens: list[int] = []
        next_fault = self._rng.expovariate(1.0 / self.mtbf_s)

        while committed + progress < work_s:
            until_attempt = min(
                interval_s - since_attempt, work_s - committed - progress
            )
            elapsed = (session.process.clock_ns - t0) / 1e9
            if elapsed + until_attempt >= next_fault:
                # The node dies mid-segment.
                ran = min(max(0.0, next_fault - elapsed), until_attempt)
                session.process.advance(ran * 1e9)
                lost += progress + ran
                progress = 0.0
                since_attempt = 0.0
                failures += 1
                session.kill()
                report = session.restart_latest(
                    store, retries=retries, backoff_s=backoff_s
                )
                restart_attempts += len(report.attempts)
                restored_gens.append(report.generation)
                if committed_at[report.generation] < committed:
                    # Fell back past the newest cut: that work is lost too.
                    lost += committed - committed_at[report.generation]
                    committed = committed_at[report.generation]
                now = (session.process.clock_ns - t0) / 1e9
                next_fault = now + self._rng.expovariate(1.0 / self.mtbf_s)
                continue
            session.process.advance(until_attempt * 1e9)
            progress += until_attempt
            since_attempt += until_attempt
            if committed + progress >= work_s:
                break
            gen = take_checkpoint()
            since_attempt = 0.0
            if gen is None:
                aborted += 1  # torn write discarded; keep running uncommitted
                continue
            committed += progress
            progress = 0.0
            committed_at[gen] = committed
            checkpoints += 1

        return SessionSimOutcome(
            makespan_s=(session.process.clock_ns - t0) / 1e9,
            failures=failures,
            checkpoints=checkpoints,
            work_lost_s=lost,
            aborted_checkpoints=aborted,
            restart_attempts=restart_attempts,
            generations_restored=restored_gens,
        )

    def measure_session_costs(self, *, gpu: str = "V100") -> tuple[float, float]:
        """Probe one checkpoint + restart of a minimal session; returns
        (checkpoint_cost_s, restart_cost_s) in virtual seconds."""
        from repro.core.session import CracSession

        session = CracSession(gpu=gpu, seed=0)
        ptr = session.backend.malloc(1 << 16)
        session.backend.memset(ptr, 0x5A, 1 << 16)
        image = session.checkpoint()
        session.kill()
        report = session.restart(image)
        return image.checkpoint_time_ns / 1e9, report.restart_time_ns / 1e9

    def cross_validate_session(
        self,
        work_s: float,
        interval_s: float | None = None,
        *,
        runs: int = 3,
        ckpt_fault_prob: float = 0.0,
        restore_fault_prob: float = 0.0,
        gpu: str = "V100",
    ) -> CrossValidation:
        """Cross-validate Young/Daly analytics against end-to-end runs.

        Probes the real checkpoint/restart costs, predicts the makespan
        with :func:`expected_completion_time` (at ``interval_s`` or
        Young's optimum), then measures the mean makespan of ``runs``
        session-backed simulations *with* checkpoint-stage faults
        enabled. The returned :class:`CrossValidation` carries both
        numbers and the per-run outcomes.
        """
        ckpt_cost, restart_cost = self.measure_session_costs(gpu=gpu)
        if interval_s is None:
            interval_s = young_interval(max(ckpt_cost, 1e-6), self.mtbf_s)
        analytic = expected_completion_time(
            work_s, interval_s, ckpt_cost, restart_cost, self.mtbf_s
        )
        outcomes = [
            self.run_session_once(
                work_s, interval_s,
                ckpt_fault_prob=ckpt_fault_prob,
                restore_fault_prob=restore_fault_prob,
                gpu=gpu,
            )
            for _ in range(runs)
        ]
        simulated = sum(o.makespan_s for o in outcomes) / len(outcomes)
        return CrossValidation(
            interval_s=interval_s,
            checkpoint_cost_s=ckpt_cost,
            restart_cost_s=restart_cost,
            analytic_s=analytic,
            simulated_s=simulated,
            outcomes=outcomes,
        )


# -- MTBF-driven runtime fault campaign ----------------------------------------
#
# Where the FaultSimulator above injects *node* failures around an
# abstract work loop, the campaign below injects *GPU runtime* faults
# into real application runs and measures how the escalation ladder
# (``core/session.py``) recovers: which rung fired, how much virtual
# work was lost, and whether the final output stayed bit-identical to a
# fault-free run.

#: Runtime fault stages swept by the campaign, mapped to the ladder rung
#: the error taxonomy (``cuda/errors.py``) routes each class to first.
RUNTIME_FAULT_CLASSES = {
    "xfer-corrupt": "retry",
    "uvm-storm": "retry",
    "kernel-hang": "stream-reset",
    "copy-stall": "stream-reset",
    "ecc": "restore",
}


@dataclass
class GuardedRunOutcome:
    """One application run under the fault domain's escalation ladder."""

    app: str
    digest: int
    runtime_s: float
    cuda_calls: int
    checkpoints: int
    faults_fired: int
    rung_counts: dict[str, int]
    watchdog_trips: int
    lost_work_s: float
    backoff_s: float
    #: injector visits per runtime stage (how many sites *could* fault)
    stage_visits: dict[str, int] = field(default_factory=dict)
    #: campaign-cell labels (filled by :func:`run_fault_campaign`)
    fault_class: str | None = None
    mtbf_s: float | None = None
    probability: float = 0.0
    #: typed-abort class name if the run did not complete, else None
    aborted: str | None = None
    #: digest == fault-free digest (None when the run aborted)
    bit_correct: bool | None = None


def run_guarded_app(
    app_cls,
    *,
    scale: float = 0.05,
    seed: int = 0,
    gpu: str = "V100",
    specs=None,
    injector_seed: int = 0,
    checkpoint_fracs=(0.25, 0.5, 0.75),
    keep_generations: int = 4,
) -> GuardedRunOutcome:
    """Run one workload end-to-end under the recovery ladder.

    Mirrors the harness runner's CRAC mode, but with
    :meth:`~repro.core.session.CracSession.enable_fault_domain` guarding
    every kernel/copy/sync and a checkpoint store feeding the restore
    rung: an anchor generation is committed before the app starts, and
    further cuts land at ``checkpoint_fracs`` of the run. A failed run
    surfaces as a *typed* abort in the outcome — never an undetected
    wrong answer.
    """
    from repro.apps.base import AppContext
    from repro.core.session import CracSession
    from repro.dmtcp.store import CheckpointStore
    from repro.errors import CudaError, RecoveryAbortedError
    from repro.harness.fault_injection import FaultInjector
    from repro.harness.runner import TIME_SCALE

    injector = FaultInjector(list(specs or []), seed=injector_seed)
    store = CheckpointStore(keep_generations=keep_generations)
    session = CracSession(gpu=gpu, seed=seed, fault_injector=injector)
    domain = session.enable_fault_domain(store)
    app = app_cls(scale=scale, seed=seed)
    if hasattr(app, "MEASURE"):
        # Run every iteration for real: fast-forwarded iterations issue
        # no runtime calls, so no fault could ever land in them.
        app.MEASURE = 10**9

    committed = [0]
    if domain.checkpoint() is not None:  # anchor: rung 3 needs a recovery line
        committed[0] += 1
    triggers = sorted(checkpoint_fracs)
    fired = [0]

    def checkpoint_cb(progress: float) -> None:
        while fired[0] < len(triggers) and progress >= triggers[fired[0]]:
            fired[0] += 1
            if domain.checkpoint() is not None:
                committed[0] += 1

    ctx = AppContext(
        backend=session.backend,
        upper_mmap=lambda size: session.split.upper_mmap(size),
        checkpoint_cb=checkpoint_cb,
        time_scale=TIME_SCALE[gpu],
    )
    digest = -1
    calls = 0
    aborted: str | None = None
    try:
        result = app.run(ctx)
        digest, calls = result.digest, result.cuda_calls
    except (RecoveryAbortedError, CudaError) as exc:
        aborted = type(exc).__name__
        calls = session.backend.total_calls
    rep = domain.report
    return GuardedRunOutcome(
        app=app_cls.name,
        digest=digest,
        runtime_s=session.process.clock_ns / 1e9,
        cuda_calls=calls,
        checkpoints=committed[0],
        faults_fired=len(injector.fired),
        rung_counts=rep.rung_counts(),
        watchdog_trips=rep.watchdog_trips,
        lost_work_s=rep.lost_work_ns / 1e9,
        backoff_s=rep.backoff_ns / 1e9,
        stage_visits={s: injector.visits[s] for s in RUNTIME_FAULT_CLASSES},
        aborted=aborted,
    )


def run_rank_death_scenario(
    *, n_ranks: int = 3, seed: int = 0, gpu: str = "V100"
) -> dict:
    """A rank dies between prepare and commit of a coordinated checkpoint.

    Three-act script: (1) every rank commits a consistent cut via 2PC;
    (2) more work runs, then a second 2PC is attempted during which one
    rank's heartbeat goes silent — the coordinator aborts the cut (no
    generation half-commits) and the surviving strict majority raises
    :class:`~repro.errors.RankDeathError`; (3) the job recovers with
    ``restart_all_latest`` and every rank is back on the *prior*
    generation with its pre-fault state, post-cut work lost.
    """
    from repro.dmtcp.coordinator import HeartbeatMonitor
    from repro.dmtcp.store import CheckpointStore
    from repro.errors import RankDeathError
    from repro.harness.fault_injection import (
        FaultInjector,
        FaultSpec,
        derive_seed,
    )
    from repro.mpi.world import MpiWorld

    # The first (healthy) 2PC polls every rank once: n_ranks heartbeat
    # visits. Visit n_ranks + 2 is rank 1's round-1 beat of the second
    # 2PC — that is where the crash lands.
    injector = FaultInjector(
        [FaultSpec("heartbeat", at_count=n_ranks + 2)],
        seed=derive_seed(seed, "rank-death"),
    )
    world = MpiWorld(n_ranks, gpu=gpu, seed=seed, fault_injector=injector)
    stores = [CheckpointStore(keep_generations=3) for _ in range(n_ranks)]
    nbytes = 1 << 12
    ptrs = []
    for i, r in enumerate(world.ranks):
        ptr = r.backend.malloc(nbytes)
        r.backend.memset(ptr, 0x10 + i, nbytes)
        ptrs.append(ptr)
    gens_before = world.checkpoint_all_2pc(
        stores, heartbeat=HeartbeatMonitor(n_ranks)
    )
    for i, r in enumerate(world.ranks):
        r.backend.memset(ptrs[i], 0x60 + i, nbytes)  # post-cut work: lost

    rank_death_raised = False
    dead: list[int] = []
    try:
        world.checkpoint_all_2pc(stores, heartbeat=HeartbeatMonitor(n_ranks))
    except RankDeathError as exc:
        rank_death_raised = True
        dead = exc.dead_ranks

    recovered = None
    prior_state_restored = False
    if rank_death_raised:
        reports = world.restart_all_latest(stores)
        cut = {rep.generation for rep in reports}
        recovered = cut.pop() if len(cut) == 1 else None
        prior_state_restored = all(
            world.ranks[i].session.runtime.buffers[ptrs[i]].contents
            .read_bytes(0, nbytes) == bytes([0x10 + i]) * nbytes
            for i in range(n_ranks)
        )
    return {
        "n_ranks": n_ranks,
        "rank_death_raised": rank_death_raised,
        "dead_ranks": dead,
        "generations_before": gens_before,
        "recovered_generation": recovered,
        "no_half_commit": all(
            s.generations == [gens_before[i]] for i, s in enumerate(stores)
        ),
        "prior_state_restored": prior_state_restored,
    }


def run_node_failover_scenario(
    app_cls,
    *,
    scale: float = 0.05,
    seed: int = 0,
    gpu_src: str = "V100",
    gpu_dst: str = "V100",
    checkpoint_fracs=(0.25, 0.5, 0.75),
) -> dict:
    """Rung 4 end-to-end: a node dies mid-run, the job fails over.

    The app runs guarded on node ``src`` with the restore rung disabled
    (``max_restores=0`` — a dying node's local store is no recovery
    line) and every committed generation replicated to node ``dst``.
    Midway, a fatal ECC error fires; the scenario treats it as the
    node's death throes: the node stops heartbeating, the cluster
    monitor declares it dead after ``max_missed`` rounds, and the
    ladder — with retry/reset inapplicable (fatal) and restore out of
    budget — takes the failover rung: the session restores the latest
    *shipped* generation on ``dst`` (heterogeneous-tolerant), the
    monitor rebaselines, and the run finishes there bit-identical to a
    fault-free baseline (deterministic redo).
    """
    from repro.apps.base import AppContext
    from repro.cluster import Cluster, ClusterNode, Interconnect
    from repro.core.session import CracSession
    from repro.harness.fault_injection import (
        FaultInjector,
        FaultSpec,
        derive_seed,
    )
    from repro.harness.runner import TIME_SCALE

    base = run_guarded_app(
        app_cls, scale=scale, seed=seed, gpu=gpu_src, specs=[],
        injector_seed=derive_seed(seed, f"{app_cls.name}:failover-baseline"),
        checkpoint_fracs=checkpoint_fracs,
    )
    if base.aborted is not None:
        raise RuntimeError(
            f"fault-free baseline of {app_cls.name} aborted: {base.aborted}"
        )
    ecc_visits = base.stage_visits.get("ecc", 0)
    if ecc_visits == 0:
        return {
            "app": app_cls.name, "gpu_src": gpu_src, "gpu_dst": gpu_dst,
            "skipped": "app visits no ecc sites",
        }

    src = ClusterNode("src", gpu=gpu_src, seed=seed)
    dst = ClusterNode("dst", gpu=gpu_dst, seed=seed)
    cluster = Cluster(
        [src, dst],
        interconnect=Interconnect(seed=derive_seed(seed, "failover-fabric")),
        seed=seed,
    )
    injector = FaultInjector(
        [FaultSpec("ecc", at_count=max(1, ecc_visits // 2))],
        seed=derive_seed(seed, f"{app_cls.name}:failover"),
    )
    session = CracSession(gpu=gpu_src, seed=seed, fault_injector=injector)
    src.adopt(app_cls.name, session)
    domain = session.enable_fault_domain(src.store, max_restores=0)
    app = app_cls(scale=scale, seed=seed)
    if hasattr(app, "MEASURE"):
        app.MEASURE = 10**9

    replicated = [0]

    def commit_and_ship() -> None:
        if domain.checkpoint() is None or not src.alive:
            return
        cluster.replicate(
            "src", "dst", now_ns=session.process.clock_ns
        )
        replicated[0] += 1

    commit_and_ship()  # anchor generation, shipped before any fault
    triggers = sorted(checkpoint_fracs)
    fired = [0]

    def checkpoint_cb(progress: float) -> None:
        while fired[0] < len(triggers) and progress >= triggers[fired[0]]:
            fired[0] += 1
            if src.alive and "src" not in cluster.dead_nodes():
                commit_and_ship()
            else:
                domain.checkpoint()  # new home: commit to dst's store

    declared_dead: list[str] = []
    inner = cluster.make_failover_handler(session, app_cls.name, "src", "dst")

    def handler(exc: Exception) -> dict:
        # The fatal error is the node dying: it stops heartbeating and
        # the monitor's missed-beat rounds declare it dead before the
        # survivors take over.
        cluster.kill_node("src")
        declared_dead.extend(cluster.heartbeat_rounds())
        return inner(exc)

    domain.failover_handler = handler
    ctx = AppContext(
        backend=session.backend,
        upper_mmap=lambda size: session.split.upper_mmap(size),
        checkpoint_cb=checkpoint_cb,
        time_scale=TIME_SCALE[gpu_src],
    )
    result = app.run(ctx)
    rep = domain.report
    return {
        "app": app_cls.name,
        "gpu_src": gpu_src,
        "gpu_dst": gpu_dst,
        "digest_baseline": base.digest,
        "digest_failover": result.digest,
        "bit_correct": result.digest == base.digest,
        "declared_dead": declared_dead,
        "failovers": rep.failovers,
        "rung_counts": rep.rung_counts(),
        "lost_work_s": rep.lost_work_ns / 1e9,
        "replicated": replicated[0],
        "finished_on": "dst" if app_cls.name in dst.sessions else "src",
        "monitor_rebaselined": all(
            h.missed == 0 for h in cluster.monitor.health if not h.dead
        ),
    }


def run_fault_campaign(
    app_classes,
    *,
    scale: float = 0.05,
    seed: int = 0,
    gpu: str = "V100",
    fault_classes=None,
    mtbf_s=None,
    mtbf_factors=(0.5, 0.2),
    checkpoint_fracs=(0.25, 0.5, 0.75),
    rank_death_ranks: int = 3,
) -> dict:
    """Sweep fault class × rate over application runs; JSON-able report.

    Per app: one fault-free baseline pins the reference digest, runtime,
    and per-stage visit counts; then every (fault class, MTBF) cell runs
    with a per-visit fault probability chosen so the *expected* fault
    count is ``runtime / MTBF``. ``mtbf_s`` gives absolute rates;
    without it each app uses ``mtbf_factors`` × its own baseline
    runtime (so every app sees comparable fault pressure regardless of
    its length). Classes whose sites an app never visits (e.g.
    ``uvm-storm`` without managed memory) are reported as skipped, not
    silently dropped. The report ends with the rank-death-during-2PC
    scenario and cross-cell totals.
    """
    from dataclasses import asdict

    from repro.harness.fault_injection import FaultSpec, derive_seed

    classes = list(fault_classes or RUNTIME_FAULT_CLASSES)
    report: dict = {
        "config": {
            "apps": [cls.name for cls in app_classes],
            "scale": scale,
            "seed": seed,
            "gpu": gpu,
            "fault_classes": classes,
            "mtbf_s": list(mtbf_s) if mtbf_s else None,
            "mtbf_factors": list(mtbf_factors),
            "checkpoint_fracs": list(checkpoint_fracs),
        },
        "apps": {},
    }
    totals = {
        "cells": 0,
        "faults_fired": 0,
        "bit_correct": 0,
        "aborted": 0,
        "rung_counts": {
            "retry": 0, "stream-reset": 0, "restore": 0, "failover": 0,
        },
    }
    for cls in app_classes:
        base = run_guarded_app(
            cls, scale=scale, seed=seed, gpu=gpu, specs=[],
            injector_seed=derive_seed(seed, f"{cls.name}:baseline"),
            checkpoint_fracs=checkpoint_fracs,
        )
        if base.aborted is not None:
            raise RuntimeError(
                f"fault-free baseline of {cls.name} aborted: {base.aborted}"
            )
        mtbfs = (
            [float(m) for m in mtbf_s]
            if mtbf_s
            else [max(1e-6, base.runtime_s * f) for f in mtbf_factors]
        )
        cells: list[GuardedRunOutcome] = []
        skipped: list[dict] = []
        for fault_class in classes:
            visits = base.stage_visits.get(fault_class, 0)
            if visits == 0:
                skipped.append({
                    "fault_class": fault_class,
                    "reason": "no sites visited (stage never reached)",
                })
                continue
            for mtbf in mtbfs:
                expected = base.runtime_s / mtbf
                prob = min(0.5, expected / visits)
                out = run_guarded_app(
                    cls, scale=scale, seed=seed, gpu=gpu,
                    specs=[FaultSpec(
                        fault_class, probability=prob, max_fires=None
                    )],
                    injector_seed=derive_seed(
                        seed, f"{cls.name}:{fault_class}:{mtbf:.6g}"
                    ),
                    checkpoint_fracs=checkpoint_fracs,
                )
                out.fault_class = fault_class
                out.mtbf_s = mtbf
                out.probability = prob
                out.bit_correct = (
                    None if out.aborted is not None
                    else out.digest == base.digest
                )
                cells.append(out)
                totals["cells"] += 1
                totals["faults_fired"] += out.faults_fired
                totals["bit_correct"] += 1 if out.bit_correct else 0
                totals["aborted"] += 1 if out.aborted is not None else 0
                for rung, n in out.rung_counts.items():
                    totals["rung_counts"][rung] += n
        report["apps"][cls.name] = {
            "baseline": {
                "digest": base.digest,
                "runtime_s": base.runtime_s,
                "cuda_calls": base.cuda_calls,
                "checkpoints": base.checkpoints,
                "stage_visits": base.stage_visits,
            },
            "cells": [asdict(c) for c in cells],
            "skipped": skipped,
        }
    report["rank_death_2pc"] = run_rank_death_scenario(
        n_ranks=rank_death_ranks, seed=seed, gpu=gpu
    )
    # Rung-4 cells: same-GPU failover plus a heterogeneous one (the
    # survivor hosts a different GPU model than the dead node).
    report["node_failover"] = [
        run_node_failover_scenario(
            app_classes[0], scale=scale, seed=seed,
            gpu_src=gpu, gpu_dst=dst,
            checkpoint_fracs=checkpoint_fracs,
        )
        for dst in (gpu, "K600" if gpu != "K600" else "V100")
    ]
    for cell in report["node_failover"]:
        if "skipped" in cell:
            continue
        totals["cells"] += 1
        totals["bit_correct"] += 1 if cell["bit_correct"] else 0
        for rung, n in cell["rung_counts"].items():
            totals["rung_counts"][rung] += n
    report["totals"] = totals
    return report


def format_fault_campaign(report: dict) -> str:
    """Human-readable rendering of a :func:`run_fault_campaign` report."""
    lines: list[str] = []
    for name, data in report["apps"].items():
        b = data["baseline"]
        lines.append(
            f"{name}: baseline {b['runtime_s']:.3f} s, "
            f"digest {b['digest']:#010x}, {b['cuda_calls']:,} calls, "
            f"{b['checkpoints']} ckpts"
        )
        for c in data["cells"]:
            rungs = c["rung_counts"]
            if c["aborted"]:
                verdict = f"ABORTED ({c['aborted']})"
            elif c["bit_correct"]:
                verdict = "bit-correct"
            else:
                verdict = "DIGEST MISMATCH"
            lines.append(
                f"  {c['fault_class']:<13} mtbf {c['mtbf_s']:8.3f} s "
                f"p={c['probability']:.3f}: {c['faults_fired']:>2} faults → "
                f"retry {rungs['retry']}, reset {rungs['stream-reset']}, "
                f"restore {rungs['restore']}, "
                f"failover {rungs.get('failover', 0)} "
                f"(watchdog {c['watchdog_trips']}); "
                f"lost {c['lost_work_s']:.3f} s; {verdict}"
            )
        for s in data["skipped"]:
            lines.append(f"  {s['fault_class']:<13} skipped: {s['reason']}")
    rd = report["rank_death_2pc"]
    lines.append(
        f"rank-death 2PC: rank(s) {rd['dead_ranks']} of {rd['n_ranks']} "
        f"died mid-commit → aborted cut, recovered generation "
        f"{rd['recovered_generation']}; no half-commit: "
        f"{rd['no_half_commit']}; prior state restored: "
        f"{rd['prior_state_restored']}"
    )
    for nf in report.get("node_failover", ()):
        if "skipped" in nf:
            lines.append(
                f"node-failover {nf['app']}: skipped ({nf['skipped']})"
            )
            continue
        verdict = "bit-correct" if nf["bit_correct"] else "DIGEST MISMATCH"
        lines.append(
            f"node-failover {nf['app']} {nf['gpu_src']}→{nf['gpu_dst']}: "
            f"node(s) {nf['declared_dead']} declared dead, "
            f"{nf['failovers']} failover(s), lost {nf['lost_work_s']:.3f} s, "
            f"finished on {nf['finished_on']}; {verdict}"
        )
    t = report["totals"]
    lines.append(
        f"totals: {t['cells']} cells, {t['faults_fired']} faults, "
        f"rungs {t['rung_counts']}, {t['bit_correct']} bit-correct, "
        f"{t['aborted']} aborted"
    )
    return "\n".join(lines)
