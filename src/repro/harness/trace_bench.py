"""Trace benchmark: overhead, digest equality, and cross-checks.

Runs one workload twice — untraced baseline, then with a
:class:`repro.trace.Tracer` and an :class:`~repro.cuda.profiler.Nvprof`
attached — and verifies the properties the CI ``trace`` job gates on:

- **digest equality**: instrumentation must not perturb results;
- **overhead bound**: traced virtual runtime ≤ ``MAX_OVERHEAD_RATIO`` ×
  untraced (the tracer charges ``TRACE_HOOK_NS`` per API call, so its
  cost is a *measured* quantity, and this bounds it);
- **busy-ns cross-check**: the tracer's per-stream kernel/copy spans
  must sum to exactly the device busy time ``Nvprof.timeline_report()``
  reports — two independent observers of the same device schedule;
- **eq. 2 cross-check**: the paper's Total-CUDA-calls formula (§4.3),
  recomputed over the traced API call spans, must equal the span count
  exactly (every traced launch comes with its push/pop pair).
"""

from __future__ import annotations

from repro.cuda.profiler import Nvprof
from repro.harness.runner import Machine, run_app
from repro.trace import Tracer

#: CI gate: traced runtime must stay within this factor of untraced.
MAX_OVERHEAD_RATIO = 1.25

#: relative tolerance of the busy-ns cross-check (pure float sums over
#: the same events in a different order)
_REL_TOL = 1e-6


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= _REL_TOL * max(abs(a), abs(b), 1.0)


def run_trace_bench(
    app_cls,
    *,
    scale: float = 0.05,
    gpu: str = "V100",
    seed: int = 0,
    mode: str = "crac",
    checkpoint_at: float | None = None,
) -> tuple[dict, Tracer, Nvprof]:
    """Benchmark tracing overhead on one app; returns (report, tracer,
    profiler) so the caller can export the trace."""
    machine = Machine(gpu=gpu, seed=seed)
    kwargs = dict(
        mode=mode, checkpoint_at=checkpoint_at, noise=False,
    )
    base = run_app(app_cls(scale=scale, seed=seed), machine, **kwargs)
    tracer = Tracer()
    profiler = Nvprof()
    traced = run_app(
        app_cls(scale=scale, seed=seed), machine,
        tracer=tracer, profiler=profiler, **kwargs,
    )

    overhead_ratio = (
        traced.runtime_exact_s / base.runtime_exact_s
        if base.runtime_exact_s > 0
        else 1.0
    )
    digest_match = traced.digest == base.digest

    busy = tracer.device_busy_ns()
    timeline = profiler.timeline_report()
    busy_match = _close(busy["kernel"], timeline.kernel_busy_ns) and _close(
        busy["copy"], timeline.copy_busy_ns
    )

    # eq. 2 over the traced call spans: fast-forwarded iterations add to
    # the backend's counter without dispatching, so only the span-derived
    # counter satisfies the formula exactly.
    span_calls = tracer.api_call_counter()
    eq2_total = profiler.total_calls_formula(span_calls)
    eq2_ok = eq2_total == sum(span_calls.values())

    profile = profiler.report()
    report = {
        "app": base.app_name,
        "mode": mode,
        "gpu": gpu,
        "scale": scale,
        "seed": seed,
        "checkpoint_at": checkpoint_at,
        "untraced_s": base.runtime_exact_s,
        "traced_s": traced.runtime_exact_s,
        "overhead_ratio": overhead_ratio,
        "max_overhead_ratio": MAX_OVERHEAD_RATIO,
        "digest_match": digest_match,
        "digest": f"{traced.digest:#010x}",
        "trace_overhead_ns": tracer.overhead_ns,
        "spans": len(tracer.spans),
        "instants": len(tracer.instants),
        "segments": tracer.segment + 1,
        "device_busy": {
            "kernel_ns": busy["kernel"],
            "copy_ns": busy["copy"],
        },
        "timeline": {
            "span_ns": timeline.span_ns,
            "kernel_busy_ns": timeline.kernel_busy_ns,
            "copy_busy_ns": timeline.copy_busy_ns,
            "events": timeline.events,
            "segments": timeline.segments,
        },
        "busy_match": busy_match,
        "eq2_total": eq2_total,
        "eq2_span_calls": int(sum(span_calls.values())),
        "eq2_ok": eq2_ok,
        "profile": {
            "total_calls": profile.total_calls,
            "cps": profile.cps,
            "kernel_launches": profile.kernel_launches,
            "restarts": profile.restarts,
        },
        "ok": bool(
            digest_match
            and overhead_ratio <= MAX_OVERHEAD_RATIO
            and busy_match
            and eq2_ok
        ),
    }
    return report, tracer, profiler


def format_trace_bench(report: dict) -> str:
    """Human-readable summary of one trace-bench report."""
    lines = [
        f"trace bench: {report['app']} (mode={report['mode']}, "
        f"gpu={report['gpu']}, scale={report['scale']})",
        f"  untraced runtime: {report['untraced_s']:.4f} s (virtual)",
        f"  traced runtime:   {report['traced_s']:.4f} s "
        f"({report['overhead_ratio']:.4f}x, "
        f"bound {report['max_overhead_ratio']}x)",
        f"  trace overhead:   {report['trace_overhead_ns'] / 1e6:.3f} ms "
        f"charged over {report['spans']} spans, "
        f"{report['instants']} instants, {report['segments']} segment(s)",
        f"  digest:           {report['digest']} "
        f"({'match' if report['digest_match'] else 'MISMATCH'})",
        f"  device busy:      kernel "
        f"{report['device_busy']['kernel_ns'] / 1e6:.3f} ms, copy "
        f"{report['device_busy']['copy_ns'] / 1e6:.3f} ms "
        f"({'match' if report['busy_match'] else 'MISMATCH'} vs timeline)",
        f"  eq. 2:            {report['eq2_total']:,} formula vs "
        f"{report['eq2_span_calls']:,} traced spans "
        f"({'ok' if report['eq2_ok'] else 'MISMATCH'})",
        f"  profiler window:  {report['profile']['total_calls']:,} calls, "
        f"{report['profile']['cps']:,.0f}/s, "
        f"{report['profile']['restarts']} restart fold(s)",
        f"  => {'OK' if report['ok'] else 'FAIL'}",
    ]
    return "\n".join(lines)
