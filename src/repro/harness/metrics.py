"""The paper's §4.3 formulas."""

from __future__ import annotations


def overhead_pct(time_with: float, time_native: float) -> float:
    """Runtime overhead % (paper eq. 1).

    ``(E_CRAC − E_native) / E_native × 100`` — negative values happen in
    practice (caching and run-to-run noise; the paper observes them for
    Hotspot3D and Kmeans).
    """
    if time_native <= 0:
        raise ValueError("native time must be positive")
    return (time_with - time_native) / time_native * 100.0


def cps(total_calls: int, exec_time_s: float) -> float:
    """CUDA calls per second (paper eq. 2's CPS).

    ``total_calls`` must already follow the Total-CUDA-calls convention
    (one kernel launch = 3 calls), which the dispatch backends enforce.
    """
    if exec_time_s <= 0:
        raise ValueError("execution time must be positive")
    return total_calls / exec_time_s
