"""Speculative-checkpoint benchmark: near-zero stall at equal fidelity.

Three runs per app on the same virtual machine — uncheckpointed
baseline, forked mode (PR 2's best case: incremental + background
write), and speculative mode (validated speculation: no quiesce, no
drain stall) — all with the same mid-run cuts. The *checkpoint stall*
(extra virtual time over the baseline) is the quantity under test: the
speculative path must shrink it to under
``STALL_RATIO_LIMIT`` (10%) of the forked-mode stall.

Fidelity cells make sure the speed is not bought with torn images:

- a speculative run that kills the process after the last cut and
  restarts from the image must produce the same output digest as the
  uncheckpointed run (digest-equal restore);
- a *forced-conflict* cell writes a buffer inside the capture window so
  validation must invalidate and replay it (``invalidated > 0``), and
  the restored bytes must still equal the cut-point state.

``repro spec-bench`` drives this and emits ``BENCH_spec.json``; the CI
gate also compares each app's stall ratio against the committed
``benchmarks/BENCH_spec_baseline.json`` so the near-zero property
cannot silently regress.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.session import CracSession
from repro.harness.ckpt_bench import default_cuts
from repro.harness.runner import Machine, run_app

#: Baseline file the CI gate compares against.
DEFAULT_BASELINE = "benchmarks/BENCH_spec_baseline.json"
#: Speculative stall must stay below this fraction of the forked stall.
STALL_RATIO_LIMIT = 0.10
#: Stall-ratio regression limit vs the committed baseline.
REGRESSION_LIMIT = 1.25
#: Damping floor (seconds) added to both sides of the stall ratio so a
#: sub-millisecond stall cannot flip the gate on rounding.
STALL_FLOOR_S = 1e-3


def _forced_conflict_cell(*, seed: int, gpu: str) -> dict:
    """Write inside the capture window; validation must invalidate and
    replay, and the restored bytes must still equal the cut state."""
    nbytes = 1 << 20
    session = CracSession(gpu=gpu, seed=seed)
    backend = session.backend
    addr = backend.malloc(nbytes)
    backend.device_view(addr, nbytes)[:] = 17  # pre-cut contents
    image = session.checkpoint(speculative=True)
    # The capture window is open: these writes conflict with the cut.
    backend.device_view(addr, nbytes // 2)[:] = 99
    session.finish_forked_checkpoints()
    writer = image.forked_writer
    cell = {
        "invalidated": writer.invalidated,
        "replayed_bytes": writer.replayed_bytes,
        "replay_time_ns": writer.replay_time_ns,
        "committed": writer.committed,
    }
    # Restore must be digest-equal to a stop-the-world cut: the image
    # holds the *pre-window* bytes, not the conflicting write.
    session.kill()
    session.restart(image)
    restored = session.backend.device_view(addr, nbytes)
    cell["digest_equal"] = bool(np.all(restored == 17))
    cell["ok"] = bool(
        cell["invalidated"] > 0
        and cell["replayed_bytes"] > 0
        and cell["committed"]
        and cell["digest_equal"]
    )
    session.kill()
    return cell


def run_spec_bench(
    app_classes: Sequence[type],
    *,
    scale: float = 0.5,
    n_cuts: int = 3,
    seed: int = 0,
    gpu: str = "V100",
    smoke: bool = False,
    baseline: dict | None = None,
) -> dict:
    """Run the forked-vs-speculative stall comparison; returns the
    gated report (``report["ok"]``).

    Every timing run uses ``noise=False`` and keeps the original process
    alive so the runtime delta against the uncheckpointed baseline
    isolates the stall exactly; the fidelity run restarts from the last
    speculative image and must reproduce the baseline digest.
    """
    if smoke:
        scale = min(scale, 0.25)
        n_cuts = min(n_cuts, 2)
    cuts = default_cuts(n_cuts)
    machine = Machine(gpu=gpu, seed=seed)
    report: dict = {
        "benchmark": "spec-bench",
        "version": 1,
        "smoke": smoke,
        "settings": {
            "scale": scale, "n_cuts": n_cuts, "seed": seed, "gpu": gpu,
        },
        "cuts": cuts,
        "apps": {},
        "checks": [],
    }

    def check(name: str, ok: bool, detail: str) -> None:
        report["checks"].append({"name": name, "ok": bool(ok),
                                 "detail": detail})

    for cls in app_classes:
        app_name = cls.name
        base = run_app(
            cls(scale=scale, seed=seed), machine, mode="crac", noise=False
        )
        runs = {}
        for mode, kwargs in (
            ("forked", {"incremental": True, "forked": True}),
            ("speculative", {"incremental": True, "speculative": True}),
        ):
            res = run_app(
                cls(scale=scale, seed=seed),
                machine,
                mode="crac",
                checkpoint_at=cuts,
                restart_after_checkpoint=False,
                noise=False,
                **kwargs,
            )
            runs[mode] = {
                "runtime_s": res.runtime_exact_s,
                "stall_s": res.runtime_exact_s - base.runtime_exact_s,
                "image_mb": [r.size_mb for r in res.checkpoints],
                "ckpt_s": [r.checkpoint_s for r in res.checkpoints],
            }
        stall_forked = runs["forked"]["stall_s"]
        stall_spec = runs["speculative"]["stall_s"]
        ratio = (stall_spec + STALL_FLOOR_S) / (stall_forked + STALL_FLOOR_S)

        # Fidelity: restart from the last speculative image; the output
        # digest must match the uncheckpointed run's.
        fid = run_app(
            cls(scale=scale, seed=seed),
            machine,
            mode="crac",
            checkpoint_at=cuts,
            restart_after_checkpoint=True,
            incremental=True,
            speculative=True,
            noise=False,
        )
        entry = {
            "baseline_s": base.runtime_exact_s,
            "modes": runs,
            "stall_ratio": ratio,
            "digest_equal": fid.digest == base.digest,
        }
        report["apps"][app_name] = entry
        check(
            f"{app_name}: spec stall < {STALL_RATIO_LIMIT:.0%} of forked",
            ratio < STALL_RATIO_LIMIT,
            f"stall {stall_spec:.4f}s vs forked {stall_forked:.4f}s "
            f"(ratio {ratio:.3f})",
        )
        check(
            f"{app_name}: speculative restore digest-equal",
            entry["digest_equal"],
            f"digest {fid.digest:#x} vs baseline {base.digest:#x}",
        )

    conflict = _forced_conflict_cell(seed=seed, gpu=gpu)
    report["forced_conflict"] = conflict
    check(
        "forced conflict: invalidate-and-replay, restore digest-equal",
        conflict["ok"],
        f"invalidated {conflict['invalidated']} handle(s), replayed "
        f"{conflict['replayed_bytes']} bytes, "
        f"digest_equal={conflict['digest_equal']}",
    )

    if baseline:
        for app_name, entry in report["apps"].items():
            prior = baseline.get("stall_ratio", {}).get(app_name)
            if prior is None:
                continue
            limit = prior * REGRESSION_LIMIT + STALL_FLOOR_S
            check(
                f"{app_name}: stall ratio vs committed baseline",
                entry["stall_ratio"] <= limit,
                f"ratio {entry['stall_ratio']:.3f} vs baseline "
                f"{prior:.3f} (limit {limit:.3f})",
            )

    report["ok"] = all(c["ok"] for c in report["checks"])
    return report


def baseline_payload(report: dict) -> dict:
    """The slice of a report worth committing as the gate baseline."""
    return {
        "benchmark": "spec-baseline",
        "version": report["version"],
        "settings": report["settings"],
        "smoke": report["smoke"],
        "stall_ratio": {
            app: entry["stall_ratio"]
            for app, entry in sorted(report["apps"].items())
        },
    }


def format_report(report: dict) -> str:
    """Human-readable table of a :func:`run_spec_bench` report."""
    s = report["settings"]
    lines = [
        f"speculative-checkpoint bench (scale={s['scale']}, "
        f"gpu={s['gpu']}, cuts at "
        + ", ".join(f"{c:.0%}" for c in report["cuts"])
        + ")",
        f"{'app':<16} {'mode':<12} {'runtime s':>10} {'stall s':>9} "
        f"{'images MB':>20} {'ratio':>7}",
        "-" * 80,
    ]
    for app_name, entry in report["apps"].items():
        lines.append(
            f"{app_name:<16} {'(baseline)':<12} "
            f"{entry['baseline_s']:>10.3f}"
        )
        for mode, m in entry["modes"].items():
            sizes = "/".join(f"{v:.0f}" for v in m["image_mb"])
            ratio = (
                f"{entry['stall_ratio']:>6.3f}"
                if mode == "speculative"
                else f"{'—':>6}"
            )
            lines.append(
                f"{'':<16} {mode:<12} {m['runtime_s']:>10.3f} "
                f"{m['stall_s']:>9.4f} {sizes:>20} {ratio:>7}"
            )
        lines.append(
            f"{'':<16} restore digest-equal: "
            + ("yes" if entry["digest_equal"] else "NO")
        )
    c = report["forced_conflict"]
    lines.append(
        f"\nforced conflict: invalidated={c['invalidated']} "
        f"replayed={c['replayed_bytes']}B "
        f"digest_equal={'yes' if c['digest_equal'] else 'NO'}"
    )
    lines.append("\nchecks:")
    for chk in report["checks"]:
        lines.append(
            f"  [{'PASS' if chk['ok'] else 'FAIL'}] {chk['name']} — "
            f"{chk['detail']}"
        )
    lines.append(f"\nspec-bench: {'PASS' if report['ok'] else 'FAIL'}")
    return "\n".join(lines)
