"""Calibration registry: every paper target in one queryable place.

The apps carry their own targets (`target_runtime_s`, `target_calls`,
`target_ckpt_mb`); this module aggregates them, measures the actual
values at paper scale, and reports target-vs-measured rows — the data
behind EXPERIMENTS.md, regenerable at any time. A tolerance check turns
the whole calibration into a single assertable invariant, so cost-model
changes that silently break a figure fail loudly in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import (
    Hpgmg,
    Hypre,
    Lulesh,
    SimpleStreams,
    UnifiedMemoryStreams,
)
from repro.apps.rodinia import RODINIA_SUITE
from repro.harness.runner import run_app

ALL_APP_CLASSES = tuple(RODINIA_SUITE) + (
    SimpleStreams, UnifiedMemoryStreams, Lulesh, Hpgmg, Hypre,
)


@dataclass
class CalibrationRow:
    """Target vs measured for one application at scale=1.0."""

    name: str
    target_runtime_s: float
    measured_runtime_s: float
    target_calls: int
    measured_calls: int
    target_ckpt_mb: float
    measured_ckpt_mb: float

    @property
    def runtime_error(self) -> float:
        return abs(self.measured_runtime_s - self.target_runtime_s) / self.target_runtime_s

    @property
    def calls_error(self) -> float:
        return abs(self.measured_calls - self.target_calls) / max(self.target_calls, 1)

    @property
    def ckpt_error(self) -> float:
        return abs(self.measured_ckpt_mb - self.target_ckpt_mb) / self.target_ckpt_mb

    def within(self, tolerance: float = 0.25) -> bool:
        """True if every metric is inside ``tolerance`` of its target."""
        return max(self.runtime_error, self.calls_error, self.ckpt_error) <= tolerance


def measure_app(cls, scale: float = 1.0) -> CalibrationRow:
    """Measure one app's native runtime/calls and CRAC checkpoint size."""
    native = run_app(cls(scale=scale), mode="native", noise=False)
    ckpt = run_app(
        cls(scale=scale), mode="crac", checkpoint_at=0.5,
        restart_after_checkpoint=False, noise=False,
    )
    (rec,) = ckpt.checkpoints
    return CalibrationRow(
        name=cls.name,
        target_runtime_s=cls.target_runtime_s * scale,
        measured_runtime_s=native.runtime_exact_s,
        target_calls=int(cls.target_calls * scale),
        measured_calls=native.cuda_calls,
        target_ckpt_mb=cls.target_ckpt_mb * scale,
        measured_ckpt_mb=rec.size_mb,
    )


def calibration_table(scale: float = 1.0, classes=ALL_APP_CLASSES) -> list[CalibrationRow]:
    """Target-vs-measured rows for every workload."""
    return [measure_app(cls, scale) for cls in classes]


def worst_error(rows: list[CalibrationRow]) -> tuple[str, float]:
    """(app, relative error) of the worst-calibrated metric anywhere."""
    worst = ("", 0.0)
    for r in rows:
        for err in (r.runtime_error, r.calls_error, r.ckpt_error):
            if err > worst[1]:
                worst = (r.name, err)
    return worst
