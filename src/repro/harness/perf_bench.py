"""``repro perf-bench``: hot-path wall-clock benchmark + regression gate.

Everything else in this repo measures *virtual* time; this harness is
the one place that deliberately measures **wall-clock** time — the
Python interpreter cost of the simulation itself, which is what the
dirty-tracking/sanitizer vectorization attacks. Four sections:

- ``capture`` — end-to-end wall time of checkpointed runs (full /
  incremental / forked modes, repeated for stability) on the largest
  Rodinia apps, with digest equality against an uncheckpointed run;
- ``sanitize`` — wall time of the same apps under the full dynamic
  checker set (must stay hazard-clean), plus the planted-hazard suite
  (must stay at 100% detection with zero false positives);
- ``micro`` — the legacy pure-Python structures
  (:mod:`repro.gpu.dirty_legacy`) versus the vectorized ones
  (:mod:`repro.gpu.intervals`, :class:`~repro.sanitizer.core._AccessIndex`)
  on identical synthetic op traces sized like the largest app's
  write/access stream: asserts *equal outputs* and reports the speedup
  (the ROADMAP's ≥5x target is judged here);
- ``gate`` — wall metrics normalized by a fixed calibration workload
  (so a slower CI machine doesn't fail the gate) and compared against
  the committed ``benchmarks/BENCH_perf_baseline.json``; any normalized
  ratio above :data:`REGRESSION_LIMIT` fails.

Wall-clock reads are confined to :func:`_wall`; each is marked
``lint: allow`` because this harness is measurement tooling, not part
of the deterministic simulation model.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np

from repro.gpu.dirty_legacy import LegacyDirtyIndex, LegacyWrittenSet
from repro.gpu.intervals import EpochIntervalIndex, SpanSet
from repro.harness.ckpt_bench import CKPT_MODES, default_cuts
from repro.harness.runner import Machine, run_app

#: Normalized wall-time ratio above which the CI gate fails.
REGRESSION_LIMIT = 1.15
#: Required micro speedup (vectorized vs legacy) on the dirty-tracking
#: and sanitizer-scan traces — the ROADMAP item-3 target.
SPEEDUP_TARGET = 5.0
#: Baseline file the CI gate compares against.
DEFAULT_BASELINE = "benchmarks/BENCH_perf_baseline.json"
#: Damping floor, in *calibration units* (metric ÷ calibration time),
#: added to both sides of a gate ratio so a few-millisecond metric
#: cannot flip the gate on scheduler noise.
RATIO_FLOOR = 1.0


def _wall(fn: Callable[[], object]) -> tuple[float, object]:
    """Run ``fn`` once; return (elapsed wall seconds, result)."""
    t0 = time.perf_counter()  # lint: allow — wall-clock benchmark harness
    result = fn()
    t1 = time.perf_counter()  # lint: allow — wall-clock benchmark harness
    return t1 - t0, result


def measure_calibration() -> float:
    """Wall seconds of a fixed numpy + interpreter workload.

    Used to normalize wall metrics across machines: the gate compares
    ``(metric / calibration)`` ratios, so a uniformly slower machine
    cancels out and only *relative* hot-path regressions remain.
    """
    def work() -> int:
        acc = 0
        for i in range(150_000):
            acc += i * 3 % 7
        a = np.arange(150_000, dtype=np.int64)
        for _ in range(40):
            acc += int(np.sort(a % 997).sum())
        return acc

    return min(_wall(work)[0] for _ in range(5))


# -- synthetic traces (seeded, deterministic) --------------------------------


def dirty_trace(
    n_ops: int, size: int, seed: int
) -> list[tuple[str, int, int]]:
    """A write-heavy dirty-tracking op trace: mostly small scattered
    ``mark`` calls (strided kernel writes fragment the span list), with
    occasional span queries and epoch-bounded clears — the call mix the
    checkpoint capture path produces."""
    rng = np.random.default_rng(seed)
    ops: list[tuple[str, int, int]] = []
    for _ in range(n_ops):
        r = rng.random()
        lo = int(rng.integers(0, size - 1))
        hi = int(min(size, lo + rng.integers(1, 2048)))
        if r < 0.94:
            ops.append(("mark", lo, hi))
        elif r < 0.97:
            ops.append(("spans", 0, 0))
        elif r < 0.99:
            ops.append(("bytes_since", 0, 0))
        else:
            ops.append(("clear", lo, hi))
    return ops


def replay_dirty(index, ops: Sequence[tuple[str, int, int]]) -> list:
    """Run a :func:`dirty_trace` against a dirty index; returns every
    query result so two implementations can be compared exactly."""
    out: list = []
    epoch = 0
    snap_epoch = 0
    for kind, lo, hi in ops:
        if kind == "mark":
            epoch += 1
            index.mark(lo, hi, epoch)
        elif kind == "spans":
            out.append(index.spans())
            out.append(index.byte_count)
        elif kind == "bytes_since":
            out.append(index.bytes_since(snap_epoch))
            snap_epoch = epoch
        else:
            index.clear([(lo, hi)], up_to_epoch=snap_epoch)
            out.append(index.intervals())
    out.append(index.intervals())
    return out


def access_trace(n_accesses: int, n_probes: int, size: int, seed: int,
                 n_streams: int = 12) -> tuple[list, list]:
    """Recorded accesses + probe ops for the racecheck-scan micro.

    Clocks are built the way the sanitizer builds them: per-stream
    monotone ticks with occasional cross-stream joins, so the
    concurrency structure (and thus the scan's work) is realistic.
    """
    from repro.sanitizer.vector_clock import VectorClock

    rng = np.random.default_rng(seed)
    stream_clocks = [VectorClock() for _ in range(n_streams)]
    accesses = []
    for i in range(n_accesses):
        sid = int(rng.integers(0, n_streams))
        vc = stream_clocks[sid]
        if rng.random() < 0.05:
            vc.join(stream_clocks[int(rng.integers(0, n_streams))])
        vc.tick(sid)
        lo = int(rng.integers(0, size - 1))
        hi = int(min(size, lo + rng.integers(1, size // 8)))
        accesses.append(
            (lo, hi, bool(rng.random() < 0.5), sid, vc.copy(), i, f"op{i}")
        )
    probes = []
    for _ in range(n_probes):
        sid = int(rng.integers(0, n_streams))
        vc = stream_clocks[sid]
        vc.tick(sid)
        lo = int(rng.integers(0, size - 1))
        hi = int(min(size, lo + rng.integers(1, size // 8)))
        probes.append((lo, hi, bool(rng.random() < 0.5), sid, vc.copy()))
    return accesses, probes


def legacy_access_scan(accesses, probes) -> list[list[int]]:
    """The pre-vectorization racecheck scan, verbatim logic: for each
    probe, the indices of recorded accesses it races."""
    out = []
    for lo, hi, write, sid, clock in probes:
        rows = []
        for i, (a_lo, a_hi, a_write, a_sid, a_clock, _, _) in enumerate(
            accesses
        ):
            if a_hi <= lo or a_lo >= hi:
                continue
            if not (write or a_write) or a_sid == sid:
                continue
            if a_clock.concurrent_with(clock):
                rows.append(i)
        out.append(rows)
    return out


def vector_access_scan(accesses, probes) -> list[list[int]]:
    """The same scan through the vectorized :class:`_AccessIndex`."""
    from repro.sanitizer.core import _Access, _AccessIndex

    index = _AccessIndex()
    for lo, hi, write, sid, clock, op_id, label in accesses:
        index.add(_Access(lo, hi, write, sid, clock, op_id, label))
    return [
        index.race_rows(lo, hi, sid, write, clock)
        for lo, hi, write, sid, clock in probes
    ]


def written_trace(n_ops: int, size: int, seed: int) -> list:
    """Adds + hole queries for the initcheck written-coverage micro.

    Adds dominate (every write access lands here) and stay small so
    the set fragments, as strided writes do; hole queries are the rare
    D2H-validation reads."""
    rng = np.random.default_rng(seed)
    ops = []
    for _ in range(n_ops):
        lo = int(rng.integers(0, size - 1))
        hi = int(min(size, lo + rng.integers(1, 512)))
        ops.append(("add" if rng.random() < 0.97 else "holes", lo, hi))
    return ops


def replay_written(ws, ops) -> list:
    """Run a :func:`written_trace` against a written-span set."""
    out = []
    for kind, lo, hi in ops:
        if kind == "add":
            ws.add(lo, hi)
        else:
            out.append(ws.holes(lo, hi))
    out.append(ws.spans())
    return out


def _best_of(fn: Callable[[], object], n: int = 3) -> tuple[float, object]:
    """Best (minimum) wall time over ``n`` runs; first run's result.

    The gate tracks the vectorized timings, which sit in the tens of
    milliseconds — min-of-3 strips scheduler noise that a single sample
    would hand straight to the regression ratio.
    """
    best, result = _wall(fn)
    for _ in range(n - 1):
        best = min(best, _wall(fn)[0])
    return best, result


def _micro_section(*, smoke: bool, seed: int) -> dict:
    """Legacy vs vectorized structures on identical traces."""
    if smoke:
        dirty_ops, dirty_size = 6000, 1 << 24
        acc_n, acc_probes, acc_size = 800, 800, 1 << 24
        wr_ops, wr_size = 6000, 1 << 24
    else:
        dirty_ops, dirty_size = 20000, 1 << 26
        acc_n, acc_probes, acc_size = 2500, 2500, 1 << 26
        wr_ops, wr_size = 20000, 1 << 26

    section: dict = {}

    ops = dirty_trace(dirty_ops, dirty_size, seed)
    legacy_s, legacy_out = _wall(lambda: replay_dirty(LegacyDirtyIndex(), ops))
    vector_s, vector_out = _best_of(
        lambda: replay_dirty(EpochIntervalIndex(), ops)
    )
    section["dirty"] = {
        "ops": dirty_ops,
        "legacy_s": legacy_s,
        "vector_s": vector_s,
        "speedup": legacy_s / vector_s if vector_s > 0 else float("inf"),
        "equal": legacy_out == vector_out,
    }

    accesses, probes = access_trace(acc_n, acc_probes, acc_size, seed)
    legacy_s, legacy_rows = _wall(
        lambda: legacy_access_scan(accesses, probes)
    )
    vector_s, vector_rows = _best_of(
        lambda: vector_access_scan(accesses, probes)
    )
    section["access"] = {
        "accesses": acc_n,
        "probes": acc_probes,
        "legacy_s": legacy_s,
        "vector_s": vector_s,
        "speedup": legacy_s / vector_s if vector_s > 0 else float("inf"),
        "equal": legacy_rows == vector_rows,
    }

    ops = written_trace(wr_ops, wr_size, seed)
    legacy_s, legacy_out = _wall(
        lambda: replay_written(LegacyWrittenSet(), ops)
    )
    vector_s, vector_out = _best_of(lambda: replay_written(SpanSet(), ops))
    section["written"] = {
        "ops": wr_ops,
        "legacy_s": legacy_s,
        "vector_s": vector_s,
        "speedup": legacy_s / vector_s if vector_s > 0 else float("inf"),
        "equal": legacy_out == vector_out,
    }

    section["all_equal"] = all(
        section[k]["equal"] for k in ("dirty", "access", "written")
    )
    # The headline number: combined legacy vs combined vectorized cost
    # of the capture (dirty+written) and sanitize (access) hot paths.
    tot_legacy = sum(section[k]["legacy_s"] for k in ("dirty", "access",
                                                      "written"))
    tot_vector = sum(section[k]["vector_s"] for k in ("dirty", "access",
                                                      "written"))
    section["combined_speedup"] = (
        tot_legacy / tot_vector if tot_vector > 0 else float("inf")
    )
    return section


# -- end-to-end sections ------------------------------------------------------


def _capture_section(
    app_classes: Sequence[type], *, scale: float, repeats: int,
    n_cuts: int, seed: int, gpu: str,
) -> dict:
    """Wall time of checkpointed runs, digest-checked per mode."""
    cuts = default_cuts(n_cuts)
    section: dict = {"cuts": cuts, "repeats": repeats, "apps": {}}
    for cls in app_classes:
        ref = run_app(
            cls(scale=scale, seed=seed), Machine(gpu=gpu, seed=seed),
            mode="crac", noise=False,
        )
        entry: dict = {"modes": {}}
        for mode, incremental, forked in CKPT_MODES:
            def one():
                return run_app(
                    cls(scale=scale, seed=seed),
                    Machine(gpu=gpu, seed=seed),
                    mode="crac",
                    checkpoint_at=cuts,
                    restart_after_checkpoint=False,
                    incremental=incremental,
                    forked=forked,
                    noise=False,
                )
            best = None
            digests_ok = True
            for _ in range(repeats):
                wall, res = _wall(one)
                best = wall if best is None else min(best, wall)
                digests_ok = digests_ok and res.digest == ref.digest
            entry["modes"][mode] = {
                "wall_s": best,
                "digest_match": digests_ok,
            }
        section["apps"][cls.name] = entry
    section["wall_s"] = sum(
        m["wall_s"]
        for e in section["apps"].values() for m in e["modes"].values()
    )
    section["digests_ok"] = all(
        m["digest_match"]
        for e in section["apps"].values() for m in e["modes"].values()
    )
    return section


def _sanitize_section(
    app_classes: Sequence[type], *, scale: float, repeats: int, seed: int,
    gpu: str,
) -> dict:
    """Wall time under the dynamic checkers + planted-hazard verdicts."""
    from repro.sanitizer.core import Sanitizer
    from repro.sanitizer.planted import SCENARIOS, run_scenario

    section: dict = {"repeats": repeats, "apps": {}}
    for cls in app_classes:
        def one():
            san = Sanitizer()
            run_app(
                cls(scale=scale, seed=seed), Machine(gpu=gpu, seed=seed),
                mode="crac", noise=False, sanitizer=san,
            )
            return san
        best = None
        hazards = 0
        for _ in range(repeats):
            wall, san = _wall(one)
            best = wall if best is None else min(best, wall)
            hazards += len(san.hazards)
        section["apps"][cls.name] = {"wall_s": best, "hazards": hazards}
    section["wall_s"] = sum(
        e["wall_s"] for e in section["apps"].values()
    )
    section["clean"] = all(
        e["hazards"] == 0 for e in section["apps"].values()
    )

    rows = [run_scenario(sc) for sc in SCENARIOS]
    positives = [r for r in rows if not r["negative"]]
    negatives = [r for r in rows if r["negative"]]
    section["planted"] = {
        "positives": len(positives),
        "detected": sum(r["detected"] for r in positives),
        "negatives": len(negatives),
        "false_positives": sum(not r["detected"] for r in negatives),
        "failures": [r["name"] for r in rows if not r["detected"]],
    }
    return section


# -- gate ---------------------------------------------------------------------


def _gate_metrics(report: dict) -> dict[str, float]:
    """The calibration-normalized wall metrics the gate tracks — large
    aggregates only; per-mode or per-structure millisecond slices are
    too noisy to gate on (they still appear in the report for
    diagnosis). The micro section is gated separately on its
    *speedup*, not its absolute time: legacy and vectorized replays run
    back-to-back under identical machine contention, so their ratio is
    self-normalizing in a way absolute wall times are not."""
    return {
        "capture_wall_s": report["capture"]["wall_s"],
        "sanitize_wall_s": report["sanitize"]["wall_s"],
    }


def evaluate_gate(report: dict, baseline: dict | None) -> dict:
    """Compare a report against the committed baseline.

    Each metric is normalized by its run's calibration time, then the
    current/baseline ratio is damped with :data:`RATIO_FLOOR` so a
    metric measured in single-digit milliseconds cannot trip the gate
    on scheduler noise. Fails if any ratio exceeds the limit.
    """
    gate: dict = {"limit": REGRESSION_LIMIT, "ratios": {}}
    if baseline is None:
        gate.update(baseline_found=False, max_ratio=None, ok=True)
        return gate
    gate["baseline_found"] = True
    cur_cal = report["calibration_s"]
    base_cal = baseline["calibration_s"]
    cur = _gate_metrics(report)
    base = _gate_metrics(baseline)
    for key in cur:
        num = cur[key] / cur_cal + RATIO_FLOOR
        den = base[key] / base_cal + RATIO_FLOOR
        gate["ratios"][key] = num / den
    # A vectorized-path slowdown shows up as the combined speedup
    # dropping below the baseline's; +1 on both sides damps the
    # small-number jitter the same way RATIO_FLOOR does above.
    gate["ratios"]["micro_speedup"] = (
        (baseline["micro"]["combined_speedup"] + 1.0)
        / (report["micro"]["combined_speedup"] + 1.0)
    )
    gate["max_ratio"] = max(gate["ratios"].values())
    gate["ok"] = gate["max_ratio"] <= REGRESSION_LIMIT
    return gate


def run_perf_bench(
    app_classes: Sequence[type],
    *,
    scale: float = 1.0,
    repeats: int = 20,
    n_cuts: int = 4,
    seed: int = 0,
    gpu: str = "V100",
    smoke: bool = False,
    baseline: dict | None = None,
) -> dict:
    """Run every section and the gate; returns the full report.

    ``report["ok"]`` requires: digest-equal checkpointed runs, clean
    sanitizer sweeps, 100% planted detection with zero false positives,
    observationally-equal micro replays, the ≥5x combined micro
    speedup, and no gate regression.
    """
    report: dict = {
        "benchmark": "perf",
        "version": 1,
        "smoke": smoke,
        "settings": {
            "scale": scale, "repeats": repeats, "n_cuts": n_cuts,
            "seed": seed, "gpu": gpu,
            "apps": [cls.name for cls in app_classes],
        },
        "calibration_s": measure_calibration(),
    }
    report["capture"] = _capture_section(
        app_classes, scale=scale, repeats=repeats, n_cuts=n_cuts,
        seed=seed, gpu=gpu,
    )
    report["sanitize"] = _sanitize_section(
        app_classes, scale=scale, repeats=repeats, seed=seed, gpu=gpu,
    )
    report["micro"] = _micro_section(smoke=smoke, seed=seed)
    report["gate"] = evaluate_gate(report, baseline)
    planted = report["sanitize"]["planted"]
    report["checks"] = {
        "digests_ok": report["capture"]["digests_ok"],
        "sanitize_clean": report["sanitize"]["clean"],
        "planted_ok": (
            planted["detected"] == planted["positives"]
            and planted["false_positives"] == 0
        ),
        "micro_equal": report["micro"]["all_equal"],
        "speedup_ok": report["micro"]["combined_speedup"] >= SPEEDUP_TARGET,
        "gate_ok": report["gate"]["ok"],
    }
    report["speedup_target"] = SPEEDUP_TARGET
    report["ok"] = all(report["checks"].values())
    return report


def baseline_payload(report: dict) -> dict:
    """The slice of a report worth committing as the gate baseline."""
    return {
        "benchmark": "perf-baseline",
        "version": report["version"],
        "settings": report["settings"],
        "smoke": report["smoke"],
        "calibration_s": report["calibration_s"],
        "capture": {"wall_s": report["capture"]["wall_s"]},
        "sanitize": {"wall_s": report["sanitize"]["wall_s"]},
        "micro": {
            "combined_speedup": report["micro"]["combined_speedup"],
            **{
                k: {"vector_s": report["micro"][k]["vector_s"]}
                for k in ("dirty", "access", "written")
            },
        },
    }


def format_report(report: dict) -> str:
    """Human-readable rendering of a :func:`run_perf_bench` report."""
    lines = [
        f"perf-bench (scale={report['settings']['scale']}, "
        f"repeats={report['settings']['repeats']}, "
        f"smoke={report['smoke']}, "
        f"calibration {report['calibration_s'] * 1e3:.1f} ms)",
    ]
    cap = report["capture"]
    lines.append(
        f"  capture:  {cap['wall_s'] * 1e3:8.1f} ms over "
        f"{len(cap['apps'])} app(s) × {len(CKPT_MODES)} modes × "
        f"{cap['repeats']} repeats, digests "
        + ("match" if cap["digests_ok"] else "MISMATCH")
    )
    san = report["sanitize"]
    pl = san["planted"]
    lines.append(
        f"  sanitize: {san['wall_s'] * 1e3:8.1f} ms, "
        + ("clean" if san["clean"] else "HAZARDS")
        + f"; planted {pl['detected']}/{pl['positives']} detected, "
        f"{pl['false_positives']} false positive(s) on "
        f"{pl['negatives']} negative(s)"
    )
    for key in ("dirty", "access", "written"):
        m = report["micro"][key]
        lines.append(
            f"  micro/{key:<8} legacy {m['legacy_s'] * 1e3:8.1f} ms   "
            f"vector {m['vector_s'] * 1e3:8.1f} ms   "
            f"{m['speedup']:6.1f}x "
            + ("(equal)" if m["equal"] else "(OUTPUT MISMATCH)")
        )
    lines.append(
        f"  combined speedup: {report['micro']['combined_speedup']:.1f}x "
        f"(target ≥{report['speedup_target']:.0f}x)"
    )
    gate = report["gate"]
    if not gate.get("baseline_found"):
        lines.append("  gate:     no baseline — recording run only")
    else:
        worst = max(gate["ratios"], key=gate["ratios"].get)
        lines.append(
            f"  gate:     max normalized ratio "
            f"{gate['max_ratio']:.3f}x (limit {gate['limit']}x, "
            f"worst: {worst}) "
            + ("[ok]" if gate["ok"] else "[FAIL]")
        )
    checks = ", ".join(
        f"{k}={'ok' if v else 'FAIL'}" for k, v in report["checks"].items()
    )
    lines.append(f"  checks:   {checks}")
    lines.append(f"  verdict:  {'PASS' if report['ok'] else 'FAIL'}")
    return "\n".join(lines)
