"""Seeded fault injection for the checkpoint/restore pipeline.

CRAC's value proposition is surviving failures, so the reproduction's
checkpoint path must itself be a failure domain: a node can die while a
region is being saved, while the store is writing the image, during a
plugin's precheckpoint drain, during allocation-log replay, or halfway
through a restore. A :class:`FaultInjector` holds a *fault plan* — a
list of :class:`FaultSpec` — and is consulted by the checkpointer, the
checkpoint store, the coordinator's two-phase commit, and the restart
path at the named stages below. Every random draw comes from one seeded
RNG so fault schedules are exactly reproducible.

Stages (``FaultInjector.STAGES``):

- ``precheckpoint`` — inside a plugin's drain/stage hook (per plugin);
- ``region-save``   — while the checkpointer walks memory (per region);
- ``image-write``   — while the store writes a staged image (per
  region); a crash here leaves a *partial* staged image behind, which
  is exactly what the store's two-phase commit protocol must tolerate;
- ``spec-validate`` — at the validation point of a speculative
  checkpoint (forces rollback + fallback to the forked path);
- ``commit``        — between stage and commit of a coordinated
  two-phase checkpoint (forces the all-abort path);
- ``replay``        — during allocation-log replay at restart
  (``kind="divergence"`` raises :class:`ReplayDivergenceError`);
- ``restore``       — mid-restore, after upper-half memory is mapped
  but before the lower half is rebuilt.

Runtime fault stages (PR 3) — tripped by the simulated GPU runtime
itself, not the checkpoint pipeline. These sites call :meth:`trip`
directly and translate the returned kind into a classified
:class:`~repro.errors.CudaError` (or a rank death), so the fault-domain
escalation ladder — not the injector — decides how to recover:

- ``ecc``          — uncorrectable ECC page error at kernel admission
  (``gpu/device.py``; fatal: device reset + restore);
- ``kernel-hang``  — a launched kernel never retires; its duration is
  inflated past the watchdog bound and the stream is poisoned
  (``gpu/device.py``; sticky: stream reset + replay);
- ``copy-stall``   — a copy engine wedges mid-transfer
  (``gpu/device.py``; sticky);
- ``xfer-corrupt`` — a PCIe/UVM transfer is corrupted in flight and
  caught by a per-region CRC check (``cuda/api.py``, ``gpu/uvm.py``;
  retryable: retransfer);
- ``uvm-storm``    — a UVM fault storm thrashes the migration engine
  (``gpu/uvm.py``; retryable);
- ``heartbeat``    — a rank misses a coordinator heartbeat during a
  coordinated checkpoint (``dmtcp/coordinator.py``; kind ``crash``
  kills the rank, any other kind drops a single beat).

Kinds:

- ``crash``      — raise :class:`InjectedFault` at the stage (default);
- ``corrupt``    — do *not* raise; the site silently corrupts the bytes
  it is handling (only the store's ``image-write`` honours this — the
  corruption is then caught by checksum verification at restore);
- ``divergence`` — at ``replay``, raise :class:`ReplayDivergenceError`
  (elsewhere treated as a crash).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field

from repro.errors import InjectedFault, ReplayDivergenceError


def derive_seed(seed: int, name: str) -> int:
    """Derive an independent named RNG seed from a base seed.

    Consumers that must not perturb each other's random streams (fault
    placement vs. checkpoint scheduling vs. backoff jitter) each seed
    their own :class:`random.Random` with ``derive_seed(base, "name")``
    so arming one kind of randomness never shifts another — campaigns
    stay bit-reproducible as fault plans change.
    """
    return (seed & 0xFFFFFFFF) ^ zlib.crc32(name.encode("utf-8"))


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: *where* (stage), *when* (probability per visit
    or a deterministic visit count), and *what* (kind).

    ``at_count=N`` fires on the Nth visit to the stage (1-based);
    ``probability=p`` fires each visit with probability ``p``. Exactly
    one of the two must be given. ``max_fires`` bounds how often the
    spec may fire (``None`` = unlimited; deterministic specs default to
    once).
    """

    stage: str
    kind: str = "crash"
    probability: float | None = None
    at_count: int | None = None
    max_fires: int | None = 1

    def __post_init__(self) -> None:
        if self.stage not in FaultInjector.STAGES:
            raise ValueError(
                f"unknown stage {self.stage!r}; expected one of "
                f"{FaultInjector.STAGES}"
            )
        if self.kind not in ("crash", "corrupt", "divergence"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if (self.probability is None) == (self.at_count is None):
            raise ValueError("give exactly one of probability / at_count")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.at_count is not None and self.at_count < 1:
            raise ValueError("at_count is 1-based")


@dataclass(frozen=True)
class FiredFault:
    """One fault that actually fired (the injector keeps a trail)."""

    stage: str
    kind: str
    visit: int
    context: str


class FaultInjector:
    """Evaluates a fault plan at named pipeline stages.

    Hook sites call :meth:`check`, which raises for crash/divergence
    kinds and returns ``"corrupt"`` for silent-corruption faults (the
    site then corrupts its own bytes). Sites that cannot corrupt treat
    ``"corrupt"`` as a crash by passing ``corruptible=False``.
    """

    STAGES = (
        "precheckpoint",
        "region-save",
        "image-write",
        "spec-validate",
        "commit",
        "replay",
        "restore",
        # -- runtime fault domain (module docstring) --
        "ecc",
        "kernel-hang",
        "copy-stall",
        "xfer-corrupt",
        "uvm-storm",
        "heartbeat",
    )

    def __init__(self, specs: list[FaultSpec] | None = None, seed: int = 0) -> None:
        self.specs = list(specs or [])
        self._rng = random.Random(seed)
        self.visits: dict[str, int] = {s: 0 for s in self.STAGES}
        self._fires_per_spec: dict[int, int] = {}
        self.fired: list[FiredFault] = []

    # -- plan management -------------------------------------------------------

    def arm(self, spec: FaultSpec) -> None:
        """Add one more planned fault."""
        self.specs.append(spec)

    def reset_counters(self) -> None:
        """Zero the per-stage visit counters (the fired trail is kept)."""
        self.visits = {s: 0 for s in self.STAGES}

    # -- evaluation ------------------------------------------------------------

    def trip(self, stage: str, context: str = "") -> str | None:
        """Record a visit to ``stage``; return the fault kind if one fires."""
        if stage not in self.visits:
            raise ValueError(f"unknown stage {stage!r}")
        self.visits[stage] += 1
        visit = self.visits[stage]
        for i, spec in enumerate(self.specs):
            if spec.stage != stage:
                continue
            fires = self._fires_per_spec.get(i, 0)
            if spec.max_fires is not None and fires >= spec.max_fires:
                continue
            hit = (
                visit == spec.at_count
                if spec.at_count is not None
                else self._rng.random() < spec.probability
            )
            if not hit:
                continue
            self._fires_per_spec[i] = fires + 1
            self.fired.append(FiredFault(stage, spec.kind, visit, context))
            return spec.kind
        return None

    def check(self, stage: str, context: str = "", *,
              corruptible: bool = False) -> str | None:
        """Visit ``stage``; raise for crash/divergence faults.

        Returns ``"corrupt"`` (without raising) when a corruption fault
        fires at a site that can honour it, else ``None``.
        """
        kind = self.trip(stage, context)
        if kind is None:
            return None
        if kind == "divergence" and stage == "replay":
            raise ReplayDivergenceError(
                f"injected replay divergence ({context})"
                if context
                else "injected replay divergence"
            )
        if kind == "corrupt" and corruptible:
            return kind
        raise InjectedFault(stage, context)
