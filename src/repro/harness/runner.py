"""Run applications under any dispatcher and collect measurements.

``run_app(app, machine, mode=...)`` builds a fresh simulated machine,
runs the app, and returns a :class:`RunResult` with virtual runtime,
call counts, CPS, the output digest, and any checkpoint records.

Measurement noise: the paper averages 10 runs with a ~0.1 s standard
deviation and explicitly attributes small negative overheads to this
noise (§4.4.1). ``run_app`` models it with a seeded Gaussian draw per
(app, mode, gpu) so short-app overheads scatter realistically and
results stay reproducible; pass ``noise=False`` for exact virtual times.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.apps.base import AppContext, AppResult, CudaApp
from repro.core.session import CracSession
from repro.core.halves import SplitProcess
from repro.cuda.interface import CudaDispatchBase, NativeBackend
from repro.dmtcp.store import CheckpointStore
from repro.gpu.timing import DEFAULT_HOST_COSTS, HostCosts
from repro.harness.fault_injection import FaultInjector
from repro.proxy.crcuda import CrcudaBackend
from repro.proxy.crum import CrumBackend
from repro.proxy.proxy_runtime import NaiveProxyBackend

MODES = ("native", "crac", "crum", "proxy-cma", "crcuda")

#: Device slowdown factors relative to the V100 calibration (Figure 6's
#: K600 runs are several times slower; the paper notes its Rodinia runs
#: "mostly ran for at least 10 seconds" there).
TIME_SCALE = {"V100": 1.0, "K600": 3.0}


@dataclass(frozen=True)
class Machine:
    """Hardware/kernel configuration for a run."""

    gpu: str = "V100"
    fsgsbase: bool = False
    seed: int = 0

    @classmethod
    def v100(cls, **kw) -> "Machine":
        return cls(gpu="V100", **kw)

    @classmethod
    def k600(cls, **kw) -> "Machine":
        """The local Quadro K600 node of §4.4.5 (Figure 6)."""
        return cls(gpu="K600", **kw)


@dataclass
class CkptRecord:
    """One checkpoint(+restart) taken during a run."""

    at_progress: float
    checkpoint_s: float
    size_mb: float
    restart_s: float | None = None
    replayed_calls: int | None = None


@dataclass
class RunResult:
    """Everything measured about one run."""

    app_name: str
    mode: str
    gpu: str
    runtime_s: float  # with measurement noise (if enabled)
    runtime_exact_s: float  # pure virtual time
    cuda_calls: int
    cps: float
    digest: int
    checkpoints: list[CkptRecord] = field(default_factory=list)
    extras: dict = field(default_factory=dict)

    def overhead_pct(self, baseline: "RunResult") -> float:
        """Runtime overhead vs a baseline run (paper eq. 1)."""
        from repro.harness.metrics import overhead_pct

        return overhead_pct(self.runtime_s, baseline.runtime_s)


def _noise_s(app_name: str, mode: str, gpu: str, std_s: float = 0.1) -> float:
    seed = zlib.crc32(f"{app_name}/{mode}/{gpu}".encode())
    return float(np.random.default_rng(seed).normal(0.0, std_s))


def run_app(
    app: CudaApp,
    machine: Machine = Machine(),
    *,
    mode: str = "native",
    checkpoint_at: float | Sequence[float] | None = None,
    restart_after_checkpoint: bool = True,
    incremental: bool = False,
    forked: bool = False,
    speculative: bool = False,
    gzip: bool = False,
    noise: bool = True,
    costs: HostCosts = DEFAULT_HOST_COSTS,
    store: CheckpointStore | None = None,
    fault_injector: FaultInjector | None = None,
    sanitizer=None,
    tracer=None,
    profiler=None,
) -> RunResult:
    """Run ``app`` on a fresh machine under ``mode``.

    ``checkpoint_at`` (CRAC only): one progress fraction — or a sequence
    of them for periodic checkpointing — at which to checkpoint. With
    ``restart_after_checkpoint`` the original process is killed *after
    the last checkpoint* and the run continues in a restarted process —
    the full transparency path, whose output digest must equal a native
    run's. ``incremental=True`` chains the checkpoints as
    base + dirty-page deltas (host pages *and* GPU buffer spans);
    ``forked=True`` writes each image on a background timeline while the
    app keeps running (COW-charged — the CRUM-style forked checkpoint);
    ``speculative=True`` additionally skips the quiesce — the cut is
    validated against the handle-version table at commit time (the
    PhoenixOS-style concurrent checkpoint, near-zero stall).

    ``store`` (CRAC only) commits every checkpoint through the store's
    two-phase protocol and performs the restart via the self-healing
    ``restart_latest`` path; ``fault_injector`` arms a seeded fault plan
    over the whole pipeline.

    ``sanitizer`` attaches a :class:`repro.sanitizer.Sanitizer` to the
    run's runtime (under crac it follows the session across restarts)
    and finalizes its leak check after the app completes.

    ``tracer`` attaches a :class:`repro.trace.Tracer` to the run's
    dispatch backend (under crac it re-attaches across restarts);
    ``profiler`` attaches an :class:`~repro.cuda.profiler.Nvprof` with
    the timeline enabled and a window opened before the app starts.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}")
    records: list[CkptRecord] = []
    if checkpoint_at is None:
        triggers: list[float] = []
    elif isinstance(checkpoint_at, (int, float)):
        triggers = [float(checkpoint_at)]
    else:
        triggers = sorted(float(f) for f in checkpoint_at)

    if mode == "crac":
        session = CracSession(
            gpu=machine.gpu, fsgsbase=machine.fsgsbase, seed=machine.seed,
            costs=costs, fault_injector=fault_injector,
        )
        backend: CudaDispatchBase = session.backend
        if sanitizer is not None:
            session.enable_sanitizer(sanitizer)
        if tracer is not None:
            session.enable_trace(tracer)
        if profiler is not None:
            session.enable_profiler(profiler)
            profiler.enable_timeline()
            profiler.start()
        upper_mmap = lambda size: session.split.upper_mmap(size)  # noqa: E731
        chain: list = []  # previous images (for incremental parents)

        def checkpoint_cb(progress: float) -> None:
            if len(records) >= len(triggers) or progress < triggers[len(records)]:
                return
            is_last = len(records) == len(triggers) - 1
            image = session.checkpoint(
                gzip=gzip,
                incremental=incremental and bool(chain),
                parent=chain[-1] if (incremental and chain) else None,
                store=store,
                forked=forked,
                speculative=speculative,
            )
            chain.append(image)
            rec = CkptRecord(
                at_progress=progress,
                checkpoint_s=image.checkpoint_time_ns / 1e9,
                size_mb=image.size_bytes / (1 << 20),
            )
            if restart_after_checkpoint and is_last:
                session.kill()
                report = (
                    session.restart_latest(store)
                    if store is not None
                    else session.restart(image)
                )
                rec.restart_s = report.restart_time_ns / 1e9
                rec.replayed_calls = report.replayed_calls
            records.append(rec)

        ctx = AppContext(
            backend=backend,
            upper_mmap=upper_mmap,
            checkpoint_cb=checkpoint_cb if triggers else None,
            time_scale=TIME_SCALE[machine.gpu],
        )
    else:
        split = SplitProcess(
            gpu=machine.gpu, fsgsbase=machine.fsgsbase, seed=machine.seed
        )
        backend_cls = {
            "native": NativeBackend,
            "crum": CrumBackend,
            "proxy-cma": NaiveProxyBackend,
            "crcuda": CrcudaBackend,
        }[mode]
        backend = backend_cls(split.runtime, costs)
        if sanitizer is not None:
            sanitizer.attach(split.runtime)
        if tracer is not None:
            tracer.attach(backend)
        if profiler is not None:
            profiler.attach(backend)
            profiler.enable_timeline()
            profiler.start()
        if mode != "native":
            # Checkpointable proxies also launch under DMTCP and must
            # fork/exec + initialize their proxy process.
            split.process.advance(costs.crac_startup_ns + 150_000_000)
        ctx = AppContext(
            backend=backend,
            upper_mmap=split.upper_mmap,
            time_scale=TIME_SCALE[machine.gpu],
        )

    result: AppResult = app.run(ctx)
    if mode == "crac":
        # Drain any still-in-flight forked image write: the job is not
        # durably checkpointed until the background write commits.
        session.finish_forked_checkpoints()
    if sanitizer is not None:
        # End of app = teardown point: run the leak check against the
        # runtime the app finished on.
        sanitizer.finish(backend.runtime)
    # Whole-process lifetime: includes CRAC/DMTCP startup (which the
    # paper identifies as the dominant overhead for short apps) and any
    # checkpoint/restart work.
    exact_s = backend.process.clock_ns / 1e9
    noisy_s = exact_s + (_noise_s(app.name, mode, machine.gpu) if noise else 0.0)
    return RunResult(
        app_name=result.name,
        mode=mode,
        gpu=machine.gpu,
        runtime_s=max(noisy_s, exact_s * 0.5),
        runtime_exact_s=exact_s,
        cuda_calls=result.cuda_calls,
        cps=result.cuda_calls / exact_s if exact_s > 0 else 0.0,
        digest=result.digest,
        checkpoints=records,
        extras=result.extras,
    )
