"""Plain-text rendering of experiment rows as paper-shaped tables."""

from __future__ import annotations

from repro.harness.experiments import ExperimentRow


def _fmt(value) -> str:
    if isinstance(value, float):
        if abs(value) >= 100:
            return f"{value:,.1f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(
    title: str, rows: list[ExperimentRow], label_header: str = "benchmark"
) -> str:
    """Render rows as an aligned text table."""
    if not rows:
        return f"== {title} ==\n(no rows)"
    columns = list(rows[0].values.keys())
    table = [[label_header] + columns]
    for row in rows:
        table.append([row.label] + [_fmt(row.values.get(c, "")) for c in columns])
    widths = [max(len(r[i]) for r in table) for i in range(len(table[0]))]
    lines = [f"== {title} =="]
    for idx, r in enumerate(table):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(r, widths)))
        if idx == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)


def render_bars(
    title: str,
    rows: list[ExperimentRow],
    columns: list[str],
    *,
    width: int = 48,
    unit: str = "s",
) -> str:
    """Render grouped horizontal bars (the paper's figures, in ASCII).

    ``columns`` selects the numeric series to draw (e.g. ``["native_s",
    "crac_s"]``); bars in a group share the row's label, mirroring the
    paired native/CRAC bars of Figures 2 and 5.
    """
    if not rows:
        return f"== {title} ==\n(no rows)"
    peak = max(
        (float(r.values.get(c, 0.0)) for r in rows for c in columns),
        default=0.0,
    )
    if peak <= 0:
        peak = 1.0
    label_w = max(len(r.label) for r in rows)
    col_w = max(len(c) for c in columns)
    lines = [f"== {title} =="]
    glyphs = ["█", "░", "▒", "▓"]
    for row in rows:
        for i, col in enumerate(columns):
            value = float(row.values.get(col, 0.0))
            bar = glyphs[i % len(glyphs)] * max(
                1 if value > 0 else 0, round(value / peak * width)
            )
            label = row.label if i == 0 else ""
            lines.append(
                f"{label:<{label_w}}  {col:<{col_w}} |{bar} {value:.2f}{unit}"
            )
    return "\n".join(lines)


def render_all(scale: float = 0.02) -> str:
    """Render every reproduced table/figure at the given scale (used by
    the examples; benchmarks drive the experiments individually)."""
    from repro.harness import experiments as ex

    parts = [
        render_table("§1 TOP500 systems with NVIDIA GPUs", ex.fig0_top500(), "year"),
        render_table("Table 1 — application characterization",
                     ex.table1_characterization(scale)),
        render_table("Table 2 — command-line arguments",
                     ex.table2_cli_arguments()),
        render_table("Figure 2 — Rodinia runtimes (native vs CRAC)",
                     ex.fig2_rodinia_runtime(scale, noise=False)),
        render_table("Figure 3 — Rodinia checkpoint/restart",
                     ex.fig3_rodinia_checkpoint(scale)),
        render_table("Figure 4 — simpleStreams sweep",
                     ex.fig4_simplestreams(scale)),
        render_table("Figure 5a/5b — stream & real-world runtimes",
                     ex.fig5_runtimes(scale, noise=False)),
        render_table("Figure 5c — checkpoint/restart",
                     ex.fig5c_checkpoint(scale)),
        render_table("Table 3 — CRAC vs CMA/IPC on cuBLAS",
                     ex.table3_ipc_comparison(scale)),
        render_table("Figure 6 — FSGSBASE effect (K600)",
                     ex.fig6_fsgsbase(scale, noise=False)),
    ]
    return "\n\n".join(parts)
