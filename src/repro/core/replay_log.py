"""The cudaMalloc-family log and the restart-time replay engine.

CRAC logs every allocation/free in the cudaMalloc family (§3.2.3) — *not*
every mmap, which the paper shows is impractical — and replays the entire
sequence at restart so the deterministic CUDA allocator reproduces every
active allocation at its original address (§3.2.4). The memory *content*
of only the *active* allocations is saved; the full call sequence is
replayed purely for address determinism.

``cudaHostAlloc`` is the exception: its buffers are already present in
the restored upper-half memory, so only still-active ones are replayed —
as ``cudaHostRegister`` — to re-register them with the fresh library.

Replay verifies determinism: if a replayed allocation lands at a
different address (e.g. ASLR was left enabled, or the restart runs on a
different CUDA/GPU platform), every pointer held by the restored upper
half would dangle, so replay aborts with ``ReplayDivergenceError``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from repro.errors import ReplayDivergenceError
from repro.cuda.api import CudaRuntime

Op = Literal[
    "malloc",
    "free",
    "malloc_host",
    "free_host",
    "malloc_managed",
    "free_managed",
    "host_alloc",
]


@dataclass(frozen=True)
class LogEntry:
    """One logged cudaMalloc-family call."""

    op: Op
    nbytes: int  # 0 for frees
    addr: int  # result for allocs, argument for frees
    #: cudaSetDevice state at call time (multi-GPU replay must restore it)
    device: int = 0


@dataclass
class ReplayLog:
    """Ordered log of allocation-family calls."""

    entries: list[LogEntry] = field(default_factory=list)

    def record(self, op: Op, nbytes: int, addr: int, device: int = 0) -> None:
        """Append one allocation-family call to the log."""
        self.entries.append(LogEntry(op, nbytes, addr, device))

    def __len__(self) -> int:
        return len(self.entries)

    # -- queries ----------------------------------------------------------------

    def active_allocations(self) -> dict[int, LogEntry]:
        """Allocations not freed by the end of the log, keyed by address."""
        live: dict[int, LogEntry] = {}
        for e in self.entries:
            if e.op in ("malloc", "malloc_host", "malloc_managed", "host_alloc"):
                live[e.addr] = e
            else:
                live.pop(e.addr, None)
        return live

    def count(self, *ops: Op) -> int:
        """Number of entries matching any of ``ops``."""
        return sum(1 for e in self.entries if e.op in ops)

    # -- replay -------------------------------------------------------------------

    def replay(
        self, runtime: CudaRuntime, *, strict: bool = True
    ) -> int | dict[int, int]:
        """Re-execute the log against a fresh lower-half CUDA library.

        In the default strict mode, returns the number of calls replayed
        and raises :class:`ReplayDivergenceError` if any allocation lands
        at a different address than the original run — the paper's
        baseline design, which requires disabled ASLR and the same
        CUDA/GPU platform.

        With ``strict=False`` (the §3.2.4 future-work *address
        virtualization* mode) divergence is tolerated: the method returns
        an ``{original_addr: new_addr}`` translation map instead, and the
        caller patches its virtual-address table.
        """
        replayed = 0
        hostalloc_addrs: set[int] = set()
        translation: dict[int, int] = {}

        def xlate(addr: int) -> int:
            return translation.get(addr, addr) if not strict else addr

        for e in self.entries:
            if e.op == "malloc":
                if runtime.current_device != e.device:
                    runtime.cudaSetDevice(e.device)
                got = runtime.cudaMalloc(e.nbytes)
            elif e.op == "free":
                runtime.cudaFree(xlate(e.addr))
                replayed += 1
                continue
            elif e.op == "malloc_host":
                got = runtime.cudaMallocHost(e.nbytes)
            elif e.op == "free_host":
                if e.addr in hostalloc_addrs:
                    # Frees of never-replayed cudaHostAlloc buffers.
                    continue
                runtime.cudaFreeHost(xlate(e.addr))
                replayed += 1
                continue
            elif e.op == "malloc_managed":
                got = runtime.cudaMallocManaged(e.nbytes)
            elif e.op == "free_managed":
                runtime.cudaFreeManaged(xlate(e.addr))
                replayed += 1
                continue
            elif e.op == "host_alloc":
                # Not replayed through the allocator: active cudaHostAlloc
                # buffers are re-registered separately (§3.2.4).
                hostalloc_addrs.add(e.addr)
                continue
            else:  # pragma: no cover - exhaustive literal
                raise AssertionError(e.op)
            replayed += 1
            if strict and got != e.addr:
                raise ReplayDivergenceError(
                    f"replayed {e.op}({e.nbytes}) landed at {got:#x}, "
                    f"original was {e.addr:#x} — allocator nondeterminism "
                    "or changed platform/ASLR"
                )
            translation[e.addr] = got
        return replayed if strict else translation
