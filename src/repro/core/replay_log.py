"""The cudaMalloc-family log and the restart-time replay engine.

CRAC logs every allocation/free in the cudaMalloc family (§3.2.3) — *not*
every mmap, which the paper shows is impractical — and replays the entire
sequence at restart so the deterministic CUDA allocator reproduces every
active allocation at its original address (§3.2.4). The memory *content*
of only the *active* allocations is saved; the full call sequence is
replayed purely for address determinism.

``cudaHostAlloc`` is the exception: its buffers are already present in
the restored upper-half memory, so only still-active ones are replayed —
as ``cudaHostRegister`` — to re-register them with the fresh library.

Replay verifies determinism: if a replayed allocation lands at a
different address (e.g. ASLR was left enabled, or the restart runs on a
different CUDA/GPU platform), every pointer held by the restored upper
half would dangle, so replay aborts with ``ReplayDivergenceError``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from repro.errors import ReplayDivergenceError
from repro.cuda.api import CudaRuntime

Op = Literal[
    "malloc",
    "free",
    "malloc_host",
    "free_host",
    "malloc_managed",
    "free_managed",
    "host_alloc",
]


@dataclass(frozen=True)
class LogEntry:
    """One logged cudaMalloc-family call."""

    op: Op
    nbytes: int  # 0 for frees
    addr: int  # result for allocs, argument for frees
    #: cudaSetDevice state at call time (multi-GPU replay must restore it)
    device: int = 0


@dataclass
class ReplayLog:
    """Ordered log of allocation-family calls."""

    entries: list[LogEntry] = field(default_factory=list)

    def record(self, op: Op, nbytes: int, addr: int, device: int = 0) -> None:
        """Append one allocation-family call to the log."""
        self.entries.append(LogEntry(op, nbytes, addr, device))

    def __len__(self) -> int:
        return len(self.entries)

    # -- queries ----------------------------------------------------------------

    def active_allocations(self) -> dict[int, LogEntry]:
        """Allocations not freed by the end of the log, keyed by address."""
        live: dict[int, LogEntry] = {}
        for e in self.entries:
            if e.op in ("malloc", "malloc_host", "malloc_managed", "host_alloc"):
                live[e.addr] = e
            else:
                live.pop(e.addr, None)
        return live

    def count(self, *ops: Op) -> int:
        """Number of entries matching any of ``ops``."""
        return sum(1 for e in self.entries if e.op in ops)

    # -- replay -------------------------------------------------------------------

    def replay(
        self, runtime: CudaRuntime, *, strict: bool = True
    ) -> int | dict[int, int]:
        """Re-execute the log against a fresh lower-half CUDA library.

        In the default strict mode, returns the number of calls replayed
        and raises :class:`ReplayDivergenceError` if any allocation lands
        at a different address than the original run — the paper's
        baseline design, which requires disabled ASLR and the same
        CUDA/GPU platform.

        With ``strict=False`` (the §3.2.4 future-work *address
        virtualization* mode) divergence is tolerated: the method returns
        an ``{original_addr: new_addr}`` translation map instead, and the
        caller patches its virtual-address table.
        """
        replayed = 0
        hostalloc_addrs: set[int] = set()
        translation: dict[int, int] = {}

        def xlate(addr: int) -> int:
            return translation.get(addr, addr) if not strict else addr

        for e in self.entries:
            if e.op == "malloc":
                if runtime.current_device != e.device:
                    runtime.cudaSetDevice(e.device)
                got = runtime.cudaMalloc(e.nbytes)
            elif e.op == "free":
                runtime.cudaFree(xlate(e.addr))
                replayed += 1
                continue
            elif e.op == "malloc_host":
                got = runtime.cudaMallocHost(e.nbytes)
            elif e.op == "free_host":
                if e.addr in hostalloc_addrs:
                    # Frees of never-replayed cudaHostAlloc buffers.
                    continue
                runtime.cudaFreeHost(xlate(e.addr))
                replayed += 1
                continue
            elif e.op == "malloc_managed":
                got = runtime.cudaMallocManaged(e.nbytes)
            elif e.op == "free_managed":
                runtime.cudaFreeManaged(xlate(e.addr))
                replayed += 1
                continue
            elif e.op == "host_alloc":
                # Not replayed through the allocator: active cudaHostAlloc
                # buffers are re-registered separately (§3.2.4).
                hostalloc_addrs.add(e.addr)
                continue
            else:  # pragma: no cover - exhaustive literal
                raise AssertionError(e.op)
            replayed += 1
            if strict and got != e.addr:
                raise ReplayDivergenceError(
                    f"replayed {e.op}({e.nbytes}) landed at {got:#x}, "
                    f"original was {e.addr:#x} — allocator nondeterminism "
                    "or changed platform/ASLR"
                )
            translation[e.addr] = got
        return replayed if strict else translation


# -- stream-op log (fault-domain rung 2) --------------------------------------


@dataclass
class StreamOpRecord:
    """One device operation enqueued on a stream, for timing replay.

    The fault domain's stream-reset rung must *re-issue* the work a
    poisoned stream had in flight. Content effects are applied eagerly
    at enqueue time (simulation convention), so replay is timing-only:
    the op is re-enqueued on the reset stream to re-charge its device
    occupancy, not re-executed.
    """

    stream_sid: int
    kind: str  # "kernel" | "copy"
    label: str
    duration_ns: float
    #: copy engine ("h2d"/"d2h"/"d2d") for kind="copy", else ""
    copy_kind: str = ""
    nbytes: int = 0
    replayed: bool = False


class StreamOpLog:
    """Ring of recently enqueued, not-yet-synchronized stream ops.

    The device appends a record per enqueue; a successful stream/device
    synchronization marks everything up to that point as retired. After
    a sticky fault, ``replay_unsynced`` re-enqueues the surviving window
    for the affected stream(s) through ``device.requeue`` — which
    bypasses fault injection and logging, so replay cannot recurse.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        self.max_entries = max_entries
        self.records: list[StreamOpRecord] = []
        #: total ops ever recorded (diagnostics; survives trimming)
        self.total_recorded = 0

    def record(self, stream_sid: int, kind: str, label: str,
               duration_ns: float, *, copy_kind: str = "",
               nbytes: int = 0) -> None:
        """Append one enqueued op (trims the oldest retired records)."""
        self.records.append(StreamOpRecord(
            stream_sid, kind, label, duration_ns,
            copy_kind=copy_kind, nbytes=nbytes,
        ))
        self.total_recorded += 1
        if len(self.records) > self.max_entries:
            keep = [r for r in self.records if not r.replayed]
            self.records = keep[-self.max_entries:]

    def mark_synced(self, stream_sid: int | None = None) -> int:
        """Retire ops confirmed complete by a successful synchronization.

        ``stream_sid=None`` retires every stream (device-wide sync);
        otherwise only that stream's ops. Returns the number retired.
        """
        n = 0
        for r in self.records:
            if r.replayed:
                continue
            if stream_sid is None or r.stream_sid == stream_sid:
                r.replayed = True
                n += 1
        return n

    def unsynced(self, stream_sid: int | None = None) -> list[StreamOpRecord]:
        """Ops enqueued but not yet confirmed by a synchronization."""
        return [
            r for r in self.records
            if not r.replayed
            and (stream_sid is None or r.stream_sid == stream_sid)
        ]

    def replay_unsynced(self, device, streams_by_sid, *,
                        stream_sid: int | None = None) -> int:
        """Re-enqueue unsynchronized ops on their (reset) streams.

        Timing-only: goes through ``device.requeue`` so neither fault
        injection nor this log observes the replayed ops. Records stay
        live (not retired) — the ops are once again in flight and only
        the next successful synchronization retires them.
        """
        n = 0
        for r in self.unsynced(stream_sid):
            stream = streams_by_sid.get(r.stream_sid)
            if stream is None or stream.destroyed:
                continue
            device.requeue(stream, r)
            n += 1
        return n
