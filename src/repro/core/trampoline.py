"""The CRAC dispatch backend: trampoline + interposition.

Every upper-half CUDA call jumps through the entry-point table into the
lower half (Figure 1). Crossing the boundary switches the x86-64 ``fs``
register to the lower half's TLS and back — one kernel call each way on
an unpatched kernel, one ``wrfsbase`` instruction each way under the
FSGSBASE patch (§4.4.5) — plus a small table-indirection cost.

The backend also implements CRAC's interposition (§3.2):

- the **cudaMalloc family** is logged into the replay log (allocation
  order and addresses), and *active* allocations are tracked for
  checkpoint draining;
- **fat-binary registration** is virtualized: the application holds
  virtual handles, so CRAC can re-register with a fresh lower half at
  restart and patch the mapping (§3.2.5);
- **streams and events** the application creates are tracked so they can
  be recreated and re-adopted at restart;
- each call notifies the DMTCP coordinator, which may fire a checkpoint
  at a scheduled call index ("random time during the run", §4.4.1).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.replay_log import ReplayLog
from repro.cuda.api import CudaRuntime, FatBinary
from repro.cuda.interface import CudaDispatchBase
from repro.dmtcp.coordinator import DmtcpCoordinator
from repro.gpu.streams import Event, Stream
from repro.gpu.timing import DEFAULT_HOST_COSTS, HostCosts


class CracBackend(CudaDispatchBase):
    """Upper→lower trampoline dispatch with CRAC interposition."""

    mode = "crac"

    #: base of the virtual-pointer range handed to the application when
    #: address virtualization is enabled (disjoint from both halves).
    VIRT_BASE = 0x0000_5000_0000_0000

    def __init__(
        self,
        runtime: CudaRuntime,
        host_costs: HostCosts = DEFAULT_HOST_COSTS,
        *,
        lower_fs_base: int = 0x1000,
        upper_fs_base: int = 0x2000,
        virtualize_addresses: bool = False,
    ) -> None:
        super().__init__(runtime, host_costs)
        self.log = ReplayLog()
        #: §3.2.4 future-work mode: the app holds stable *virtual*
        #: pointers; the trampoline translates to the library's real
        #: addresses, so restart tolerates allocator divergence (no
        #: same-platform / no-ASLR requirement).
        self.virtualize_addresses = virtualize_addresses
        self._v2r: dict[int, int] = {}
        self._virt_cursor = self.VIRT_BASE
        self.coordinator: DmtcpCoordinator | None = None
        self._lower_fs = lower_fs_base
        self._upper_fs = upper_fs_base
        # Fat-binary virtualization: app-visible handle -> (real handle,
        # FatBinary, registered function names).
        self._next_virtual_handle = 1
        self.fatbin_registry: dict[int, dict] = {}
        # Live handles the app holds, for restart recreation.
        self.live_streams: dict[int, Stream] = {}
        self.live_events: dict[int, Event] = {}
        #: repro.spec.HandleTable tracking handle versions for
        #: speculative checkpoints; None until a session wires one
        self.handle_table = None

    # -- dispatch cost ---------------------------------------------------------

    def _charge_call(
        self,
        name: str,
        *,
        payload_bytes: int = 0,
        ship_in: Sequence[int] = (),
        ship_out: Sequence[int] = (),
    ) -> None:
        # ship_in/ship_out are ignored: the single address space passes
        # pointers directly to the lower half (the paper's key win).
        proc = self.process
        thread = self.current_thread if self.current_thread is not None else proc.threads[0]
        # Enter the lower half: switch fs to the lower half's TLS...
        proc.set_fs_register(thread, self._lower_fs)
        # ...table indirection + the call itself...
        proc.advance(self.costs.trampoline_body_ns + self.costs.native_dispatch_ns)
        # ...and return to the upper half.
        proc.set_fs_register(thread, self._upper_fs)
        if self.coordinator is not None:
            self.coordinator.notify_call()

    def _charge_batch(self, calls) -> None:
        # Batched trampoline crossings, exact-parity with the per-call
        # path: same virtual time, same fs-switch/syscall counters, and
        # — when a coordinator is attached — the same clock and counter
        # values at every notify_call (a checkpoint may fire there).
        from repro.linux.process import SYSCALL_NS, WRFSBASE_NS

        proc = self.process
        thread = (
            self.current_thread if self.current_thread is not None
            else proc.threads[0]
        )
        fs_ns = WRFSBASE_NS if proc.fsgsbase else SYSCALL_NS
        per_call = (
            2 * fs_ns
            + self.costs.trampoline_body_ns
            + self.costs.native_dispatch_ns
        )
        if self.coordinator is None:
            n = len(calls)
            proc.fs_switch_count += 2 * n
            if not proc.fsgsbase:
                proc.syscall_count += 2 * n
            proc.advance(n * per_call)
        else:
            for _ in calls:
                proc.fs_switch_count += 2
                if not proc.fsgsbase:
                    proc.syscall_count += 2
                proc.advance(per_call)
                self.coordinator.notify_call()
        thread.fs_base = self._upper_fs

    def _trampoline_ns(self, dispatch_ns: float) -> float:
        # Everything beyond the bare library call is trampoline cost:
        # the two fs switches, table indirection, coordinator notify.
        return max(0.0, dispatch_ns - self.costs.native_dispatch_ns)

    def _log(self, op: str, nbytes: int, addr: int, device: int = 0) -> None:
        self.log.record(op, nbytes, addr, device)  # type: ignore[arg-type]
        if not self._prepaid_depth:
            self.process.advance(self.costs.log_record_ns)

    # -- address virtualization (§3.2.4 future work) -------------------------

    def _expose(self, real_addr: int, nbytes: int) -> int:
        """Hand the app a pointer: real, or a fresh virtual one."""
        if not self.virtualize_addresses:
            return real_addr
        vaddr = self._virt_cursor
        self._virt_cursor += (nbytes + 0xFFF) & ~0xFFF
        self._v2r[vaddr] = real_addr
        return vaddr

    def _to_real(self, addr):
        """Translate an app pointer to the library's real address."""
        if not self.virtualize_addresses or not isinstance(addr, int):
            return addr
        return self._v2r.get(addr, addr)

    def patch_translation(self, moved: dict[int, int]) -> None:
        """Rebind virtual pointers after a non-strict replay moved the
        underlying real allocations ("patching application locations
        containing the addresses", §3.2.4)."""
        for v, r in list(self._v2r.items()):
            self._v2r[v] = moved.get(r, r)

    # -- interposed cudaMalloc family -------------------------------------------

    def malloc(self, nbytes: int) -> int:
        addr = super().malloc(nbytes)
        self._log("malloc", nbytes, addr, device=self.runtime.current_device)
        return self._expose(addr, nbytes)

    def free(self, addr: int) -> None:
        # Managed pointers route through cudaFree as in real CUDA; log
        # them distinctly so replay uses the right entry point.
        from repro.gpu.uvm import ManagedBuffer

        real = self._to_real(addr)
        is_managed = isinstance(self.runtime.buffers.get(real), ManagedBuffer)
        super().free(real)
        self._v2r.pop(addr, None)
        self._log("free_managed" if is_managed else "free", 0, real)

    def malloc_host(self, nbytes: int) -> int:
        addr = super().malloc_host(nbytes)
        self._log("malloc_host", nbytes, addr)
        return self._expose(addr, nbytes)

    def host_alloc(self, nbytes: int, flags: int = 0) -> int:
        addr = super().host_alloc(nbytes, flags)
        self._log("host_alloc", nbytes, addr)
        return self._expose(addr, nbytes)

    def free_host(self, addr: int) -> None:
        real = self._to_real(addr)
        super().free_host(real)
        self._v2r.pop(addr, None)
        self._log("free_host", 0, real)

    def malloc_managed(self, nbytes: int) -> int:
        addr = super().malloc_managed(nbytes)
        self._log("malloc_managed", nbytes, addr)
        return self._expose(addr, nbytes)

    # -- translated data-path entry points ---------------------------------------

    def memcpy(self, dst, src, nbytes, kind, **kw):
        super().memcpy(self._to_real(dst), self._to_real(src), nbytes, kind, **kw)

    def memset(self, addr, value, nbytes, **kw):
        super().memset(self._to_real(addr), value, nbytes, **kw)

    def launch(self, name, fn=None, *, managed=(), **kw):
        if self.virtualize_addresses:
            from repro.cuda.api import ManagedUse

            managed = [
                ManagedUse(self._to_real(u.addr), u.offset, u.nbytes, u.mode)
                for u in managed
            ]
        return super().launch(name, fn, managed=managed, **kw)

    def mem_prefetch(self, addr, nbytes, **kw):
        super().mem_prefetch(self._to_real(addr), nbytes, **kw)

    def memcpy_peer(self, dst, src, nbytes, **kw):
        super().memcpy_peer(self._to_real(dst), self._to_real(src), nbytes, **kw)

    def pointer_get_attributes(self, addr):
        return super().pointer_get_attributes(self._to_real(addr))

    def device_view(self, addr, nbytes, dtype=None, offset: int = 0):
        import numpy as np

        return super().device_view(
            self._to_real(addr), nbytes, dtype if dtype is not None else np.uint8,
            offset,
        )

    def managed_view(self, addr, nbytes, dtype=None, offset: int = 0):
        import numpy as np

        return super().managed_view(
            self._to_real(addr), nbytes, dtype if dtype is not None else np.uint8,
            offset,
        )

    # -- interposed registration (§3.2.5) -------------------------------------------

    def register_fatbin(self, fatbin: FatBinary) -> int:
        real = super().register_fatbin(fatbin)
        virtual = self._next_virtual_handle
        self._next_virtual_handle += 1
        self.fatbin_registry[virtual] = {
            "real": real,
            "fatbin": fatbin,
            "functions": [],
        }
        if self.handle_table is not None:
            self.handle_table.add("module", virtual)
        return virtual

    def register_function(self, handle: int, kernel_name: str) -> None:
        entry = self.fatbin_registry[handle]
        super().register_function(entry["real"], kernel_name)
        entry["functions"].append(kernel_name)

    def unregister_fatbin(self, handle: int) -> None:
        entry = self.fatbin_registry.pop(handle)
        super().unregister_fatbin(entry["real"])
        if self.handle_table is not None:
            self.handle_table.remove("module", handle)

    # -- stream / event tracking ----------------------------------------------------

    def stream_create(self) -> Stream:
        s = super().stream_create()
        self.live_streams[s.sid] = s
        if self.handle_table is not None:
            self.handle_table.add("stream", s.sid)
        return s

    def stream_destroy(self, stream: Stream) -> None:
        super().stream_destroy(stream)
        self.live_streams.pop(stream.sid, None)
        if self.handle_table is not None:
            self.handle_table.remove("stream", stream.sid)

    def event_create(self) -> Event:
        e = super().event_create()
        self.live_events[e.eid] = e
        if self.handle_table is not None:
            self.handle_table.add("event", e.eid)
        return e

    def event_destroy(self, event: Event) -> None:
        super().event_destroy(event)
        self.live_events.pop(event.eid, None)
        if self.handle_table is not None:
            self.handle_table.remove("event", event.eid)

    # -- restart support --------------------------------------------------------------

    def swap_runtime(self, runtime: CudaRuntime) -> None:
        """Point the trampoline at a freshly loaded lower half.

        Called by the restart orchestrator after the new helper program
        re-initialized the entry-point table (Figure 1, restart path).
        """
        self.runtime = runtime
        self.process = runtime.process

    def reregister_fatbins(self) -> dict[int, tuple[int, int]]:
        """Re-register every live fat binary with the fresh library and
        patch the handle mapping (§3.2.5). Returns {virtual: (old, new)}."""
        patches: dict[int, tuple[int, int]] = {}
        for virtual, entry in self.fatbin_registry.items():
            old = entry["real"]
            new = self.runtime.cudaRegisterFatBinary(entry["fatbin"])
            for fname in entry["functions"]:
                self.runtime.cudaRegisterFunction(new, fname)
            entry["real"] = new
            patches[virtual] = (old, new)
            self.process.advance(
                self.costs.reregister_ns * (1 + len(entry["functions"]))
            )
        return patches
