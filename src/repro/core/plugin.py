"""CRAC's DMTCP plugin: drain, stage, veto (paper §3.2.3).

At precheckpoint time the plugin:

1. drains the task queue — ``cudaDeviceSynchronize`` (the CheCUDA step
   that CRAC retains, §2.2);
2. stages the contents of every **active** allocation (device, managed,
   pinned) into image blobs, charging the device→host drain over PCIe.
   Only active mallocs are saved — *not* the full allocation arenas —
   which is CRAC's checkpoint-size optimization (§3.2.3);
3. saves the replay log and stream/event metadata as blobs;
4. vetoes every lower-half range from the memory dump: the CUDA
   library's own memory (with its unrestorable UVA/UVM state) is *not*
   checkpointed (§3.1).
"""

from __future__ import annotations

from repro.core.trampoline import CracBackend
from repro.dmtcp.image import CheckpointImage
from repro.dmtcp.plugins import DmtcpPlugin
from repro.gpu.timing import NS_PER_S
from repro.gpu.uvm import UVM_PAGE, ManagedBuffer


def _resident_dirty_bytes(buf: ManagedBuffer) -> int:
    """Dirty bytes of a managed buffer that live on device-resident pages
    (only those cross PCIe at drain/refill time)."""
    total = 0
    for lo, hi in buf.contents.dirty_spans():
        for pg in range(lo // UVM_PAGE, (hi - 1) // UVM_PAGE + 1):
            if pg < buf.num_pages and buf.residency[pg] == 1:
                total += min(hi, (pg + 1) * UVM_PAGE) - max(lo, pg * UVM_PAGE)
    return total


class CracPlugin(DmtcpPlugin):
    """The CUDA checkpoint plugin (one per CRAC session).

    ``full_arena`` enables the *naive* alternative the paper rejects in
    §3.2.3: saving the entire CUDA malloc arenas instead of only the
    active allocations. Used by the ablation benchmark to show the
    checkpoint-size blowup CRAC's bookkeeping avoids.
    """

    name = "crac"

    def __init__(self, session, *, full_arena: bool = False) -> None:
        # Bound to the session (not a specific process) because restart
        # replaces the process/runtime under the same session.
        self.session = session
        self.full_arena = full_arena

    # -- checkpoint -----------------------------------------------------------

    def on_precheckpoint(self, image: CheckpointImage) -> None:
        backend: CracBackend = self.session.backend
        runtime = backend.runtime
        process = runtime.process

        # Synccheck observes the cut *before* the drain below hides any
        # still-in-flight work, and watches the image for early commits.
        san = getattr(self.session, "sanitizer", None)
        if san is not None:
            san.on_checkpoint_cut(runtime)
            san.watch_image(image)

        tracer = getattr(self.session, "tracer", None)

        # 1. Drain the queue of pending CUDA kernels (on every GPU).
        #    A *speculative* cut skips this entirely — kernels keep
        #    launching through the capture window and the version table
        #    catches whatever they touch (validated at commit time).
        if not image.speculative:
            t_drain = process.clock_ns
            for dev in runtime.devices:
                runtime.process.advance_to(dev.synchronize_all())
            runtime.cudaDeviceSynchronize()
            # The device is drained: every recorded managed write has
            # ended, so the CRUM-conflict log can be compacted (it
            # otherwise grows without bound across a long run).
            for mbuf in sorted(
                runtime.uvm.buffers.values(), key=lambda b: b.addr
            ):
                runtime.uvm.compact_writes(mbuf, before_ns=process.clock_ns)
            if tracer is not None:
                tracer.ckpt_span("drain", t_drain, process.clock_ns)

        # 2. Stage active allocations; drain device-side bytes over PCIe.
        #    For an incremental image only the *dirtied* spans are staged
        #    (a GPU delta that chains exactly like host dirty pages);
        #    ``uid`` guards the chain against arena address reuse. Each
        #    entry records what it costs in the image (``image_bytes``)
        #    and over PCIe at drain/refill time (``pcie_bytes``).
        delta = image.incremental
        t_stage = process.clock_ns
        buffers: dict[int, dict] = {}
        drain_bytes = 0
        for buf in runtime.active_allocations():
            is_managed = isinstance(buf, ManagedBuffer)
            kind = "managed" if is_managed else buf.kind
            dirty_spans = tuple(buf.contents.dirty_spans())
            entry = {
                "kind": kind,
                "size": buf.size,
                "uid": buf.uid,
                "delta": delta,
                "snapshot": (
                    buf.contents.dirty_snapshot()
                    if delta
                    else buf.contents.snapshot()
                ),
            }
            entry["image_bytes"] = (
                buf.contents.dirty_byte_count if delta else buf.size
            )
            if is_managed:
                entry["residency"] = buf.residency.copy()
                # Only device-resident pages cross PCIe at drain time.
                entry["pcie_bytes"] = (
                    _resident_dirty_bytes(buf)
                    if delta
                    else int((buf.residency == 1).sum()) * UVM_PAGE
                )
            elif kind == "device":
                entry["pcie_bytes"] = entry["image_bytes"]
            else:  # host-pinned: bytes never cross PCIe
                entry["pcie_bytes"] = 0
            drain_bytes += entry["pcie_bytes"]
            buffers[buf.addr] = entry
            # Whichever spans this image captured get cleared from the
            # live buffer only when the image durably commits — and only
            # where no later write superseded them (epoch-bounded).
            image.record_contents_capture(
                buf.contents, dirty_spans, buf.contents.write_seq
            )
        drain_ns = drain_bytes / runtime.device.spec.pcie_bw * NS_PER_S
        if image.speculative:
            # The drain crosses PCIe on the background capture timeline;
            # the checkpointer folds this into the writer's window.
            image.spec_deferred_ns = (
                getattr(image, "spec_deferred_ns", 0.0) + drain_ns
            )
        else:
            process.advance(drain_ns)
        if tracer is not None:
            tracer.ckpt_span(
                "stage", t_stage, process.clock_ns,
                buffers=len(buffers), pcie_bytes=drain_bytes,
            )
        if self.full_arena:
            # Naive mode (§3.2.3): the whole arenas go into the image.
            accounted = (
                sum(a.arena_bytes for a in runtime._device_allocs)
                + runtime._pinned_alloc.arena_bytes
                + runtime._hostalloc_alloc.arena_bytes
                + runtime._managed_alloc.arena_bytes
            )
            # Integer sums are order-independent.
            accounted = max(accounted, sum(e["size"] for e in buffers.values()))  # lint: allow
        else:
            accounted = sum(e["image_bytes"] for e in buffers.values())  # lint: allow
        image.add_blob("crac/buffers", buffers, accounted_bytes=accounted)

        # 3. Replay log + live handle metadata.
        image.add_blob("crac/replay-log", self.session.backend.log)
        image.add_blob(
            "crac/streams",
            sorted(backend.live_streams.keys()),
        )
        image.add_blob(
            "crac/events",
            {
                eid: (e.recorded, e.timestamp_ns)
                for eid, e in sorted(backend.live_events.items())
            },
        )
        image.add_blob("crac/current-device", runtime.current_device)
        if image.speculative:
            # Handle-version snapshot at the cut: what the speculative
            # writer diffs the live table against at validation time.
            image.add_blob(
                "crac/spec-versions", self.session.handle_table.cut()
            )
        # Platform fingerprint: replay determinism "relies on using the
        # same CUDA/GPU platform on restart" (§3.2.4).
        image.add_blob(
            "crac/platform",
            {
                "gpu": runtime.devices[0].spec.name,
                "n_gpus": len(runtime.devices),
                "compute_capability": runtime.devices[0].spec.compute_capability,
            },
        )
        image.add_blob(
            "crac/fatbins",
            {
                virtual: entry["fatbin"].name
                for virtual, entry in sorted(backend.fatbin_registry.items())
            },
        )

    # -- veto ---------------------------------------------------------------------

    def skip_ranges(self) -> list[tuple[int, int]]:
        """The whole lower half: helper, CUDA libraries, and every arena
        the library mmap'ed — none of it is saved (§3.1)."""
        return self.session.split.lower_ranges()
