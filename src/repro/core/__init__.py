"""CRAC — the paper's contribution.

The pieces map one-to-one onto the paper's §3:

- :mod:`~repro.core.halves`     — split-process construction (Figure 1):
  helper + CUDA library loaded into the lower half of one address space,
  the application into the upper half, with an exported entry-point table.
- :mod:`~repro.core.trampoline` — :class:`CracBackend`: the upper→lower
  call path (two fs-register switches + table indirection per call) and
  interposition on the cudaMalloc family / fat-binary registration.
- :mod:`~repro.core.replay_log` — the ordered allocation log and the
  replay engine with address-determinism verification (§3.2.3/§3.2.4).
- :mod:`~repro.core.plugin`     — :class:`CracPlugin`: the DMTCP plugin
  that drains the GPU, stages active allocations, and vetoes the lower
  half from the memory dump.
- :mod:`~repro.core.session`    — :class:`CracSession`: end-to-end
  orchestration of launch / checkpoint / kill / restart.
"""

from repro.core.halves import SplitProcess
from repro.core.plugin import CracPlugin
from repro.core.replay_log import LogEntry, ReplayLog
from repro.core.session import CracSession
from repro.core.trampoline import CracBackend

__all__ = [
    "SplitProcess",
    "CracBackend",
    "ReplayLog",
    "LogEntry",
    "CracPlugin",
    "CracSession",
]
