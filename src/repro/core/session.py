"""CracSession: end-to-end launch / checkpoint / kill / restart.

The session owns the split process, the trampoline backend, the DMTCP
checkpointer with the CRAC plugin, and the coordinator. Its
:meth:`restart` implements the paper's restart path:

1. a fresh process is created and a **new lower-half helper** is loaded
   (same deterministic layout: ASLR disabled, same platform);
2. DMTCP restores the upper-half memory from the image at the original
   addresses;
3. the trampoline is re-pointed at the fresh entry-point table;
4. the full cudaMalloc-family log is replayed so every active allocation
   reappears at its original address (divergence aborts the restart);
5. active ``cudaHostAlloc`` buffers are re-registered (their bytes came
   back with the upper half);
6. fat binaries are re-registered and handles patched (§3.2.5);
7. device/managed memory is refilled from the staged blobs over PCIe;
8. application-held stream/event handles are adopted by the fresh
   library ("CRAC needs to recreate streams", §4.4.2).

Because steps 4–8 restore every pointer and handle the application
holds, the (simulated) application object simply continues running —
exactly the transparency argument of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.halves import SplitProcess
from repro.core.plugin import CracPlugin
from repro.core.trampoline import CracBackend
from repro.dmtcp.checkpointer import DmtcpCheckpointer
from repro.dmtcp.coordinator import DmtcpCoordinator
from repro.dmtcp.image import CheckpointImage
from repro.errors import RestartError
from repro.gpu.device import GpuDevice
from repro.gpu.timing import DEFAULT_HOST_COSTS, NS_PER_S, HostCosts
from repro.gpu.uvm import ManagedBuffer
from repro.linux.loader import ProgramImage


@dataclass
class RestartReport:
    """What the restart did, and what it cost (virtual time)."""

    restart_time_ns: float
    replayed_calls: int
    refilled_bytes: int
    reregistered_fatbins: int
    adopted_streams: int
    adopted_events: int


class CracSession:
    """A CUDA application running under CRAC."""

    def __init__(
        self,
        *,
        gpu: str = "V100",
        app_image: ProgramImage | None = None,
        fsgsbase: bool = False,
        seed: int = 0,
        n_gpus: int = 1,
        costs: HostCosts = DEFAULT_HOST_COSTS,
        full_arena_checkpoint: bool = False,
        address_virtualization: bool = False,
    ) -> None:
        self.gpu = gpu
        self.seed = seed
        self.fsgsbase = fsgsbase
        self.n_gpus = n_gpus
        self.costs = costs
        self.app_image = app_image
        self.split = SplitProcess(
            gpu=gpu, app_image=app_image, fsgsbase=fsgsbase, seed=seed,
            n_gpus=n_gpus,
        )
        self.backend = CracBackend(
            self.split.runtime, costs,
            virtualize_addresses=address_virtualization,
        )
        # DMTCP + CRAC launch-time overhead (helper load, entry table,
        # coordinator handshake) — significant for short-running apps.
        self.process.advance(costs.crac_startup_ns)
        self.plugin = CracPlugin(self, full_arena=full_arena_checkpoint)
        self.checkpointer = DmtcpCheckpointer(self.process, [self.plugin], costs)
        self.coordinator = DmtcpCoordinator(self.checkpointer, seed=seed)
        self.backend.coordinator = self.coordinator
        self.restarts: list[RestartReport] = []

    # -- conveniences ------------------------------------------------------------

    def __enter__(self) -> "CracSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.process.alive:
            self.kill()

    @property
    def process(self):
        return self.split.process

    @property
    def runtime(self):
        return self.split.runtime

    @property
    def device(self) -> GpuDevice:
        return self.split.device

    # -- checkpoint ----------------------------------------------------------------

    def checkpoint(
        self,
        *,
        gzip: bool = False,
        incremental: bool = False,
        parent: CheckpointImage | None = None,
    ) -> CheckpointImage:
        """Take a checkpoint now (drain → stage → dump upper half).

        ``incremental=True`` saves only host pages dirtied since
        ``parent`` (GPU buffers are always staged in full)."""
        return self.coordinator.checkpoint(
            gzip=gzip, incremental=incremental, parent=parent
        )

    def kill(self) -> None:
        """Terminate the original process (device state is lost)."""
        self.process.kill()
        self.runtime.destroy()

    # -- restart ----------------------------------------------------------------------

    def restart(self, image: CheckpointImage) -> RestartReport:
        """Restart from ``image`` in a brand-new process (see module doc)."""
        platform = image.blobs.get("crac/platform")
        if platform is not None and not self.backend.virtualize_addresses:
            want = platform.payload
            from repro.gpu.timing import GPU_SPECS

            have_spec = GPU_SPECS[self.gpu]
            if (
                want["gpu"] != have_spec.name
                or want["n_gpus"] != self.n_gpus
            ):
                raise RestartError(
                    "restart platform mismatch: image was taken on "
                    f"{want['n_gpus']}× {want['gpu']}, restarting on "
                    f"{self.n_gpus}× {have_spec.name} — CRAC's replay "
                    "determinism requires the same CUDA/GPU platform "
                    "(§3.2.4)"
                )
        old_clock = self.process.clock_ns
        fresh = SplitProcess(
            gpu=self.gpu,
            app_image=self.app_image,
            fsgsbase=self.fsgsbase,
            seed=self.seed,
            n_gpus=self.n_gpus,
            load_upper=False,
        )
        proc = fresh.process
        proc.advance(self.costs.restart_bootstrap_ns)

        # 2. Restore upper-half memory at original addresses; the
        #    restored ranges are re-registered as upper-owned.
        restore_cost = self.checkpointer.restore_memory(image, proc)
        proc.advance(restore_cost)
        for saved in image.regions:
            fresh.loader._track("upper", saved.start, saved.size)

        # 3. Re-point the trampoline at the fresh lower half.
        self.backend.swap_runtime(fresh.runtime)

        # 4. Replay the allocation log. In the baseline design address
        #    determinism is verified; under address virtualization (the
        #    §3.2.4 future-work mode) divergence is tolerated and the
        #    virtual-pointer table is patched instead.
        log = image.blob("crac/replay-log")
        if self.backend.virtualize_addresses:
            translation = log.replay(fresh.runtime, strict=False)
            replayed = len(log.entries)
        else:
            replayed = log.replay(fresh.runtime)
            translation = {}
        proc.advance(replayed * self.costs.replay_call_ns)

        # 5. Re-register active cudaHostAlloc buffers (bytes already in
        #    the restored upper half).
        buffers = image.blob("crac/buffers")
        active = log.active_allocations()
        for addr, entry in active.items():
            if entry.op == "host_alloc":
                fresh.runtime.cudaHostRegister(addr, entry.nbytes)
                # The registered pages are already mapped (restored with
                # the upper half); the fresh hostalloc arena must never
                # hand them out again.
                fresh.runtime._hostalloc_alloc.reserve(addr, entry.nbytes)
                proc.advance(self.costs.replay_call_ns)

        # Sanity: every staged buffer must exist again (possibly moved).
        missing = [
            a
            for a in buffers
            if translation.get(a, a) not in fresh.runtime.buffers
        ]
        if missing:
            raise RestartError(
                f"replay did not recreate buffers at {[hex(a) for a in missing]}"
            )

        # 6. Fat binaries: re-register and patch handles.
        patches = self.backend.reregister_fatbins()

        # 7. Refill contents of active allocations; device/managed bytes
        #    cross PCIe again.
        refill_bytes = 0
        for addr, entry in buffers.items():
            buf = fresh.runtime.buffers[translation.get(addr, addr)]
            buf.contents.restore(entry["snapshot"])
            if entry["kind"] == "managed":
                assert isinstance(buf, ManagedBuffer)
                buf.residency[:] = entry["residency"]
                refill_bytes += int((buf.residency == 1).sum()) * 64 * 1024
            elif entry["kind"] == "device":
                refill_bytes += entry["size"]
        proc.advance(refill_bytes / fresh.device.spec.pcie_bw * NS_PER_S)

        # Restore the application's cudaSetDevice state (replay may have
        # left a different device current).
        want_device = image.blobs.get("crac/current-device")
        if want_device is not None and fresh.runtime.current_device != want_device.payload:
            fresh.runtime.cudaSetDevice(want_device.payload)

        # Patch the application's virtual pointers onto the (possibly
        # moved) real allocations.
        if translation:
            self.backend.patch_translation(translation)

        # 8. Recreate streams/events: adopt the app-held handles.
        for stream in self.backend.live_streams.values():
            fresh.runtime.adopt_stream(stream)
            proc.advance(self.costs.replay_call_ns)
        for event in self.backend.live_events.values():
            fresh.runtime.adopt_event(event)

        restart_time = proc.clock_ns
        # The session continues in the new process; keep virtual time
        # monotone across the kill/restart boundary.
        proc.advance_to(old_clock + restart_time)

        self.split = fresh
        self.checkpointer = DmtcpCheckpointer(proc, [self.plugin], self.costs)
        self.coordinator = DmtcpCoordinator(self.checkpointer, seed=self.seed)
        self.backend.coordinator = self.coordinator

        report = RestartReport(
            restart_time_ns=restart_time,
            replayed_calls=replayed,
            refilled_bytes=refill_bytes,
            reregistered_fatbins=len(patches),
            adopted_streams=len(self.backend.live_streams),
            adopted_events=len(self.backend.live_events),
        )
        self.restarts.append(report)
        return report
